#!/usr/bin/env python
"""Protocol shoot-out: every flooding scheme on one substrate.

Runs all seven registered protocols — the paper's three evaluation
schemes (OPT, DBAO, OF), the two baselines (naive, DCA), and the two
related-work/extension designs (Flash, cross-layer) — on the same
deployment with paired random streams, and prints a league table of
delay, transmission cost, failures, and collisions.

Run: ``python examples/protocol_shootout.py [--duty 0.05] [--packets 8]``
"""

import argparse

import numpy as np

from repro import ExperimentSpec, run_experiment
from repro.analysis import analytic_lower_bound
from repro.net import synthesize_greenorbs
from repro.net.trace import GreenOrbsConfig
from repro.protocols import available_protocols

SEED = 2011


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duty", type=float, default=0.05)
    parser.add_argument("--packets", type=int, default=8)
    parser.add_argument("--sensors", type=int, default=150,
                        help="smaller default than the 298-node trace so "
                             "the shoot-out finishes in about a minute")
    args = parser.parse_args()

    config = GreenOrbsConfig(
        n_sensors=args.sensors,
        area_m=700.0 * (args.sensors / 298.0) ** 0.5,
        n_clusters=max(3, round(10 * args.sensors / 298)),
    )
    topo = synthesize_greenorbs(seed=SEED, config=config)
    bound = analytic_lower_bound(topo, args.duty)
    print(f"substrate: {topo.n_sensors} sensors, duty {args.duty:.0%}, "
          f"M = {args.packets}")
    print(f"analytic per-packet lower bound: {bound:.0f} slots\n")

    header = (f"{'protocol':<12}{'avg delay':>10}{'done':>6}"
              f"{'tx':>9}{'fail':>8}{'coll':>8}")
    print(header)
    print("-" * len(header))
    rows = []
    for proto in available_protocols():
        summary = run_experiment(topo, ExperimentSpec(
            protocol=proto,
            duty_ratio=args.duty,
            n_packets=args.packets,
            seed=SEED,
        ))
        rows.append((
            summary.mean_delay(), proto, summary.completion_rate(),
            summary.mean_tx_attempts(), summary.mean_failures(),
            summary.mean_collisions(),
        ))
    for delay, proto, done, tx, fail, coll in sorted(
        rows, key=lambda r: (np.isnan(r[0]), r[0])
    ):
        print(f"{proto:<12}{delay:>10.0f}{done:>6.0%}"
              f"{tx:>9.0f}{fail:>8.0f}{coll:>8.0f}")

    print("\nreading guide: opt is the oracle floor; dbao/of are the "
          "paper's practical\nschemes; crosslayer exploits data "
          "overhearing (future work); flash rides the\ncapture effect; "
          "dca assumes reliable links; naive is the strawman.")


if __name__ == "__main__":
    main()
