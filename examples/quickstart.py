#!/usr/bin/env python
"""Quickstart: flood packets through a small low-duty-cycle WSN.

Builds a 120-sensor random deployment, floods 5 packets at a 5% duty
cycle with the paper's three protocols (OPT oracle, DBAO, OF), and
compares the measured delays with the paper's analytic machinery:

* the reliable-link FWL/FDL limits (Lemma 2 / Theorem 1),
* the lossy-link delay prediction (Sec. IV-B recurrence).

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import (
    ExperimentSpec,
    fdl_theorem1,
    fwl_reliable,
    run_experiment,
)
from repro.analysis import analytic_lower_bound
from repro.net import random_geometric_topology

SEED = 7
DUTY_RATIO = 0.05
N_PACKETS = 5


def main() -> None:
    rng = np.random.default_rng(SEED)
    topo = random_geometric_topology(n_nodes=121, area_m=420.0, rng=rng)
    mean_deg, _, _ = topo.degree_stats()
    print(f"network: {topo.n_sensors} sensors, mean degree {mean_deg:.1f}, "
          f"mean PRR {topo.mean_prr():.2f}")

    # --- Theory -------------------------------------------------------
    m = fwl_reliable(topo.n_sensors)
    period = round(1 / DUTY_RATIO)
    print(f"\ntheory: single-packet FWL m = {m} compact slots")
    print(f"theory: Theorem 1 E[FDL] for M={N_PACKETS}, T={period}: "
          f"{fdl_theorem1(topo.n_sensors, N_PACKETS, period):.0f} slots "
          f"(ideal links)")
    bound = analytic_lower_bound(topo, DUTY_RATIO)
    print(f"theory: lossy-link per-packet lower bound: {bound:.0f} slots")

    # --- Simulation ---------------------------------------------------
    print(f"\nflooding M={N_PACKETS} packets at {DUTY_RATIO:.0%} duty cycle:")
    header = f"{'protocol':<12}{'avg delay':>10}{'failures':>10}{'collisions':>12}"
    print(header)
    print("-" * len(header))
    for proto in ("opt", "dbao", "of"):
        summary = run_experiment(
            topo,
            ExperimentSpec(
                protocol=proto,
                duty_ratio=DUTY_RATIO,
                n_packets=N_PACKETS,
                seed=SEED,
            ),
        )
        print(
            f"{proto:<12}{summary.mean_delay():>10.1f}"
            f"{summary.mean_failures():>10.0f}{summary.mean_collisions():>12.0f}"
        )
    print("\nexpected ordering: opt <= dbao <= of, all above the lower bound.")


if __name__ == "__main__":
    main()
