#!/usr/bin/env python
"""Explore the paper's analytical results interactively.

Walks through the four theory artifacts end to end:

1. **Algorithm 1** on the paper's Fig. 3 example (N = 4, M = 2),
   printing the possession-matrix evolution;
2. **Lemma 2** — the FWL closed form against a Galton-Watson ensemble;
3. **Theorem 1 / Table I** — the multi-packet FDL with its knee;
4. **Sec. IV-B** — how link loss magnifies the duty-cycle delay.

Run: ``python examples/theory_explorer.py``
"""

import numpy as np

from repro import MatrixFloodSimulator, fdl_theorem1, fwl_reliable
from repro.core import (
    delay_inflation_factor,
    doubling_law,
    empirical_fwl,
    fwl_lossy,
    growth_rate,
    recurrence_hitting_time,
    waiting_table,
)

RNG = np.random.default_rng(42)


def show_algorithm1() -> None:
    print("=" * 64)
    print("1. Algorithm 1 on the Fig. 3 example (N=4 sensors, M=2 packets)")
    sim = MatrixFloodSimulator(n_sensors=4)
    result = sim.run(n_packets=2, record_history=True)
    for c, snap in enumerate(result.possession_history):
        rows = ["".join("1" if snap[p, v] else "." for p in range(2))
                for v in range(5)]
        print(f"  c={c}: " + "  ".join(f"n{v}:{r}" for v, r in enumerate(rows)))
    print(f"  total compact slots: {result.compact_slots} "
          f"(Lemma 3 limit M + m - 1 = {2 + result.m - 1}) "
          f"-> achieved: {result.achieves_lemma3}")
    print(f"  half-duplex expansion: {result.half_duplex_slots} slots")


def show_lemma2() -> None:
    print("=" * 64)
    print("2. Lemma 2: E[FWL] = ceil(log2(1+N) / log2(mu))")
    n = 1024
    for q in (1.0, 0.8, 0.6):
        theory = fwl_lossy(n, q)
        measured = empirical_fwl(n, q, n_ensembles=2000, rng=RNG).mean()
        print(f"  q={q:.1f} (mu={1+q:.1f}): theory {theory:>3}, "
              f"measured {measured:6.2f}")


def show_theorem1() -> None:
    print("=" * 64)
    print("3. Theorem 1 and Table I (N=1024, T=20)")
    n, period = 1024, 20
    m = fwl_reliable(n)
    print(f"  m = {m}; knee at M = m (slope halves after it):")
    for M in (2, 5, m, m + 5, 2 * m):
        print(f"    M={M:>3}: E[FDL] = {fdl_theorem1(n, M, period):7.1f} slots")
    print("  Table I waitings for M = m + 3 (blocking saturates at 2m-1 = "
          f"{2 * m - 1}):")
    tail = waiting_table(n, m + 3)[-5:]
    print("    " + ", ".join(f"W_{p}={w}" for p, w in tail))


def show_linkloss() -> None:
    print("=" * 64)
    print("4. Link loss magnifies the duty-cycle delay (Sec. IV-B)")
    n = 298
    print(f"  {'duty':>6} {'k=1':>8} {'k=1.42':>8} {'k=2':>8} "
          f"{'inflation(k=2)':>15}")
    for duty in (0.02, 0.05, 0.10, 0.20):
        period = round(1 / duty)
        delays = [recurrence_hitting_time(n, k, period) for k in (1.0, 1.42, 2.0)]
        infl = delay_inflation_factor(2.0, period)
        print(f"  {duty:>6.0%} {delays[0]:>8} {delays[1]:>8} {delays[2]:>8} "
              f"{infl:>15.2f}")
    lam = growth_rate(2.0, 20)
    print(f"  growth factor lambda* for k=2, T=20: {lam:.5f} per slot")


def main() -> None:
    show_algorithm1()
    show_lemma2()
    show_theorem1()
    show_linkloss()


if __name__ == "__main__":
    main()
