#!/usr/bin/env python
"""Forest-monitoring scenario: reprogramming a GreenOrbs-scale deployment.

The paper's motivating workload: a sink must disseminate a firmware/
configuration image — here 30 packets — to all 298 forest sensors running
at a 5% duty cycle. The script reproduces a compact version of the
paper's Sec. V study on the synthetic GreenOrbs trace:

1. trace statistics (degree/PRR spread, hop diameter);
2. the per-packet delay curve showing the blocking effect (Fig. 9);
3. the protocol comparison with the analytic lower bound (Fig. 10 point).

Run: ``python examples/forest_monitoring.py`` (about a minute).
"""

import numpy as np

from repro import ExperimentSpec, run_experiment
from repro.analysis import analytic_lower_bound, knee_index, sparkline
from repro.net import synthesize_greenorbs, trace_statistics

SEED = 2011
DUTY_RATIO = 0.05
N_PACKETS = 30


def main() -> None:
    topo = synthesize_greenorbs(seed=SEED)
    stats = trace_statistics(topo)
    print("synthetic GreenOrbs trace:")
    for key, val in stats.items():
        print(f"  {key:<16} {val:.3f}" if isinstance(val, float) else
              f"  {key:<16} {val}")

    bound = analytic_lower_bound(topo, DUTY_RATIO)
    print(f"\nanalytic per-packet delay lower bound at {DUTY_RATIO:.0%} duty: "
          f"{bound:.0f} slots")

    print(f"\ndisseminating a {N_PACKETS}-packet image:")
    for proto in ("opt", "dbao", "of"):
        summary = run_experiment(
            topo,
            ExperimentSpec(
                protocol=proto,
                duty_ratio=DUTY_RATIO,
                n_packets=N_PACKETS,
                seed=SEED,
            ),
        )
        curve = summary.per_packet_delay()
        knee = knee_index(curve)
        makespan = summary.results[0].metrics.delays.makespan()
        print(f"\n  {proto}: avg delay {summary.mean_delay():.0f} slots, "
              f"makespan {makespan} slots, "
              f"failures {summary.mean_failures():.0f}")
        print(f"    per-packet delay  {sparkline(curve)}")
        if knee is not None:
            print(f"    blocking saturates around packet #{knee} "
                  f"(Corollary 1's bounded window)")


if __name__ == "__main__":
    main()
