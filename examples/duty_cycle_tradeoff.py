#!/usr/bin/env python
"""Configuring the duty cycle: lifetime vs flooding delay.

The paper's closing message is that an extremely low duty cycle is NOT
always beneficial: lifetime grows only linearly while delay deteriorates
much faster. Its future work asks for an instrument that picks the duty
cycle maximizing the overall networking gain — this example *is* that
instrument (see ``repro.core.tradeoff``), applied to the GreenOrbs trace:

1. sweep duty ratios, tabulating analytic lifetime and predicted delay;
2. locate the gain-maximizing duty cycle;
3. sanity-check the analytic prediction against a short simulated flood
   at the chosen and at an extreme duty cycle.

Run: ``python examples/duty_cycle_tradeoff.py``
"""

import numpy as np

from repro import ExperimentSpec, run_experiment
from repro.core import gain_curve, optimal_duty_cycle
from repro.net import synthesize_greenorbs
from repro.protocols import recommended_configuration

SEED = 2011
DUTIES = (0.01, 0.02, 0.03, 0.05, 0.08, 0.10, 0.15, 0.20, 0.30, 0.50)


def main() -> None:
    topo = synthesize_greenorbs(seed=SEED)
    k = topo.mean_k_class()
    print(f"trace effective k-class (mean expected transmissions/link): {k:.2f}\n")

    print(f"{'duty':>6} {'period':>7} {'lifetime':>14} {'pred. delay':>12} {'gain':>8}")
    points = gain_curve(DUTIES, topo.n_sensors, k)
    for pt in points:
        print(f"{pt.duty_ratio:>6.0%} {pt.period:>7} {pt.lifetime:>14.3e} "
              f"{pt.delay:>12.0f} {pt.gain:>8.3f}")

    best = recommended_configuration(topo)
    print(f"\ngain-maximizing configuration: duty {best.duty_ratio:.1%} "
          f"(period T = {best.period} slots), gain {best.gain:.3f}")
    print("note the interior maximum — going lower than this *loses* overall "
          "benefit,\nwhich is the paper's 'not always beneficial' conclusion, "
          "quantified.\n")

    # Simulated cross-check: measured DBAO delay at the optimum vs at 1%.
    for duty in (best.duty_ratio, 0.01):
        summary = run_experiment(
            topo,
            ExperimentSpec(
                protocol="dbao", duty_ratio=duty, n_packets=5, seed=SEED
            ),
        )
        print(f"simulated DBAO at {duty:.1%} duty: "
              f"avg delay {summary.mean_delay():.0f} slots "
              f"(lifetime scale ~{1/duty:.0f}x the always-on baseline)")


if __name__ == "__main__":
    main()
