"""Seeded multi-run experiment runner.

The Sec. V experiments sweep duty cycles and protocols over a fixed
topology, with several replications per configuration. The runner
standardizes that: one :class:`ExperimentSpec` per configuration, paired
random streams across protocols (same schedules and loss draws for every
protocol at the same replication index), and summary aggregation.

Every entry point normalizes its inputs to
:class:`~repro.scenario.Scenario` — the serializable scenario layer —
so one task function (:func:`_scenario_task`) serves direct
:class:`ExperimentSpec` calls, declarative grids and scenario files
alike. Execution is pluggable: work decomposes into independent
:func:`run_replication` tasks mapped through an optional
:class:`repro.exec.Executor` (serial by default, warm process-pool
parallel on request). Task payloads are ``(scenario_index, rep)`` pairs
— the fixed topology and the scenario table broadcast once per
dispatch, the topology zero-copy via shared memory. Each task derives
its schedule/channel/dynamics/jitter streams from ``(seed, rep)`` alone
and shares no RNG state, so serial and parallel backends produce
**bit-identical** results. An optional :class:`repro.exec.ResultStore`
memoizes whole :class:`RunSummary` payloads by content (scenario
fingerprint + topology fingerprint + engine version), with whole grids
probed and recorded in one batched ``get_many``/``put_many`` round
trip.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..net.packet import FloodWorkload
from ..net.schedule import ScheduleTable
from ..net.topology import Topology
from ..protocols.base import make_protocol
from ..scenario import Scenario, as_scenario, build_topology
from .arena import global_arena
from .batch import run_flood_batch, supports_rep_batching
from .engine import FloodResult, SimConfig, run_flood
from .rng import RngStreams, derive_seed

__all__ = ["ExperimentSpec", "RunSummary", "run_replication",
           "run_replication_chunk", "run_replication_stack",
           "scenario_rep_batchable", "scenario_stack_key",
           "run_experiment", "run_experiments", "run_scenarios",
           "load_scenario_summaries", "MissingResults",
           "run_protocol_sweep"]

#: Widest replication chunk the auto policy hands one task — wide enough
#: to amortize per-slot dispatch across the batch (with every protocol
#: batch-native, the engine's per-slot cost is shared by the whole
#: stack), narrow enough that the (R, M, n) state stacks stay
#: cache-friendly.
_MAX_AUTO_REPS_PER_TASK = 128


@dataclass(frozen=True)
class ExperimentSpec:
    """One simulation configuration.

    ``protocol_kwargs`` are forwarded to the protocol constructor;
    ``sim_config`` overrides engine defaults (OPT automatically gets its
    collision-free radio unless a radio is forced).
    """

    protocol: str
    duty_ratio: float
    n_packets: int
    seed: int = 0
    n_replications: int = 1
    coverage_target: float = 0.99
    generation_interval: int = 0
    protocol_kwargs: Dict = field(default_factory=dict)
    sim_config: Optional[SimConfig] = None
    measure_transmission_delay: bool = False

    def __post_init__(self):
        if not (0.0 < self.duty_ratio <= 1.0):
            raise ValueError(f"duty ratio must be in (0, 1], got {self.duty_ratio}")
        if self.n_packets < 1:
            raise ValueError("need at least one packet")
        if self.n_replications < 1:
            raise ValueError("need at least one replication")


@dataclass
class RunSummary:
    """Aggregated results of one spec's replications."""

    spec: ExperimentSpec
    results: List[FloodResult]

    @property
    def n_runs(self) -> int:
        return len(self.results)

    def mean_delay(self) -> float:
        """Average per-packet flooding delay across replications."""
        vals = [r.metrics.average_delay() for r in self.results]
        vals = [v for v in vals if np.isfinite(v)]
        return float(np.mean(vals)) if vals else float("nan")

    def delay_ci(self, confidence: float = 0.95):
        """Student-t confidence interval of the mean delay.

        Returns an :class:`~repro.analysis.stats.MeanCI`; degenerates to
        a point for single-replication runs.
        """
        from ..analysis.stats import mean_ci

        vals = [r.metrics.average_delay() for r in self.results]
        return mean_ci(vals, confidence)

    def per_replication_delays(self) -> np.ndarray:
        """Raw per-replication mean delays (for paired comparisons)."""
        return np.asarray(
            [r.metrics.average_delay() for r in self.results],
            dtype=np.float64,
        )

    def mean_failures(self) -> float:
        return float(np.mean([r.metrics.tx_failures for r in self.results]))

    def mean_collisions(self) -> float:
        return float(np.mean([r.metrics.collisions for r in self.results]))

    def mean_tx_attempts(self) -> float:
        return float(np.mean([r.metrics.tx_attempts for r in self.results]))

    def completion_rate(self) -> float:
        """Fraction of replications in which every packet hit coverage."""
        return float(np.mean([r.completed for r in self.results]))

    def per_packet_delay(self) -> np.ndarray:
        """Replication-averaged per-packet delay curve (Fig. 9 series)."""
        curves = []
        for r in self.results:
            d = r.metrics.delays.total_delay().astype(np.float64)
            d[d < 0] = np.nan
            curves.append(d)
        with np.errstate(invalid="ignore"):
            return np.nanmean(np.vstack(curves), axis=0)

    def per_packet_transmission_delay(self) -> Optional[np.ndarray]:
        """Replication-averaged queueing-free delay curve (if measured)."""
        curves = []
        for r in self.results:
            td = r.metrics.transmission_delay
            if td is None:
                return None
            d = td.astype(np.float64)
            d[d < 0] = np.nan
            curves.append(d)
        with np.errstate(invalid="ignore"):
            return np.nanmean(np.vstack(curves), axis=0)


def run_replication(topo: Topology, spec, rep: int) -> FloodResult:
    """Run one replication of ``spec`` — the unit of parallel work.

    ``spec`` may be a :class:`~repro.scenario.Scenario`, an
    :class:`ExperimentSpec`, or a plain dict; everything normalizes
    through :func:`~repro.scenario.as_scenario`. Streams are derived
    from ``(seed, rep)`` only (the name-keyed :class:`RngStreams`
    derivation is order-independent), so a task is a pure function of
    its arguments: dispatching replications across processes, in any
    order, reproduces the serial trajectory bit for bit.
    """
    scenario = as_scenario(spec)
    config = scenario.sim_config()
    period = scenario.period
    streams = RngStreams(scenario.seed)
    schedule_rng = streams.get(f"schedule/{rep}")
    channel_rng = streams.get(f"channel/{rep}")
    if scenario.wake_slots == 1:
        schedules = ScheduleTable.random(topo.n_nodes, period, schedule_rng)
    else:
        from ..net.multislot import MultiSlotScheduleTable

        schedules = MultiSlotScheduleTable.random(
            topo.n_nodes, period, scenario.wake_slots, schedule_rng
        )
    true_schedules = None
    if scenario.schedule_jitter > 0.0:
        from ..net.sync import JitteredSchedules

        jitter_seed = int(
            derive_seed(scenario.seed, f"jitter/{rep}").generate_state(1)[0]
        )
        true_schedules = JitteredSchedules(
            schedules, scenario.schedule_jitter, jitter_seed
        )
    dynamics = scenario.make_dynamics(topo, streams.get(f"dynamics/{rep}"))
    workload = FloodWorkload(scenario.n_packets, scenario.generation_interval)
    protocol = make_protocol(scenario.protocol, **scenario.protocol_kwargs)
    return run_flood(
        topo,
        schedules,
        workload,
        protocol,
        channel_rng,
        config,
        measure_transmission_delay=scenario.measure_transmission_delay,
        dynamics=dynamics,
        true_schedules=true_schedules,
        link=scenario.make_link_model(),
    )


#: Memo for :func:`scenario_rep_batchable`: batchability depends only on
#: the protocol (name + constructor kwargs) and the event-log switch, so
#: grid sweeps — thousands of cells over a handful of protocols — skip
#: the throwaway protocol construction after the first probe per key.
_BATCHABLE_CACHE: Dict[Tuple, bool] = {}
_BATCHABLE_CACHE_CAP = 4096


def scenario_rep_batchable(scenario) -> bool:
    """Whether a scenario's replications can share one batched engine run.

    The batched path covers the paper's core configuration: one wake
    slot per period, no clock skew, no Fig. 9 probe floods, and a
    protocol whose proposal logic batches over the replication axis
    (:meth:`~repro.protocols.base.FloodingProtocol.rep_batchable`).
    Everything else falls back to replication-by-replication
    :func:`run_replication` — same results, serial throughput.

    The verdict is memoized per ``(protocol, protocol_kwargs,
    track_events)`` — the only inputs it depends on.
    """
    scenario = as_scenario(scenario)
    if (
        scenario.wake_slots != 1
        or scenario.schedule_jitter > 0.0
        or scenario.measure_transmission_delay
    ):
        return False
    config = scenario.sim_config()
    key: Optional[Tuple]
    key = (scenario.protocol,
           tuple(sorted(scenario.protocol_kwargs.items())),
           bool(config.track_events))
    try:
        hit = _BATCHABLE_CACHE.get(key)
    except TypeError:  # unhashable kwargs value: probe directly
        key, hit = None, None
    if hit is not None:
        return hit
    protocol = make_protocol(scenario.protocol, **scenario.protocol_kwargs)
    out = supports_rep_batching(protocol, config)
    if key is not None and len(_BATCHABLE_CACHE) < _BATCHABLE_CACHE_CAP:
        _BATCHABLE_CACHE[key] = out
    return out


def scenario_stack_key(scenario) -> Optional[str]:
    """Grouping key for cross-cell replication stacking, or ``None``.

    Two scenarios with the same key can run their replications in one
    stacked ``(R_total, …)`` engine batch: they share the substrate
    contract, protocol (with kwargs), packet count and engine
    configuration, and differ only in the axes the batched engine
    carries per replication — duty ratio (wake period), seed (schedule /
    channel / dynamics streams) and generation interval (workload).
    Non-batchable scenarios return ``None`` and never stack.
    """
    scenario = as_scenario(scenario)
    if not scenario_rep_batchable(scenario):
        return None
    return replace(
        scenario, duty_ratio=1.0, seed=0, n_replications=1,
        generation_interval=0,
    ).fingerprint()


def run_replication_chunk(
    topo: Topology, spec, rep_start: int, n_reps: int, profiler=None
) -> List[FloodResult]:
    """Run replications ``rep_start .. rep_start + n_reps - 1`` of ``spec``.

    The chunked unit of parallel work behind ``--reps-per-task``: when
    the scenario is replication-batchable (see
    :func:`scenario_rep_batchable`), all ``n_reps`` floods run as one
    ``(R, …)`` :func:`~repro.sim.batch.run_flood_batch` invocation —
    against the process-global scratch arena, so consecutive chunks
    reuse warm buffers; otherwise the chunk degrades to a loop of
    :func:`run_replication` calls. Either way each replication's streams
    are derived from ``(seed, rep)`` exactly as the single-replication
    task derives them, so results are bit-identical to
    ``[run_replication(topo, spec, rep) for rep in ...]`` regardless of
    chunking or backend.

    ``profiler`` (an optional
    :class:`~repro.sim.observers.PhaseProfiler`) is threaded into the
    batched engine — the ``repro profile`` hook.
    """
    if n_reps < 1:
        raise ValueError(f"chunk must cover at least one replication, got {n_reps}")
    scenario = as_scenario(spec)
    reps = range(rep_start, rep_start + n_reps)
    if n_reps == 1 or not scenario_rep_batchable(scenario):
        return [run_replication(topo, scenario, rep) for rep in reps]
    config = scenario.sim_config()
    period = scenario.period
    streams = RngStreams(scenario.seed)
    schedules_list = [
        ScheduleTable.random(topo.n_nodes, period, streams.get(f"schedule/{rep}"))
        for rep in reps
    ]
    channel_rngs = [streams.get(f"channel/{rep}") for rep in reps]
    dynamics_list = [
        scenario.make_dynamics(topo, streams.get(f"dynamics/{rep}"))
        for rep in reps
    ]
    workload = FloodWorkload(scenario.n_packets, scenario.generation_interval)
    protocol = make_protocol(scenario.protocol, **scenario.protocol_kwargs)
    return run_flood_batch(
        topo, schedules_list, workload, protocol, channel_rngs, config,
        dynamics_list=dynamics_list, arena=global_arena(),
        profiler=profiler, link=scenario.make_link_model(),
    )


def run_replication_stack(
    topo: Topology, cells: Sequence[Tuple]
) -> List[List[FloodResult]]:
    """Run several scenarios' replication chunks as ONE batched engine call.

    ``cells`` is a sequence of ``(spec, rep_start, n_reps)`` triples
    whose scenarios share a :func:`scenario_stack_key` — same substrate
    contract, protocol and engine configuration, differing only in the
    per-replication axes (duty ratio, seed, generation interval). Their
    replications concatenate into one ``(R_total, …)``
    :func:`~repro.sim.batch.run_flood_batch` invocation with
    per-replication schedule, stream and workload rows: a whole Fig. 10
    duty column becomes a single engine run. Each cell's streams are
    derived from its own ``(seed, rep)`` exactly as
    :func:`run_replication_chunk` derives them, so every extracted
    replication is bit-identical to its standalone run.

    Returns one result list per cell, index-aligned with ``cells``.
    """
    if not cells:
        raise ValueError("stack must cover at least one cell")
    scenarios = [as_scenario(spec) for spec, _, _ in cells]
    base = scenarios[0]
    config = base.sim_config()
    schedules_list: List[ScheduleTable] = []
    channel_rngs = []
    dynamics_list = []
    workloads: List[FloodWorkload] = []
    splits: List[int] = []
    for scenario, (_, rep_start, n_reps) in zip(scenarios, cells):
        if n_reps < 1:
            raise ValueError(
                f"stack cell must cover at least one replication, got {n_reps}"
            )
        period = scenario.period
        streams = RngStreams(scenario.seed)
        workload = FloodWorkload(
            scenario.n_packets, scenario.generation_interval
        )
        for rep in range(rep_start, rep_start + n_reps):
            schedules_list.append(
                ScheduleTable.random(
                    topo.n_nodes, period, streams.get(f"schedule/{rep}")
                )
            )
            channel_rngs.append(streams.get(f"channel/{rep}"))
            dynamics_list.append(
                scenario.make_dynamics(topo, streams.get(f"dynamics/{rep}"))
            )
            workloads.append(workload)
        splits.append(n_reps)
    protocol = make_protocol(base.protocol, **base.protocol_kwargs)
    # The stack key folds ``mac``/``mac_kwargs`` in (they are part of the
    # fingerprint), so every stacked cell shares the base's link model.
    results = run_flood_batch(
        topo, schedules_list, workloads, protocol, channel_rngs, config,
        dynamics_list=dynamics_list, arena=global_arena(),
        link=base.make_link_model(),
    )
    out: List[List[FloodResult]] = []
    pos = 0
    for n_reps in splits:
        out.append(results[pos:pos + n_reps])
        pos += n_reps
    return out


def _scenario_task(topo: Topology, scenarios: Sequence[Scenario], task):
    """The one broadcast-style task adapter for
    :meth:`repro.exec.Executor.map`.

    The task payload is ``(scenario_index, rep)`` for a single
    replication, ``(scenario_index, rep_start, n_reps)`` for a
    replication chunk, or ``("stack", ((scenario_index, rep_start,
    n_reps), ...))`` for a cross-cell stack — the topology and the
    scenario table broadcast once per dispatch (the topology zero-copy
    via shared memory), so a Monte Carlo grid's per-task pickle cost is
    a couple of ints instead of megabytes of substrate. Scenarios are
    pure data, so this single adapter replaces the old per-call-shape
    task functions.
    """
    if task[0] == "stack":
        cells = [(scenarios[i], start, count) for i, start, count in task[1]]
        return run_replication_stack(topo, cells)
    if len(task) == 3:
        i, rep_start, n_reps = task
        return run_replication_chunk(topo, scenarios[i], rep_start, n_reps)
    i, rep = task
    return run_replication(topo, scenarios[i], rep)


def _auto_reps_per_task(n_reps: int, jobs: int) -> int:
    """Default chunk width for a batchable scenario.

    Wide chunks amortize the batched engine's per-slot dispatch, but a
    parallel backend still needs at least one chunk per worker to keep
    the pool busy — so the width is capped at ``ceil(n_reps / jobs)``.
    """
    if n_reps <= 1:
        return 1
    width = min(_MAX_AUTO_REPS_PER_TASK, n_reps)
    if jobs > 1:
        width = min(width, max(1, math.ceil(n_reps / jobs)))
    return width


def run_experiment(
    topo: Topology,
    spec: ExperimentSpec,
    executor=None,
    store=None,
    reps_per_task: Optional[int] = None,
) -> RunSummary:
    """Run one spec's replications on a fixed topology.

    Stream pairing: schedules and channel draws are derived from
    ``(seed, replication)`` only — two specs differing in the protocol see
    identical wake patterns and loss randomness, so protocol comparisons
    are paired.

    Parameters
    ----------
    executor:
        Optional :class:`repro.exec.Executor` the per-replication tasks
        are mapped through; ``None`` runs them inline (serial).
    store:
        Optional :class:`repro.exec.ResultStore`; when supplied, a
        summary cached under this ``(spec, topo, engine)`` content key
        is returned without simulating, and fresh summaries are
        recorded.
    reps_per_task:
        Replications per dispatched task (see :func:`run_experiments`).
    """
    (summary,) = run_experiments(
        topo, [spec], executor=executor, store=store,
        reps_per_task=reps_per_task,
    )
    return summary


def run_experiments(
    topo: Topology,
    specs: Sequence[ExperimentSpec],
    executor=None,
    store=None,
    reps_per_task: Optional[int] = None,
) -> List[RunSummary]:
    """Run many specs' replications through one executor dispatch.

    The workhorse behind :func:`run_experiment`,
    :func:`run_protocol_sweep` and :func:`repro.analysis.sweep.sweep`:
    store-cached specs are answered immediately, every remaining
    replication across *all* specs is flattened into a single
    ``executor.map`` call (so a parallel backend sees the whole grid at
    once, not one spec at a time), and results are regrouped per spec.

    ``reps_per_task`` controls how many replications ride in one task.
    ``None`` (auto) chunks replication-batchable scenarios up to
    ``min(128, ceil(n_reps / jobs))`` wide — each chunk runs as one
    ``(R, …)`` batched engine invocation — and keeps one-replication
    tasks for everything else. An explicit value forces that chunk
    width for every scenario (non-batchable ones loop serially inside
    the task); ``1`` restores per-replication dispatch.

    Batchable scenarios sharing a :func:`scenario_stack_key` (same
    protocol and engine configuration, differing only in duty ratio,
    seed or generation interval) additionally *stack*: their
    replication streams concatenate and chunks may span cell
    boundaries, so a whole duty column dispatches as a handful of
    ``("stack", …)`` tasks — one engine invocation each — instead of
    one task per cell. Chunking and stacking are execution policy: they
    never change results, only throughput, so they are deliberately
    *not* part of the scenario fingerprint.
    """
    scenarios = tuple(as_scenario(spec) for spec in specs)
    if reps_per_task is not None and reps_per_task < 1:
        raise ValueError(f"reps_per_task must be >= 1, got {reps_per_task}")
    keys: List[Optional[str]] = [None] * len(specs)
    summaries: List[Optional[RunSummary]] = [None] * len(specs)
    if store is not None:
        keys = [store.key_for(topo, scenario) for scenario in scenarios]
        cached = store.get_many(keys)
        summaries = [cached.get(key) for key in keys]

    jobs = getattr(executor, "jobs", 1) if executor is not None else 1
    tasks: List[Tuple] = []
    widths: List[int] = []

    # Cross-cell stacking: pending batchable scenarios group by stack
    # key; each group's replications form one concatenated stream, cut
    # into width-bounded chunks that may span cell boundaries. Fallback
    # scenarios (key None) keep per-replication tasks.
    stack_groups: Dict[str, List[int]] = {}
    for i, scenario in enumerate(scenarios):
        if summaries[i] is not None:
            continue
        skey = scenario_stack_key(scenario)
        if skey is None or (reps_per_task is not None and reps_per_task == 1):
            if reps_per_task is not None and reps_per_task > 1:
                # Forced chunking of a non-batchable scenario: the task
                # loops run_replication serially inside.
                n_reps = scenario.n_replications
                width = min(reps_per_task, n_reps)
                for start in range(0, n_reps, width):
                    count = min(width, n_reps - start)
                    tasks.append((i, start, count))
                    widths.append(count)
            else:
                n_reps = scenario.n_replications
                tasks.extend((i, rep) for rep in range(n_reps))
                widths.extend([1] * n_reps)
            continue
        stack_groups.setdefault(skey, []).append(i)

    for indices in stack_groups.values():
        total = sum(scenarios[i].n_replications for i in indices)
        if reps_per_task is not None:
            width = min(reps_per_task, total)
        else:
            width = _auto_reps_per_task(total, jobs)
        chunk: List[Tuple[int, int, int]] = []
        room = width
        for i in indices:
            n_reps = scenarios[i].n_replications
            start = 0
            while start < n_reps:
                take = min(room, n_reps - start)
                chunk.append((i, start, take))
                start += take
                room -= take
                if room == 0:
                    tasks.append(chunk[0] if len(chunk) == 1
                                 else ("stack", tuple(chunk)))
                    widths.append(width)
                    chunk, room = [], width
        if chunk:
            tail = sum(c[2] for c in chunk)
            tasks.append(chunk[0] if len(chunk) == 1
                         else ("stack", tuple(chunk)))
            widths.append(tail)

    if tasks:
        if executor is None:
            results = [_scenario_task(topo, scenarios, task)
                       for task in tasks]
        else:
            arena0 = global_arena().counters()
            results = executor.map(
                _scenario_task, tasks, broadcast=(topo, scenarios)
            )
            # Dispatch metering: stacked tasks + the cells they merged,
            # and the global arena's borrow/grow deltas (meaningful for
            # in-process backends; pool workers keep their own arenas).
            n_stacks = sum(1 for task in tasks if task[0] == "stack")
            n_cells = sum(len(task[1]) for task in tasks
                          if task[0] == "stack")
            arena1 = global_arena().counters()
            for stats in (executor.stats, executor.last):
                if stats is None:
                    continue
                stats.note_rep_batches(widths)
                if n_stacks:
                    stats.note_stacks(n_stacks, n_cells)
                stats.note_arena(
                    arena1[0] - arena0[0], arena1[1] - arena0[1]
                )
        grouped: Dict[int, List[FloodResult]] = {}
        for task, result in zip(tasks, results):
            if task[0] == "stack":
                for (i, _, _), cell_results in zip(task[1], result):
                    grouped.setdefault(i, []).extend(cell_results)
            elif len(task) == 3:
                grouped.setdefault(task[0], []).extend(result)
            else:
                grouped.setdefault(task[0], []).append(result)
        fresh: Dict[str, RunSummary] = {}
        for i, flood_results in grouped.items():
            # The summary keeps the *caller's* spec object (ExperimentSpec
            # or Scenario) so downstream equality checks see what was
            # passed in; only keys and task payloads use the normalized
            # scenarios.
            summaries[i] = RunSummary(spec=specs[i], results=flood_results)
            if store is not None:
                fresh[keys[i]] = summaries[i]
        if store is not None:
            store.put_many(fresh)
    return summaries  # type: ignore[return-value]


def run_scenarios(
    scenarios: Sequence,
    executor=None,
    store=None,
    topo: Optional[Topology] = None,
    reps_per_task: Optional[int] = None,
) -> List[RunSummary]:
    """Run self-contained scenarios: topologies come from the specs.

    The scenario-file entry point (``repro run-scenario``). Each
    scenario names its substrate through its ``topology``
    :class:`~repro.scenario.TopologySpec` (or inherits ``topo`` when it
    doesn't); scenarios sharing a substrate are grouped into one
    :func:`run_experiments` dispatch per distinct topology, so the warm
    pool sees whole grids and each topology is broadcast once. Results
    come back in input order.
    """
    scenarios = [as_scenario(s) for s in scenarios]
    groups: Dict[str, Tuple[Topology, List[int]]] = {}
    for i, scenario in enumerate(scenarios):
        if scenario.topology is not None:
            t = build_topology(scenario.topology)
        elif topo is not None:
            t = topo
        else:
            raise ValueError(
                f"scenario #{i} names no topology and no default was given"
            )
        groups.setdefault(t.fingerprint(), (t, []))[1].append(i)

    summaries: List[Optional[RunSummary]] = [None] * len(scenarios)
    for t, indices in groups.values():
        batch = run_experiments(
            t, [scenarios[i] for i in indices], executor=executor,
            store=store, reps_per_task=reps_per_task,
        )
        for i, summary in zip(indices, batch):
            summaries[i] = summary
    return summaries  # type: ignore[return-value]


class MissingResults(LookupError):
    """A store-only load found cells with no stored result.

    Raised by :func:`load_scenario_summaries`; ``missing`` holds
    ``(index, scenario)`` pairs for every absent cell so callers can say
    exactly which shard still has to run.
    """

    def __init__(self, missing):
        self.missing = list(missing)
        cells = ", ".join(
            f"#{i} {s.fingerprint()[:16]}" for i, s in self.missing[:5]
        )
        more = f" (+{len(self.missing) - 5} more)" if len(self.missing) > 5 \
            else ""
        super().__init__(
            f"{len(self.missing)} cell(s) have no stored result: "
            f"{cells}{more} — run the missing shard(s) first, or merge "
            f"their stores into this cache directory"
        )


def load_scenario_summaries(
    scenarios: Sequence,
    store,
    topo: Optional[Topology] = None,
) -> List[RunSummary]:
    """Answer scenarios purely from a :class:`~repro.exec.ResultStore`.

    The reporting half of the sharded-execution story
    (``repro report``): never simulates, never needs an executor — it
    resolves each scenario's topology exactly like :func:`run_scenarios`
    (so content keys match the ones the run stamped), batches
    ``get_many`` per substrate, and raises :class:`MissingResults`
    naming every absent cell. On a store produced by ``repro store
    merge`` over k shard runs, this returns summaries bit-identical to
    the unsharded run's (the entries *are* the shard runs' pickles).
    """
    scenarios = [as_scenario(s) for s in scenarios]
    groups: Dict[str, Tuple[Topology, List[int]]] = {}
    for i, scenario in enumerate(scenarios):
        if scenario.topology is not None:
            t = build_topology(scenario.topology)
        elif topo is not None:
            t = topo
        else:
            raise ValueError(
                f"scenario #{i} names no topology and no default was given"
            )
        groups.setdefault(t.fingerprint(), (t, []))[1].append(i)

    summaries: List[Optional[RunSummary]] = [None] * len(scenarios)
    for t, indices in groups.values():
        keys = [store.key_for(t, scenarios[i]) for i in indices]
        cached = store.get_many(keys)
        for i, key in zip(indices, keys):
            summaries[i] = cached.get(key)
    missing = [(i, scenarios[i]) for i, s in enumerate(summaries)
               if s is None]
    if missing:
        raise MissingResults(missing)
    return summaries  # type: ignore[return-value]


def run_protocol_sweep(
    topo: Topology,
    protocols: Sequence[str],
    duty_ratios: Sequence[float],
    n_packets: int,
    seed: int = 0,
    n_replications: int = 1,
    coverage_target: float = 0.99,
    protocol_kwargs: Optional[Dict[str, Dict]] = None,
    measure_transmission_delay: bool = False,
    executor=None,
    store=None,
    reps_per_task: Optional[int] = None,
) -> Dict[str, Dict[float, RunSummary]]:
    """The Fig. 10/11 grid: protocols x duty ratios on one topology.

    The whole grid (every protocol, duty ratio and replication) is
    flattened into one executor dispatch — see :func:`run_experiments`.
    """
    protocol_kwargs = protocol_kwargs or {}
    specs = [
        ExperimentSpec(
            protocol=proto,
            duty_ratio=duty,
            n_packets=n_packets,
            seed=seed,
            n_replications=n_replications,
            coverage_target=coverage_target,
            protocol_kwargs=protocol_kwargs.get(proto, {}),
            measure_transmission_delay=measure_transmission_delay,
        )
        for proto in protocols
        for duty in duty_ratios
    ]
    summaries = run_experiments(
        topo, specs, executor=executor, store=store,
        reps_per_task=reps_per_task,
    )
    out: Dict[str, Dict[float, RunSummary]] = {p: {} for p in protocols}
    for spec, summary in zip(specs, summaries):
        out[spec.protocol][spec.duty_ratio] = summary
    return out
