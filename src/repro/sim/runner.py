"""Seeded multi-run experiment runner.

The Sec. V experiments sweep duty cycles and protocols over a fixed
topology, with several replications per configuration. The runner
standardizes that: one :class:`ExperimentSpec` per configuration, paired
random streams across protocols (same schedules and loss draws for every
protocol at the same replication index), and summary aggregation.

Every entry point normalizes its inputs to
:class:`~repro.scenario.Scenario` — the serializable scenario layer —
so one task function (:func:`_scenario_task`) serves direct
:class:`ExperimentSpec` calls, declarative grids and scenario files
alike. Execution is pluggable: work decomposes into independent
:func:`run_replication` tasks mapped through an optional
:class:`repro.exec.Executor` (serial by default, warm process-pool
parallel on request). Task payloads are ``(scenario_index, rep)`` pairs
— the fixed topology and the scenario table broadcast once per
dispatch, the topology zero-copy via shared memory. Each task derives
its schedule/channel/dynamics/jitter streams from ``(seed, rep)`` alone
and shares no RNG state, so serial and parallel backends produce
**bit-identical** results. An optional :class:`repro.exec.ResultStore`
memoizes whole :class:`RunSummary` payloads by content (scenario
fingerprint + topology fingerprint + engine version), with whole grids
probed and recorded in one batched ``get_many``/``put_many`` round
trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..net.packet import FloodWorkload
from ..net.schedule import ScheduleTable
from ..net.topology import Topology
from ..protocols.base import make_protocol
from ..scenario import Scenario, as_scenario, build_topology
from .engine import FloodResult, SimConfig, run_flood
from .rng import RngStreams, derive_seed

__all__ = ["ExperimentSpec", "RunSummary", "run_replication",
           "run_experiment", "run_experiments", "run_scenarios",
           "run_protocol_sweep"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One simulation configuration.

    ``protocol_kwargs`` are forwarded to the protocol constructor;
    ``sim_config`` overrides engine defaults (OPT automatically gets its
    collision-free radio unless a radio is forced).
    """

    protocol: str
    duty_ratio: float
    n_packets: int
    seed: int = 0
    n_replications: int = 1
    coverage_target: float = 0.99
    generation_interval: int = 0
    protocol_kwargs: Dict = field(default_factory=dict)
    sim_config: Optional[SimConfig] = None
    measure_transmission_delay: bool = False

    def __post_init__(self):
        if not (0.0 < self.duty_ratio <= 1.0):
            raise ValueError(f"duty ratio must be in (0, 1], got {self.duty_ratio}")
        if self.n_packets < 1:
            raise ValueError("need at least one packet")
        if self.n_replications < 1:
            raise ValueError("need at least one replication")


@dataclass
class RunSummary:
    """Aggregated results of one spec's replications."""

    spec: ExperimentSpec
    results: List[FloodResult]

    @property
    def n_runs(self) -> int:
        return len(self.results)

    def mean_delay(self) -> float:
        """Average per-packet flooding delay across replications."""
        vals = [r.metrics.average_delay() for r in self.results]
        vals = [v for v in vals if np.isfinite(v)]
        return float(np.mean(vals)) if vals else float("nan")

    def delay_ci(self, confidence: float = 0.95):
        """Student-t confidence interval of the mean delay.

        Returns an :class:`~repro.analysis.stats.MeanCI`; degenerates to
        a point for single-replication runs.
        """
        from ..analysis.stats import mean_ci

        vals = [r.metrics.average_delay() for r in self.results]
        return mean_ci(vals, confidence)

    def per_replication_delays(self) -> np.ndarray:
        """Raw per-replication mean delays (for paired comparisons)."""
        return np.asarray(
            [r.metrics.average_delay() for r in self.results],
            dtype=np.float64,
        )

    def mean_failures(self) -> float:
        return float(np.mean([r.metrics.tx_failures for r in self.results]))

    def mean_collisions(self) -> float:
        return float(np.mean([r.metrics.collisions for r in self.results]))

    def mean_tx_attempts(self) -> float:
        return float(np.mean([r.metrics.tx_attempts for r in self.results]))

    def completion_rate(self) -> float:
        """Fraction of replications in which every packet hit coverage."""
        return float(np.mean([r.completed for r in self.results]))

    def per_packet_delay(self) -> np.ndarray:
        """Replication-averaged per-packet delay curve (Fig. 9 series)."""
        curves = []
        for r in self.results:
            d = r.metrics.delays.total_delay().astype(np.float64)
            d[d < 0] = np.nan
            curves.append(d)
        with np.errstate(invalid="ignore"):
            return np.nanmean(np.vstack(curves), axis=0)

    def per_packet_transmission_delay(self) -> Optional[np.ndarray]:
        """Replication-averaged queueing-free delay curve (if measured)."""
        curves = []
        for r in self.results:
            td = r.metrics.transmission_delay
            if td is None:
                return None
            d = td.astype(np.float64)
            d[d < 0] = np.nan
            curves.append(d)
        with np.errstate(invalid="ignore"):
            return np.nanmean(np.vstack(curves), axis=0)


def run_replication(topo: Topology, spec, rep: int) -> FloodResult:
    """Run one replication of ``spec`` — the unit of parallel work.

    ``spec`` may be a :class:`~repro.scenario.Scenario`, an
    :class:`ExperimentSpec`, or a plain dict; everything normalizes
    through :func:`~repro.scenario.as_scenario`. Streams are derived
    from ``(seed, rep)`` only (the name-keyed :class:`RngStreams`
    derivation is order-independent), so a task is a pure function of
    its arguments: dispatching replications across processes, in any
    order, reproduces the serial trajectory bit for bit.
    """
    scenario = as_scenario(spec)
    config = scenario.sim_config()
    period = scenario.period
    streams = RngStreams(scenario.seed)
    schedule_rng = streams.get(f"schedule/{rep}")
    channel_rng = streams.get(f"channel/{rep}")
    if scenario.wake_slots == 1:
        schedules = ScheduleTable.random(topo.n_nodes, period, schedule_rng)
    else:
        from ..net.multislot import MultiSlotScheduleTable

        schedules = MultiSlotScheduleTable.random(
            topo.n_nodes, period, scenario.wake_slots, schedule_rng
        )
    true_schedules = None
    if scenario.schedule_jitter > 0.0:
        from ..net.sync import JitteredSchedules

        jitter_seed = int(
            derive_seed(scenario.seed, f"jitter/{rep}").generate_state(1)[0]
        )
        true_schedules = JitteredSchedules(
            schedules, scenario.schedule_jitter, jitter_seed
        )
    dynamics = scenario.make_dynamics(topo, streams.get(f"dynamics/{rep}"))
    workload = FloodWorkload(scenario.n_packets, scenario.generation_interval)
    protocol = make_protocol(scenario.protocol, **scenario.protocol_kwargs)
    return run_flood(
        topo,
        schedules,
        workload,
        protocol,
        channel_rng,
        config,
        measure_transmission_delay=scenario.measure_transmission_delay,
        dynamics=dynamics,
        true_schedules=true_schedules,
    )


def _scenario_task(
    topo: Topology, scenarios: Sequence[Scenario], task: Tuple[int, int]
) -> FloodResult:
    """The one broadcast-style task adapter for
    :meth:`repro.exec.Executor.map`.

    The task payload is just ``(scenario_index, rep)`` — the topology
    and the scenario table broadcast once per dispatch (the topology
    zero-copy via shared memory), so a Monte Carlo grid's per-task
    pickle cost is a couple of ints instead of megabytes of substrate.
    Scenarios are pure data, so this single adapter replaces the old
    per-call-shape task functions.
    """
    i, rep = task
    return run_replication(topo, scenarios[i], rep)


def run_experiment(
    topo: Topology,
    spec: ExperimentSpec,
    executor=None,
    store=None,
) -> RunSummary:
    """Run one spec's replications on a fixed topology.

    Stream pairing: schedules and channel draws are derived from
    ``(seed, replication)`` only — two specs differing in the protocol see
    identical wake patterns and loss randomness, so protocol comparisons
    are paired.

    Parameters
    ----------
    executor:
        Optional :class:`repro.exec.Executor` the per-replication tasks
        are mapped through; ``None`` runs them inline (serial).
    store:
        Optional :class:`repro.exec.ResultStore`; when supplied, a
        summary cached under this ``(spec, topo, engine)`` content key
        is returned without simulating, and fresh summaries are
        recorded.
    """
    (summary,) = run_experiments(topo, [spec], executor=executor, store=store)
    return summary


def run_experiments(
    topo: Topology,
    specs: Sequence[ExperimentSpec],
    executor=None,
    store=None,
) -> List[RunSummary]:
    """Run many specs' replications through one executor dispatch.

    The workhorse behind :func:`run_experiment`,
    :func:`run_protocol_sweep` and :func:`repro.analysis.sweep.sweep`:
    store-cached specs are answered immediately, every remaining
    ``(spec, rep)`` pair across *all* specs is flattened into a single
    ``executor.map`` call (so a parallel backend sees the whole grid at
    once, not one spec at a time), and results are regrouped per spec.
    """
    scenarios = tuple(as_scenario(spec) for spec in specs)
    keys: List[Optional[str]] = [None] * len(specs)
    summaries: List[Optional[RunSummary]] = [None] * len(specs)
    if store is not None:
        keys = [store.key_for(topo, scenario) for scenario in scenarios]
        cached = store.get_many(keys)
        summaries = [cached.get(key) for key in keys]

    tasks: List[Tuple[int, int]] = []
    for i, scenario in enumerate(scenarios):
        if summaries[i] is None:
            tasks.extend((i, rep) for rep in range(scenario.n_replications))

    if tasks:
        if executor is None:
            results = [run_replication(topo, scenarios[i], rep)
                       for i, rep in tasks]
        else:
            results = executor.map(
                _scenario_task, tasks, broadcast=(topo, scenarios)
            )
        grouped: Dict[int, List[FloodResult]] = {}
        for (owner, _rep), result in zip(tasks, results):
            grouped.setdefault(owner, []).append(result)
        fresh: Dict[str, RunSummary] = {}
        for i, flood_results in grouped.items():
            # The summary keeps the *caller's* spec object (ExperimentSpec
            # or Scenario) so downstream equality checks see what was
            # passed in; only keys and task payloads use the normalized
            # scenarios.
            summaries[i] = RunSummary(spec=specs[i], results=flood_results)
            if store is not None:
                fresh[keys[i]] = summaries[i]
        if store is not None:
            store.put_many(fresh)
    return summaries  # type: ignore[return-value]


def run_scenarios(
    scenarios: Sequence,
    executor=None,
    store=None,
    topo: Optional[Topology] = None,
) -> List[RunSummary]:
    """Run self-contained scenarios: topologies come from the specs.

    The scenario-file entry point (``repro run-scenario``). Each
    scenario names its substrate through its ``topology``
    :class:`~repro.scenario.TopologySpec` (or inherits ``topo`` when it
    doesn't); scenarios sharing a substrate are grouped into one
    :func:`run_experiments` dispatch per distinct topology, so the warm
    pool sees whole grids and each topology is broadcast once. Results
    come back in input order.
    """
    scenarios = [as_scenario(s) for s in scenarios]
    groups: Dict[str, Tuple[Topology, List[int]]] = {}
    for i, scenario in enumerate(scenarios):
        if scenario.topology is not None:
            t = build_topology(scenario.topology)
        elif topo is not None:
            t = topo
        else:
            raise ValueError(
                f"scenario #{i} names no topology and no default was given"
            )
        groups.setdefault(t.fingerprint(), (t, []))[1].append(i)

    summaries: List[Optional[RunSummary]] = [None] * len(scenarios)
    for t, indices in groups.values():
        batch = run_experiments(
            t, [scenarios[i] for i in indices], executor=executor, store=store
        )
        for i, summary in zip(indices, batch):
            summaries[i] = summary
    return summaries  # type: ignore[return-value]


def run_protocol_sweep(
    topo: Topology,
    protocols: Sequence[str],
    duty_ratios: Sequence[float],
    n_packets: int,
    seed: int = 0,
    n_replications: int = 1,
    coverage_target: float = 0.99,
    protocol_kwargs: Optional[Dict[str, Dict]] = None,
    measure_transmission_delay: bool = False,
    executor=None,
    store=None,
) -> Dict[str, Dict[float, RunSummary]]:
    """The Fig. 10/11 grid: protocols x duty ratios on one topology.

    The whole grid (every protocol, duty ratio and replication) is
    flattened into one executor dispatch — see :func:`run_experiments`.
    """
    protocol_kwargs = protocol_kwargs or {}
    specs = [
        ExperimentSpec(
            protocol=proto,
            duty_ratio=duty,
            n_packets=n_packets,
            seed=seed,
            n_replications=n_replications,
            coverage_target=coverage_target,
            protocol_kwargs=protocol_kwargs.get(proto, {}),
            measure_transmission_delay=measure_transmission_delay,
        )
        for proto in protocols
        for duty in duty_ratios
    ]
    summaries = run_experiments(topo, specs, executor=executor, store=store)
    out: Dict[str, Dict[float, RunSummary]] = {p: {} for p in protocols}
    for spec, summary in zip(specs, summaries):
        out[spec.protocol][spec.duty_ratio] = summary
    return out
