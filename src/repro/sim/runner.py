"""Seeded multi-run experiment runner.

The Sec. V experiments sweep duty cycles and protocols over a fixed
topology, with several replications per configuration. The runner
standardizes that: one :class:`ExperimentSpec` per configuration, paired
random streams across protocols (same schedules and loss draws for every
protocol at the same replication index), and summary aggregation.

Execution is pluggable: every entry point decomposes its work into
independent :func:`run_replication` tasks and maps them through an
optional :class:`repro.exec.Executor` (serial by default, warm
process-pool parallel on request). Task payloads are
``(spec_index, rep)`` pairs — the fixed topology and the spec table
broadcast once per dispatch, the topology zero-copy via shared memory.
Each task derives its schedule/channel streams from ``(seed, rep)``
alone and shares no RNG state, so serial and parallel backends produce
**bit-identical** results. An optional :class:`repro.exec.ResultStore`
memoizes whole :class:`RunSummary` payloads by content (spec + topology
fingerprint + engine version), with whole grids probed and recorded in
one batched ``get_many``/``put_many`` round trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..net.packet import FloodWorkload
from ..net.schedule import ScheduleTable, duty_ratio_to_period
from ..net.topology import Topology
from ..protocols.base import FloodingProtocol, make_protocol
from ..protocols.opt import opt_radio_model
from .engine import FloodResult, SimConfig, run_flood
from .rng import RngStreams

__all__ = ["ExperimentSpec", "RunSummary", "run_replication",
           "run_experiment", "run_experiments", "run_protocol_sweep"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One simulation configuration.

    ``protocol_kwargs`` are forwarded to the protocol constructor;
    ``sim_config`` overrides engine defaults (OPT automatically gets its
    collision-free radio unless a radio is forced).
    """

    protocol: str
    duty_ratio: float
    n_packets: int
    seed: int = 0
    n_replications: int = 1
    coverage_target: float = 0.99
    generation_interval: int = 0
    protocol_kwargs: Dict = field(default_factory=dict)
    sim_config: Optional[SimConfig] = None
    measure_transmission_delay: bool = False

    def __post_init__(self):
        if not (0.0 < self.duty_ratio <= 1.0):
            raise ValueError(f"duty ratio must be in (0, 1], got {self.duty_ratio}")
        if self.n_packets < 1:
            raise ValueError("need at least one packet")
        if self.n_replications < 1:
            raise ValueError("need at least one replication")


@dataclass
class RunSummary:
    """Aggregated results of one spec's replications."""

    spec: ExperimentSpec
    results: List[FloodResult]

    @property
    def n_runs(self) -> int:
        return len(self.results)

    def mean_delay(self) -> float:
        """Average per-packet flooding delay across replications."""
        vals = [r.metrics.average_delay() for r in self.results]
        vals = [v for v in vals if np.isfinite(v)]
        return float(np.mean(vals)) if vals else float("nan")

    def delay_ci(self, confidence: float = 0.95):
        """Student-t confidence interval of the mean delay.

        Returns an :class:`~repro.analysis.stats.MeanCI`; degenerates to
        a point for single-replication runs.
        """
        from ..analysis.stats import mean_ci

        vals = [r.metrics.average_delay() for r in self.results]
        return mean_ci(vals, confidence)

    def per_replication_delays(self) -> np.ndarray:
        """Raw per-replication mean delays (for paired comparisons)."""
        return np.asarray(
            [r.metrics.average_delay() for r in self.results],
            dtype=np.float64,
        )

    def mean_failures(self) -> float:
        return float(np.mean([r.metrics.tx_failures for r in self.results]))

    def mean_collisions(self) -> float:
        return float(np.mean([r.metrics.collisions for r in self.results]))

    def mean_tx_attempts(self) -> float:
        return float(np.mean([r.metrics.tx_attempts for r in self.results]))

    def completion_rate(self) -> float:
        """Fraction of replications in which every packet hit coverage."""
        return float(np.mean([r.completed for r in self.results]))

    def per_packet_delay(self) -> np.ndarray:
        """Replication-averaged per-packet delay curve (Fig. 9 series)."""
        curves = []
        for r in self.results:
            d = r.metrics.delays.total_delay().astype(np.float64)
            d[d < 0] = np.nan
            curves.append(d)
        with np.errstate(invalid="ignore"):
            return np.nanmean(np.vstack(curves), axis=0)

    def per_packet_transmission_delay(self) -> Optional[np.ndarray]:
        """Replication-averaged queueing-free delay curve (if measured)."""
        curves = []
        for r in self.results:
            td = r.metrics.transmission_delay
            if td is None:
                return None
            d = td.astype(np.float64)
            d[d < 0] = np.nan
            curves.append(d)
        with np.errstate(invalid="ignore"):
            return np.nanmean(np.vstack(curves), axis=0)


def _default_sim_config(spec: ExperimentSpec) -> SimConfig:
    if spec.sim_config is not None:
        return spec.sim_config
    if spec.protocol == "opt":
        # The oracle plays on a collision-free channel.
        return SimConfig(
            coverage_target=spec.coverage_target, radio=opt_radio_model()
        )
    if spec.protocol == "crosslayer":
        # The cross-layer sketch deliberately exploits data overhearing
        # (the paper's future-work direction 2: co-design opportunism
        # with the duty-cycle configuration).
        from ..net.radio import RadioModel

        return SimConfig(
            coverage_target=spec.coverage_target,
            radio=RadioModel(overhearing=True),
        )
    return SimConfig(coverage_target=spec.coverage_target)


def run_replication(topo: Topology, spec: ExperimentSpec, rep: int) -> FloodResult:
    """Run one replication of ``spec`` — the unit of parallel work.

    Streams are derived from ``(spec.seed, rep)`` only (the name-keyed
    :class:`RngStreams` derivation is order-independent), so a task is a
    pure function of its arguments: dispatching replications across
    processes, in any order, reproduces the serial trajectory bit for
    bit.
    """
    config = _default_sim_config(spec)
    period = duty_ratio_to_period(spec.duty_ratio)
    streams = RngStreams(spec.seed)
    schedule_rng = streams.get(f"schedule/{rep}")
    channel_rng = streams.get(f"channel/{rep}")
    schedules = ScheduleTable.random(topo.n_nodes, period, schedule_rng)
    workload = FloodWorkload(spec.n_packets, spec.generation_interval)
    protocol = make_protocol(spec.protocol, **spec.protocol_kwargs)
    return run_flood(
        topo,
        schedules,
        workload,
        protocol,
        channel_rng,
        config,
        measure_transmission_delay=spec.measure_transmission_delay,
    )


def _run_task(task: Tuple[Topology, ExperimentSpec, int]) -> FloodResult:
    """Self-contained task adapter: the topology rides in every tuple.

    Kept as the pre-broadcast dispatch shape (and as the benchmark
    baseline for it); the harness now dispatches :func:`_run_grid_task`
    tuples against a broadcast topology instead.
    """
    topo, spec, rep = task
    return run_replication(topo, spec, rep)


def _run_grid_task(
    topo: Topology, specs: Sequence[ExperimentSpec], task: Tuple[int, int]
) -> FloodResult:
    """Broadcast-style task adapter for :meth:`repro.exec.Executor.map`.

    The task payload is just ``(spec_index, rep)`` — the topology and
    the spec table broadcast once per dispatch (the topology zero-copy
    via shared memory), so a Monte Carlo grid's per-task pickle cost is
    a couple of ints instead of megabytes of substrate.
    """
    i, rep = task
    return run_replication(topo, specs[i], rep)


def run_experiment(
    topo: Topology,
    spec: ExperimentSpec,
    executor=None,
    store=None,
) -> RunSummary:
    """Run one spec's replications on a fixed topology.

    Stream pairing: schedules and channel draws are derived from
    ``(seed, replication)`` only — two specs differing in the protocol see
    identical wake patterns and loss randomness, so protocol comparisons
    are paired.

    Parameters
    ----------
    executor:
        Optional :class:`repro.exec.Executor` the per-replication tasks
        are mapped through; ``None`` runs them inline (serial).
    store:
        Optional :class:`repro.exec.ResultStore`; when supplied, a
        summary cached under this ``(spec, topo, engine)`` content key
        is returned without simulating, and fresh summaries are
        recorded.
    """
    (summary,) = run_experiments(topo, [spec], executor=executor, store=store)
    return summary


def run_experiments(
    topo: Topology,
    specs: Sequence[ExperimentSpec],
    executor=None,
    store=None,
) -> List[RunSummary]:
    """Run many specs' replications through one executor dispatch.

    The workhorse behind :func:`run_experiment`,
    :func:`run_protocol_sweep` and :func:`repro.analysis.sweep.sweep`:
    store-cached specs are answered immediately, every remaining
    ``(spec, rep)`` pair across *all* specs is flattened into a single
    ``executor.map`` call (so a parallel backend sees the whole grid at
    once, not one spec at a time), and results are regrouped per spec.
    """
    keys: List[Optional[str]] = [None] * len(specs)
    summaries: List[Optional[RunSummary]] = [None] * len(specs)
    if store is not None:
        keys = [store.key_for(topo, spec) for spec in specs]
        cached = store.get_many(keys)
        summaries = [cached.get(key) for key in keys]

    spec_table = tuple(specs)
    tasks: List[Tuple[int, int]] = []
    for i, spec in enumerate(specs):
        if summaries[i] is None:
            tasks.extend((i, rep) for rep in range(spec.n_replications))

    if tasks:
        if executor is None:
            results = [run_replication(topo, specs[i], rep)
                       for i, rep in tasks]
        else:
            results = executor.map(
                _run_grid_task, tasks, broadcast=(topo, spec_table)
            )
        grouped: Dict[int, List[FloodResult]] = {}
        for (owner, _rep), result in zip(tasks, results):
            grouped.setdefault(owner, []).append(result)
        fresh: Dict[str, RunSummary] = {}
        for i, flood_results in grouped.items():
            summaries[i] = RunSummary(spec=specs[i], results=flood_results)
            if store is not None:
                fresh[keys[i]] = summaries[i]
        if store is not None:
            store.put_many(fresh)
    return summaries  # type: ignore[return-value]


def run_protocol_sweep(
    topo: Topology,
    protocols: Sequence[str],
    duty_ratios: Sequence[float],
    n_packets: int,
    seed: int = 0,
    n_replications: int = 1,
    coverage_target: float = 0.99,
    protocol_kwargs: Optional[Dict[str, Dict]] = None,
    measure_transmission_delay: bool = False,
    executor=None,
    store=None,
) -> Dict[str, Dict[float, RunSummary]]:
    """The Fig. 10/11 grid: protocols x duty ratios on one topology.

    The whole grid (every protocol, duty ratio and replication) is
    flattened into one executor dispatch — see :func:`run_experiments`.
    """
    protocol_kwargs = protocol_kwargs or {}
    specs = [
        ExperimentSpec(
            protocol=proto,
            duty_ratio=duty,
            n_packets=n_packets,
            seed=seed,
            n_replications=n_replications,
            coverage_target=coverage_target,
            protocol_kwargs=protocol_kwargs.get(proto, {}),
            measure_transmission_delay=measure_transmission_delay,
        )
        for proto in protocols
        for duty in duty_ratios
    ]
    summaries = run_experiments(topo, specs, executor=executor, store=store)
    out: Dict[str, Dict[float, RunSummary]] = {p: {} for p in protocols}
    for spec, summary in zip(specs, summaries):
        out[spec.protocol][spec.duty_ratio] = summary
    return out
