"""Discrete-event (slot-stepped) simulation engine and instrumentation."""

from .clock import SlottedClock
from .energy import EnergyLedger, energy_summary
from .engine import FloodResult, SimConfig, run_flood, run_single_packet_floods
from .events import EventKind, EventLog, SimEvent
from .metrics import FloodCounters, FloodMetrics, PacketDelays, coverage_threshold
from .observers import (
    CounterObserver,
    EnergyObserver,
    EventLogObserver,
    SimObserver,
)
from .rng import RngStreams, derive_seed, spawn_generator
from .runner import (
    ExperimentSpec,
    RunSummary,
    run_experiment,
    run_experiments,
    run_protocol_sweep,
    run_replication,
    run_scenarios,
)

__all__ = [
    "SlottedClock",
    "EnergyLedger", "energy_summary",
    "FloodResult", "SimConfig", "run_flood", "run_single_packet_floods",
    "EventKind", "EventLog", "SimEvent",
    "FloodCounters", "FloodMetrics", "PacketDelays", "coverage_threshold",
    "SimObserver", "CounterObserver", "EnergyObserver", "EventLogObserver",
    "RngStreams", "derive_seed", "spawn_generator",
    "ExperimentSpec", "RunSummary", "run_experiment", "run_experiments",
    "run_protocol_sweep", "run_replication", "run_scenarios",
]
