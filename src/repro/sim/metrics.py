"""Flooding metrics (paper Sec. V-B measurement rules).

The paper measures the *flooding delay* of a packet as the time from when
it is pushed into the network until it reaches **99%** of the sensors —
the cut-off discounts the few sensors with extraordinarily poor
connectivity. We implement exactly that, parameterized by the coverage
target, and additionally separate the queueing (blocking) component from
the pure transmission component the way Fig. 9 does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["coverage_threshold", "FloodCounters", "PacketDelays", "FloodMetrics"]


def coverage_threshold(n_eligible: int, coverage_target: float) -> int:
    """Sensors needed to call a packet delivered (the paper's 99% rule)."""
    if n_eligible < 1:
        raise ValueError("need at least one eligible sensor")
    if not (0.0 < coverage_target <= 1.0):
        raise ValueError(f"coverage target must be in (0, 1], got {coverage_target}")
    return max(int(math.ceil(coverage_target * n_eligible)), 1)


@dataclass
class FloodCounters:
    """Mutable aggregate counters accumulated while a flood runs.

    Maintained by :class:`repro.sim.observers.CounterObserver`; the final
    values feed the corresponding :class:`FloodMetrics` fields.
    """

    tx_attempts: int = 0
    tx_failures: int = 0
    collisions: int = 0
    duplicates: int = 0
    overhears: int = 0
    sleep_misses: int = 0


@dataclass
class PacketDelays:
    """Per-packet timing of one flood.

    All arrays are indexed by packet ``p = 0..M-1``; ``-1`` marks events
    that never happened (packet not completed within the horizon).

    Attributes
    ----------
    generated:
        Slot the source had the packet ready.
    first_tx:
        Slot of the source's first transmission attempt of the packet —
        the paper's "pushed into the network" instant.
    completed:
        Slot the packet reached the coverage target.
    """

    generated: np.ndarray
    first_tx: np.ndarray
    completed: np.ndarray

    def __post_init__(self):
        for name in ("generated", "first_tx", "completed"):
            arr = getattr(self, name)
            if arr.ndim != 1:
                raise ValueError(f"{name} must be 1-D")
        if not (
            self.generated.shape == self.first_tx.shape == self.completed.shape
        ):
            raise ValueError("per-packet arrays must have equal length")

    @property
    def n_packets(self) -> int:
        return int(self.generated.size)

    @property
    def all_completed(self) -> bool:
        return bool(np.all(self.completed >= 0))

    def total_delay(self) -> np.ndarray:
        """Per-packet flooding delay (push -> coverage), the Fig. 9 curve.

        Incomplete packets get ``-1``.
        """
        done = (self.completed >= 0) & (self.first_tx >= 0)
        out = np.full(self.n_packets, -1, dtype=np.int64)
        out[done] = self.completed[done] - self.first_tx[done] + 1
        return out

    def queueing_delay_at_source(self) -> np.ndarray:
        """Slots each packet waited at the source before its first push."""
        pushed = self.first_tx >= 0
        out = np.full(self.n_packets, -1, dtype=np.int64)
        out[pushed] = self.first_tx[pushed] - self.generated[pushed]
        return out

    def makespan(self) -> int:
        """Slot at which the whole flood finished (or -1 if it did not)."""
        if not self.all_completed:
            return -1
        return int(self.completed.max())


@dataclass
class FloodMetrics:
    """Aggregate view of one flood used by the experiment harness.

    ``transmission_delay`` is the per-packet delay measured with queueing
    excluded — the experiment harness obtains it by re-flooding each
    packet in isolation on the same schedules/loss streams (Fig. 9's
    decomposition); it is optional because single-packet runs don't need
    it.
    """

    delays: PacketDelays
    tx_attempts: int
    tx_failures: int
    collisions: int
    duplicates: int
    overhears: int
    elapsed_slots: int
    coverage_per_packet: np.ndarray
    transmission_delay: Optional[np.ndarray] = None
    #: Transmissions that hit a dormant radio because the sender's clock
    #: view was wrong (only nonzero when the engine simulates skew).
    sleep_misses: int = 0

    def __post_init__(self):
        if self.tx_failures > self.tx_attempts:
            raise ValueError("failures cannot exceed attempts")
        if self.collisions > self.tx_failures:
            raise ValueError("collisions are a subset of failures")

    @property
    def n_packets(self) -> int:
        return self.delays.n_packets

    def average_delay(self) -> float:
        """Paper's 'average flooding delay': mean of per-packet delays.

        Only completed packets are averaged; returns NaN when none
        completed (so callers notice rather than silently reading 0).
        """
        d = self.delays.total_delay()
        d = d[d >= 0]
        return float(d.mean()) if d.size else float("nan")

    def blocking_delay(self) -> np.ndarray:
        """Per-packet queueing/blocking component (total - transmission).

        Requires ``transmission_delay``; raises otherwise.
        """
        if self.transmission_delay is None:
            raise ValueError("transmission delays were not measured for this run")
        total = self.delays.total_delay()
        out = np.full(self.n_packets, -1, dtype=np.int64)
        done = (total >= 0) & (self.transmission_delay >= 0)
        out[done] = np.maximum(total[done] - self.transmission_delay[done], 0)
        return out

    def failure_ratio(self) -> float:
        return self.tx_failures / self.tx_attempts if self.tx_attempts else 0.0

    def summary(self) -> Dict[str, float]:
        """Flat dict for tables and EXPERIMENTS.md."""
        return {
            "n_packets": float(self.n_packets),
            "avg_delay": self.average_delay(),
            "makespan": float(self.delays.makespan()),
            "tx_attempts": float(self.tx_attempts),
            "tx_failures": float(self.tx_failures),
            "collisions": float(self.collisions),
            "duplicates": float(self.duplicates),
            "failure_ratio": self.failure_ratio(),
            "sleep_misses": float(self.sleep_misses),
            "min_coverage": float(self.coverage_per_packet.min())
            if self.coverage_per_packet.size
            else 0.0,
        }
