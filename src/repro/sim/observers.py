"""Observer layer: instrumentation hooks for the slot pipeline.

The engine's job is to advance simulation state; everything that merely
*watches* a flood — counters, the energy ledger, the event log, and any
future tracing or metrics — implements :class:`SimObserver` and is
dispatched at fixed points of each slot. This replaces the scattered
inline bookkeeping the engine used to carry and gives external code a
sanctioned hook point (``run_flood(..., observers=[...])``) instead of
forking the loop.

Hook order within one executed slot with traffic::

    on_inject(t, packet)              # per packet injected this slot
    on_slot(t, awake)                 # once, after wake sets are known
    on_tx(t, batch, outcome, misses)  # once, after channel resolution
    on_reception(t, rec, is_dup)      # per reception, receiver-ascending
    on_complete(t, packet)            # before the completing reception

Slots the engine can prove quiescent are not executed at all: a single
``on_idle_span(t_start, t_end)`` reports each skipped half-open span
(the compact-time fast-forward), and no per-slot hook fires inside it.

``on_complete`` fires *before* the ``on_reception`` call of the
reception that pushed the packet over the coverage target — this
preserves the historical event-log ordering (COMPLETE precedes the
DELIVER/OVERHEAR record). ``on_finish`` fires once with the final
:class:`~repro.sim.engine.FloodResult`.

Dispatch is pay-for-what-you-use: the engine only calls a hook on
observers that actually override it (see :func:`overriders_of`), so a
registered observer with two hooks costs nothing on the other four.
"""

from __future__ import annotations

import sys
import tracemalloc
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..net.radio import Reception, SlotOutcome, TxBatch
from .energy import EnergyLedger
from .events import EventKind, EventLog, SimEvent
from .metrics import FloodCounters

__all__ = [
    "SimObserver",
    "CounterObserver",
    "EnergyObserver",
    "EventLogObserver",
    "PhaseProfiler",
    "overriders_of",
]


class SimObserver:
    """Base class for flood instrumentation; every hook is a no-op.

    Subclasses override only the hooks they care about. Observers must
    treat every argument as read-only — they watch the simulation, they
    do not steer it.
    """

    def on_slot(self, t: int, awake: np.ndarray) -> None:
        """An *executed* slot began; ``awake`` is the believed wake set.

        Slots the engine fast-forwards over do not fire this hook — they
        are reported in bulk through :meth:`on_idle_span` instead.
        """

    def on_idle_span(self, t_start: int, t_end: int) -> None:
        """Slots ``[t_start, t_end)`` were fast-forwarded in one jump.

        The engine proved (via the protocol's quiescence contract,
        :meth:`~repro.protocols.base.FloodingProtocol.next_action_slot`)
        that no transmission, injection, or protocol state change could
        occur in the span, so per-slot hooks never fire inside it.
        Observers that count or integrate over time must add the span's
        width to stay exact.
        """

    def on_inject(self, t: int, packet: int) -> None:
        """The source generated ``packet`` at slot ``t``."""

    def on_tx(
        self, t: int, batch: TxBatch, outcome: SlotOutcome, sleep_misses: int
    ) -> None:
        """The slot's transmissions resolved.

        ``batch`` holds the validated proposals, ``outcome`` what the
        channel did with them, and ``sleep_misses`` how many of them
        addressed a radio that was actually dormant (clock skew).
        """

    def on_reception(self, t: int, rec: Reception, is_duplicate: bool) -> None:
        """A frame was received; ``is_duplicate`` if the receiver had it."""

    def on_complete(self, t: int, packet: int) -> None:
        """``packet`` reached the coverage target at slot ``t``."""

    def on_finish(self, result) -> None:
        """The run ended; ``result`` is the final FloodResult."""


_HOOKS = ("on_slot", "on_idle_span", "on_inject", "on_tx", "on_reception",
          "on_complete", "on_finish")


def overriders_of(
    observers: Sequence[SimObserver], hook: str
) -> List[SimObserver]:
    """Observers in ``observers`` that override ``hook``, in order."""
    if hook not in _HOOKS:
        raise ValueError(f"unknown observer hook {hook!r}")
    base = getattr(SimObserver, hook)
    return [ob for ob in observers if getattr(type(ob), hook) is not base]


class CounterObserver(SimObserver):
    """Accumulates the aggregate :class:`FloodCounters` of a run."""

    def __init__(self, counters: Optional[FloodCounters] = None):
        self.counters = counters if counters is not None else FloodCounters()

    def on_tx(self, t, batch, outcome, sleep_misses):
        c = self.counters
        c.tx_attempts += len(batch)
        c.tx_failures += len(outcome.failures)
        c.collisions += len(outcome.collisions)
        c.sleep_misses += sleep_misses

    def on_reception(self, t, rec, is_duplicate):
        if is_duplicate:
            self.counters.duplicates += not rec.overheard
        else:
            self.counters.overhears += rec.overheard


class EnergyObserver(SimObserver):
    """Feeds an :class:`EnergyLedger` from the transmission stream."""

    def __init__(self, ledger: EnergyLedger):
        self.ledger = ledger

    def on_tx(self, t, batch, outcome, sleep_misses):
        self.ledger.note_tx_batch(batch.senders)
        n_failed = len(outcome.failures)
        if n_failed:
            self.ledger.note_failure_batch(
                np.fromiter(
                    (tx.sender for tx in outcome.failures),
                    np.int64,
                    count=n_failed,
                )
            )

    def on_reception(self, t, rec, is_duplicate):
        if not is_duplicate:
            self.ledger.note_rx(rec.receiver)


class EventLogObserver(SimObserver):
    """Materialises the full :class:`EventLog` (``track_events`` mode)."""

    def __init__(self, log: Optional[EventLog] = None):
        self.log = log if log is not None else EventLog()

    def on_inject(self, t, packet):
        self.log.record(SimEvent(t, EventKind.INJECT, packet))

    def on_tx(self, t, batch, outcome, sleep_misses):
        record = self.log.record
        for tx in batch.to_transmissions():
            record(SimEvent(t, EventKind.TX, tx.packet, tx.sender, tx.receiver))
        for tx in outcome.collisions:
            record(
                SimEvent(t, EventKind.COLLISION, tx.packet, tx.sender, tx.receiver)
            )

    def on_reception(self, t, rec, is_duplicate):
        if is_duplicate:
            if not rec.overheard:
                self.log.record(
                    SimEvent(
                        t, EventKind.DUPLICATE, rec.packet, rec.sender, rec.receiver
                    )
                )
            return
        kind = EventKind.OVERHEAR if rec.overheard else EventKind.DELIVER
        self.log.record(SimEvent(t, kind, rec.packet, rec.sender, rec.receiver))

    def on_complete(self, t, packet):
        self.log.record(SimEvent(t, EventKind.COMPLETE, packet))


class PhaseProfiler(SimObserver):
    """Per-phase wall time and allocation metering for the slot pipeline.

    Unlike the other observers, the profiler does not watch simulation
    *events* — it watches the engine itself. Both engines detect it via
    the ``phase_profiler`` marker attribute and call :meth:`note` with
    the wall seconds each pipeline phase consumed (``inject``,
    ``propose``, ``validate``, ``resolve``, ``apply``, ``observe`` —
    batch only — and ``fastforward``). The link model adds a ``mac``
    sub-phase *nested inside* ``resolve``: the
    :class:`~repro.net.mac.LinkModel` reports its own backoff/ack
    bookkeeping time there, net of the raw resolver calls it makes, so
    ``resolve`` stays the total and ``mac`` is the layering overhead
    (recorded at zero for the ideal link). Each engine also calls
    :meth:`note_slot` once per
    executed loop slot (the batch engine passes the number of
    replications that executed, so ``slots`` counts replication-slots
    while ``loop_slots`` counts loop iterations).

    Allocation metering is sampled per loop slot:

    * ``sys.getallocatedblocks()`` deltas — the *net* live-block growth
      per slot. An allocation-free steady state nets ~0 here even
      before any interpreter-level tracing.
    * when :mod:`tracemalloc` is tracing (``repro profile`` enables it
      for its second pass), the per-slot traced high-water mark
      (``get_traced_memory`` + ``reset_peak``) — transient churn that
      net block counts cannot see.

    Attach at most one per run; the engines use the first observer
    carrying the marker.
    """

    #: Marker the engines look for (kept as a plain attribute so
    #: duck-typed stand-ins work in tests).
    phase_profiler = True

    #: Sub-phases nested inside a top-level phase's timing; excluded
    #: from the report's total so they are not double-counted.
    NESTED = frozenset({"mac"})

    def __init__(self, sample_allocs: bool = True):
        self.phase_seconds: Dict[str, float] = {}
        self.phase_calls: Dict[str, int] = {}
        #: Replication-slots executed (loop slots x batch width).
        self.slots = 0
        #: Loop iterations (== slots for the serial engine).
        self.loop_slots = 0
        self._sample = bool(sample_allocs)
        self._tracing = self._sample and tracemalloc.is_tracing()
        self._blocks_prev: Optional[int] = None
        self.net_alloc_blocks = 0
        self.peak_alloc_bytes = 0

    def note(self, phase: str, dt: float) -> None:
        """Record ``dt`` wall seconds spent in ``phase``."""
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + dt
        self.phase_calls[phase] = self.phase_calls.get(phase, 0) + 1

    def note_slot(self, width: int = 1) -> None:
        """One engine loop slot finished; ``width`` replications ran."""
        self.slots += int(width)
        self.loop_slots += 1
        if self._sample:
            blocks = sys.getallocatedblocks()
            if self._blocks_prev is not None:
                self.net_alloc_blocks += blocks - self._blocks_prev
            self._blocks_prev = blocks
            if self._tracing:
                cur, peak = tracemalloc.get_traced_memory()
                if peak > cur:
                    self.peak_alloc_bytes += peak - cur
                tracemalloc.reset_peak()

    def report(self, arena=None) -> dict:
        """Summarise the run as a JSON-ready dict.

        ``arena`` (optional) contributes its borrow/grow counters so a
        steady-state run can show ``grows == 0`` next to the per-slot
        allocation numbers.
        """
        # Nested sub-phases (e.g. "mac" inside "resolve") are already
        # counted in their parent's wall time.
        total = sum(
            secs for name, secs in self.phase_seconds.items()
            if name not in self.NESTED
        )
        phases = {
            name: {
                "seconds": round(secs, 6),
                "calls": self.phase_calls.get(name, 0),
                "share": round(secs / total, 4) if total else 0.0,
            }
            for name, secs in sorted(
                self.phase_seconds.items(), key=lambda kv: -kv[1]
            )
        }
        out = {
            "phases": phases,
            "total_seconds": round(total, 6),
            "loop_slots": self.loop_slots,
            "slots": self.slots,
        }
        if self._sample and self.loop_slots:
            out["net_alloc_blocks_per_slot"] = round(
                self.net_alloc_blocks / self.loop_slots, 3
            )
            if self._tracing:
                out["peak_alloc_bytes_per_slot"] = round(
                    self.peak_alloc_bytes / self.loop_slots, 1
                )
        if arena is not None:
            out["arena"] = arena.snapshot()
        return out
