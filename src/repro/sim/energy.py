"""Network-wide energy accounting (paper Sec. V-C).

The paper's argument decomposes per-node energy into

* **duty-cycle energy** — radio-on time, proportional to the duty ratio
  and the experiment duration;
* **useful transmission energy** — identical across protocols for the
  same delivered traffic; and
* **wasted transmission energy** — failed transmissions (loss +
  collisions), which Fig. 11 shows to be nearly constant across duty
  ratios.

:class:`EnergyLedger` tracks the raw counts during a simulation;
:func:`energy_summary` converts them into energy units with an
:class:`~repro.core.tradeoff.EnergyModel` so the trade-off experiments
can put simulated floods and the analytic lifetime model on one axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..core.tradeoff import EnergyModel

__all__ = ["EnergyLedger", "energy_summary"]


class EnergyLedger:
    """Per-node counters for one simulation run."""

    def __init__(self, n_nodes: int):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.n_nodes = int(n_nodes)
        self.tx_attempts = np.zeros(n_nodes, dtype=np.int64)
        self.tx_failures = np.zeros(n_nodes, dtype=np.int64)
        self.rx_successes = np.zeros(n_nodes, dtype=np.int64)
        self.elapsed_slots = 0

    def note_tx(self, sender: int) -> None:
        self.tx_attempts[sender] += 1

    def note_failure(self, sender: int) -> None:
        self.tx_failures[sender] += 1

    def note_rx(self, receiver: int) -> None:
        self.rx_successes[receiver] += 1

    def note_tx_batch(self, senders: np.ndarray) -> None:
        """Record one attempt per entry of ``senders`` (may repeat ids)."""
        np.add.at(self.tx_attempts, senders, 1)

    def note_failure_batch(self, senders: np.ndarray) -> None:
        """Record one failure per entry of ``senders`` (may repeat ids)."""
        np.add.at(self.tx_failures, senders, 1)

    def note_elapsed(self, slots: int) -> None:
        if slots < 0:
            raise ValueError("elapsed slots must be non-negative")
        self.elapsed_slots += int(slots)

    @property
    def total_tx(self) -> int:
        return int(self.tx_attempts.sum())

    @property
    def total_failures(self) -> int:
        return int(self.tx_failures.sum())

    @property
    def total_rx(self) -> int:
        return int(self.rx_successes.sum())

    def failure_ratio(self) -> float:
        """Fraction of transmission attempts that failed."""
        total = self.total_tx
        return self.total_failures / total if total else 0.0

    def validate(self) -> None:
        """Internal consistency: failures never exceed attempts."""
        if np.any(self.tx_failures > self.tx_attempts):
            raise AssertionError("per-node failures exceed attempts")


def energy_summary(
    ledger: EnergyLedger,
    duty_ratio: float,
    model: Optional[EnergyModel] = None,
) -> Dict[str, float]:
    """Convert a ledger into energy units.

    Radio-on time is computed analytically from the duty ratio and the
    elapsed slots (every node is on for ``duty * elapsed`` slots plus one
    wake-up per transmission attempt).
    """
    if not (0.0 < duty_ratio <= 1.0):
        raise ValueError(f"duty ratio must be in (0, 1], got {duty_ratio}")
    model = model or EnergyModel()
    radio_on = duty_ratio * ledger.elapsed_slots * ledger.n_nodes + ledger.total_tx
    sleep = (1 - duty_ratio) * ledger.elapsed_slots * ledger.n_nodes
    duty_energy = radio_on * model.active_power + sleep * model.sleep_power
    tx_energy = ledger.total_tx * model.tx_energy
    wasted_energy = ledger.total_failures * model.tx_energy
    total = duty_energy + tx_energy
    return {
        "duty_energy": float(duty_energy),
        "tx_energy": float(tx_energy),
        "wasted_tx_energy": float(wasted_energy),
        "total_energy": float(total),
        "per_node_energy": float(total / ledger.n_nodes),
        "failure_ratio": ledger.failure_ratio(),
    }
