"""Event records emitted by the simulation engine.

The engine always maintains aggregate counters; full event logs are
opt-in (``SimConfig.track_events``) because a 100-packet flood on the
298-node trace generates hundreds of thousands of events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

__all__ = ["EventKind", "SimEvent", "EventLog"]


class EventKind(Enum):
    """What happened."""

    INJECT = "inject"  # source generated a packet
    TX = "tx"  # a transmission was committed
    DELIVER = "deliver"  # intended receiver got the packet (first copy)
    DUPLICATE = "duplicate"  # intended receiver already had the packet
    OVERHEAR = "overhear"  # a third party received the packet
    LOSS = "loss"  # transmission failed by channel loss
    COLLISION = "collision"  # transmission destroyed by interference
    COMPLETE = "complete"  # a packet reached the coverage target


@dataclass(frozen=True)
class SimEvent:
    """One timestamped event.

    ``sender``/``receiver`` are ``-1`` where not applicable (e.g. INJECT).
    """

    t: int
    kind: EventKind
    packet: int
    sender: int = -1
    receiver: int = -1

    def __post_init__(self):
        if self.t < 0:
            raise ValueError(f"event time must be non-negative, got {self.t}")
        if self.packet < 0:
            raise ValueError(f"packet index must be non-negative, got {self.packet}")


class EventLog:
    """Append-only in-memory event log with simple query helpers."""

    def __init__(self):
        self._events: List[SimEvent] = []

    def record(self, event: SimEvent) -> None:
        if self._events and event.t < self._events[-1].t:
            raise ValueError(
                f"events must be recorded in time order "
                f"({event.t} after {self._events[-1].t})"
            )
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def of_kind(self, kind: EventKind) -> List[SimEvent]:
        return [e for e in self._events if e.kind is kind]

    def for_packet(self, packet: int) -> List[SimEvent]:
        return [e for e in self._events if e.packet == packet]

    def count(self, kind: EventKind) -> int:
        return sum(1 for e in self._events if e.kind is kind)

    def busy_slots(self) -> List[int]:
        """Original slots that carried at least one transmission.

        Feed this to :class:`repro.core.compact_time.CompactTimeline` to
        analyze a simulated flood on the compact time scale.
        """
        slots = sorted({e.t for e in self._events if e.kind is EventKind.TX})
        return slots
