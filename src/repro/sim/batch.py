"""Replication-batched flood engine: R independent floods in lockstep.

:func:`run_flood_batch` runs R replications sharing one substrate (same
topology, radio model and packet count; per-replication schedules,
workloads and streams — wake periods may differ, which is how a
cross-cell stack sweeps a whole duty column in one call) through a
single staged slot loop over ``(R, …)`` state stacks. Each
replication's trajectory is **bit-identical** to what R separate
:func:`~repro.sim.engine.run_flood` calls would produce — same channel
draws, same fast-forward jumps, same counters — because every layer of
the batch (``replication_streams``, :class:`BatchGilbertElliott`,
:func:`resolve_slot_reps`, the batched protocol proposers) preserves the
serial per-replication stream consumption exactly. The batch is purely a
throughput device: one ``propose``/``resolve``/``apply`` sweep amortises
the Python interpreter and NumPy dispatch overhead across R floods.

Replications advance on their own clocks: the loop executes the earliest
pending slot across live replications, and only the replications whose
``t_next`` matches participate. Fast-forward therefore composes with
batching — a replication that proves a long quiescent span simply sits
out the intermediate slots while denser replications churn, with lazy
per-replication Gilbert-Elliott catch-up keeping link-dynamics streams
exact.

Scope: the batch path supports the paper's core configuration —
single-wake-slot schedules, no clock skew, no event log, no extra
observers, no Fig. 9 probe floods. The runner falls back to serial
:func:`run_flood` per replication otherwise (see
:func:`supports_rep_batching` and ``repro.sim.runner``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from time import perf_counter

from ..net.dynamics import BatchGilbertElliott
from ..net.packet import FloodWorkload
from ..net.radio import Transmission
from ..net.schedule import ScheduleTable
from ..net.topology import SOURCE, Topology
from ..protocols.base import FloodingProtocol, RepSimView, phase_cache_period
from .arena import ScratchArena
from .energy import EnergyLedger
from .engine import (
    _IDEAL_LINK,
    _LONG_JUMP,
    FloodResult,
    SimConfig,
    _default_horizon,
    _raise_invalid_proposal,
)
from .metrics import FloodMetrics, PacketDelays, coverage_threshold

__all__ = ["run_flood_batch", "supports_rep_batching"]


def supports_rep_batching(
    protocol: FloodingProtocol, config: SimConfig
) -> bool:
    """Whether ``(protocol, config)`` can take the batched engine path.

    The event log records per-frame history the batch does not
    materialise, so ``track_events`` forces the serial engine; everything
    else the config carries (radio model, coverage target, horizon,
    fast-forward) batches exactly.
    """
    return protocol.rep_batchable() and not config.track_events


def _raise_invalid_batch(
    protocol: FloodingProtocol,
    t: int,
    kk: np.ndarray,
    ss: np.ndarray,
    rr: np.ndarray,
    pp: np.ndarray,
    has_stack: np.ndarray,
    awake_mask: np.ndarray,
) -> None:
    """Cold path: find the offending replication, raise its serial error.

    Replications are independent runs, so the batch reports the failure
    of the lowest-numbered violating replication with exactly the
    message its serial run would have raised.
    """
    reps, starts = np.unique(kk, return_index=True)
    bounds = np.append(starts, kk.size)
    for i, rep in enumerate(reps):
        rep = int(rep)
        lo, hi = int(bounds[i]), int(bounds[i + 1])
        sub_ss = ss[lo:hi]
        violated = (
            np.unique(sub_ss).size != hi - lo
            or not has_stack[rep, pp[lo:hi], sub_ss].all()
            or not awake_mask[rep, rr[lo:hi]].all()
        )
        if violated:
            txs = [
                Transmission(int(s), int(r), int(p))
                for s, r, p in zip(sub_ss, rr[lo:hi], pp[lo:hi])
            ]
            _raise_invalid_proposal(
                protocol, t, txs, has_stack[rep], awake_mask[rep]
            )
    raise AssertionError(
        "batch validation flagged a proposal the per-frame checks accept"
    )


def run_flood_batch(
    topo: Topology,
    schedules_list: Sequence[ScheduleTable],
    workload,
    protocol: FloodingProtocol,
    rngs: Sequence[np.random.Generator],
    config: Optional[SimConfig] = None,
    dynamics_list: Optional[Sequence] = None,
    arena=None,
    profiler=None,
    link=None,
) -> List[FloodResult]:
    """Simulate R replications of one flood scenario in a single batch.

    Parameters
    ----------
    topo:
        The substrate shared by every replication.
    workload:
        One :class:`FloodWorkload` shared by every replication, or a
        sequence of R per-replication workloads (cross-cell stacks mix
        generation intervals); packet counts must agree.
    schedules_list:
        One :class:`ScheduleTable` per replication. Wake periods may
        differ per replication — a cross-cell stack runs a whole duty
        column in one batch.
    protocol:
        A fresh replication-batchable protocol instance
        (:meth:`FloodingProtocol.rep_batchable`); ``prepare_reps`` is
        called here.
    rngs:
        One channel stream per replication — the *same* streams the
        serial runner would hand to :func:`run_flood` (see
        :func:`repro.sim.rng.replication_streams`).
    config:
        Engine configuration, shared across replications
        (``track_events`` is unsupported on this path).
    dynamics_list:
        Optional per-replication :class:`GilbertElliott` instances,
        stacked into one :class:`BatchGilbertElliott`. All or none.
    arena:
        Optional :class:`~repro.sim.arena.ScratchArena` serving the hot
        path's per-slot buffers. Defaults to a fresh arena per call; the
        runner threads :func:`~repro.sim.arena.global_arena` through so
        consecutive invocations reuse warm buffers. Pass a
        :class:`~repro.sim.arena.NullArena` to force fresh allocation
        per borrow (arena-off mode — trajectories are bit-identical
        either way).
    profiler:
        Optional :class:`~repro.sim.observers.PhaseProfiler`; when
        present, the loop records per-phase wall time into it.
    link:
        The :class:`~repro.net.mac.LinkModel` resolving every traffic
        slot across replications. Default:
        :class:`~repro.net.mac.IdealCsmaLink` (the serial engine's
        default) — any model must consume each replication's stream in
        serial order so extracted replications stay bit-identical.

    Returns one :class:`FloodResult` per replication, index-aligned with
    ``schedules_list``, each bit-identical to its serial counterpart.
    """
    R = len(schedules_list)
    if R == 0:
        raise ValueError("need at least one replication")
    if len(rngs) != R:
        raise ValueError(
            f"{R} replications but {len(rngs)} channel streams"
        )
    if isinstance(workload, FloodWorkload):
        workloads = [workload] * R
    else:
        workloads = list(workload)
        if len(workloads) != R:
            raise ValueError(
                f"{R} replications but {len(workloads)} workloads"
            )
        if any(w.n_packets != workloads[0].n_packets for w in workloads[1:]):
            raise ValueError("stacked workloads must share n_packets")
    config = config or SimConfig()
    if link is None:
        link = _IDEAL_LINK
    if not supports_rep_batching(protocol, config):
        raise ValueError(
            f"protocol {protocol.name!r} / config cannot take the batched "
            "path (see supports_rep_batching)"
        )
    for schedules in schedules_list:
        if len(schedules) != topo.n_nodes:
            raise ValueError(
                f"schedule table covers {len(schedules)} nodes but "
                f"topology has {topo.n_nodes}"
            )

    batch_dyn = None
    if dynamics_list is not None:
        present = [d for d in dynamics_list if d is not None]
        if present:
            if len(present) != R:
                raise ValueError(
                    "link dynamics must be supplied for every replication "
                    "or none"
                )
            batch_dyn = BatchGilbertElliott.from_instances(list(dynamics_list))

    n = topo.n_nodes
    M = workloads[0].n_packets
    # Horizons are per replication: the default scales with the wake
    # period, which a cross-cell stack varies.
    if config.max_slots:
        horizons = np.full(R, int(config.max_slots), dtype=np.int64)
    else:
        horizons = np.asarray(
            [_default_horizon(topo, s, M) for s in schedules_list],
            dtype=np.int64,
        )

    eligible = topo.reachable_from_source()
    eligible[SOURCE] = False  # coverage counts sensors only
    n_eligible = int(eligible.sum())
    if n_eligible == 0:
        raise ValueError("no sensor is reachable from the source")
    need_count = coverage_threshold(n_eligible, config.coverage_target)

    # Per-replication slot-sorted packet lists; each replication drains
    # its own on its own clock (one shared workload still builds R
    # references to identical arrays — cheap either way).
    inject_order_by_rep: List[np.ndarray] = []
    inject_slots_by_rep: List[np.ndarray] = []
    for wl in workloads:
        generated = wl.generation_slots()
        order = np.argsort(generated, kind="stable")
        inject_order_by_rep.append(order.astype(np.int64))
        inject_slots_by_rep.append(generated[order].astype(np.int64))
    n_inject = np.asarray(
        [len(s) for s in inject_slots_by_rep], dtype=np.int64)
    _NEVER = np.iinfo(np.int64).max
    # Next undrained injection slot per replication (sentinel when the
    # workload is exhausted): lets both the inject stage and the
    # fast-forward clamp run as array ops instead of per-rep cursor
    # probes.
    next_inject = np.asarray(
        [int(s[0]) if s.size else _NEVER for s in inject_slots_by_rep],
        dtype=np.int64,
    )

    # (R, …) state stacks — the serial pipeline's arrays with a leading
    # replication axis.
    has_stack = np.zeros((R, M, n), dtype=bool)
    arrival_stack = np.full((R, M, n), -1, dtype=np.int64)
    covered = np.zeros((R, M), dtype=np.int64)
    first_tx = np.full((R, M), -1, dtype=np.int64)
    completed_at = np.full((R, M), -1, dtype=np.int64)
    n_pending = np.full(R, M, dtype=np.int64)
    inject_cursor = np.zeros(R, dtype=np.int64)
    # ``t_next`` doubles as the live/done discriminator: finished
    # replications park at the +inf sentinel, so each iteration's
    # earliest-slot scan is one ``min`` over the whole array instead of
    # an active-mask compression. ``elapsed`` captures the final clock
    # before the sentinel overwrites it.
    t_next = np.zeros(R, dtype=np.int64)
    elapsed = np.zeros(R, dtype=np.int64)
    long_jump = np.zeros(R, dtype=bool)
    # Last slot each replication's dynamics were stepped through, plus
    # one: lazy catch-up advances exactly the slots the serial loop
    # would have stepped or block-advanced.
    dyn_clock = np.zeros(R, dtype=np.int64)

    # Per-replication counters (CounterObserver's fields, vectorized).
    c_attempts = np.zeros(R, dtype=np.int64)
    c_failures = np.zeros(R, dtype=np.int64)
    c_collisions = np.zeros(R, dtype=np.int64)
    c_duplicates = np.zeros(R, dtype=np.int64)
    c_overhears = np.zeros(R, dtype=np.int64)
    # Per-(replication, node) energy counts (EnergyLedger's arrays).
    e_tx = np.zeros((R, n), dtype=np.int64)
    e_fail = np.zeros((R, n), dtype=np.int64)
    e_rx = np.zeros((R, n), dtype=np.int64)

    schedules_list = list(schedules_list)
    rngs = list(rngs)
    if arena is None:
        arena = ScratchArena()
    view = RepSimView(
        topo, schedules_list, workloads[0], has_stack, arrival_stack)
    view.arena = arena
    state_version = view.state_version
    pack_pw = (
        np.uint64(1) << np.arange(M, dtype=np.uint64)
        if view.has_packed is not None
        else None
    )
    protocol.prepare_reps(topo, schedules_list, workloads[0], rngs)

    # Wake sets repeat with the LCM of the replications' wake periods
    # and are identical across slots with the same phase, so the
    # per-phase wake lists and the (R, n) wake matrix are built once and
    # reused for the whole run (rebuilt per slot if the LCM is huge).
    cache_period = phase_cache_period(schedules_list)
    phase_cache: Dict[int, Tuple[List[np.ndarray], np.ndarray, np.ndarray]] = {}

    def _phase_awake(t: int):
        key = t % cache_period if cache_period else None
        entry = phase_cache.get(key) if key is not None else None
        if entry is None:
            lists = [s.awake_at(t) for s in schedules_list]
            stack = np.zeros((R, n), dtype=bool)
            for ki, aw in enumerate(lists):
                stack[ki, aw] = True
            entry = (lists, stack, stack.reshape(-1), stack.any(axis=1))
            if key is not None:
                phase_cache[key] = entry
        return entry

    fast_forward = config.fast_forward
    empty64 = np.empty(0, dtype=np.int64)
    has_rows = np.zeros(R, dtype=bool)
    inj_rows = np.zeros(R, dtype=bool)
    # Flat aliases for the validation/apply gathers: one flat-index
    # ``np.take`` into a scratch buffer replaces the 2-/3-axis fancy
    # index (which builds the same flat indices internally but always
    # allocates its result).
    has_flat = has_stack.reshape(-1)
    packed_flat = (
        view.has_packed.reshape(-1) if view.has_packed is not None else None
    )
    prof = profiler
    _tprev = perf_counter() if prof is not None else 0.0

    # Deferred counter accumulation: attempts, failures, duplicate /
    # overhear tallies and energy counts are write-only until result
    # assembly, so the hot loop just retains the (fresh, unaliased)
    # per-slot index arrays and one bincount per counter runs at the
    # end instead of several scatter ops per slot.
    acc_att_k: List[np.ndarray] = []
    acc_att_s: List[np.ndarray] = []
    acc_fail_k: List[np.ndarray] = []
    acc_fail_s: List[np.ndarray] = []
    acc_rx_k: List[np.ndarray] = []
    acc_rx_r: List[np.ndarray] = []
    acc_dup: List[np.ndarray] = []
    acc_over: List[np.ndarray] = []

    while True:
        # Finished replications park at the sentinel, so the earliest
        # pending slot is one unmasked min over the clock array.
        t = int(t_next.min())
        if t == _NEVER:
            break
        exec_reps = np.flatnonzero(t_next == t)

        # Link dynamics: lazy per-replication catch-up over skipped
        # slots (bit-identical block advance), then this slot's step.
        if batch_dyn is not None:
            for k in exec_reps:
                gap = int(t - dyn_clock[k])
                if gap:
                    batch_dyn.advance_rep(int(k), gap)
            batch_dyn.step_reps(exec_reps)
            dyn_clock[exec_reps] = t + 1

        # Inject arrivals and collect wake sets for this slot. The
        # ``next_inject`` probe keeps injection-free slots (most of a
        # flood) out of the per-replication Python loop entirely.
        awake_by_rep, awake_stack, awake_flat, has_awake = _phase_awake(t)
        inj_rows[exec_reps] = False
        pending_inject = exec_reps[next_inject[exec_reps] <= t]
        for k in pending_inject:
            ki = int(k)
            inject_slots = inject_slots_by_rep[ki]
            inject_order = inject_order_by_rep[ki]
            cur = int(inject_cursor[ki])
            while cur < n_inject[ki] and inject_slots[cur] <= t:
                p = int(inject_order[cur])
                has_stack[ki, p, SOURCE] = True
                arrival_stack[ki, p, SOURCE] = t
                view.held_counts[ki, SOURCE] += 1
                if pack_pw is not None:
                    view.has_packed[ki, SOURCE] |= pack_pw[p]
                cur += 1
            inject_cursor[ki] = cur
            next_inject[ki] = (
                int(inject_slots[cur]) if cur < n_inject[ki] else _NEVER
            )
            inj_rows[ki] = True
        rep_ids = exec_reps[has_awake[exec_reps]]
        if prof is not None:
            _now = perf_counter()
            prof.note("inject", _now - _tprev)
            _tprev = _now

        if rep_ids.size:
            kk, ss, rr, pp = protocol.propose_reps(
                t, rep_ids, awake_by_rep, view
            )
        else:
            kk = ss = rr = pp = empty64
        if prof is not None:
            _now = perf_counter()
            prof.note("propose", _now - _tprev)
            _tprev = _now

        if kk.size:
            # Validate: the serial engine's mask checks, batched, on
            # borrowed scratch (sender uniqueness via the sorted fused
            # key; possession and receiver-awake via flat-index takes).
            P = kk.size
            vkey = arena.buf("batch.vkey", P, np.int64)
            np.multiply(kk, n, out=vkey)
            vkey += ss
            vkey.sort()
            fidx = arena.buf("batch.fidx", P, np.int64)
            np.multiply(kk, M, out=fidx)
            fidx += pp
            fidx *= n
            fidx += ss
            hasv = arena.buf("batch.hasv", P, np.bool_)
            np.take(has_flat, fidx, out=hasv)
            aidx = arena.buf("batch.aidx", P, np.int64)
            np.multiply(kk, n, out=aidx)
            aidx += rr
            awakev = arena.buf("batch.awakev", P, np.bool_)
            np.take(awake_flat, aidx, out=awakev)
            ok = (
                bool((vkey[1:] != vkey[:-1]).all())
                and bool(hasv.all())
                and bool(awakev.all())
            )
            if not ok:
                _raise_invalid_batch(
                    protocol, t, kk, ss, rr, pp, has_stack, awake_stack
                )
            if prof is not None:
                _now = perf_counter()
                prof.note("validate", _now - _tprev)
                _tprev = _now

            # Validation just proved per-replication sender uniqueness,
            # so the resolver's duplicate-guard bincount is folded away
            # (the serial engine passes assume_unique_senders likewise).
            outcome = link.resolve_reps(
                kk, ss, rr, pp, topo, awake_by_rep, rngs, config.radio,
                dynamics=batch_dyn, awake_stack=awake_stack, arena=arena,
                profiler=prof,
            )
            if prof is not None:
                _now = perf_counter()
                prof.note("resolve", _now - _tprev)
                _tprev = _now

            # Counters + energy: retained for the end-of-run bincounts
            # (kk/ss and the outcome arrays are fresh per slot).
            acc_att_k.append(kk)
            acc_att_s.append(ss)
            if outcome.fail_rep.size:
                acc_fail_k.append(outcome.fail_rep)
                acc_fail_s.append(outcome.fail_sender)
            for ki, count in outcome.collision_counts.items():
                c_collisions[ki] += count

            # First source push per packet ("pushed into the network").
            src_rows = np.flatnonzero(ss == SOURCE)
            if src_rows.size:
                sk = kk[src_rows]
                sp = pp[src_rows]
                fresh = first_tx[sk, sp] < 0
                first_tx[sk[fresh], sp[fresh]] = t

            # Apply receptions. At most one reception per (replication,
            # receiver) per slot, so the duplicate check against the
            # pre-slot possession state is exact.
            if outcome.rec_rep.size:
                rk = outcome.rec_rep
                rrv = outcome.rec_receiver
                rpk = outcome.rec_packet
                rov = outcome.rec_overheard
                if packed_flat is not None:
                    # Fused duplicate probe: one word gather + bit test
                    # against the possession bitmask instead of the
                    # 3-axis boolean gather.
                    pidx = arena.buf("batch.pidx", rk.size, np.int64)
                    np.multiply(rk, n, out=pidx)
                    pidx += rrv
                    words = arena.buf("batch.words", rk.size, np.uint64)
                    np.take(packed_flat, pidx, out=words)
                    dup = (words & pack_pw[rpk]) != 0
                else:
                    dup = has_stack[rk, rpk, rrv]
                new = ~dup
                dup_counted = rk[dup & ~rov]
                if dup_counted.size:
                    acc_dup.append(dup_counted)
                over_counted = rk[new & rov]
                if over_counted.size:
                    acc_over.append(over_counted)
                if new.any():
                    nk = rk[new]
                    nr = rrv[new]
                    npk = rpk[new]
                    has_stack[nk, npk, nr] = True
                    arrival_stack[nk, npk, nr] = t
                    # At most one reception per (rep, receiver) per slot,
                    # so the fancy increments hit unique cells.
                    view.held_counts[nk, nr] += 1
                    if pack_pw is not None:
                        view.has_packed[nk, nr] |= pack_pw[npk]
                    acc_rx_k.append(nk)
                    acc_rx_r.append(nr)
                    elig = eligible[nr]
                    if elig.any():
                        ck = nk[elig]
                        cp = npk[elig]
                        np.add.at(covered, (ck, cp), 1)
                        pairs = np.unique(ck * M + cp)
                        uk = pairs // M
                        up = pairs % M
                        comp = (completed_at[uk, up] < 0) & (
                            covered[uk, up] >= need_count
                        )
                        if comp.any():
                            completed_at[uk[comp], up[comp]] = t
                            np.add.at(n_pending, uk[comp], -1)
            if prof is not None:
                _now = perf_counter()
                prof.note("apply", _now - _tprev)
                _tprev = _now

            protocol.observe_reps(t, outcome, view)
            if prof is not None:
                _now = perf_counter()
                prof.note("observe", _now - _tprev)
                _tprev = _now

        # Fast-forward bookkeeping — the serial loop's skip-attempt
        # policy, vectorized: the frontier targets are clamped against
        # the pending-injection and horizon arrays in two ``minimum``
        # passes instead of a per-replication Python loop.
        has_rows[:] = False
        if kk.size:
            has_rows[kk] = True
        # Possession/belief may have changed for replications that
        # transmitted or injected this slot; bump their state version so
        # frontier caches keyed on it recompute.
        ver = exec_reps[has_rows[exec_reps] | inj_rows[exec_reps]]
        if ver.size:
            state_version[ver] += 1
        t1 = t + 1
        t_next[exec_reps] = t1
        rest = exec_reps[~has_rows[exec_reps] | long_jump[exec_reps]]
        long_jump[rest] = False
        if fast_forward and rest.size:
            qids = rest[(n_pending[rest] > 0) & (t1 < horizons[rest])]
        else:
            qids = empty64
        if qids.size:
            targets = protocol.next_action_slots(t, qids, view)
            # Injection clamp (next_inject > t for every executed
            # replication, so the clamp never undershoots t1) and
            # horizon clamp (> t1 by the qids filter); a replication
            # jumps iff the clamped target still exceeds t1.
            eff = np.minimum(targets, next_inject[qids])
            np.minimum(eff, horizons[qids], out=eff)
            jump = eff > t1
            t_next[qids] = np.where(jump, eff, t1)
            long_jump[qids] = jump & (eff - t1 >= _LONG_JUMP)

        fin = exec_reps[
            (t_next[exec_reps] >= horizons[exec_reps])
            | (n_pending[exec_reps] == 0)
        ]
        if fin.size:
            elapsed[fin] = t_next[fin]
            t_next[fin] = _NEVER
        if prof is not None:
            _now = perf_counter()
            prof.note("fastforward", _now - _tprev)
            _tprev = _now
            prof.note_slot(exec_reps.size)

    # Settle the deferred counters: one concatenate + bincount pass per
    # counter over the whole run.
    if acc_att_k:
        att_k = np.concatenate(acc_att_k)
        att_s = np.concatenate(acc_att_s)
        c_attempts += np.bincount(att_k, minlength=R)
        e_tx += np.bincount(att_k * n + att_s, minlength=R * n).reshape(R, n)
    if acc_fail_k:
        fail_k = np.concatenate(acc_fail_k)
        fail_s = np.concatenate(acc_fail_s)
        c_failures += np.bincount(fail_k, minlength=R)
        e_fail += np.bincount(
            fail_k * n + fail_s, minlength=R * n).reshape(R, n)
    if acc_rx_k:
        rx_k = np.concatenate(acc_rx_k)
        rx_r = np.concatenate(acc_rx_r)
        e_rx += np.bincount(rx_k * n + rx_r, minlength=R * n).reshape(R, n)
    if acc_dup:
        c_duplicates += np.bincount(np.concatenate(acc_dup), minlength=R)
    if acc_over:
        c_overhears += np.bincount(np.concatenate(acc_over), minlength=R)

    # Per-replication result assembly, shaped exactly like run_flood's.
    results: List[FloodResult] = []
    for k in range(R):
        ledger = EnergyLedger(n)
        ledger.tx_attempts[:] = e_tx[k]
        ledger.tx_failures[:] = e_fail[k]
        ledger.rx_successes[:] = e_rx[k]
        ledger.note_elapsed(int(elapsed[k]))
        ledger.validate()
        metrics = FloodMetrics(
            delays=PacketDelays(
                generated=workloads[k].generation_slots(),
                first_tx=first_tx[k].copy(),
                completed=completed_at[k].copy(),
            ),
            tx_attempts=int(c_attempts[k]),
            tx_failures=int(c_failures[k]),
            collisions=int(c_collisions[k]),
            duplicates=int(c_duplicates[k]),
            overhears=int(c_overhears[k]),
            elapsed_slots=int(elapsed[k]),
            coverage_per_packet=covered[k] / n_eligible,
            transmission_delay=None,
            sleep_misses=0,
        )
        results.append(
            FloodResult(
                metrics=metrics,
                has=has_stack[k].copy(),
                arrival=arrival_stack[k].copy(),
                ledger=ledger,
                events=None,
                completed=bool(n_pending[k] == 0),
            )
        )
    return results
