"""The slot-stepped low-duty-cycle flooding simulator.

One :func:`run_flood` call simulates the paper's Sec. V setup end to end:
the source injects ``M`` packets; every original-time slot the engine

1. injects packets whose generation slot arrived,
2. determines which sensors wake (their active slot),
3. asks the protocol for transmissions,
4. validates the proposals against the model's hard constraints
   (possession, one TX per sender, receiver awake),
5. resolves the channel (collisions, capture, Bernoulli loss,
   overhearing) through :func:`repro.net.radio.resolve_slot`,
6. applies receptions, updates metrics, and lets the protocol observe
   the outcome (ACK/overhearing learning).

The run ends when every packet has reached the coverage target (the
paper's 99% rule) or the horizon expires.

Hot-loop note (per the HPC guides): possession and arrival state live in
two preallocated NumPy arrays; per-slot work touches only the waking
nodes (``O(N/T)`` of them), and protocols use vectorized row/column masks
rather than per-packet Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..net.packet import FloodWorkload
from ..net.radio import RadioModel, SlotOutcome, Transmission, resolve_slot
from ..net.schedule import ScheduleTable
from ..net.topology import SOURCE, Topology
from ..protocols.base import FloodingProtocol, SimView
from .energy import EnergyLedger
from .events import EventKind, EventLog, SimEvent
from .metrics import FloodMetrics, PacketDelays, coverage_threshold

__all__ = ["ENGINE_VERSION", "SimConfig", "FloodResult", "run_flood",
           "run_single_packet_floods"]

#: Simulation-semantics version, folded into every
#: :mod:`repro.exec.store` cache key. Bump whenever a change alters
#: simulated trajectories (RNG consumption order, channel resolution,
#: metric definitions, ...) so stale cached results can never be served.
ENGINE_VERSION = "2011.1"


@dataclass(frozen=True)
class SimConfig:
    """Engine configuration.

    Attributes
    ----------
    coverage_target:
        Fraction of source-reachable sensors that must hold a packet for
        it to count as delivered (paper default: 0.99).
    max_slots:
        Simulation horizon; ``None`` derives a generous bound from the
        problem size.
    radio:
        Channel behaviour (collisions/capture/overhearing/lossless).
    track_events:
        Keep a full :class:`~repro.sim.events.EventLog` (memory-heavy).
    """

    coverage_target: float = 0.99
    max_slots: Optional[int] = None
    radio: RadioModel = field(default_factory=RadioModel)
    track_events: bool = False

    def __post_init__(self):
        if not (0.0 < self.coverage_target <= 1.0):
            raise ValueError(
                f"coverage target must be in (0, 1], got {self.coverage_target}"
            )
        if self.max_slots is not None and self.max_slots < 1:
            raise ValueError("horizon must be at least one slot")


@dataclass
class FloodResult:
    """Everything a flood run produced."""

    metrics: FloodMetrics
    has: np.ndarray
    arrival: np.ndarray
    ledger: EnergyLedger
    events: Optional[EventLog]
    completed: bool

    @property
    def possession(self) -> np.ndarray:
        """Alias for the final (M, n_nodes) possession matrix."""
        return self.has


def _default_horizon(topo: Topology, schedules: ScheduleTable, M: int) -> int:
    """Generous default simulation horizon.

    Scales with the Theorem-2 upper bound inflated by the network's mean
    k-class (loss) plus slack for collision-heavy baselines.
    """
    import math

    m = max(int(math.ceil(math.log2(1 + topo.n_sensors))), 1)
    k = max(topo.mean_k_class(), 1.0)
    bound = schedules.period * (2 * m + M) * k
    return int(32 * bound) + 2048


def run_flood(
    topo: Topology,
    schedules: ScheduleTable,
    workload: FloodWorkload,
    protocol: FloodingProtocol,
    rng: np.random.Generator,
    config: Optional[SimConfig] = None,
    measure_transmission_delay: bool = False,
    dynamics=None,
    true_schedules: Optional[ScheduleTable] = None,
    _transmission_delay: Optional[np.ndarray] = None,
) -> FloodResult:
    """Simulate one flood of ``workload.n_packets`` packets.

    Parameters
    ----------
    topo, schedules, workload:
        The static substrate; ``len(schedules)`` must match the topology.
    protocol:
        A fresh protocol instance (protocols carry per-run state).
    rng:
        Stream for channel losses and protocol randomness.
    config:
        Engine configuration (defaults to the paper's).
    measure_transmission_delay:
        Additionally flood each packet in isolation (same substrate,
        forked loss streams) to measure the queueing-free transmission
        delay — the Fig. 9 decomposition. Roughly doubles the run cost.
    dynamics:
        Optional :class:`~repro.net.dynamics.GilbertElliott` bursty-link
        state, stepped once per slot and consulted on every success draw.
    true_schedules:
        Clock-skew injection: ``schedules`` is what the protocol *believes*
        (the advertised working schedules from local synchronization);
        ``true_schedules`` is when radios are really on. Transmissions to
        nodes the sender believed awake but that are actually dormant are
        counted as ``sleep_misses`` (plus ordinary failures) instead of
        protocol errors. Default: no skew — the paper's perfectly
        locally-synchronized model.
    """
    if len(schedules) != topo.n_nodes:
        raise ValueError(
            f"schedule table covers {len(schedules)} nodes but topology "
            f"has {topo.n_nodes}"
        )
    config = config or SimConfig()
    if true_schedules is not None and len(true_schedules) != topo.n_nodes:
        raise ValueError("true_schedules does not match the topology")
    actual_schedules = true_schedules if true_schedules is not None else schedules
    n_nodes = topo.n_nodes
    M = workload.n_packets
    horizon = config.max_slots or _default_horizon(topo, schedules, M)

    eligible = topo.reachable_from_source()
    eligible[SOURCE] = False  # coverage counts sensors only
    n_eligible = int(eligible.sum())
    if n_eligible == 0:
        raise ValueError("no sensor is reachable from the source")
    need_count = coverage_threshold(n_eligible, config.coverage_target)

    has = np.zeros((M, n_nodes), dtype=bool)
    arrival = np.full((M, n_nodes), -1, dtype=np.int64)
    covered = np.zeros(M, dtype=np.int64)  # eligible sensors holding p
    generated = workload.generation_slots()
    first_tx = np.full(M, -1, dtype=np.int64)
    completed_at = np.full(M, -1, dtype=np.int64)

    ledger = EnergyLedger(n_nodes)
    log = EventLog() if config.track_events else None
    view = SimView(topo, schedules, workload, has, arrival)
    protocol.prepare(topo, schedules, workload, rng)

    tx_attempts = tx_failures = collisions = duplicates = overhears = 0
    sleep_misses = 0
    n_pending = M  # packets not yet at coverage target

    # Preallocated wake-mask scratch for proposal validation: an O(1)
    # boolean lookup per receiver instead of rebuilding a Python set
    # from the awake array every slot (the sets dominated validation
    # cost when proposal lists are tiny).
    awake_mask = np.zeros(n_nodes, dtype=bool)
    actual_mask = np.zeros(n_nodes, dtype=bool)

    t = 0
    while t < horizon and n_pending > 0:
        # 0. Link dynamics advance regardless of traffic.
        if dynamics is not None:
            dynamics.step()

        # 1. Injection.
        to_inject = np.flatnonzero((generated <= t) & ~has[:, SOURCE])
        for p in to_inject.tolist():
            has[p, SOURCE] = True
            arrival[p, SOURCE] = t
            if log is not None:
                log.record(SimEvent(t, EventKind.INJECT, p))

        # 2. Wake sets: what the protocol believes vs what is true.
        awake = schedules.awake_at(t)
        actually_awake = (
            awake if actual_schedules is schedules
            else actual_schedules.awake_at(t)
        )

        # 3-4. Protocol proposals, validated against its *belief*.
        if awake.size:
            proposals = protocol.propose(t, awake, view)
        else:
            proposals = []
        if proposals:
            awake_mask[awake] = True
            seen_senders = set()
            for tx in proposals:
                if tx.sender in seen_senders:
                    raise ValueError(
                        f"protocol {protocol.name!r} scheduled two transmissions "
                        f"for node {tx.sender} at slot {t}"
                    )
                seen_senders.add(tx.sender)
                if not has[tx.packet, tx.sender]:
                    raise ValueError(
                        f"protocol {protocol.name!r} made node {tx.sender} send "
                        f"packet {tx.packet} it does not hold (slot {t})"
                    )
                if not awake_mask[tx.receiver]:
                    raise ValueError(
                        f"protocol {protocol.name!r} targeted sleeping node "
                        f"{tx.receiver} at slot {t}"
                    )
            awake_mask[awake] = False

            # Clock skew: transmissions addressed to nodes that are not
            # really awake hit a dormant radio.
            if actual_schedules is not schedules:
                actual_mask[actually_awake] = True
                sleep_misses += sum(
                    1 for tx in proposals if not actual_mask[tx.receiver]
                )
                actual_mask[actually_awake] = False

            # 5. Channel resolution (against reality).
            outcome = resolve_slot(
                proposals, topo, actually_awake, rng, config.radio,
                dynamics=dynamics,
            )

            # 6. Bookkeeping.
            tx_attempts += len(proposals)
            tx_failures += len(outcome.failures)
            collisions += len(outcome.collisions)
            for tx in proposals:
                ledger.note_tx(tx.sender)
                if tx.sender == SOURCE and first_tx[tx.packet] < 0:
                    first_tx[tx.packet] = t
                if log is not None:
                    log.record(
                        SimEvent(t, EventKind.TX, tx.packet, tx.sender, tx.receiver)
                    )
            for tx in outcome.failures:
                ledger.note_failure(tx.sender)
            if log is not None:
                for tx in outcome.collisions:
                    log.record(
                        SimEvent(
                            t, EventKind.COLLISION, tx.packet, tx.sender, tx.receiver
                        )
                    )

            for rec in outcome.receptions:
                kind = EventKind.OVERHEAR if rec.overheard else EventKind.DELIVER
                if has[rec.packet, rec.receiver]:
                    duplicates += not rec.overheard
                    if log is not None and not rec.overheard:
                        log.record(
                            SimEvent(
                                t,
                                EventKind.DUPLICATE,
                                rec.packet,
                                rec.sender,
                                rec.receiver,
                            )
                        )
                    continue
                overhears += rec.overheard
                has[rec.packet, rec.receiver] = True
                arrival[rec.packet, rec.receiver] = t
                ledger.note_rx(rec.receiver)
                if eligible[rec.receiver]:
                    covered[rec.packet] += 1
                    if (
                        completed_at[rec.packet] < 0
                        and covered[rec.packet] >= need_count
                    ):
                        completed_at[rec.packet] = t
                        n_pending -= 1
                        if log is not None:
                            log.record(SimEvent(t, EventKind.COMPLETE, rec.packet))
                if log is not None:
                    log.record(
                        SimEvent(t, kind, rec.packet, rec.sender, rec.receiver)
                    )

            protocol.observe(t, outcome, view)
        t += 1

    ledger.note_elapsed(t)
    ledger.validate()

    transmission_delay = _transmission_delay
    if measure_transmission_delay and transmission_delay is None:
        # Probe floods reconstruct the protocol from its recorded
        # constructor kwargs. ``init_kwargs`` is guaranteed to exist:
        # ``make_protocol`` records it uniformly and the base class
        # carries an empty default, so a protocol's configuration is
        # never silently dropped on the Fig. 9 decomposition path.
        transmission_delay = run_single_packet_floods(
            topo, schedules, workload, type(protocol), rng, config,
            protocol_kwargs=protocol.init_kwargs,
        )

    metrics = FloodMetrics(
        delays=PacketDelays(
            generated=generated, first_tx=first_tx, completed=completed_at
        ),
        tx_attempts=tx_attempts,
        tx_failures=tx_failures,
        collisions=collisions,
        duplicates=duplicates,
        overhears=overhears,
        elapsed_slots=t,
        coverage_per_packet=covered / n_eligible,
        transmission_delay=transmission_delay,
        sleep_misses=sleep_misses,
    )
    return FloodResult(
        metrics=metrics,
        has=has,
        arrival=arrival,
        ledger=ledger,
        events=log,
        completed=bool(n_pending == 0),
    )


def run_single_packet_floods(
    topo: Topology,
    schedules: ScheduleTable,
    workload: FloodWorkload,
    protocol_cls,
    rng: np.random.Generator,
    config: Optional[SimConfig] = None,
    protocol_kwargs: Optional[dict] = None,
    n_probes: Optional[int] = None,
) -> np.ndarray:
    """Queueing-free per-packet delay: flood packets in isolation.

    Used for the Fig. 9 decomposition: the same substrate floods a single
    packet at a time (independent channel draws per run), yielding the
    pure transmission delay the blocking analysis subtracts out. Isolated
    floods are i.i.d. across packets, so ``n_probes`` (default
    ``min(M, 8)``) actual runs are cycled over the ``M`` packet slots
    instead of running all ``M``.
    """
    from ..net.packet import FloodWorkload as _WL

    M = workload.n_packets
    if n_probes is None:
        n_probes = min(M, 8)
    if not (1 <= n_probes <= M):
        raise ValueError(f"n_probes must be in [1, {M}], got {n_probes}")
    kwargs = protocol_kwargs or {}
    probes = np.full(n_probes, -1, dtype=np.int64)
    for i in range(n_probes):
        sub_rng = np.random.default_rng(rng.integers(0, 2**63))
        result = run_flood(
            topo,
            schedules,
            _WL(1),
            protocol_cls(**kwargs),
            sub_rng,
            config,
        )
        probes[i] = result.metrics.delays.total_delay()[0]
    return probes[np.arange(M) % n_probes]
