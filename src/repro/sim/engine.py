"""The slot-stepped low-duty-cycle flooding simulator.

One :func:`run_flood` call simulates the paper's Sec. V setup end to end.
The engine is a staged slot pipeline over batched transmissions: every
original-time slot it

1. **injects** packets whose generation slot arrived,
2. determines the **wake sets** (believed vs actual active slots),
3. asks the protocol to **propose** a transmission batch
   (:class:`~repro.net.radio.TxBatch`, structure-of-arrays),
4. **validates** the batch against the model's hard constraints
   (possession, one TX per sender, receiver awake) with vectorized mask
   checks,
5. **resolves** the channel (collisions, capture, Bernoulli loss,
   overhearing) through :func:`repro.net.radio.resolve_slot`,
6. **applies** receptions to the possession state and dispatches the
   slot to the observer layer (:mod:`repro.sim.observers`), then lets
   the protocol observe the outcome (ACK/overhearing learning).

The run ends when every packet has reached the coverage target (the
paper's 99% rule) or the horizon expires.

Instrumentation — counters, the energy ledger, the optional event log —
lives entirely in observers; the engine's own loop only advances state.
Extra observers plug in via ``run_flood(..., observers=[...])``.

Hot-loop note (per the HPC guides): possession and arrival state live in
two preallocated NumPy arrays; per-slot work touches only the waking
nodes (``O(N/T)`` of them), and proposals travel as int64 arrays rather
than per-frame Python objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..net.packet import FloodWorkload
from ..net.mac import IdealCsmaLink, LinkModel
from ..net.radio import RadioModel, SlotOutcome, Transmission, TxBatch
from ..net.schedule import ScheduleTable
from ..net.topology import SOURCE, Topology
from ..protocols.base import FloodingProtocol, SimView
from .energy import EnergyLedger
from .events import EventLog
from .metrics import FloodCounters, FloodMetrics, PacketDelays, coverage_threshold
from .observers import (
    CounterObserver,
    EnergyObserver,
    EventLogObserver,
    SimObserver,
    overriders_of,
)

__all__ = ["ENGINE_VERSION", "SimConfig", "FloodResult", "run_flood",
           "run_single_packet_floods"]

#: Simulation-semantics version, folded into every
#: :mod:`repro.exec.store` cache key. Bump whenever a change alters
#: simulated trajectories (RNG consumption order, channel resolution,
#: metric definitions, ...) so stale cached results can never be served.
ENGINE_VERSION = "2011.1"

#: Span length (in slots) above which a fast-forward jump marks the
#: landing slot as "sparse regime": the slot attempts another skip even
#: if it carried traffic. Purely a performance heuristic — it changes
#: where frontier queries run, never the trajectory.
_LONG_JUMP = 4

#: Shared default link model: the paper's idealized slot radio. Stateless
#: across runs, so one instance serves every flood.
_IDEAL_LINK = IdealCsmaLink()


@dataclass(frozen=True)
class SimConfig:
    """Engine configuration.

    Attributes
    ----------
    coverage_target:
        Fraction of source-reachable sensors that must hold a packet for
        it to count as delivered (paper default: 0.99).
    max_slots:
        Simulation horizon; ``None`` derives a generous bound from the
        problem size.
    radio:
        Channel behaviour (collisions/capture/overhearing/lossless).
    track_events:
        Keep a full :class:`~repro.sim.events.EventLog` (memory-heavy).
    fast_forward:
        Skip provably-quiescent slots in one jump (the paper's compact
        time scale, Sec. IV-A): after an idle slot the engine asks the
        protocol's quiescence contract
        (:meth:`~repro.protocols.base.FloodingProtocol.next_action_slot`)
        for the next slot with possible traffic and fast-forwards to it,
        advancing link dynamics and energy accounting exactly.
        Trajectories are bit-identical either way — this is purely a
        performance switch, kept so the equivalence is testable.
    """

    coverage_target: float = 0.99
    max_slots: Optional[int] = None
    radio: RadioModel = field(default_factory=RadioModel)
    track_events: bool = False
    fast_forward: bool = True

    def __post_init__(self):
        if not (0.0 < self.coverage_target <= 1.0):
            raise ValueError(
                f"coverage target must be in (0, 1], got {self.coverage_target}"
            )
        if self.max_slots is not None and self.max_slots < 1:
            raise ValueError("horizon must be at least one slot")


@dataclass
class FloodResult:
    """Everything a flood run produced."""

    metrics: FloodMetrics
    has: np.ndarray
    arrival: np.ndarray
    ledger: EnergyLedger
    events: Optional[EventLog]
    completed: bool

    @property
    def possession(self) -> np.ndarray:
        """Alias for the final (M, n_nodes) possession matrix."""
        return self.has


def _default_horizon(topo: Topology, schedules: ScheduleTable, M: int) -> int:
    """Generous default simulation horizon.

    Scales with the Theorem-2 upper bound inflated by the network's mean
    k-class (loss) plus slack for collision-heavy baselines.
    """
    m = max(int(math.ceil(math.log2(1 + topo.n_sensors))), 1)
    k = max(topo.mean_k_class(), 1.0)
    bound = schedules.period * (2 * m + M) * k
    return int(32 * bound) + 2048


def _raise_invalid_proposal(
    protocol: FloodingProtocol,
    t: int,
    proposals: List[Transmission],
    has: np.ndarray,
    awake_mask: np.ndarray,
) -> None:
    """Cold path: re-run the per-frame checks to raise the precise error.

    The hot path only detects *that* a batch violates a constraint; this
    loop reproduces the historical per-transmission check order so the
    exception (message and which violation wins) is identical to the
    pre-batching engine.
    """
    seen: set = set()
    for tx in proposals:
        if tx.sender in seen:
            raise ValueError(
                f"protocol {protocol.name!r} scheduled two transmissions "
                f"for node {tx.sender} at slot {t}"
            )
        seen.add(tx.sender)
        if not has[tx.packet, tx.sender]:
            raise ValueError(
                f"protocol {protocol.name!r} made node {tx.sender} send "
                f"packet {tx.packet} it does not hold (slot {t})"
            )
        if not awake_mask[tx.receiver]:
            raise ValueError(
                f"protocol {protocol.name!r} targeted sleeping node "
                f"{tx.receiver} at slot {t}"
            )
    raise AssertionError(
        "batch validation flagged a proposal the per-frame checks accept"
    )


class _SlotPipeline:
    """Mutable per-run state plus the staged slot loop of one flood.

    Stage methods mutate the pipeline state and dispatch to the observer
    layer; :meth:`run` strings them together. Only simulation state lives
    here — instrumentation is the observers' business.
    """

    def __init__(
        self,
        topo: Topology,
        schedules: ScheduleTable,
        actual_schedules: ScheduleTable,
        workload: FloodWorkload,
        protocol: FloodingProtocol,
        rng: np.random.Generator,
        config: SimConfig,
        dynamics,
        link: LinkModel,
        observers: Sequence[SimObserver],
    ):
        self.topo = topo
        self.schedules = schedules
        self.actual_schedules = actual_schedules
        self.protocol = protocol
        self.rng = rng
        self.config = config
        self.dynamics = dynamics
        self.link = link

        n_nodes = topo.n_nodes
        M = workload.n_packets
        self.eligible = topo.reachable_from_source()
        self.eligible[SOURCE] = False  # coverage counts sensors only
        self.n_eligible = int(self.eligible.sum())
        if self.n_eligible == 0:
            raise ValueError("no sensor is reachable from the source")
        self.need_count = coverage_threshold(
            self.n_eligible, config.coverage_target
        )

        self.has = np.zeros((M, n_nodes), dtype=bool)
        self.arrival = np.full((M, n_nodes), -1, dtype=np.int64)
        self.covered = np.zeros(M, dtype=np.int64)  # eligible sensors holding p
        self.generated = workload.generation_slots()
        # Injection cursor: packets sorted by (generation slot, index) —
        # generation slots are nondecreasing, so injection consumes this
        # list monotonically instead of rescanning all M packets per slot.
        order = np.argsort(self.generated, kind="stable")
        self._inject_order = [int(p) for p in order]
        self._inject_slots = [int(s) for s in self.generated[order]]
        self._inject_cursor = 0
        self.first_tx = np.full(M, -1, dtype=np.int64)
        self.completed_at = np.full(M, -1, dtype=np.int64)
        self.n_pending = M  # packets not yet at coverage target
        self.elapsed = 0

        self.view = SimView(topo, schedules, workload, self.has, self.arrival)

        # Preallocated wake-mask scratch for proposal validation: an O(1)
        # boolean lookup per receiver instead of rebuilding a Python set
        # from the awake array every slot. The sender mask plays the same
        # role for the duplicate-sender check (no sort, no allocation).
        self._awake_mask = np.zeros(n_nodes, dtype=bool)
        self._actual_mask = np.zeros(n_nodes, dtype=bool)
        self._sender_mask = np.zeros(n_nodes, dtype=bool)

        # Per-phase wall-time profiler, detected by marker attribute so
        # the loop can time stages directly (observer hooks see events,
        # not stage boundaries).
        self._profiler = next(
            (ob for ob in observers if getattr(ob, "phase_profiler", False)),
            None,
        )

        # Per-hook observer fan-out, resolved once: a hook nobody
        # overrides costs nothing per slot.
        self._slot_obs = overriders_of(observers, "on_slot")
        self._idle_obs = overriders_of(observers, "on_idle_span")
        self._inject_obs = overriders_of(observers, "on_inject")
        self._tx_obs = overriders_of(observers, "on_tx")
        self._rx_obs = overriders_of(observers, "on_reception")
        self._complete_obs = overriders_of(observers, "on_complete")

    # -- stages --------------------------------------------------------

    def inject(self, t: int) -> None:
        """Stage 1: materialise packets whose generation slot arrived.

        Generation slots are nondecreasing, so a monotone cursor over the
        slot-sorted packet list replaces the historical O(M) mask scan;
        ties inject in ascending packet index, exactly as the scan did.
        """
        cur = self._inject_cursor
        slots = self._inject_slots
        if cur >= len(slots) or slots[cur] > t:
            return
        order = self._inject_order
        while cur < len(slots) and slots[cur] <= t:
            p = order[cur]
            self.has[p, SOURCE] = True
            self.arrival[p, SOURCE] = t
            for ob in self._inject_obs:
                ob.on_inject(t, p)
            cur += 1
        self._inject_cursor = cur
        # Source possession changed: invalidate frontier-offer caches.
        self.view.state_version += 1

    def wake_sets(self, t: int):
        """Stage 2: believed and actual wake sets for this slot."""
        awake = self.schedules.awake_at(t)
        actually_awake = (
            awake if self.actual_schedules is self.schedules
            else self.actual_schedules.awake_at(t)
        )
        return awake, actually_awake

    def propose(self, t: int, awake: np.ndarray) -> TxBatch:
        """Stage 3: the protocol commits this slot's transmission batch."""
        if awake.size:
            return self.protocol.propose_batch(t, awake, self.view)
        return TxBatch.empty()

    def validate(self, t: int, batch: TxBatch, awake: np.ndarray) -> None:
        """Stage 4: batch mask checks of the model's hard constraints.

        Violations divert to a cold path that replays the per-frame
        checks for an exact, historically-ordered error message.
        """
        mask = self._awake_mask
        mask[awake] = True
        senders = batch.senders
        smask = self._sender_mask
        smask[senders] = True
        no_dups = int(np.count_nonzero(smask)) == len(batch)
        smask[senders] = False
        ok = (
            no_dups
            and self.has[batch.packets, batch.senders].all()
            and mask[batch.receivers].all()
        )
        if not ok:
            try:
                _raise_invalid_proposal(
                    self.protocol, t, batch.to_transmissions(), self.has, mask
                )
            finally:
                mask[awake] = False
        mask[awake] = False

    def count_sleep_misses(self, batch: TxBatch, actually_awake) -> int:
        """Clock skew: transmissions whose receiver is really dormant."""
        if self.actual_schedules is self.schedules:
            return 0
        mask = self._actual_mask
        mask[actually_awake] = True
        misses = int(np.count_nonzero(~mask[batch.receivers]))
        mask[actually_awake] = False
        return misses

    def resolve(self, batch: TxBatch, actually_awake) -> SlotOutcome:
        """Stage 5: channel resolution (against reality).

        Delegates to the run's :class:`~repro.net.mac.LinkModel` — the
        MAC layer owns contention, delivery and acknowledgment for the
        slot. The validate stage already proved per-sender uniqueness,
        so the resolver's own duplicate guard is folded away.
        """
        return self.link.resolve(
            batch, self.topo, actually_awake, self.rng, self.config.radio,
            dynamics=self.dynamics, assume_unique_senders=True,
            profiler=self._profiler,
        )

    def apply(
        self, t: int, batch: TxBatch, outcome: SlotOutcome, sleep_misses: int
    ) -> None:
        """Stage 6: update possession/coverage state, dispatch observers."""
        for ob in self._tx_obs:
            ob.on_tx(t, batch, outcome, sleep_misses)

        src_rows = np.flatnonzero(batch.senders == SOURCE)
        if src_rows.size:  # at most one row: one TX per sender
            p = int(batch.packets[src_rows[0]])
            if self.first_tx[p] < 0:
                self.first_tx[p] = t

        has = self.has
        arrival = self.arrival
        for rec in outcome.receptions:
            if has[rec.packet, rec.receiver]:
                for ob in self._rx_obs:
                    ob.on_reception(t, rec, True)
                continue
            has[rec.packet, rec.receiver] = True
            arrival[rec.packet, rec.receiver] = t
            if self.eligible[rec.receiver]:
                self.covered[rec.packet] += 1
                if (
                    self.completed_at[rec.packet] < 0
                    and self.covered[rec.packet] >= self.need_count
                ):
                    self.completed_at[rec.packet] = t
                    self.n_pending -= 1
                    for ob in self._complete_obs:
                        ob.on_complete(t, rec.packet)
            for ob in self._rx_obs:
                ob.on_reception(t, rec, False)

        self.protocol.observe(t, outcome, self.view)
        # Possession and protocol beliefs may have changed: invalidate
        # frontier-offer caches keyed on the state version.
        self.view.state_version += 1

    # -- loop ----------------------------------------------------------

    def run(self, horizon: int) -> None:
        """The slot loop, with compact-time fast-forward over idle gaps.

        After a slot whose proposal came back empty, the protocol's
        quiescence contract (:meth:`FloodingProtocol.next_action_slot`)
        bounds the next slot that could carry traffic; nothing can change
        in between (no receptions, no belief updates, no randomness), so
        the engine jumps there directly — clamped to the next pending
        injection (injected packets change the frontier) and the horizon.
        Link dynamics advance through the gap with the bit-identical
        block form (:meth:`GilbertElliott.advance`) and observers get one
        ``on_idle_span`` event, so trajectories, counters and energy are
        exactly those of the slot-by-slot loop.

        Skip-attempt policy: a frontier query costs about as much as an
        idle slot, so it must not run where it cannot pay off. Idle slots
        always attempt one (the protocol just proved quiescence cheaply);
        traffic slots attempt one only when a long jump landed here — the
        signature of the sparse regime, where each wake event is an
        island and the query routinely buys a period-length jump. In
        dense phases (every slot has traffic, jumps are short or absent)
        traffic slots therefore pay nothing.
        """
        t = 0
        dynamics = self.dynamics
        protocol = self.protocol
        fast_forward = self.config.fast_forward
        inject_slots = self._inject_slots
        n_inject = len(inject_slots)
        long_jump = False  # did a span of >= _LONG_JUMP slots land here?
        prof = self._profiler
        if prof is not None:
            from time import perf_counter

            _tprev = perf_counter()
        while t < horizon and self.n_pending > 0:
            if dynamics is not None:
                dynamics.step()  # links fade regardless of traffic
            self.inject(t)
            awake, actually_awake = self.wake_sets(t)
            for ob in self._slot_obs:
                ob.on_slot(t, awake)
            if prof is not None:
                _now = perf_counter()
                prof.note("inject", _now - _tprev)
                _tprev = _now
            batch = self.propose(t, awake)
            if prof is not None:
                _now = perf_counter()
                prof.note("propose", _now - _tprev)
                _tprev = _now
            t += 1
            if len(batch):
                self.validate(t - 1, batch, awake)
                sleep_misses = self.count_sleep_misses(batch, actually_awake)
                if prof is not None:
                    _now = perf_counter()
                    prof.note("validate", _now - _tprev)
                    _tprev = _now
                outcome = self.resolve(batch, actually_awake)
                if prof is not None:
                    _now = perf_counter()
                    prof.note("resolve", _now - _tprev)
                    _tprev = _now
                self.apply(t - 1, batch, outcome, sleep_misses)
                if prof is not None:
                    _now = perf_counter()
                    prof.note("apply", _now - _tprev)
                    _tprev = _now
                    prof.note_slot()
                if not long_jump:
                    continue
            elif prof is not None:
                prof.note_slot()
            long_jump = False
            if not fast_forward or t >= horizon or self.n_pending == 0:
                continue
            target = protocol.next_action_slot(t - 1, awake, self.view)
            if target <= t:
                if prof is not None:
                    _now = perf_counter()
                    prof.note("fastforward", _now - _tprev)
                    _tprev = _now
                continue
            cur = self._inject_cursor
            if cur < n_inject and inject_slots[cur] < target:
                target = inject_slots[cur]  # > t - 1: inject(t-1) drained
                if target <= t:
                    if prof is not None:
                        _now = perf_counter()
                        prof.note("fastforward", _now - _tprev)
                        _tprev = _now
                    continue
            if target > horizon:
                target = horizon
            if dynamics is not None:
                dynamics.advance(target - t)
            for ob in self._idle_obs:
                ob.on_idle_span(t, target)
            long_jump = target - t >= _LONG_JUMP
            t = target
            if prof is not None:
                _now = perf_counter()
                prof.note("fastforward", _now - _tprev)
                _tprev = _now
        self.elapsed = t


def run_flood(
    topo: Topology,
    schedules: ScheduleTable,
    workload: FloodWorkload,
    protocol: FloodingProtocol,
    rng: np.random.Generator,
    config: Optional[SimConfig] = None,
    measure_transmission_delay: bool = False,
    dynamics=None,
    true_schedules: Optional[ScheduleTable] = None,
    observers: Sequence[SimObserver] = (),
    link: Optional[LinkModel] = None,
    _transmission_delay: Optional[np.ndarray] = None,
) -> FloodResult:
    """Simulate one flood of ``workload.n_packets`` packets.

    Parameters
    ----------
    topo, schedules, workload:
        The static substrate; ``len(schedules)`` must match the topology.
    protocol:
        A fresh protocol instance (protocols carry per-run state).
    rng:
        Stream for channel losses and protocol randomness.
    config:
        Engine configuration (defaults to the paper's).
    measure_transmission_delay:
        Additionally flood each packet in isolation (same substrate,
        forked loss streams) to measure the queueing-free transmission
        delay — the Fig. 9 decomposition. Roughly doubles the run cost.
    dynamics:
        Optional :class:`~repro.net.dynamics.GilbertElliott` bursty-link
        state, stepped once per slot and consulted on every success draw.
    true_schedules:
        Clock-skew injection: ``schedules`` is what the protocol *believes*
        (the advertised working schedules from local synchronization);
        ``true_schedules`` is when radios are really on. Transmissions to
        nodes the sender believed awake but that are actually dormant are
        counted as ``sleep_misses`` (plus ordinary failures) instead of
        protocol errors. Default: no skew — the paper's perfectly
        locally-synchronized model.
    observers:
        Extra :class:`~repro.sim.observers.SimObserver` instances hooked
        into the slot pipeline after the built-in counter/energy/event
        observers. Observers watch; they must not mutate simulation
        state.
    link:
        The :class:`~repro.net.mac.LinkModel` resolving every traffic
        slot. Default: :class:`~repro.net.mac.IdealCsmaLink`, the
        paper's one-winner CSMA oracle (bit-identical to the
        pre-layering engine).
    """
    if len(schedules) != topo.n_nodes:
        raise ValueError(
            f"schedule table covers {len(schedules)} nodes but topology "
            f"has {topo.n_nodes}"
        )
    config = config or SimConfig()
    if true_schedules is not None and len(true_schedules) != topo.n_nodes:
        raise ValueError("true_schedules does not match the topology")
    actual_schedules = true_schedules if true_schedules is not None else schedules
    M = workload.n_packets
    horizon = config.max_slots or _default_horizon(topo, schedules, M)

    counters = FloodCounters()
    ledger = EnergyLedger(topo.n_nodes)
    log_observer = EventLogObserver() if config.track_events else None
    all_observers: List[SimObserver] = [
        CounterObserver(counters), EnergyObserver(ledger)
    ]
    if log_observer is not None:
        all_observers.append(log_observer)
    all_observers.extend(observers)

    if link is None:
        link = _IDEAL_LINK
    pipeline = _SlotPipeline(
        topo, schedules, actual_schedules, workload, protocol, rng, config,
        dynamics, link, all_observers,
    )
    protocol.prepare(topo, schedules, workload, rng)
    pipeline.run(horizon)

    ledger.note_elapsed(pipeline.elapsed)
    ledger.validate()

    transmission_delay = _transmission_delay
    if measure_transmission_delay and transmission_delay is None:
        # Probe floods reconstruct the protocol from its recorded
        # constructor kwargs. ``init_kwargs`` is guaranteed to exist:
        # ``make_protocol`` records it uniformly and the base class
        # carries an empty default, so a protocol's configuration is
        # never silently dropped on the Fig. 9 decomposition path.
        transmission_delay = run_single_packet_floods(
            topo, schedules, workload, type(protocol), rng, config,
            protocol_kwargs=protocol.init_kwargs,
            dynamics=dynamics, true_schedules=true_schedules, link=link,
        )

    metrics = FloodMetrics(
        delays=PacketDelays(
            generated=pipeline.generated,
            first_tx=pipeline.first_tx,
            completed=pipeline.completed_at,
        ),
        tx_attempts=counters.tx_attempts,
        tx_failures=counters.tx_failures,
        collisions=counters.collisions,
        duplicates=counters.duplicates,
        overhears=counters.overhears,
        elapsed_slots=pipeline.elapsed,
        coverage_per_packet=pipeline.covered / pipeline.n_eligible,
        transmission_delay=transmission_delay,
        sleep_misses=counters.sleep_misses,
    )
    result = FloodResult(
        metrics=metrics,
        has=pipeline.has,
        arrival=pipeline.arrival,
        ledger=ledger,
        events=log_observer.log if log_observer is not None else None,
        completed=bool(pipeline.n_pending == 0),
    )
    for ob in overriders_of(all_observers, "on_finish"):
        ob.on_finish(result)
    return result


def run_single_packet_floods(
    topo: Topology,
    schedules: ScheduleTable,
    workload: FloodWorkload,
    protocol_cls,
    rng: np.random.Generator,
    config: Optional[SimConfig] = None,
    protocol_kwargs: Optional[dict] = None,
    n_probes: Optional[int] = None,
    dynamics=None,
    true_schedules: Optional[ScheduleTable] = None,
    link: Optional[LinkModel] = None,
) -> np.ndarray:
    """Queueing-free per-packet delay: flood packets in isolation.

    Used for the Fig. 9 decomposition: the same substrate floods a single
    packet at a time (independent channel draws per run), yielding the
    pure transmission delay the blocking analysis subtracts out. Isolated
    floods are i.i.d. across packets, so ``n_probes`` (default
    ``min(M, 8)``) actual runs are cycled over the ``M`` packet slots
    instead of running all ``M``.

    ``dynamics`` and ``true_schedules`` mirror :func:`run_flood`: probes
    must measure the same channel the parent flood ran on. Each probe
    gets an independent fork of the Gilbert-Elliott state (same burst
    statistics, fresh randomness) so probes stay i.i.d.; the skewed
    ``true_schedules`` are shared as-is because skew is deterministic.
    """
    from ..net.packet import FloodWorkload as _WL

    M = workload.n_packets
    if n_probes is None:
        n_probes = min(M, 8)
    if not (1 <= n_probes <= M):
        raise ValueError(f"n_probes must be in [1, {M}], got {n_probes}")
    kwargs = protocol_kwargs or {}
    probes = np.full(n_probes, -1, dtype=np.int64)
    for i in range(n_probes):
        sub_rng = np.random.default_rng(rng.integers(0, 2**63))
        probe_dynamics = None
        if dynamics is not None:
            # Drawn only on the dynamics path so burst-free runs consume
            # the parent stream exactly as they always have.
            probe_dynamics = dynamics.fork(
                np.random.default_rng(rng.integers(0, 2**63))
            )
        result = run_flood(
            topo,
            schedules,
            _WL(1),
            protocol_cls(**kwargs),
            sub_rng,
            config,
            dynamics=probe_dynamics,
            true_schedules=true_schedules,
            link=link,
        )
        probes[i] = result.metrics.delays.total_delay()[0]
    return probes[np.arange(M) % n_probes]
