"""Slotted simulation clock.

The paper uses a slotted time model (Sec. III-B): the time axis is divided
into equal-length slots, each long enough for one packet transmission. The
clock tracks the current original-time-scale slot index ``t`` and offers
helpers for schedule arithmetic (e.g. "the next slot >= t at which node v
is active", which is where sleep latency comes from).
"""

from __future__ import annotations

__all__ = ["SlottedClock"]


class SlottedClock:
    """Monotone slot counter for the original time scale.

    Parameters
    ----------
    start:
        Initial slot index (defaults to 0, matching the paper's ``t = 0``).
    """

    __slots__ = ("_t",)

    def __init__(self, start: int = 0):
        if start < 0:
            raise ValueError(f"start slot must be non-negative, got {start}")
        self._t = int(start)

    @property
    def now(self) -> int:
        """Current slot index ``t``."""
        return self._t

    def tick(self, slots: int = 1) -> int:
        """Advance the clock by ``slots`` and return the new time."""
        if slots < 1:
            raise ValueError(f"tick must advance at least one slot, got {slots}")
        self._t += int(slots)
        return self._t

    def advance_to(self, t: int) -> int:
        """Jump forward to slot ``t`` (must not move backwards)."""
        if t < self._t:
            raise ValueError(f"cannot move clock backwards: {t} < {self._t}")
        self._t = int(t)
        return self._t

    def reset(self, start: int = 0) -> None:
        """Reset the clock (used between independent floods)."""
        if start < 0:
            raise ValueError(f"start slot must be non-negative, got {start}")
        self._t = int(start)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SlottedClock(t={self._t})"
