"""Reproducible random-number stream management.

Every stochastic component of the simulator (schedule offsets, link loss
draws, protocol tie-breaking, topology synthesis) pulls from its own named
:class:`numpy.random.Generator` stream derived from a single root seed.
This guarantees two properties the experiment harness relies on:

* **Bit-for-bit reproducibility** — the same root seed always produces the
  same simulation trajectory, regardless of how many streams are consumed
  or in which order they are *created*.
* **Cross-configuration variance reduction** — two simulations that differ
  only in, say, the flooding protocol share identical schedule and loss
  streams, so protocol comparisons (Figs. 9-11) are paired rather than
  independent samples.

Streams are derived with :class:`numpy.random.SeedSequence` using the
stream name hashed into spawn keys, which is the NumPy-recommended way of
building independent generators.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, Optional

import numpy as np

__all__ = [
    "RngStreams",
    "derive_seed",
    "replication_streams",
    "spawn_generator",
]


def derive_seed(root_seed: int, name: str) -> np.random.SeedSequence:
    """Derive a child :class:`~numpy.random.SeedSequence` for ``name``.

    The stream name is folded into the entropy pool through a stable CRC32
    hash so that the mapping ``(root_seed, name) -> stream`` does not depend
    on creation order or on Python's per-process string hashing.

    Parameters
    ----------
    root_seed:
        The experiment-level seed.
    name:
        A stable, human-readable stream identifier such as ``"schedule"``
        or ``"linkloss/run3"``.
    """
    tag = zlib.crc32(name.encode("utf-8"))
    return np.random.SeedSequence(entropy=root_seed, spawn_key=(tag,))


def spawn_generator(root_seed: int, name: str) -> np.random.Generator:
    """Create an independent generator for ``(root_seed, name)``."""
    return np.random.default_rng(derive_seed(root_seed, name))


def replication_streams(
    root_seed: int, kind: str, reps: Iterable[int]
) -> "list[np.random.Generator]":
    """One generator per replication, bit-identical to the serial runner's.

    The serial runner names its per-replication streams
    ``f"{kind}/{rep}"`` (e.g. ``"channel/3"``); the batched engine pulls
    the same decorrelated streams through this helper so that every
    replication extracted from an (R, …) batch replays the exact doubles
    its serial counterpart would have drawn.
    """
    return [spawn_generator(root_seed, f"{kind}/{int(rep)}") for rep in reps]


class RngStreams:
    """A lazily-populated registry of named random streams.

    Examples
    --------
    >>> streams = RngStreams(seed=7)
    >>> a = streams.get("schedule")
    >>> b = streams.get("linkloss")
    >>> a is streams.get("schedule")
    True
    >>> float(a.random()) != float(b.random())
    True
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was built from."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            gen = spawn_generator(self._seed, name)
            self._streams[name] = gen
        return gen

    def reset(self, names: Optional[Iterable[str]] = None) -> None:
        """Re-seed the named streams (or all streams) to their initial state.

        Useful when replaying a phase of an experiment without rebuilding
        the whole registry.
        """
        if names is None:
            names = list(self._streams)
        for name in names:
            self._streams[name] = spawn_generator(self._seed, name)

    def fork(self, suffix: str) -> "RngStreams":
        """Return a registry whose streams are independent of this one.

        ``fork`` is used by the experiment runner to give each replication
        its own universe of streams while keeping everything derivable from
        the experiment's root seed.
        """
        tag = zlib.crc32(suffix.encode("utf-8"))
        return RngStreams(seed=(self._seed * 1_000_003 + tag) % (2**63))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RngStreams(seed={self._seed}, streams={sorted(self._streams)})"
