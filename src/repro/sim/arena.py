"""Scratch arenas: reusable buffers for the slot pipeline's hot path.

The batched engine executes tens of thousands of slots per second, and
every slot used to allocate dozens of small NumPy temporaries (gather
outputs, boolean masks, RNG blocks, lexsort keys). A
:class:`ScratchArena` replaces those with borrows from preallocated,
key-addressed backing buffers: after a short warmup every per-slot
buffer request is served from memory already owned by the arena, so the
steady-state slot loop performs (approximately) zero heap allocations —
the property ``repro profile`` measures.

Ownership rules (see DESIGN.md "hot-path memory model"):

* A borrow under key ``k`` is valid **until the next borrow of the same
  key**. Borrowers that need two live buffers use two keys.
* Keys are namespaced by borrowing site (``"radio.jitter"``,
  ``"batch.vkey"``, ...) so independent call sites never alias.
* Returned views carry arbitrary stale content; borrowers must fully
  overwrite before reading (``np.take(..., out=...)``, ``out=`` ufunc
  forms, or explicit fills).
* An arena is single-threaded state. Engines thread one arena through
  one run; the runner keeps a process-global arena so consecutive
  invocations reuse warm buffers (see :func:`global_arena`).

:class:`NullArena` implements the same interface but allocates fresh
memory on every call — the "arena off" mode the aliasing tests use to
prove borrows never change trajectories.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = ["ScratchArena", "NullArena", "global_arena"]


class ScratchArena:
    """Dtype/shape-keyed pool of reusable scratch buffers.

    ``borrows`` counts every buffer request; ``grows`` counts the
    requests that forced a new backing allocation (capacity misses).
    After warmup ``grows`` stays flat — that delta is the engine's
    per-slot allocation count for arena-served buffers.
    """

    __slots__ = ("_store", "_arange", "borrows", "grows")

    def __init__(self) -> None:
        self._store: Dict[str, np.ndarray] = {}
        self._arange = np.empty(0, dtype=np.int64)
        self.borrows = 0
        self.grows = 0

    def buf(self, key: str, size: int, dtype=np.int64) -> np.ndarray:
        """Borrow a 1-D scratch view of exactly ``size`` elements.

        The view aliases the arena's backing buffer for ``key`` and is
        invalidated by the next ``buf``/``buf2`` call with the same key.
        Contents are unspecified — overwrite before reading.
        """
        self.borrows += 1
        backing = self._store.get(key)
        if (
            backing is None
            or backing.size < size
            or backing.dtype != dtype
        ):
            # Geometric growth: a flood's per-slot batch sizes wander,
            # so doubling keeps reallocation count logarithmic.
            cap = max(
                int(size),
                2 * (backing.size if backing is not None else 8),
            )
            backing = np.empty(cap, dtype=dtype)
            self._store[key] = backing
            self.grows += 1
        return backing[:size]

    def buf2(self, key: str, shape: Tuple[int, int], dtype=np.int64) -> np.ndarray:
        """Borrow a C-contiguous 2-D scratch view of ``shape``."""
        rows, cols = shape
        return self.buf(key, rows * cols, dtype).reshape(rows, cols)

    def arange(self, size: int) -> np.ndarray:
        """A read-only-by-convention ``0..size-1`` int64 view.

        Hot loops need ascending index ramps constantly; the arena keeps
        one monotone backing array and hands out prefixes. Callers must
        never write to the returned view.
        """
        if self._arange.size < size:
            self._arange = np.arange(
                max(int(size), 2 * self._arange.size, 16), dtype=np.int64
            )
            self.grows += 1
        self.borrows += 1
        return self._arange[:size]

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by backing buffers."""
        return sum(b.nbytes for b in self._store.values()) + self._arange.nbytes

    def counters(self) -> Tuple[int, int]:
        """Snapshot of ``(borrows, grows)`` for delta metering."""
        return self.borrows, self.grows

    def snapshot(self) -> Dict[str, int]:
        """Metering summary (journaled by ``repro profile``)."""
        return {
            "borrows": self.borrows,
            "grows": self.grows,
            "buffers": len(self._store),
            "nbytes": self.nbytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ScratchArena(buffers={len(self._store)}, "
            f"borrows={self.borrows}, grows={self.grows}, "
            f"nbytes={self.nbytes})"
        )


class NullArena:
    """Allocation-per-borrow stand-in with the :class:`ScratchArena` API.

    Every borrow is a fresh ``np.empty`` — exactly the engine's
    pre-arena behaviour. Running the same flood under a shared
    :class:`ScratchArena` and a :class:`NullArena` must produce
    bit-identical trajectories; the aliasing test suite enforces this.
    """

    __slots__ = ("borrows", "grows")

    def __init__(self) -> None:
        self.borrows = 0
        self.grows = 0

    def buf(self, key: str, size: int, dtype=np.int64) -> np.ndarray:
        self.borrows += 1
        self.grows += 1
        return np.empty(size, dtype=dtype)

    def buf2(self, key: str, shape: Tuple[int, int], dtype=np.int64) -> np.ndarray:
        self.borrows += 1
        self.grows += 1
        return np.empty(shape, dtype=dtype)

    def arange(self, size: int) -> np.ndarray:
        self.borrows += 1
        self.grows += 1
        return np.arange(size, dtype=np.int64)

    @property
    def nbytes(self) -> int:
        return 0

    def counters(self) -> Tuple[int, int]:
        return self.borrows, self.grows

    def snapshot(self) -> Dict[str, int]:
        return {
            "borrows": self.borrows,
            "grows": self.grows,
            "buffers": 0,
            "nbytes": 0,
        }


_GLOBAL: ScratchArena = ScratchArena()


def global_arena() -> ScratchArena:
    """The process-wide arena the runner threads through engine calls.

    Keeping one arena per process means a sweep's second invocation
    starts fully warm: every buffer the first flood grew is reused, and
    the steady-state grow count across a whole grid stays at the first
    cell's warmup.
    """
    return _GLOBAL
