"""Flooding Delay Limit (FDL) — Theorem 1, Theorem 2, Table I, Corollary 1.

All quantities are in original-time slots; ``m = ceil(log2(1+N))`` is the
reliable-link FWL of a single packet and ``T`` the duty-cycle period.

* **Theorem 1** (half-duplex, ``N = 2^n``, ideal links):

    ``E[FDL] = T (m/2 + M - 1)``        if ``M <  m``
    ``E[FDL] = T (m + M/2 - 1)``        if ``M >= m``

* **Theorem 2** (arbitrary ``N``): tight bounds

    ``M <  m``: lower ``T (m/2 + M - 1)``, upper ``T (m + 3M/2 - 3/2)``
    ``M >= m``: lower ``T (m + M/2 - 1)``, upper ``T (2m + M/2 - 1)``

* **Table I** tabulates the per-packet waitings ``W_p``:

    ``M <  m``: ``W_p = m + p``
    ``M >= m``: ``W_p = m + p`` for ``p < m`` and ``W_p = 2m - 1`` after —
    the knee where blocking saturates (Corollary 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .fwl import fwl_reliable

__all__ = [
    "single_packet_waitings",
    "packet_waiting",
    "waiting_table",
    "fwl_multi",
    "fdl_theorem1",
    "fdl_theorem1_series",
    "fdl_theorem2_bounds",
    "fdl_theorem2_series",
    "knee_point",
    "FdlBounds",
]


def single_packet_waitings(n_sensors: int) -> int:
    """``m = ceil(log2(1+N))``: compact slots to flood one packet."""
    return fwl_reliable(n_sensors)


def packet_waiting(packet_index: int, n_sensors: int, n_packets: int) -> int:
    """Table I: total waitings ``W_p`` of packet ``p`` in an ``M``-packet flood.

    For ``p < m`` the packet's dissemination still overlaps the start-up
    ramp and waits ``m + p``; once ``p >= m`` the blocking saturates at
    ``m + (m - 1)`` — the bounded blocking effect of Corollary 1.
    """
    if not (0 <= packet_index < n_packets):
        raise IndexError(f"packet {packet_index} outside [0, {n_packets})")
    m = single_packet_waitings(n_sensors)
    return m + min(packet_index, m - 1)


def waiting_table(n_sensors: int, n_packets: int) -> List[Tuple[int, int]]:
    """Materialized Table I: ``[(p, W_p)]`` for ``p = 0..M-1``."""
    if n_packets < 1:
        raise ValueError(f"need at least one packet, got {n_packets}")
    return [
        (p, packet_waiting(p, n_sensors, n_packets)) for p in range(n_packets)
    ]


def fwl_multi(n_sensors: int, n_packets: int) -> int:
    """Multi-packet FWL: ``min_p (K_p + W_p)`` under Algorithm 1's schedule.

    With sequential injection ``K_p = p``; the proof of Theorem 1 computes
    ``FWL = (M-1) + W_{M-1}``:

      ``M <  m``:  ``m + 2M - 2``
      ``M >= m``:  ``(M-1) + m + (m-1) = 2m + M - 2``
    """
    if n_packets < 1:
        raise ValueError(f"need at least one packet, got {n_packets}")
    m = single_packet_waitings(n_sensors)
    return (n_packets - 1) + m + min(n_packets - 1, m - 1)


def fdl_theorem1(n_sensors: int, n_packets: int, period: int) -> float:
    """Theorem 1's average FDL in original-time slots.

    >>> fdl_theorem1(1024, 5, 5)     # M=5 < m=11: T(m/2 + M - 1)
    47.5
    >>> fdl_theorem1(1024, 20, 5)    # M=20 >= m=11: T(m + M/2 - 1)
    100.0
    """
    if n_packets < 1:
        raise ValueError(f"need at least one packet, got {n_packets}")
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    m = single_packet_waitings(n_sensors)
    if n_packets < m:
        return period * (0.5 * m + n_packets - 1)
    return period * (m + 0.5 * n_packets - 1)


def fdl_theorem1_series(
    n_sensors: int, n_packets_range: np.ndarray, period: int
) -> np.ndarray:
    """Vectorized Theorem 1 over a range of ``M`` (used by Fig. 5)."""
    ms = np.asarray(n_packets_range, dtype=np.float64)
    if np.any(ms < 1):
        raise ValueError("all packet counts must be >= 1")
    m = single_packet_waitings(n_sensors)
    below = period * (0.5 * m + ms - 1)
    above = period * (m + 0.5 * ms - 1)
    return np.where(ms < m, below, above)


@dataclass(frozen=True)
class FdlBounds:
    """Theorem 2's lower/upper FDL bounds (original-time slots)."""

    lower: float
    upper: float

    def __post_init__(self):
        if self.lower > self.upper:
            raise ValueError(
                f"lower bound {self.lower} exceeds upper bound {self.upper}"
            )

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    @property
    def width(self) -> float:
        return self.upper - self.lower


def fdl_theorem2_bounds(n_sensors: int, n_packets: int, period: int) -> FdlBounds:
    """Theorem 2: FDL bounds for arbitrary ``N``.

    >>> b = fdl_theorem2_bounds(1000, 20, 5)
    >>> b.lower <= fdl_theorem1(1000, 20, 5) <= b.upper
    True
    """
    if n_packets < 1:
        raise ValueError(f"need at least one packet, got {n_packets}")
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    m = single_packet_waitings(n_sensors)
    if n_packets < m:
        return FdlBounds(
            lower=period * (0.5 * m + n_packets - 1),
            upper=period * (m + 1.5 * n_packets - 1.5),
        )
    return FdlBounds(
        lower=period * (m + 0.5 * n_packets - 1),
        upper=period * (2 * m + 0.5 * n_packets - 1),
    )


def fdl_theorem2_series(
    n_sensors: int, n_packets_range: np.ndarray, period: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized Theorem 2 bounds (lower, upper) over ``M`` (Fig. 6)."""
    ms = np.asarray(n_packets_range, dtype=np.float64)
    if np.any(ms < 1):
        raise ValueError("all packet counts must be >= 1")
    m = single_packet_waitings(n_sensors)
    lower = np.where(
        ms < m,
        period * (0.5 * m + ms - 1),
        period * (m + 0.5 * ms - 1),
    )
    upper = np.where(
        ms < m,
        period * (m + 1.5 * ms - 1.5),
        period * (2 * m + 0.5 * ms - 1),
    )
    return lower, upper


def knee_point(n_sensors: int) -> int:
    """``M`` at which each FDL curve changes slope: the knee ``M = m``.

    Before the knee the per-packet marginal delay is ``T``; after it,
    ``T/2`` — late packets only pay for the bounded blocking window
    (Corollary 1).
    """
    return single_packet_waitings(n_sensors)
