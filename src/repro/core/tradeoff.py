"""Duty-cycle / lifetime / delay trade-off (paper Sec. V-C and future work).

The paper's closing observation: as the duty ratio shrinks, system
lifetime grows only *linearly* (energy spent is roughly proportional to
radio-on time plus a near-constant transmission-failure cost, Fig. 11),
while flooding delay grows much faster (Figs. 7 and 10). The overall
networking benefit therefore *decreases* beyond some point — it is not
always beneficial to choose an extremely low duty cycle.

The paper leaves "how to configure the duty cycle length so that the
networking gain is maximized" as future work; this module implements that
missing instrument:

* an energy/lifetime model whose structure matches the paper's accounting
  (receiver energy ~ duty ratio; per-flood transmission energy ~ constant
  across duty ratios),
* the analytic delay model from :mod:`repro.core.linkloss`, and
* a networking-gain objective with a grid/refine optimizer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from .linkloss import recurrence_hitting_time

__all__ = [
    "EnergyModel",
    "lifetime_slots",
    "GainWeights",
    "networking_gain",
    "gain_curve",
    "optimal_duty_cycle",
    "TradeoffPoint",
]


@dataclass(frozen=True)
class EnergyModel:
    """Per-node power/energy constants (normalized units).

    Attributes
    ----------
    battery_capacity:
        Total energy budget per node.
    active_power:
        Power while the radio is on (listening/receiving), per slot.
    sleep_power:
        Power while dormant, per slot (timers only; orders of magnitude
        below ``active_power``).
    tx_energy:
        Energy per transmission attempt (success or failure).
    flood_tx_per_slot:
        Average transmission attempts per node per slot attributable to
        flooding traffic. Fig. 11 shows failure counts are nearly constant
        in the duty ratio, so this is modeled independent of duty.
    """

    battery_capacity: float = 1.0e6
    active_power: float = 1.0
    sleep_power: float = 0.01
    tx_energy: float = 1.5
    flood_tx_per_slot: float = 0.01

    def __post_init__(self):
        if self.battery_capacity <= 0:
            raise ValueError("battery capacity must be positive")
        if self.active_power <= 0:
            raise ValueError("active power must be positive")
        if not (0 <= self.sleep_power <= self.active_power):
            raise ValueError("sleep power must be in [0, active power]")
        if self.tx_energy < 0 or self.flood_tx_per_slot < 0:
            raise ValueError("transmission costs must be non-negative")

    def power_draw(self, duty_ratio: float) -> float:
        """Average per-slot energy drain at the given duty ratio."""
        if not (0.0 < duty_ratio <= 1.0):
            raise ValueError(f"duty ratio must be in (0, 1], got {duty_ratio}")
        radio = duty_ratio * self.active_power + (1 - duty_ratio) * self.sleep_power
        return radio + self.flood_tx_per_slot * self.tx_energy


def lifetime_slots(duty_ratio: float, model: Optional[EnergyModel] = None) -> float:
    """Expected node lifetime in slots at a given duty ratio.

    Linear-in-1/duty to leading order, matching the paper's "the system
    lifetime linearly increases as the duty cycle becomes small".
    """
    model = model or EnergyModel()
    return model.battery_capacity / model.power_draw(duty_ratio)


@dataclass(frozen=True)
class GainWeights:
    """Weights of the networking-gain objective.

    ``gain = lifetime_weight * log(lifetime) - delay_weight * log(delay)``

    The log-log form makes the objective scale-free: it rewards relative
    lifetime improvements and punishes relative delay deterioration, which
    is the natural reading of the paper's "overall benefit decreases
    exponentially" remark.
    """

    lifetime_weight: float = 1.0
    delay_weight: float = 1.0

    def __post_init__(self):
        if self.lifetime_weight < 0 or self.delay_weight < 0:
            raise ValueError("weights must be non-negative")
        if self.lifetime_weight == 0 and self.delay_weight == 0:
            raise ValueError("at least one weight must be positive")


@dataclass(frozen=True)
class TradeoffPoint:
    """One evaluated duty ratio on the trade-off curve."""

    duty_ratio: float
    period: int
    lifetime: float
    delay: float
    gain: float


def networking_gain(
    duty_ratio: float,
    n_sensors: int,
    k: float,
    weights: Optional[GainWeights] = None,
    energy: Optional[EnergyModel] = None,
) -> TradeoffPoint:
    """Evaluate the gain objective at one duty ratio."""
    weights = weights or GainWeights()
    period = max(int(round(1.0 / duty_ratio)), 1)
    life = lifetime_slots(duty_ratio, energy)
    delay = float(recurrence_hitting_time(n_sensors, k, period))
    gain = weights.lifetime_weight * math.log(life) - weights.delay_weight * math.log(
        max(delay, 1.0)
    )
    return TradeoffPoint(
        duty_ratio=duty_ratio, period=period, lifetime=life, delay=delay, gain=gain
    )


def gain_curve(
    duty_ratios: Sequence[float],
    n_sensors: int,
    k: float,
    weights: Optional[GainWeights] = None,
    energy: Optional[EnergyModel] = None,
) -> list:
    """Evaluate the gain objective over a duty-ratio sweep."""
    return [
        networking_gain(d, n_sensors, k, weights, energy) for d in duty_ratios
    ]


def optimal_duty_cycle(
    n_sensors: int,
    k: float,
    weights: Optional[GainWeights] = None,
    energy: Optional[EnergyModel] = None,
    duty_min: float = 0.01,
    duty_max: float = 0.5,
    n_grid: int = 64,
) -> TradeoffPoint:
    """The paper's missing instrument: the gain-maximizing duty ratio.

    Grid search over a log-spaced duty-ratio range (delay is only defined
    at integer periods, so the objective is piecewise constant and
    derivative-free search is the right tool), then local refinement over
    the neighboring integer periods.
    """
    if not (0.0 < duty_min < duty_max <= 1.0):
        raise ValueError("need 0 < duty_min < duty_max <= 1")
    if n_grid < 2:
        raise ValueError("grid needs at least two points")
    grid = np.geomspace(duty_min, duty_max, n_grid)
    points = gain_curve(grid, n_sensors, k, weights, energy)
    best = max(points, key=lambda pt: pt.gain)
    # Refine over adjacent integer periods (duty = 1/T).
    for period in (best.period - 1, best.period + 1):
        if period < 1:
            continue
        duty = 1.0 / period
        if not (duty_min <= duty <= duty_max):
            continue
        cand = networking_gain(duty, n_sensors, k, weights, energy)
        if cand.gain > best.gain:
            best = cand
    return best
