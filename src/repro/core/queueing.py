"""Source-side queueing: the ``K_p`` term of the paper's FWL decomposition.

The paper splits a packet's waitings into ``K_p`` — the packets injected
before it (queueing at the source under FCFS) — and ``W_p`` — waitings at
relays. With back-to-back generation ``K_p = p``; with a generation
interval the source becomes a D/D/1 queue whose behaviour switches at the
pipeline-saturation point of Sec. IV-B:

* **service time**: once the network pipelines, the source can push one
  packet per drain period — ``T`` slots for ideal links (Theorem 1's
  ``T/2 * M`` term doubled to the semi-duplex worst case), ``~kT`` for
  k-class links;
* if the generation interval is below the service time, the queue grows
  without bound and late packets see unbounded blocking — the paper's
  "early sent packets may significantly block the transmissions of late
  coming packets" regime;
* above it, packets find an empty queue and ``K_p``'s contribution
  vanishes.

These closed forms are validated against the simulator in the test suite
(the engine's measured first-transmission times are exactly the D/D/1
departure schedule on contention-free substrates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "dd1_start_times",
    "dd1_queue_waits",
    "saturation_interval",
    "queue_is_stable",
    "expected_queue_wait",
]


def dd1_start_times(
    n_packets: int, generation_interval: int, service_time: int
) -> np.ndarray:
    """Deterministic D/D/1 service-start slots.

    Packet ``p`` is generated at ``p * g`` and starts service at
    ``max(gen_p, finish_{p-1})`` with service time ``s``:

    >>> dd1_start_times(4, 0, 5).tolist()
    [0, 5, 10, 15]
    >>> dd1_start_times(4, 10, 5).tolist()
    [0, 10, 20, 30]
    """
    if n_packets < 1:
        raise ValueError("need at least one packet")
    if generation_interval < 0:
        raise ValueError("generation interval must be non-negative")
    if service_time < 1:
        raise ValueError("service time must be >= 1")
    starts = np.empty(n_packets, dtype=np.int64)
    finish_prev = 0
    for p in range(n_packets):
        gen = p * generation_interval
        start = max(gen, finish_prev)
        starts[p] = start
        finish_prev = start + service_time
    return starts


def dd1_queue_waits(
    n_packets: int, generation_interval: int, service_time: int
) -> np.ndarray:
    """Per-packet source-queue waits ``start_p - gen_p`` in slots.

    Back-to-back injection gives the linear ramp ``p * s``; a stable
    queue gives all-zero waits.

    >>> dd1_queue_waits(3, 0, 4).tolist()
    [0, 4, 8]
    >>> dd1_queue_waits(3, 9, 4).tolist()
    [0, 0, 0]
    """
    starts = dd1_start_times(n_packets, generation_interval, service_time)
    gens = np.arange(n_packets, dtype=np.int64) * generation_interval
    return starts - gens


def saturation_interval(k: float, period: int) -> int:
    """Smallest generation interval that keeps the source queue stable.

    One packet drains per ``~kT`` slots once the pipeline is saturated
    (the Sec. IV-B wave advance rate), so intervals below ``round(kT)``
    accumulate unbounded blocking.
    """
    if k < 1.0:
        raise ValueError(f"k-class must be >= 1, got {k}")
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    return max(int(round(k * period)), 1)


def queue_is_stable(
    generation_interval: int, k: float, period: int
) -> bool:
    """Whether the source queue stays bounded (interval >= service)."""
    if generation_interval < 0:
        raise ValueError("generation interval must be non-negative")
    return generation_interval >= saturation_interval(k, period)


def expected_queue_wait(
    n_packets: int, generation_interval: int, k: float, period: int
) -> float:
    """Mean source-queue wait over an ``M``-packet flood.

    Uses the Sec. IV-B drain rate as the D/D/1 service time. For the
    unstable regime this grows linearly in ``M`` — the quantitative form
    of the paper's unbounded-blocking warning.
    """
    service = saturation_interval(k, period)
    waits = dd1_queue_waits(n_packets, generation_interval, service)
    return float(waits.mean())
