"""Exact per-node delay distributions for tree flooding.

For *tree* topologies under the paper's model (single packet, unicast
forwarding parent -> child at the child's active slots, independent
Bernoulli loss per attempt), the delay distribution of every node can be
computed **exactly** by propagating probability mass down the tree:

* the packet becomes forwardable at the parent one slot after its own
  arrival (a slot carries one transmission; reception is applied at the
  slot's end);
* the first delivery attempt happens at the child's next active slot,
  subsequent attempts one period later each;
* attempt ``j`` (0-based) succeeds with probability ``q (1-q)^j``.

On chains this matches the simulator *exactly* — chains have no
contention, no semi-duplex conflicts, and no interference for a single
packet — which makes :class:`ExactTreeDelay` the strongest end-to-end
oracle in the test suite: Monte-Carlo means from the engine must agree
with these distributions within sampling error.

It is also an analysis instrument in its own right: the OF protocol's
Normal approximation of tree delays (:mod:`repro.protocols.tree`) can be
checked against the exact distribution, quantifying when the
approximation is tight (deep trees, moderate loss) and when it is not
(short paths, heavy loss).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..net.schedule import ScheduleTable
from ..net.topology import SOURCE, Topology

__all__ = ["DelayPmf", "ExactTreeDelay"]


@dataclass
class DelayPmf:
    """Probability mass over arrival slots, with explicit tail mass.

    ``pmf[t]`` is the probability of first arrival at original slot
    ``t``; ``tail`` collects the mass beyond the horizon (never negative;
    shrinks geometrically with the horizon).
    """

    pmf: np.ndarray
    tail: float

    def __post_init__(self):
        self.pmf = np.asarray(self.pmf, dtype=np.float64)
        if self.pmf.ndim != 1:
            raise ValueError("pmf must be 1-D")
        if np.any(self.pmf < -1e-12):
            raise ValueError("pmf has negative mass")
        total = float(self.pmf.sum()) + self.tail
        if not (0.0 <= total <= 1.0 + 1e-9):
            raise ValueError(f"total mass {total} outside [0, 1]")

    @property
    def horizon(self) -> int:
        return int(self.pmf.size)

    def total_mass(self) -> float:
        return float(self.pmf.sum()) + self.tail

    def mean(self) -> float:
        """Conditional mean arrival slot given arrival within the horizon."""
        mass = float(self.pmf.sum())
        if mass <= 0.0:
            return float("inf")
        slots = np.arange(self.pmf.size)
        return float((slots * self.pmf).sum() / mass)

    def cdf(self) -> np.ndarray:
        return np.cumsum(self.pmf)

    def quantile(self, q: float) -> int:
        """Smallest slot with CDF >= q (within-horizon arrivals only)."""
        if not (0.0 < q < 1.0):
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        cdf = self.cdf()
        idx = np.searchsorted(cdf, q)
        if idx >= cdf.size:
            raise ValueError(
                f"quantile {q} beyond horizon (within-horizon mass "
                f"{cdf[-1]:.4f}); increase the horizon"
            )
        return int(idx)


class ExactTreeDelay:
    """Exact single-packet arrival distributions on a forwarding tree.

    Parameters
    ----------
    topo:
        The network; only the ``parent`` edges are used.
    schedules:
        Working schedules (single active slot per period).
    parent:
        ``parent[v]`` is v's tree parent (``-1`` for the source /
        unreachable nodes) — e.g. from
        :func:`repro.protocols.tree.build_etx_tree` or
        :func:`repro.protocols.dca.build_delay_optimal_tree`.
    horizon:
        Slots of probability mass to track. The remaining mass lands in
        ``DelayPmf.tail``.
    """

    def __init__(
        self,
        topo: Topology,
        schedules: ScheduleTable,
        parent: np.ndarray,
        horizon: int = 4096,
    ):
        parent = np.asarray(parent, dtype=np.int64)
        if parent.shape != (topo.n_nodes,):
            raise ValueError(
                f"parent must have shape ({topo.n_nodes},), got {parent.shape}"
            )
        if len(schedules) != topo.n_nodes:
            raise ValueError("schedule table does not match the topology")
        if horizon < schedules.period + 2:
            raise ValueError("horizon must cover at least one period")
        self._topo = topo
        self._schedules = schedules
        self._parent = parent
        self._horizon = int(horizon)
        self._pmfs: Optional[List[Optional[DelayPmf]]] = None

    # ------------------------------------------------------------------

    def _hop_kernel(self, child: int, parent_slot: int) -> np.ndarray:
        """P(child first-arrives at t | parent arrived at parent_slot).

        The parent can transmit from ``parent_slot + 1`` on; attempts land
        on the child's active slots; each succeeds with the link PRR.
        Returns a length-``horizon`` array (tail mass implicit).
        """
        q = self._topo.link_prr(int(self._parent[child]), child)
        out = np.zeros(self._horizon)
        if q <= 0.0:
            return out
        t = self._schedules.next_active(child, parent_slot + 1)
        fail = 1.0
        period = self._schedules.period
        while t < self._horizon and fail > 1e-15:
            out[t] = fail * q
            fail *= 1.0 - q
            t += period
        return out

    def compute(self, source_slot: int = 0) -> List[Optional[DelayPmf]]:
        """Propagate arrival distributions down the tree.

        ``source_slot`` is when the packet becomes available at the
        source. Returns one :class:`DelayPmf` per node (None for nodes
        with no tree path).
        """
        n = self._topo.n_nodes
        pmfs: List[Optional[DelayPmf]] = [None] * n
        src = np.zeros(self._horizon)
        if source_slot >= self._horizon:
            raise ValueError("source slot beyond horizon")
        src[source_slot] = 1.0
        pmfs[SOURCE] = DelayPmf(pmf=src, tail=0.0)

        # Children ordered by tree depth (parents first).
        depth = np.full(n, -1, dtype=np.int64)
        depth[SOURCE] = 0
        changed = True
        while changed:
            changed = False
            for v in range(n):
                p = int(self._parent[v])
                if v != SOURCE and p >= 0 and depth[p] >= 0 and depth[v] < 0:
                    depth[v] = depth[p] + 1
                    changed = True

        order = [v for v in np.argsort(depth, kind="stable").tolist()
                 if depth[v] > 0]
        for v in order:
            p = int(self._parent[v])
            parent_pmf = pmfs[p]
            assert parent_pmf is not None
            out = np.zeros(self._horizon)
            tail = parent_pmf.tail
            nonzero = np.flatnonzero(parent_pmf.pmf > 1e-15)
            for a in nonzero.tolist():
                kernel = self._hop_kernel(v, a)
                out += parent_pmf.pmf[a] * kernel
                tail += parent_pmf.pmf[a] * max(
                    1.0 - float(kernel.sum()), 0.0
                )
            pmfs[v] = DelayPmf(pmf=out, tail=min(tail, 1.0))
        self._pmfs = pmfs
        return pmfs

    # ------------------------------------------------------------------

    def node_pmf(self, node: int) -> DelayPmf:
        if self._pmfs is None:
            self.compute()
        pmf = self._pmfs[node]
        if pmf is None:
            raise ValueError(f"node {node} has no tree path from the source")
        return pmf

    def expected_arrival(self, node: int) -> float:
        """Exact conditional expected arrival slot of ``node``."""
        return self.node_pmf(node).mean()

    def expected_flood_makespan(self, coverage: float = 1.0) -> float:
        """Expected slot by which ``coverage`` of reachable sensors arrived.

        Uses the independence approximation across leaves (exact on a
        chain where the deepest node dominates).
        """
        if not (0.0 < coverage <= 1.0):
            raise ValueError(f"coverage must be in (0, 1], got {coverage}")
        if self._pmfs is None:
            self.compute()
        reach = [
            v for v in range(1, self._topo.n_nodes)
            if self._pmfs[v] is not None
        ]
        if not reach:
            raise ValueError("no reachable sensors")
        need = max(int(np.ceil(coverage * len(reach))), 1)
        # P(covered count >= need by slot t) via per-node CDFs assuming
        # independence; expected makespan = sum_t P(not done by t).
        cdfs = np.vstack([self._pmfs[v].cdf() for v in reach])
        expect = 0.0
        for t in range(self._horizon):
            col = cdfs[:, t]
            # Normal approximation of the Poisson-binomial count.
            mu = float(col.sum())
            var = float((col * (1 - col)).sum())
            if var <= 1e-12:
                p_done = 1.0 if mu >= need else 0.0
            else:
                from math import erf, sqrt

                z = (mu - need + 0.5) / sqrt(var)
                p_done = 0.5 * (1 + erf(z / sqrt(2)))
            expect += 1.0 - p_done
            if p_done > 1.0 - 1e-9:
                break
        return expect
