"""The paper's analytical contribution: FWL/FDL theory, Algorithm 1,
branching-process machinery, link-loss recurrence, and the duty-cycle
trade-off instrument."""

from .branching import (
    OffspringLaw,
    doubling_law,
    hitting_time,
    limit_tail_bound,
    limit_variance,
    simulate_normalized_limit,
    simulate_population,
)
from .compact_time import CompactTimeline, expected_fdl_from_fwl, max_fdl_from_fwl
from .fdl import (
    FdlBounds,
    fdl_theorem1,
    fdl_theorem1_series,
    fdl_theorem2_bounds,
    fdl_theorem2_series,
    fwl_multi,
    knee_point,
    packet_waiting,
    single_packet_waitings,
    waiting_table,
)
from .fwl import blocking_window, empirical_fwl, fwl_lossy, fwl_mu, fwl_reliable
from .linkloss import (
    delay_inflation_factor,
    delay_vs_duty_cycle,
    effective_k,
    growth_rate,
    pipeline_saturated,
    predicted_delay,
    predicted_delay_asymptotic,
    recurrence_hitting_time,
    simulate_recurrence,
)
from .exact import DelayPmf, ExactTreeDelay
from .queueing import (
    dd1_queue_waits,
    dd1_start_times,
    expected_queue_wait,
    queue_is_stable,
    saturation_interval,
)
from .matrix_flood import (
    MatrixFloodResult,
    MatrixFloodSimulator,
    classify_slot,
    split_half_duplex,
)
from .tradeoff import (
    EnergyModel,
    GainWeights,
    TradeoffPoint,
    gain_curve,
    lifetime_slots,
    networking_gain,
    optimal_duty_cycle,
)

__all__ = [
    "OffspringLaw", "doubling_law", "hitting_time", "limit_tail_bound",
    "limit_variance", "simulate_normalized_limit", "simulate_population",
    "CompactTimeline", "expected_fdl_from_fwl", "max_fdl_from_fwl",
    "FdlBounds", "fdl_theorem1", "fdl_theorem1_series", "fdl_theorem2_bounds",
    "fdl_theorem2_series", "fwl_multi", "knee_point", "packet_waiting",
    "single_packet_waitings", "waiting_table",
    "blocking_window", "empirical_fwl", "fwl_lossy", "fwl_mu", "fwl_reliable",
    "delay_inflation_factor", "delay_vs_duty_cycle", "effective_k",
    "growth_rate", "pipeline_saturated", "predicted_delay",
    "predicted_delay_asymptotic", "recurrence_hitting_time",
    "simulate_recurrence",
    "DelayPmf", "ExactTreeDelay",
    "dd1_queue_waits", "dd1_start_times", "expected_queue_wait",
    "queue_is_stable", "saturation_interval",
    "MatrixFloodResult", "MatrixFloodSimulator", "classify_slot",
    "split_half_duplex",
    "EnergyModel", "GainWeights", "TradeoffPoint", "gain_curve",
    "lifetime_slots", "networking_gain", "optimal_duty_cycle",
]
