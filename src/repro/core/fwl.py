"""Flooding Waiting Limit (FWL) — Lemma 2 and its empirical estimator.

FWL counts the minimum number of FCFS-imposed waitings needed before the
last copy of a packet is received (compact-time slots). Lemma 2:

    ``E[FWL] = ceil( log2(1+N) / log2(mu) )``

with ``mu = E[X_1] in (1, 2]`` the branching mean (``mu = 1 + q`` for
per-transmission success probability ``q``). For reliable links
(``mu = 2``) this collapses to the w.h.p. bound of Eq. (6):

    ``FWL = ceil( log2(1+N) )``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .branching import OffspringLaw, doubling_law, hitting_time

__all__ = [
    "fwl_reliable",
    "fwl_lossy",
    "fwl_mu",
    "empirical_fwl",
    "blocking_window",
]


def fwl_reliable(n_sensors: int) -> int:
    """Eq. (6): ``FWL = ceil(log2(1+N))`` for reliable links.

    >>> fwl_reliable(1024)
    11
    >>> fwl_reliable(1)
    1
    """
    if n_sensors < 1:
        raise ValueError(f"need at least one sensor, got {n_sensors}")
    return math.ceil(math.log2(1 + n_sensors))


def fwl_mu(n_sensors: int, mu: float) -> int:
    """Lemma 2: ``E[FWL] = ceil(log2(1+N) / log2(mu))`` for branching mean ``mu``.

    ``mu`` must lie in (1, 2]: at least some transmissions succeed
    (``mu > 1``) and at most one new copy is spawned per holder per slot
    (``mu <= 2``).

    >>> fwl_mu(1024, 2.0)
    11
    >>> fwl_mu(1024, 1.5)
    18
    """
    if n_sensors < 1:
        raise ValueError(f"need at least one sensor, got {n_sensors}")
    if not (1.0 < mu <= 2.0):
        raise ValueError(f"mu must be in (1, 2], got {mu}")
    return math.ceil(math.log2(1 + n_sensors) / math.log2(mu))


def fwl_lossy(n_sensors: int, success_prob: float) -> int:
    """FWL for homogeneous per-transmission success probability ``q``.

    Plugs ``mu = 1 + q`` into Lemma 2. As ``q -> 0`` the FWL diverges —
    the paper's remark that lossy links make FWL unbounded.

    >>> fwl_lossy(1024, 1.0)
    11
    """
    if not (0.0 < success_prob <= 1.0):
        raise ValueError(f"success probability must be in (0, 1], got {success_prob}")
    return fwl_mu(n_sensors, 1.0 + success_prob)


def empirical_fwl(
    n_sensors: int,
    success_prob: float,
    n_ensembles: int,
    rng: np.random.Generator,
    law: Optional[OffspringLaw] = None,
) -> np.ndarray:
    """Monte-Carlo FWL samples from the branching model.

    Simulates the Galton-Watson population until it reaches ``1 + N`` and
    returns the hitting times; their mean validates Lemma 2 (tests check
    agreement within the lemma's ceil-rounding slack).
    """
    if law is None:
        law = doubling_law(success_prob)
    times = hitting_time(law, target=1 + n_sensors, n_ensembles=n_ensembles, rng=rng)
    if np.any(times < 0):
        raise RuntimeError("some ensembles failed to reach the target population")
    return times


def blocking_window(n_sensors: int) -> int:
    """Corollary 1's bounded blocking window: ``ceil(log2(1+N)) - 1``.

    A packet's flooding delay is affected only by this many packets
    immediately before it; beyond that, multi-packet flooding pipelines.

    >>> blocking_window(1024)
    10
    """
    return max(fwl_reliable(n_sensors) - 1, 0)
