"""Galton-Watson branching machinery behind Lemma 1 and Lemma 2.

The compact-time dissemination of one packet forms a Galton-Watson
process: the population at compact slot ``c`` is the number of nodes that
hold the packet, and each holder independently "reproduces" by keeping its
copy and delivering (or failing to deliver) one new copy. With link
success probability ``q``, each individual has offspring 2 with
probability ``q`` and offspring 1 otherwise, so the offspring mean is
``mu = 1 + q`` — exactly the paper's ``1 < mu <= 2``.

Lemma 1 (the Kesten-Stigum/L2 normalization theorem for supercritical
processes): ``X_c / mu^c`` converges a.s. to a random variable ``W`` with
``E[W] = 1`` and ``Var[W] = sigma^2 / (mu^2 - mu)``. This module provides:

* exact offspring-law bookkeeping (:class:`OffspringLaw`),
* a vectorized ensemble simulator (:func:`simulate_population`,
  :func:`simulate_normalized_limit`),
* hitting-time estimation (:func:`hitting_time`) used to check Lemma 2's
  ``E[FWL] = ceil(log2(1+N) / log2(mu))`` empirically, and
* the Chebyshev tail bound the paper invokes
  (:func:`limit_tail_bound`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "OffspringLaw",
    "doubling_law",
    "simulate_population",
    "simulate_normalized_limit",
    "hitting_time",
    "limit_variance",
    "limit_tail_bound",
]


@dataclass(frozen=True)
class OffspringLaw:
    """Discrete offspring distribution of a Galton-Watson process.

    Attributes
    ----------
    counts:
        Support (non-negative integers).
    probs:
        Probabilities matching ``counts`` (must sum to 1).
    """

    counts: Tuple[int, ...]
    probs: Tuple[float, ...]

    def __post_init__(self):
        if len(self.counts) != len(self.probs) or not self.counts:
            raise ValueError("counts and probs must be equal-length and non-empty")
        if any(c < 0 for c in self.counts):
            raise ValueError("offspring counts must be non-negative")
        if any(p < 0 for p in self.probs):
            raise ValueError("probabilities must be non-negative")
        total = float(sum(self.probs))
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"probabilities must sum to 1, got {total}")

    @property
    def mean(self) -> float:
        """Offspring mean ``mu``."""
        return float(sum(c * p for c, p in zip(self.counts, self.probs)))

    @property
    def variance(self) -> float:
        """Offspring variance ``sigma^2``."""
        mu = self.mean
        return float(sum(p * (c - mu) ** 2 for c, p in zip(self.counts, self.probs)))

    @property
    def is_supercritical(self) -> bool:
        """Whether the process grows (``mu > 1``)."""
        return self.mean > 1.0

    def sample_totals(
        self, population: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Total offspring of ``population[i]`` parents in ensemble ``i``.

        Vectorized: for each support atom ``c`` we draw a binomial split of
        the parents, then weight by ``c``. This is exact (multinomial
        thinning) and avoids per-individual sampling.
        """
        population = np.asarray(population, dtype=np.int64)
        remaining = population.copy()
        totals = np.zeros_like(population)
        prob_left = 1.0
        for c, p in zip(self.counts[:-1], self.probs[:-1]):
            if prob_left <= 0:
                break
            take = rng.binomial(remaining, min(p / prob_left, 1.0))
            totals += c * take
            remaining -= take
            prob_left -= p
        totals += self.counts[-1] * remaining
        return totals


def doubling_law(success_prob: float) -> OffspringLaw:
    """The flooding offspring law: duplicate w.p. ``q``, persist otherwise.

    Every holder keeps its copy and adds one more when its transmission
    succeeds, so offspring is 2 w.p. ``q`` and 1 w.p. ``1-q``; the mean is
    ``mu = 1 + q`` in (1, 2], matching the paper's definition.
    """
    if not (0.0 < success_prob <= 1.0):
        raise ValueError(f"success probability must be in (0, 1], got {success_prob}")
    if success_prob == 1.0:
        return OffspringLaw(counts=(2,), probs=(1.0,))
    return OffspringLaw(counts=(1, 2), probs=(1.0 - success_prob, success_prob))


def simulate_population(
    law: OffspringLaw,
    n_generations: int,
    n_ensembles: int,
    rng: np.random.Generator,
    initial: int = 1,
) -> np.ndarray:
    """Simulate population trajectories.

    Returns an ``(n_generations + 1, n_ensembles)`` int array; row ``c`` is
    the population at compact slot ``c`` in each ensemble (row 0 is the
    initial population).
    """
    if n_generations < 0:
        raise ValueError("n_generations must be non-negative")
    if n_ensembles < 1:
        raise ValueError("need at least one ensemble")
    if initial < 1:
        raise ValueError("initial population must be at least 1")
    out = np.empty((n_generations + 1, n_ensembles), dtype=np.int64)
    out[0] = initial
    for c in range(n_generations):
        out[c + 1] = law.sample_totals(out[c], rng)
    return out


def simulate_normalized_limit(
    law: OffspringLaw,
    n_generations: int,
    n_ensembles: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Samples of the Lemma 1 limit ``W ~ lim X_c / mu^c``.

    Runs the ensemble for ``n_generations`` and returns
    ``X_c / mu^c`` at the final generation; for supercritical laws this is
    an (asymptotically unbiased) sample of ``W``.
    """
    if not law.is_supercritical:
        raise ValueError("normalized limit requires a supercritical law (mu > 1)")
    pops = simulate_population(law, n_generations, n_ensembles, rng)
    return pops[-1].astype(np.float64) / (law.mean**n_generations)


def hitting_time(
    law: OffspringLaw,
    target: int,
    n_ensembles: int,
    rng: np.random.Generator,
    max_generations: int = 10_000,
) -> np.ndarray:
    """First compact slot at which the population reaches ``target``.

    This is the empirical FWL of Lemma 2 for a population-capped flood:
    ``min { c : X_c >= 1 + N }`` with ``target = 1 + N``.

    Returns an ``(n_ensembles,)`` int array; ensembles that never reach
    the target within ``max_generations`` get ``-1`` (impossible for
    supercritical laws with ``counts >= 1``).
    """
    if target < 1:
        raise ValueError("target population must be >= 1")
    population = np.ones(n_ensembles, dtype=np.int64)
    times = np.full(n_ensembles, -1, dtype=np.int64)
    times[population >= target] = 0
    pending = times < 0
    for c in range(1, max_generations + 1):
        if not pending.any():
            break
        population[pending] = law.sample_totals(population[pending], rng)
        newly = pending & (population >= target)
        times[newly] = c
        pending &= ~newly
    return times


def limit_variance(law: OffspringLaw) -> float:
    """Lemma 1's variance of the a.s. limit: ``sigma^2 / (mu^2 - mu)``."""
    mu = law.mean
    if mu <= 1.0:
        raise ValueError("limit variance is defined for supercritical laws only")
    return law.variance / (mu**2 - mu)


def limit_tail_bound(law: OffspringLaw, alpha: float) -> float:
    """The paper's Chebyshev bound: ``Pr{W > alpha} < sigma^2 / ((alpha-1)^2 (mu^2-mu))``.

    Used to argue ``log2((1+N)/W) ~ log2(1+N)`` w.h.p.; note the bound is
    vacuous (>= 1) for alpha close to 1, exactly as in the paper.
    """
    if alpha <= 1.0:
        raise ValueError("the bound applies for alpha > 1 (E[W] = 1)")
    return limit_variance(law) / ((alpha - 1.0) ** 2)
