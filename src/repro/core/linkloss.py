"""Impact of link loss on flooding delay (paper Sec. IV-B).

With homogeneous *k-class* links (a packet needs about ``k`` transmissions
to cross a link) and duty-cycle period ``T``, a failed transmission costs
a full sleep latency before the retry, so a copy spreads roughly every
``k*T`` original slots. The dissemination count then obeys the delayed
recurrence

    ``X(t+1) <= X(t) + X(t - kT)``        (paper Eq. (7))

whose characteristic (eigen) equation is

    ``lambda^(kT+1) = lambda^(kT) + 1``    (paper Eq. (8)).

The largest positive root ``lambda*`` is the asymptotic per-slot growth
factor; the flooding delay to cover ``1+N`` nodes is predicted by the
hitting time of the recurrence (computed exactly by iteration) or by the
asymptotic form ``log(1+N) / log(lambda*)``.

This module provides both, plus the Fig. 7/Fig. 10 series builders and
the pipeline-saturation test behind the paper's observation that high
loss destroys the bounded-blocking property of Corollary 1.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import brentq

__all__ = [
    "growth_rate",
    "recurrence_hitting_time",
    "simulate_recurrence",
    "predicted_delay",
    "predicted_delay_asymptotic",
    "delay_vs_duty_cycle",
    "effective_k",
    "pipeline_saturated",
    "delay_inflation_factor",
]


def _characteristic_delay(k: float, period: int) -> int:
    """The recurrence lag ``round(k * T)`` in slots (>= 1)."""
    if k < 1.0:
        raise ValueError(f"k-class must be >= 1, got {k}")
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    return max(int(round(k * period)), 1)


def growth_rate(k: float, period: int) -> float:
    """Largest positive root of ``lambda^(kT+1) - lambda^(kT) - 1 = 0``.

    The root lies in ``(1, 2]``: at ``lambda = 1`` the polynomial is
    ``-1 < 0`` and at ``lambda = 2`` it is ``2^(kT) (2 - 1) - 1 >= 1 > 0``,
    so a Brent bracket on ``[1, 2]`` always converges. For ``kT = 1``
    (perfect links at 100% duty) the equation is ``lambda^2 = lambda + 1``
    with the golden-ratio root.

    >>> round(growth_rate(1.0, 1), 6)
    1.618034
    """
    lag = _characteristic_delay(k, period)

    def poly(lam: float) -> float:
        return lam ** (lag + 1) - lam**lag - 1.0

    return float(brentq(poly, 1.0 + 1e-12, 2.0, xtol=1e-12, rtol=1e-14))


def simulate_recurrence(
    k: float, period: int, n_slots: int, initial: float = 1.0
) -> np.ndarray:
    """Iterate ``X(t+1) = X(t) + X(t - kT)`` for ``n_slots`` slots.

    ``X(t) = initial`` for ``t <= kT`` (one copy — the source — until the
    first successful delivery lands). Returns the length-``n_slots + 1``
    trajectory. This is the *equality* version of the paper's inequality,
    i.e. the optimistic envelope used as the delay lower bound.
    """
    if n_slots < 0:
        raise ValueError("n_slots must be non-negative")
    if initial < 1.0:
        raise ValueError("initial population must be >= 1")
    lag = _characteristic_delay(k, period)
    x = np.empty(n_slots + 1, dtype=np.float64)
    x[: min(lag + 1, n_slots + 1)] = initial
    for t in range(lag, n_slots):
        x[t + 1] = x[t] + x[t - lag]
    return x


def recurrence_hitting_time(
    n_sensors: int, k: float, period: int, max_slots: Optional[int] = None
) -> int:
    """Exact hitting time: first ``t`` with ``X(t) >= 1 + N``.

    This is the Fig. 7 predictor — the minimum original-time flooding
    delay of one packet under k-class links at duty cycle ``1/T``.
    """
    if n_sensors < 1:
        raise ValueError(f"need at least one sensor, got {n_sensors}")
    lag = _characteristic_delay(k, period)
    if max_slots is None:
        # Generous cap: asymptotic estimate plus slack.
        lam = growth_rate(k, period)
        max_slots = int(4 * (lag + math.log(1 + n_sensors) / math.log(lam))) + 64
    target = 1 + n_sensors
    # Iterate lazily so huge targets stop early.
    history = [1.0] * (lag + 1)
    if history[0] >= target:
        return 0
    for t in range(lag, max_slots):
        nxt = history[t] + history[t - lag]
        history.append(nxt)
        if nxt >= target:
            return t + 1
    raise RuntimeError(
        f"population did not reach {target} within {max_slots} slots"
    )


def predicted_delay(n_sensors: int, k: float, period: int) -> int:
    """Paper Fig. 7 / Fig. 10 predicted flooding delay (original slots).

    Alias of :func:`recurrence_hitting_time`, named for discoverability.
    """
    return recurrence_hitting_time(n_sensors, k, period)


def predicted_delay_asymptotic(n_sensors: int, k: float, period: int) -> float:
    """Closed-form estimate ``log(1+N) / log(lambda*)``.

    Accurate for large ``N``; tests check it tracks the exact hitting
    time within the recurrence's warm-up transient (``~kT`` slots).
    """
    if n_sensors < 1:
        raise ValueError(f"need at least one sensor, got {n_sensors}")
    lam = growth_rate(k, period)
    return math.log(1 + n_sensors) / math.log(lam)


def delay_vs_duty_cycle(
    n_sensors: int,
    duty_cycles: Sequence[float],
    k_classes: Sequence[float],
) -> np.ndarray:
    """Fig. 7 series: predicted delay for each (k, duty-cycle) pair.

    Returns an ``(len(k_classes), len(duty_cycles))`` int array.
    """
    out = np.empty((len(k_classes), len(duty_cycles)), dtype=np.int64)
    for i, k in enumerate(k_classes):
        for j, duty in enumerate(duty_cycles):
            if not (0.0 < duty <= 1.0):
                raise ValueError(f"duty cycle must be in (0, 1], got {duty}")
            period = max(int(round(1.0 / duty)), 1)
            out[i, j] = recurrence_hitting_time(n_sensors, k, period)
    return out


def effective_k(prr_values: np.ndarray) -> float:
    """Network-effective k-class for the heterogeneous case.

    The paper extends the homogeneous analysis to heterogeneous networks
    by simulation; for the analytic lower bound we fold the link ensemble
    into one effective class, ``E[1/q]`` over usable links — the mean
    per-link expected transmission count.
    """
    prr = np.asarray(prr_values, dtype=np.float64)
    prr = prr[prr > 0.0]
    if prr.size == 0:
        raise ValueError("no usable links")
    if np.any(prr > 1.0):
        raise ValueError("PRR values must be <= 1")
    return float((1.0 / prr).mean())


def pipeline_saturated(
    n_sensors: int, k: float, period: int, generation_interval: int
) -> bool:
    """Whether per-packet service outpaces injection (blocking unbounded).

    The paper's negative result: when the time consumed flooding a single
    packet exceeds the source's generation gap, early packets block late
    ones without bound and the Corollary 1 window no longer applies. We
    compare the per-packet *service rate* of the pipeline (one packet
    drained per ``T`` slots once saturated, from Theorem 1's ``T/2 * M``
    term doubled to the semi-duplex worst case) against the injection
    rate.
    """
    if generation_interval < 0:
        raise ValueError("generation interval must be non-negative")
    # Once lossy, a packet's wave advances one compact step per ~kT slots,
    # and the pipeline drains one packet per ~kT slots in steady state.
    drain_per_packet = _characteristic_delay(k, period)
    return drain_per_packet > generation_interval


def delay_inflation_factor(k: float, period: int) -> float:
    """How much link loss magnifies the duty-cycle delay.

    Ratio of the lossy growth exponent to the lossless one at the same
    ``T``: ``log(lambda*(1, T)) / log(lambda*(k, T))``. Equals 1 for
    perfect links and grows without bound as ``k`` grows — the paper's
    "link loss significantly magnifies the negative impact of the duty
    cycle".
    """
    lossless = math.log(growth_rate(1.0, period))
    lossy = math.log(growth_rate(k, period))
    return lossless / lossy
