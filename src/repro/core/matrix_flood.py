"""Algorithm 1: matrix-based multi-packet flooding on the compact time scale.

The paper's constructive proof that the FWL is achievable (Sec. IV-A-1):

* Nodes sit on a ring of ``N`` residues; the source occupies residue 0 and
  sensor ``N`` receives at residue 0 (the algorithm's "if the target is 0,
  deliver to node N" rule). Sensors ``1..N-1`` are their own residues.
* At compact slot ``c``, every node ``i`` in ``0..N-1`` with something to
  send transmits to residue ``(2^(c mod n) + i) mod N`` — a hypercube-style
  doubling schedule (``N = 2^n``).
* The source injects packet ``p`` at compact slot ``c = p``.
* Each node forwards ``f(i, c)``: its most recently *received* packet that
  has not **expired**. Packet ``p`` expires at compact slot
  ``K_p + ceil(log2(N+1)) = p + m``: by then its wave has reached everyone,
  so transmitting it further is wasted — expiry is what lets fresh packets
  overtake stale copies and keeps the pipeline full.

With full-duplex radios (assumption I) every packet ``p`` completes in
exactly ``m`` compact slots (slots ``p .. p+m-1``), so ``M`` packets
finish in ``M + m - 1`` compact slots — Lemma 3.

Relaxing full-duplex (Theorem 1): slots where some node both transmits and
receives ("type-2" slots) are split into two half-slots; because all
transmissions in a slot share one ring offset, the send/receive conflict
chains are paths or even cycles and an alternating 2-coloring always
schedules them in two halves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .fwl import fwl_reliable

__all__ = [
    "MatrixFloodResult",
    "MatrixFloodSimulator",
    "split_half_duplex",
    "classify_slot",
]


@dataclass
class MatrixFloodResult:
    """Outcome of a matrix-flood run.

    Attributes
    ----------
    n_sensors, n_packets:
        Problem size (``N`` and ``M``).
    compact_slots:
        Compact slots consumed until every packet reached every node.
    half_duplex_slots:
        Slot count after expanding type-2 slots into two halves (equals
        ``compact_slots`` plus the number of type-2 slots).
    completion_slot:
        ``completion_slot[p]`` is the compact slot during which packet
        ``p``'s last copy was delivered.
    possession_history:
        ``history[c]`` is the ``(M, 1+N)`` possession matrix **at the
        beginning** of compact slot ``c`` (the paper's ``X_p^{(c)}``
        stacked over packets); recorded only when requested.
    transmissions:
        Per-slot transmission lists ``(sender, receiver, packet)`` — the
        nonzero entries of the paper's ``S^{(c)}`` matrices.
    """

    n_sensors: int
    n_packets: int
    compact_slots: int
    half_duplex_slots: int
    completion_slot: np.ndarray
    possession_history: Optional[List[np.ndarray]] = None
    transmissions: List[List[Tuple[int, int, int]]] = field(default_factory=list)

    @property
    def m(self) -> int:
        """``ceil(log2(1+N))``, the single-packet FWL."""
        return fwl_reliable(self.n_sensors)

    @property
    def achieves_lemma3(self) -> bool:
        """Whether the run hit the Lemma 3 limit ``M + m - 1`` exactly."""
        return self.compact_slots == self.n_packets + self.m - 1

    def per_packet_waitings(self) -> np.ndarray:
        """Compact slots each packet spent in flight (injection included)."""
        injections = np.arange(self.n_packets)
        return self.completion_slot - injections + 1


class MatrixFloodSimulator:
    """Deterministic executor of Algorithm 1 (and its half-duplex variant).

    Parameters
    ----------
    n_sensors:
        ``N``; the full-duplex optimality guarantee requires ``N = 2^n``
        (assumption II), but the simulator runs for any ``N >= 1`` so that
        the Theorem 2 experiments can probe non-power-of-two sizes.
    """

    def __init__(self, n_sensors: int):
        if n_sensors < 1:
            raise ValueError(f"need at least one sensor, got {n_sensors}")
        self.n_sensors = int(n_sensors)
        self.m = fwl_reliable(self.n_sensors)

    @property
    def is_power_of_two(self) -> bool:
        return self.n_sensors & (self.n_sensors - 1) == 0

    def _ring_offset(self, c: int) -> int:
        """Transmission stride at compact slot ``c``: ``2^(c mod n)``."""
        if self.n_sensors == 1:
            return 1
        n_bits = max(int(math.ceil(math.log2(self.n_sensors))), 1)
        return 2 ** (c % n_bits)

    def run(
        self,
        n_packets: int,
        record_history: bool = False,
        max_slots: Optional[int] = None,
    ) -> MatrixFloodResult:
        """Execute Algorithm 1 until all packets reach all nodes.

        Parameters
        ----------
        n_packets:
            ``M``, injected sequentially (packet ``p`` at compact slot ``p``).
        record_history:
            Keep per-slot possession matrices (Fig. 3 reproduction).
        max_slots:
            Safety bound; defaults to a generous multiple of the Lemma 3
            limit.
        """
        if n_packets < 1:
            raise ValueError(f"need at least one packet, got {n_packets}")
        N, M, m = self.n_sensors, int(n_packets), self.m
        if max_slots is None:
            max_slots = 4 * (M + m) + 16

        n_nodes = 1 + N
        has = np.zeros((M, n_nodes), dtype=bool)
        arrival = np.full((M, n_nodes), -1, dtype=np.int64)
        completion = np.full(M, -1, dtype=np.int64)

        history: Optional[List[np.ndarray]] = [] if record_history else None
        all_transmissions: List[List[Tuple[int, int, int]]] = []

        c = 0
        while c < max_slots:
            # Injection: packet p = c arrives at the source.
            if c < M:
                has[c, 0] = True
                arrival[c, 0] = c
            if history is not None:
                history.append(has.copy())
            if np.all(completion >= 0):
                break

            offset = self._ring_offset(c)
            slot_txs: List[Tuple[int, int, int]] = []
            deliveries: List[Tuple[int, int]] = []  # (packet, node)

            # Senders are ring residues 0..N-1 (the source plus sensors
            # 1..N-1); sensor N is the pure receiver at residue 0.
            for i in range(N):
                pkt = self._select_packet(has, arrival, i, c)
                if pkt is None:
                    continue
                target_residue = (offset + i) % N
                receiver = target_residue if target_residue != 0 else N
                if receiver == i:
                    continue
                slot_txs.append((i, receiver, pkt))
                if not has[pkt, receiver]:
                    deliveries.append((pkt, receiver))

            all_transmissions.append(slot_txs)
            for pkt, receiver in deliveries:
                has[pkt, receiver] = True
                arrival[pkt, receiver] = c
            done = np.flatnonzero((completion < 0) & has.all(axis=1))
            completion[done] = c
            c += 1
        else:  # pragma: no cover - safety net
            raise RuntimeError(
                f"flooding did not complete within {max_slots} compact slots"
            )

        compact_slots = int(completion.max()) + 1
        n_type2 = sum(
            1 for txs in all_transmissions if classify_slot(txs) == 2
        )
        return MatrixFloodResult(
            n_sensors=N,
            n_packets=M,
            compact_slots=compact_slots,
            half_duplex_slots=compact_slots + n_type2,
            completion_slot=completion,
            possession_history=history,
            transmissions=all_transmissions,
        )

    def _select_packet(
        self,
        has: np.ndarray,
        arrival: np.ndarray,
        node: int,
        c: int,
    ) -> Optional[int]:
        """The paper's ``f(i, c)``: freshest non-expired packet at ``node``.

        Non-expired means ``c < p + m`` (expiry time ``K_p + m`` with
        sequential injection ``K_p = p``). Freshness is by arrival slot at
        this node, ties broken toward the larger packet index (the later
        injection).
        """
        held = np.flatnonzero(has[:, node])
        if held.size == 0:
            return None
        live = held[c < held + self.m]
        if live.size:
            arrivals = arrival[live, node]
            best = live[arrivals == arrivals.max()]
            return int(best.max())
        # All held packets have expired. For N = 2^n this only happens
        # after the flood is already complete (Lemma 3 guarantees every
        # packet finishes within its expiry window), but for arbitrary N
        # a wave can outlive its window. Fall back to a deterministic
        # round-robin over packet indices — the offset cycles fastest, the
        # packet advances every n_bits slots, so every (packet, offset)
        # pair recurs and stragglers are guaranteed to be served.
        n_bits = max(int(math.ceil(math.log2(max(self.n_sensors, 2)))), 1)
        probe = (c // n_bits) % (int(held.max()) + 1)
        later = held[held >= probe]
        return int(later.min()) if later.size else int(held.max())


def classify_slot(transmissions: Sequence[Tuple[int, int, int]]) -> int:
    """Classify a compact slot as type 1 or type 2 (Sec. IV-A-2).

    Type 1: every node only transmits, only receives, or idles.
    Type 2: some node both transmits and receives — impossible for a
    semi-duplex radio, so the slot must be split.
    """
    senders = {s for s, _, _ in transmissions}
    receivers = {r for _, r, _ in transmissions}
    return 2 if senders & receivers else 1


def split_half_duplex(
    transmissions: Sequence[Tuple[int, int, int]],
) -> Tuple[List[Tuple[int, int, int]], List[Tuple[int, int, int]]]:
    """Split a type-2 slot's transmissions into two semi-duplex halves.

    Transmissions in one slot form chains/cycles in the "conflict" graph
    (each node sends at most once and receives at most once). Walking each
    chain and alternating halves guarantees that within a half no node
    both sends and receives. Cycles arising from Algorithm 1 have
    power-of-two length, hence even, so the alternation closes; for safety
    the splitter raises on an odd cycle instead of producing an invalid
    half.

    Returns
    -------
    (first_half, second_half):
        Two transmission lists, each internally semi-duplex-feasible.
    """
    txs = list(transmissions)
    next_by_sender: Dict[int, Tuple[int, int, int]] = {}
    for tx in txs:
        if tx[0] in next_by_sender:
            raise ValueError(f"node {tx[0]} transmits twice in one slot")
        next_by_sender[tx[0]] = tx
    incoming = {tx[1] for tx in txs}

    halves: Tuple[List, List] = ([], [])
    assigned: Dict[Tuple[int, int, int], int] = {}

    # Chains start at senders that receive nothing this slot.
    starts = [tx for tx in txs if tx[0] not in incoming]
    for start in starts:
        side = 0
        tx: Optional[Tuple[int, int, int]] = start
        while tx is not None and tx not in assigned:
            assigned[tx] = side
            halves[side].append(tx)
            side ^= 1
            tx = next_by_sender.get(tx[1])

    # Remaining transmissions form pure cycles.
    for tx in txs:
        if tx in assigned:
            continue
        cycle = [tx]
        cur = next_by_sender.get(tx[1])
        while cur is not None and cur is not tx:
            cycle.append(cur)
            cur = next_by_sender.get(cur[1])
        if len(cycle) % 2 == 1:
            raise ValueError(
                "odd transmission cycle cannot be split into two "
                "semi-duplex halves"
            )
        for idx, link in enumerate(cycle):
            side = idx % 2
            assigned[link] = side
            halves[side].append(link)

    for side in (0, 1):
        senders = {s for s, _, _ in halves[side]}
        receivers = {r for _, r, _ in halves[side]}
        if senders & receivers:  # pragma: no cover - defended by construction
            raise AssertionError("half-duplex split produced an invalid half")
    return halves
