"""Original <-> compact time-scale mapping (paper Fig. 2).

Due to duty cycling, most original-time slots carry no transmission at
all. The paper's analysis removes those idle slots: the slots in which at
least one transmission occurs are mapped, in order, onto a *compact time
scale* ``c = 0, 1, 2, ...``. FWL is counted in compact slots; FDL restores
the idle gaps (each compact step costs ``d_h + 1`` original slots, where
``d_h`` is the queueing/sleep wait before the h-th transmission).

:class:`CompactTimeline` implements the mapping both ways plus the gap
statistics the FDL derivation uses (under the paper's optimal policy the
gaps ``d_h`` are uniform on ``{0, ..., T-1}``, giving
``E[FDL | FWL] = T/2 * FWL``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["CompactTimeline", "expected_fdl_from_fwl", "max_fdl_from_fwl"]


class CompactTimeline:
    """Bidirectional map between busy original slots and compact slots.

    Parameters
    ----------
    busy_slots:
        Strictly increasing original-time slot indices in which at least
        one transmission happened. Compact slot ``c`` maps to
        ``busy_slots[c]``.
    """

    def __init__(self, busy_slots: Sequence[int]):
        slots = [int(s) for s in busy_slots]
        for s in slots:
            if s < 0:
                raise ValueError(f"slot indices must be non-negative, got {s}")
        for a, b in zip(slots, slots[1:]):
            if b <= a:
                raise ValueError("busy slots must be strictly increasing")
        self._slots: List[int] = slots

    @classmethod
    def from_activity(cls, active_mask: Sequence[bool]) -> "CompactTimeline":
        """Build from a per-slot activity mask (True = some transmission)."""
        return cls([t for t, busy in enumerate(active_mask) if busy])

    def __len__(self) -> int:
        """Number of compact slots recorded."""
        return len(self._slots)

    @property
    def busy_slots(self) -> List[int]:
        """The original slot of every compact slot (a copy)."""
        return list(self._slots)

    def to_original(self, c: int) -> int:
        """Original slot of compact slot ``c``."""
        if not (0 <= c < len(self._slots)):
            raise IndexError(f"compact slot {c} outside [0, {len(self._slots)})")
        return self._slots[c]

    def to_compact(self, t: int) -> int:
        """Compact slot of original slot ``t``.

        Raises
        ------
        KeyError
            If slot ``t`` was idle (idle slots have no compact image).
        """
        i = bisect_left(self._slots, t)
        if i == len(self._slots) or self._slots[i] != t:
            raise KeyError(f"original slot {t} is idle — no compact image")
        return i

    def is_busy(self, t: int) -> bool:
        """Whether original slot ``t`` carried a transmission."""
        i = bisect_left(self._slots, t)
        return i < len(self._slots) and self._slots[i] == t

    def gaps(self) -> np.ndarray:
        """Waiting gaps ``d_h`` between consecutive busy slots.

        ``gaps()[h]`` is the number of idle slots between compact slots
        ``h`` and ``h+1``; the first entry counts idle slots before the
        first transmission. These are the ``d_h`` of the paper's Eq. (1):
        each compact step costs ``d_h + 1`` original slots.
        """
        if not self._slots:
            return np.empty(0, dtype=np.int64)
        slots = np.asarray(self._slots, dtype=np.int64)
        prev = np.concatenate(([np.int64(-1)], slots[:-1]))
        return slots - prev - 1

    def total_span(self) -> int:
        """Original-time span from slot 0 through the last busy slot.

        Equals ``sum(d_h + 1)`` over all compact steps — the FDL of Eq. (1)
        when the timeline records a full flood.
        """
        return self._slots[-1] + 1 if self._slots else 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"CompactTimeline(n_busy={len(self._slots)}, span={self.total_span()})"


def expected_fdl_from_fwl(fwl: int, period: int) -> float:
    """``E[FDL | FWL]`` under the paper's optimal policy.

    The proof of Theorem 1 shows that with Algorithm 1's forwarding rule
    the waits ``d_h`` are uniform on ``{0, ..., T-1}``, so each compact
    step costs ``(T-1)/2 + 1`` original slots on average; the paper rounds
    this to the leading-order ``T/2 * FWL`` it states. We keep the paper's
    form for comparability.
    """
    if fwl < 0:
        raise ValueError(f"FWL must be non-negative, got {fwl}")
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    return 0.5 * period * fwl


def max_fdl_from_fwl(fwl: int, period: int) -> int:
    """Worst-case FDL for a given FWL: every wait takes the full period.

    The paper notes there is only a factor-2 gap between the mean and this
    maximum.
    """
    if fwl < 0:
        raise ValueError(f"FWL must be non-negative, got {fwl}")
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    return period * fwl
