"""Working schedules for low-duty-cycle sensors.

Paper model (Sec. III-A): time is slotted; every sensor repeats a periodic
working schedule of period ``T`` slots. Within one period the sensor is
*active* (radio on, can receive) in a small set of slots and *dormant*
otherwise. The paper's normalized analysis uses exactly one active slot per
period, giving duty ratio ``1/T``; the general model allows ``a`` active
slots for duty ratio ``a/T``.

A dormant sensor can still *wake itself to transmit* at any slot (its timer
fires when a neighbor is about to be active), but it can *receive* only in
its own active slots. This asymmetry is what creates sleep latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "WorkingSchedule",
    "ScheduleTable",
    "duty_ratio_to_period",
    "period_to_duty_ratio",
    "random_schedules",
    "slots_until_phase",
    "validate_slot_index",
]


def validate_slot_index(t: int) -> int:
    """Shared guard for every schedule query: slot indices start at 0."""
    if t < 0:
        raise ValueError(f"slot index must be non-negative, got {t}")
    return int(t)


def slots_until_phase(offsets, t: int, period: int):
    """Wait from slot ``t`` until each offset's phase next recurs.

    ``offsets`` may be a scalar or an array of per-node (or per-window)
    phase offsets in ``[0, period)``; the result has the same shape.
    A node already at its phase waits 0 slots.
    """
    return (offsets - t % period) % period


def duty_ratio_to_period(duty_ratio: float) -> int:
    """Convert a duty ratio to the normalized period ``T = round(1/ratio)``.

    The paper's normalized model has one active slot per period, so a 5%
    duty cycle means ``T = 20``.

    >>> duty_ratio_to_period(0.05)
    20
    """
    if not (0.0 < duty_ratio <= 1.0):
        raise ValueError(f"duty ratio must be in (0, 1], got {duty_ratio}")
    period = int(round(1.0 / duty_ratio))
    return max(period, 1)


def period_to_duty_ratio(period: int, active_slots: int = 1) -> float:
    """Duty ratio of a schedule with ``active_slots`` active slots per period.

    >>> period_to_duty_ratio(20)
    0.05
    """
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    if not (1 <= active_slots <= period):
        raise ValueError(
            f"active_slots must be in [1, period], got {active_slots} for period {period}"
        )
    return active_slots / period


@dataclass(frozen=True)
class WorkingSchedule:
    """Periodic active/dormant pattern of one sensor.

    Parameters
    ----------
    period:
        Cycle length ``T`` in slots.
    active_slots:
        Offsets within ``[0, period)`` at which the sensor's radio is on.
        The normalized model uses a single offset.
    """

    period: int
    active_slots: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self):
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {self.period}")
        slots = frozenset(int(s) for s in self.active_slots)
        if not slots:
            raise ValueError("a schedule needs at least one active slot")
        for s in slots:
            if not (0 <= s < self.period):
                raise ValueError(
                    f"active slot {s} outside period [0, {self.period})"
                )
        object.__setattr__(self, "active_slots", slots)

    @classmethod
    def single(cls, period: int, offset: int) -> "WorkingSchedule":
        """The paper's normalized schedule: one active slot per period."""
        return cls(period=period, active_slots=frozenset({offset}))

    @property
    def duty_ratio(self) -> float:
        """Fraction of time the radio is on."""
        return len(self.active_slots) / self.period

    def is_active(self, t: int) -> bool:
        """Whether the sensor can receive in original-time slot ``t``."""
        t = validate_slot_index(t)
        return (t % self.period) in self.active_slots

    def next_active(self, t: int) -> int:
        """The earliest slot ``>= t`` in which the sensor is active.

        This is the sleep-latency primitive: a sender holding a packet for
        this sensor at time ``t`` must wait until ``next_active(t)``.
        """
        t = validate_slot_index(t)
        phase = t % self.period
        base = t - phase
        # Candidates this period...
        best: Optional[int] = None
        for s in self.active_slots:
            cand = base + s if s >= phase else base + self.period + s
            if best is None or cand < best:
                best = cand
        assert best is not None
        return best

    def next_active_after(self, t: int) -> int:
        """The earliest active slot strictly after ``t`` (for retransmission)."""
        return self.next_active(t + 1)

    def active_slots_in(self, t_start: int, t_end: int) -> List[int]:
        """All active slots in the half-open window ``[t_start, t_end)``."""
        if t_end < t_start:
            raise ValueError(f"empty window: [{t_start}, {t_end})")
        out: List[int] = []
        t = self.next_active(t_start)
        while t < t_end:
            out.append(t)
            t = self.next_active(t + 1)
        return out

    def sleep_latency_from(self, t: int) -> int:
        """Slots a sender must wait from ``t`` before this node can receive."""
        return self.next_active(t) - t


class ScheduleTable:
    """Vectorized schedule store for a whole network.

    The simulator's hot path asks "which nodes wake at slot ``t``" once per
    slot; doing that through per-node Python objects would dominate the run
    time. ``ScheduleTable`` stores the normalized single-active-slot model
    in flat NumPy arrays and precomputes the wake list for each phase of the
    common period.

    All sensors share the same period ``T`` (the paper's setting). The
    source (node 0) is conventionally always-on but the table still assigns
    it an offset; protocols never route *to* the source so this is harmless.
    """

    def __init__(self, period: int, offsets: Sequence[int]):
        self.period = int(period)
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self.offsets = np.asarray(offsets, dtype=np.int64)
        if self.offsets.ndim != 1:
            raise ValueError("offsets must be a 1-D sequence")
        if self.offsets.size == 0:
            raise ValueError("schedule table needs at least one node")
        if np.any((self.offsets < 0) | (self.offsets >= self.period)):
            raise ValueError("offsets must lie in [0, period)")
        self.n_nodes = int(self.offsets.size)
        # wake_lists[phase] -> array of node ids active at that phase.
        self.wake_lists: List[np.ndarray] = [
            np.flatnonzero(self.offsets == phase) for phase in range(self.period)
        ]

    @classmethod
    def random(
        cls, n_nodes: int, period: int, rng: np.random.Generator
    ) -> "ScheduleTable":
        """Each node independently picks a uniform random active slot."""
        if n_nodes < 1:
            raise ValueError(f"need at least one node, got {n_nodes}")
        offsets = rng.integers(0, period, size=n_nodes)
        return cls(period=period, offsets=offsets)

    @classmethod
    def from_duty_ratio(
        cls, n_nodes: int, duty_ratio: float, rng: np.random.Generator
    ) -> "ScheduleTable":
        """Random schedules at the requested duty ratio (normalized model)."""
        return cls.random(n_nodes, duty_ratio_to_period(duty_ratio), rng)

    @property
    def duty_ratio(self) -> float:
        return 1.0 / self.period

    def awake_at(self, t: int) -> np.ndarray:
        """Node ids whose active slot matches slot ``t`` (ascending order)."""
        return self.wake_lists[validate_slot_index(t) % self.period]

    def is_active(self, node: int, t: int) -> bool:
        """Whether ``node`` can receive at slot ``t``."""
        return int(self.offsets[node]) == (t % self.period)

    def next_active(self, node: int, t: int) -> int:
        """Earliest slot ``>= t`` at which ``node`` is active."""
        t = validate_slot_index(t)
        return t + int(slots_until_phase(int(self.offsets[node]), t, self.period))

    def next_active_array(self, t: int) -> np.ndarray:
        """Vectorized :meth:`next_active` for all nodes at once."""
        t = validate_slot_index(t)
        return t + slots_until_phase(self.offsets, t, self.period)

    def next_wake_after(self, t: int, nodes=None) -> np.ndarray:
        """Earliest active slot *strictly after* ``t``, vectorized.

        This is the quiescence-frontier primitive: a protocol that knows
        which receivers it could still serve asks when the earliest of
        them can next receive, and the engine fast-forwards to that slot.
        ``nodes`` restricts the query to an id array (duplicates allowed);
        default is all nodes. A node active at ``t`` itself maps to
        ``t + period`` — "after" is strict, matching
        :meth:`WorkingSchedule.next_active_after`.
        """
        t = validate_slot_index(t)
        offsets = self.offsets if nodes is None else self.offsets[nodes]
        return (t + 1) + slots_until_phase(offsets, t + 1, self.period)

    def schedule_of(self, node: int) -> WorkingSchedule:
        """Materialize the :class:`WorkingSchedule` view of one node."""
        return WorkingSchedule.single(self.period, int(self.offsets[node]))

    def __len__(self) -> int:
        return self.n_nodes

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ScheduleTable(n_nodes={self.n_nodes}, period={self.period}, "
            f"duty={self.duty_ratio:.2%})"
        )


def random_schedules(
    n_nodes: int,
    duty_ratio: float,
    rng: np.random.Generator,
    active_slots: int = 1,
) -> List[WorkingSchedule]:
    """Draw independent random :class:`WorkingSchedule` objects.

    This is the object-level counterpart of
    :meth:`ScheduleTable.from_duty_ratio` for code paths that need the
    richer multi-active-slot model (e.g. the energy/tradeoff analysis).
    """
    if active_slots < 1:
        raise ValueError(f"active_slots must be >= 1, got {active_slots}")
    period = max(int(round(active_slots / duty_ratio)), active_slots)
    schedules = []
    for _ in range(n_nodes):
        chosen: Iterable[int] = rng.choice(period, size=active_slots, replace=False)
        schedules.append(
            WorkingSchedule(period=period, active_slots=frozenset(int(c) for c in chosen))
        )
    return schedules
