"""Topology generators.

Three families cover everything the paper's experiments need:

* **Grids** — regular connectivity for theory sanity checks.
* **Random geometric graphs** — the standard uniform-deployment WSN model.
* **Clustered forest layouts** — inhomogeneous placement used by the
  synthetic GreenOrbs trace (sensors are mounted on trees, which grow in
  patches, so node density varies across the plot).

All generators produce a :class:`~repro.net.topology.Topology` whose link
PRRs come from the physical model in :mod:`repro.net.links`, or perfect
links when ``prr=1.0`` is forced (ideal networks of Sec. IV-A).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from .links import RadioParameters, distance_to_prr
from .topology import Topology

__all__ = [
    "grid_topology",
    "geometric_topology",
    "random_geometric_topology",
    "clustered_positions",
    "positions_to_topology",
    "line_topology",
    "star_topology",
    "binary_tree_topology",
]


def positions_to_topology(
    positions: np.ndarray,
    radio: RadioParameters,
    rng: Optional[np.random.Generator] = None,
    neighbor_threshold: float = 0.1,
    symmetric_shadowing: bool = False,
) -> Topology:
    """Turn planar positions into a lossy-link topology.

    Each directed link gets an independent log-normal shadowing sample
    (or a shared one per node pair when ``symmetric_shadowing``), feeding
    the distance -> RSSI -> PRR chain. Links whose PRR falls below the
    neighbor threshold vanish, which naturally yields irregular radio
    ranges rather than a crisp disc.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"positions must be (n, 2), got {positions.shape}")
    n = positions.shape[0]
    diff = positions[:, None, :] - positions[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=-1))

    if rng is None or radio.shadowing_sigma_db == 0.0:
        shadow = np.zeros((n, n))
    else:
        shadow = rng.normal(0.0, radio.shadowing_sigma_db, size=(n, n))
        if symmetric_shadowing:
            upper = np.triu(shadow, k=1)
            shadow = upper + upper.T

    from .links import rssi_dbm

    rssi = np.asarray(rssi_dbm(dist, radio, shadow), dtype=np.float64)
    prr = distance_to_prr(dist, radio, shadow)
    np.fill_diagonal(prr, 0.0)
    return Topology(
        prr,
        positions=positions,
        neighbor_threshold=neighbor_threshold,
        rssi=rssi,
    )


def grid_topology(
    rows: int,
    cols: int,
    spacing_m: float = 10.0,
    radio: Optional[RadioParameters] = None,
    rng: Optional[np.random.Generator] = None,
    perfect_links: bool = False,
) -> Topology:
    """Regular ``rows x cols`` grid; node 0 (source) at the corner.

    With ``perfect_links`` the four-neighbor lattice gets PRR 1.0 links —
    the "ideal network" of Sec. IV-A.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid needs at least one row and one column")
    xs, ys = np.meshgrid(np.arange(cols), np.arange(rows))
    positions = np.column_stack([xs.ravel(), ys.ravel()]).astype(float) * spacing_m

    if perfect_links:
        n = rows * cols
        prr = np.zeros((n, n))
        for r in range(rows):
            for c in range(cols):
                i = r * cols + c
                if c + 1 < cols:
                    j = r * cols + (c + 1)
                    prr[i, j] = prr[j, i] = 1.0
                if r + 1 < rows:
                    j = (r + 1) * cols + c
                    prr[i, j] = prr[j, i] = 1.0
        return Topology(prr, positions=positions)

    radio = radio or RadioParameters()
    return positions_to_topology(positions, radio, rng)


def random_geometric_topology(
    n_nodes: int,
    area_m: float,
    radio: Optional[RadioParameters] = None,
    rng: Optional[np.random.Generator] = None,
    neighbor_threshold: float = 0.1,
) -> Topology:
    """Uniform random deployment over an ``area_m x area_m`` square.

    The source is placed at the area center (the usual sink placement),
    sensors uniformly at random.
    """
    if n_nodes < 2:
        raise ValueError("need at least a source and one sensor")
    if area_m <= 0:
        raise ValueError("area side must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    positions = rng.uniform(0.0, area_m, size=(n_nodes, 2))
    positions[0] = (area_m / 2.0, area_m / 2.0)
    radio = radio or RadioParameters()
    return positions_to_topology(
        positions, radio, rng, neighbor_threshold=neighbor_threshold
    )


def geometric_topology(
    n_nodes: int,
    area_m: float,
    placement: str = "uniform",
    radio: Optional[RadioParameters] = None,
    rng: Optional[np.random.Generator] = None,
    neighbor_threshold: float = 0.1,
) -> Topology:
    """Bring-your-own-PHY deployment: log-distance path loss on a square.

    The scenario layer's ``geometric`` topology source. Nodes are placed
    over an ``area_m x area_m`` square — ``"uniform"`` (random placement,
    source at the area center, exactly
    :func:`random_geometric_topology`) or ``"grid"`` (a near-square
    lattice spanning the area, with the source swapped to the lattice
    point nearest the center) — and every directed link's PRR comes from
    the log-distance narrowband model in :mod:`repro.net.links`
    (``radio`` carries the path-loss/shadowing/noise constants; the rng
    also draws the per-link shadowing).
    """
    if n_nodes < 2:
        raise ValueError("need at least a source and one sensor")
    if area_m <= 0:
        raise ValueError("area side must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    if placement == "uniform":
        positions = rng.uniform(0.0, area_m, size=(n_nodes, 2))
        positions[0] = (area_m / 2.0, area_m / 2.0)
    elif placement == "grid":
        cols = int(math.ceil(math.sqrt(n_nodes)))
        rows = int(math.ceil(n_nodes / cols))
        xs = np.linspace(0.0, area_m, cols) if cols > 1 \
            else np.array([area_m / 2.0])
        ys = np.linspace(0.0, area_m, rows) if rows > 1 \
            else np.array([area_m / 2.0])
        gx, gy = np.meshgrid(xs, ys)
        positions = np.column_stack([gx.ravel(), gy.ravel()])[:n_nodes]
        center = np.array([area_m / 2.0, area_m / 2.0])
        src = int(np.argmin(((positions - center) ** 2).sum(axis=1)))
        positions[[0, src]] = positions[[src, 0]]
    else:
        raise ValueError(
            f"unknown placement {placement!r} (valid: ['grid', 'uniform'])"
        )
    radio = radio or RadioParameters()
    return positions_to_topology(
        positions, radio, rng, neighbor_threshold=neighbor_threshold
    )


def clustered_positions(
    n_nodes: int,
    area_m: float,
    n_clusters: int,
    cluster_sigma_m: float,
    rng: np.random.Generator,
    background_fraction: float = 0.2,
) -> np.ndarray:
    """Patchy node placement: Gaussian clusters plus a uniform background.

    Models a forest deployment where sensors follow tree patches. A
    ``background_fraction`` of nodes is spread uniformly to keep the
    network connected between patches.
    """
    if n_clusters < 1:
        raise ValueError("need at least one cluster")
    if not (0.0 <= background_fraction <= 1.0):
        raise ValueError("background fraction must be in [0, 1]")
    centers = rng.uniform(0.15 * area_m, 0.85 * area_m, size=(n_clusters, 2))
    positions = np.empty((n_nodes, 2))
    n_background = int(round(background_fraction * n_nodes))
    n_clustered = n_nodes - n_background
    assignments = rng.integers(0, n_clusters, size=n_clustered)
    positions[:n_clustered] = centers[assignments] + rng.normal(
        0.0, cluster_sigma_m, size=(n_clustered, 2)
    )
    positions[n_clustered:] = rng.uniform(0.0, area_m, size=(n_background, 2))
    return np.clip(positions, 0.0, area_m)


def line_topology(n_sensors: int, prr: float = 1.0) -> Topology:
    """Chain source -> 1 -> 2 -> ... (each node linked to its neighbors).

    The worst case for flooding delay; used in tests and examples.
    """
    n = n_sensors + 1
    mat = np.zeros((n, n))
    for i in range(n - 1):
        mat[i, i + 1] = prr
        mat[i + 1, i] = prr
    positions = np.column_stack([np.arange(n, dtype=float), np.zeros(n)])
    return Topology(mat, positions=positions, neighbor_threshold=min(prr, 0.1))


def star_topology(n_sensors: int, prr: float = 1.0) -> Topology:
    """Source at the hub, every sensor one hop away (single-hop flooding)."""
    n = n_sensors + 1
    mat = np.zeros((n, n))
    mat[0, 1:] = prr
    mat[1:, 0] = prr
    return Topology(mat, neighbor_threshold=min(prr, 0.1))


def binary_tree_topology(depth: int, prr: float = 1.0) -> Topology:
    """Complete binary tree rooted at the source.

    ``N = 2^(depth+1) - 2`` sensors; handy for theory checks because the
    binary tree is the naive structure Lemma 2 discusses.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    n = 2 ** (depth + 1) - 1
    mat = np.zeros((n, n))
    for i in range(n):
        for child in (2 * i + 1, 2 * i + 2):
            if child < n:
                mat[i, child] = prr
                mat[child, i] = prr
    return Topology(mat, neighbor_threshold=min(prr, 0.1))
