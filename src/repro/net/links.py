"""Wireless link-quality models.

The paper abstracts a lossy link by its *k-class* (Sec. IV-B): a k-class
link delivers a packet within ``k`` transmissions with high probability.
For a link whose per-transmission packet-reception ratio (PRR) is ``q``,
the expected transmission count is ``1/q``, so the paper's legend pairs
"link quality 50% <-> k = 2", "60% <-> 1.67", "70% <-> 1.42", "80% <-> 1.25".

For the trace-driven substrate we additionally model the physical chain
that produces a PRR in a real deployment (GreenOrbs measures RSSI over six
months and converts it to link quality):

    distance --(log-distance path loss + shadowing)--> RSSI
    RSSI --(SNR)--> bit error rate --> packet reception ratio

The RSSI->PRR conversion uses the standard coherent-FSK/DSSS approximation
used throughout the WSN literature for CC2420-class radios, which yields
the familiar sharp sigmoid with a gray region of intermediate links.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "LinkQuality",
    "RadioParameters",
    "prr_to_k_class",
    "k_class_to_prr",
    "expected_transmissions",
    "path_loss_db",
    "rssi_dbm",
    "snr_to_prr",
    "rssi_to_prr",
    "distance_to_prr",
]

#: Thermal noise floor used for SNR computation (dBm), typical for 2.4 GHz
#: at CC2420 channel bandwidth.
NOISE_FLOOR_DBM = -98.0

#: Default payload size (bytes) for the PRR curve; the paper's one-packet
#: slots correspond to a full data frame.
DEFAULT_FRAME_BYTES = 50


def prr_to_k_class(prr: float) -> float:
    """Map a per-transmission reception ratio to the paper's ``k`` class.

    ``k`` is the expected number of transmissions: ``k = 1/q``.

    >>> round(prr_to_k_class(0.5), 2)
    2.0
    >>> round(prr_to_k_class(0.8), 2)
    1.25
    """
    if not (0.0 < prr <= 1.0):
        raise ValueError(f"PRR must be in (0, 1], got {prr}")
    return 1.0 / prr


def k_class_to_prr(k: float) -> float:
    """Inverse of :func:`prr_to_k_class`.

    >>> round(k_class_to_prr(1.67), 3)
    0.599
    """
    if k < 1.0:
        raise ValueError(f"k-class must be >= 1, got {k}")
    return 1.0 / k


def expected_transmissions(prr: float) -> float:
    """ETX of a link: expected transmissions until first success."""
    return prr_to_k_class(prr)


@dataclass(frozen=True)
class RadioParameters:
    """Physical-layer constants for the synthetic trace generator.

    The defaults describe a CC2420-class 2.4 GHz radio in a forest
    environment (heavy foliage -> large path-loss exponent and shadowing
    variance, matching GreenOrbs' reported link-quality spread).
    """

    tx_power_dbm: float = 0.0
    path_loss_exponent: float = 2.8
    reference_distance_m: float = 1.0
    reference_loss_db: float = 38.0
    shadowing_sigma_db: float = 4.0
    noise_floor_dbm: float = NOISE_FLOOR_DBM
    frame_bytes: int = DEFAULT_FRAME_BYTES

    def __post_init__(self):
        if self.path_loss_exponent <= 0:
            raise ValueError("path loss exponent must be positive")
        if self.reference_distance_m <= 0:
            raise ValueError("reference distance must be positive")
        if self.shadowing_sigma_db < 0:
            raise ValueError("shadowing sigma must be non-negative")
        if self.frame_bytes < 1:
            raise ValueError("frame must be at least one byte")


def path_loss_db(
    distance_m: np.ndarray | float, params: RadioParameters
) -> np.ndarray | float:
    """Log-distance path loss (no shadowing term).

    ``PL(d) = PL(d0) + 10 * eta * log10(d / d0)``.
    """
    d = np.maximum(np.asarray(distance_m, dtype=float), params.reference_distance_m)
    return params.reference_loss_db + 10.0 * params.path_loss_exponent * np.log10(
        d / params.reference_distance_m
    )


def rssi_dbm(
    distance_m: np.ndarray | float,
    params: RadioParameters,
    shadowing_db: np.ndarray | float = 0.0,
) -> np.ndarray | float:
    """Received signal strength for a given distance and shadowing sample."""
    return params.tx_power_dbm - path_loss_db(distance_m, params) + np.asarray(
        shadowing_db, dtype=float
    )


def snr_to_prr(
    snr_db: np.ndarray | float, frame_bytes: int = DEFAULT_FRAME_BYTES
) -> np.ndarray:
    """Packet reception ratio from SNR via the O-QPSK/DSSS BER approximation.

    ``BER = Q(sqrt(2 * SNR_linear))`` per-bit, then
    ``PRR = (1 - BER)^(8 * frame_bytes)``. The constant in front of the SNR
    folds in the DSSS processing gain; the resulting curve has the
    empirical shape: PRR ~ 0 below roughly -3 dB SNR, a steep gray region,
    and PRR ~ 1 above roughly 6 dB.
    """
    snr_lin = np.power(10.0, np.asarray(snr_db, dtype=float) / 10.0)
    # Q(x) = 0.5 * erfc(x / sqrt(2)); vectorized via math.erfc through numpy.
    from scipy.special import erfc  # local import keeps scipy optional at import time

    ber = 0.5 * erfc(np.sqrt(np.maximum(snr_lin, 0.0)))
    prr = np.power(1.0 - np.minimum(ber, 1.0), 8 * frame_bytes)
    return np.clip(prr, 0.0, 1.0)


def rssi_to_prr(
    rssi: np.ndarray | float, params: RadioParameters
) -> np.ndarray:
    """PRR of a link whose long-term mean RSSI is ``rssi`` dBm."""
    snr_db = np.asarray(rssi, dtype=float) - params.noise_floor_dbm - 5.0
    return snr_to_prr(snr_db, params.frame_bytes)


def distance_to_prr(
    distance_m: np.ndarray | float,
    params: RadioParameters,
    shadowing_db: np.ndarray | float = 0.0,
) -> np.ndarray:
    """End-to-end helper: geometry + shadowing -> PRR."""
    return rssi_to_prr(rssi_dbm(distance_m, params, shadowing_db), params)


@dataclass(frozen=True)
class LinkQuality:
    """Quality descriptor of a directed link.

    Attributes
    ----------
    prr:
        Per-transmission packet reception ratio in (0, 1].
    rssi_dbm:
        Long-term mean RSSI the PRR was derived from (NaN when the link was
        specified directly by PRR, e.g. in homogeneous k-class networks).
    """

    prr: float
    rssi_dbm: float = float("nan")

    def __post_init__(self):
        if not (0.0 < self.prr <= 1.0):
            raise ValueError(f"PRR must be in (0, 1], got {self.prr}")

    @property
    def k_class(self) -> float:
        """The paper's k-class of this link (expected transmission count)."""
        return prr_to_k_class(self.prr)

    @property
    def etx(self) -> float:
        """Expected transmission count (alias used by the OF tree builder)."""
        return prr_to_k_class(self.prr)

    @property
    def is_perfect(self) -> bool:
        """Whether the link is lossless (paper's k = 1 class)."""
        return math.isclose(self.prr, 1.0)

    @classmethod
    def from_k_class(cls, k: float) -> "LinkQuality":
        return cls(prr=k_class_to_prr(k))
