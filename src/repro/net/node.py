"""Object-level sensor node state.

The vectorized simulator (:mod:`repro.sim.engine`) keeps network state in
flat arrays for speed; :class:`SensorNode` is the readable object-level
counterpart used by the quickstart API, small-network tests, and the
reference implementations that the array engine is validated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from .packet import FcfsBuffer
from .schedule import WorkingSchedule

__all__ = ["SensorNode", "NodeEnergyCounters"]


@dataclass
class NodeEnergyCounters:
    """Per-node energy-relevant event counts (Sec. V-C accounting).

    The paper's energy argument: receiver-side energy is set by the duty
    cycle (radio-on slots), sender-side energy by transmissions, and the
    *wasted* part by failed transmissions. We count all three.
    """

    tx_attempts: int = 0
    tx_failures: int = 0
    rx_successes: int = 0
    radio_on_slots: int = 0

    @property
    def tx_successes(self) -> int:
        return self.tx_attempts - self.tx_failures

    def merge(self, other: "NodeEnergyCounters") -> None:
        self.tx_attempts += other.tx_attempts
        self.tx_failures += other.tx_failures
        self.rx_successes += other.rx_successes
        self.radio_on_slots += other.radio_on_slots


class SensorNode:
    """Runtime state of one sensor: schedule, buffer, neighbor beliefs.

    Parameters
    ----------
    node_id:
        Network-wide id; 0 is the source.
    schedule:
        The node's working schedule.
    is_source:
        Source nodes generate packets instead of relaying them.
    """

    def __init__(
        self, node_id: int, schedule: WorkingSchedule, is_source: bool = False
    ):
        if node_id < 0:
            raise ValueError(f"node id must be non-negative, got {node_id}")
        self.node_id = int(node_id)
        self.schedule = schedule
        self.is_source = bool(is_source)
        self.buffer = FcfsBuffer()
        self.energy = NodeEnergyCounters()
        #: Which packets this node believes each neighbor already holds
        #: (learned from its own acknowledged transmissions and from
        #: overhearing). Maps neighbor id -> set of packet indices.
        self.believed_coverage: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    # Packet state
    # ------------------------------------------------------------------

    def has_packet(self, packet_index: int) -> bool:
        return packet_index in self.buffer

    def receive(self, packet_index: int, slot: int) -> bool:
        """Deliver a packet to this node; returns False on duplicate."""
        fresh = self.buffer.add(packet_index, slot)
        if fresh:
            self.energy.rx_successes += 1
        return fresh

    def head_packet_for(self, neighbor_holdings: Set[int]) -> Optional[int]:
        """FCFS head-of-line packet for a receiver holding ``neighbor_holdings``."""
        needed = [p for p in self.buffer.packets if p not in neighbor_holdings]
        return self.buffer.head_for(needed)

    # ------------------------------------------------------------------
    # Belief tracking (used by DBAO-style protocols)
    # ------------------------------------------------------------------

    def note_neighbor_has(self, neighbor: int, packet_index: int) -> None:
        """Record evidence that ``neighbor`` possesses ``packet_index``."""
        self.believed_coverage.setdefault(neighbor, set()).add(packet_index)

    def believes_neighbor_has(self, neighbor: int, packet_index: int) -> bool:
        return packet_index in self.believed_coverage.get(neighbor, ())

    # ------------------------------------------------------------------
    # Schedule helpers
    # ------------------------------------------------------------------

    def is_active(self, t: int) -> bool:
        """Whether the node can receive at slot ``t``."""
        return self.schedule.is_active(t)

    def next_wakeup(self, t: int) -> int:
        """Earliest slot >= t at which this node can receive."""
        return self.schedule.next_active(t)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        role = "source" if self.is_source else "sensor"
        return (
            f"SensorNode(id={self.node_id}, {role}, "
            f"buffered={len(self.buffer)}, duty={self.schedule.duty_ratio:.2%})"
        )
