"""The MAC layer of the link stack: pluggable per-slot link models.

:mod:`repro.net.radio` owns the *physics* of one transmission round —
contention, capture, Bernoulli loss. This module owns the *medium
access* policy wrapped around that physics: a :class:`LinkModel` decides
how the slot's committed frames contend for the channel, when each frame
is actually put on air, and what an acknowledgment means. The engines
(:func:`repro.sim.engine.run_flood` and
:func:`repro.sim.batch.run_flood_batch`) resolve every traffic slot
through a link model instead of calling the raw resolver directly, so
the MAC becomes a swappable scenario field (``mac``/``mac_kwargs``)
rather than a hard-coded assumption.

Layer contract
--------------
A link model resolves one wake slot: it receives the validated,
duplicate-free transmission batch, the actual wake set and the
replication's channel stream, and returns the slot's
:class:`~repro.net.radio.SlotOutcome` (or
:class:`~repro.net.radio.RepSlotOutcome` on the batched path). Hard
rules every implementation must keep:

* **One decode per receiver per slot.** The slot is one packet time in
  the paper's model; both engines' apply stages rely on at most one
  reception per (replication, receiver) per slot.
* **Serial-order RNG consumption.** All randomness comes from the
  per-replication stream passed in, and the batched
  :meth:`LinkModel.resolve_reps` must consume each replication's stream
  in exactly the order the serial :meth:`LinkModel.resolve` would — the
  batch-equivalence suite enforces bit-identical extracted
  replications.
* **Frame-level accounting.** ``failures`` lists each committed frame
  that was ultimately not delivered to its addressed receiver (once,
  in batch-row order); ``collisions`` is the subset of those failed
  frames that were collision-destroyed at least once during the slot
  (also at most once per frame). A retrying MAC may see a frame
  collide and still deliver it — that collision was absorbed by the
  MAC and does not surface at the flood level, which keeps the
  :class:`~repro.sim.metrics.FloodMetrics` invariant
  ``collisions <= failures`` intact.

RNG draw order, per contention micro-round
------------------------------------------
:class:`Csma802154Link` maps the 802.15.4 unslotted CSMA-CA state
machine onto sub-slot micro-rounds (one ``aUnitBackoffPeriod`` each).
Within one micro-round the draws are, in order:

1. one combined backoff block ``rng.random(n_redraw)`` for every frame
   (re)entering backoff — CCA-deferred and retry-scheduled frames — in
   batch-row order, with ``backoff = floor(u * 2**BE)``;
2. the raw resolver's draws for the round's carrier-sense winners
   (jitter block, then Bernoulli block — see
   :func:`~repro.net.radio.resolve_slot`).

The batched path synchronizes micro-rounds across replications; since
each replication owns its stream, the per-replication draw sequence is
identical to the serial one regardless of how the other replications
interleave.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional, Tuple

import numpy as np

from .radio import (
    RadioModel,
    RepSlotOutcome,
    SlotOutcome,
    TxBatch,
    csma_select,
    csma_select_reps,
    resolve_slot,
    resolve_slot_reps,
)
from .topology import Topology

__all__ = [
    "LinkModel",
    "IdealCsmaLink",
    "Csma802154Link",
    "MAC_KINDS",
    "MAC_PARAMS",
    "make_link_model",
]


def _default_arena():
    # Lazy import: net must stay importable without sim (mirrors radio).
    from ..sim.arena import NullArena

    return NullArena()


class LinkModel:
    """One slot of medium access: contend → deliver → acknowledge.

    Subclasses implement both engine paths. ``kind`` names the model in
    scenario files; ``params`` echoes the constructor arguments (for
    introspection and error messages).
    """

    #: Scenario-facing name of the model.
    kind: str = "abstract"

    def __init__(self):
        self.params: Dict[str, int] = {}

    def resolve(
        self,
        batch: TxBatch,
        topo: Topology,
        awake,
        rng: np.random.Generator,
        radio: RadioModel,
        dynamics=None,
        assume_unique_senders: bool = False,
        profiler=None,
    ) -> SlotOutcome:
        """Resolve one slot on the serial engine path.

        ``profiler`` (a :class:`~repro.sim.observers.PhaseProfiler` or
        ``None``) receives the model's own backoff/ack accounting time
        under the ``"mac"`` sub-phase — nested inside the engine's
        ``resolve`` phase, so the layered-resolution cost is visible.
        """
        raise NotImplementedError

    def resolve_reps(
        self,
        kk: np.ndarray,
        ss: np.ndarray,
        rr: np.ndarray,
        pp: np.ndarray,
        topo: Topology,
        awake_by_rep,
        rngs,
        radio: RadioModel,
        dynamics=None,
        awake_stack: Optional[np.ndarray] = None,
        arena=None,
        profiler=None,
    ) -> RepSlotOutcome:
        """Resolve one slot across R replications (batched engine path).

        Arguments mirror :func:`~repro.net.radio.resolve_slot_reps`;
        every replication's stream must be consumed exactly as
        :meth:`resolve` would consume it.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v}" for k, v in self.params.items())
        return f"{type(self).__name__}({args})"


class IdealCsmaLink(LinkModel):
    """Today's slot radio, verbatim: the one-winner CSMA oracle.

    Delegates straight to :func:`~repro.net.radio.resolve_slot` /
    :func:`~repro.net.radio.resolve_slot_reps` — bit-identical to the
    pre-layering engines, zero extra RNG draws, no MAC state. The
    ``"mac"`` profiler row is recorded at zero seconds: the ideal link
    has no backoff or acknowledgment bookkeeping of its own.
    """

    kind = "ideal"

    def resolve(self, batch, topo, awake, rng, radio, dynamics=None,
                assume_unique_senders=False, profiler=None):
        if profiler is not None:
            profiler.note("mac", 0.0)
        return resolve_slot(
            batch, topo, awake, rng, radio, dynamics=dynamics,
            assume_unique_senders=assume_unique_senders,
        )

    def resolve_reps(self, kk, ss, rr, pp, topo, awake_by_rep, rngs, radio,
                     dynamics=None, awake_stack=None, arena=None,
                     profiler=None):
        if profiler is not None:
            profiler.note("mac", 0.0)
        return resolve_slot_reps(
            kk, ss, rr, pp, topo, awake_by_rep, rngs, radio,
            dynamics=dynamics, awake_stack=awake_stack, arena=arena,
        )


class Csma802154Link(LinkModel):
    """ContikiOS-style IEEE 802.15.4 unslotted CSMA-CA.

    Default constants are the ContikiOS MAC's: ``macMinBE = 3``,
    ``macMaxBE = 5``, ``macMaxCSMABackoffs = 4``,
    ``macMaxFrameRetries = 3``; ``ack_wait_rounds`` is
    ``macAckWaitDuration`` (864 µs) in ``aUnitBackoffPeriod`` (320 µs)
    units, rounded up to 3.

    One wake slot hosts the whole CSMA exchange as *micro-rounds* of one
    unit backoff period each. Per committed frame the model tracks
    ``(backoff, BE, NB, retries)``:

    * a frame whose backoff expired performs CCA — physical carrier
      sense via :func:`~repro.net.radio.csma_select` in batch-row rank
      order. Busy channel: ``NB += 1``, ``BE = min(BE + 1, macMaxBE)``,
      new backoff; ``NB > macMaxCSMABackoffs`` drops the frame
      (CHANNEL_ACCESS_FAILURE).
    * CCA winners transmit through the raw resolver (hidden terminals
      still collide there). The ACK is implicit: delivery to the
      addressed receiver acknowledges the frame.
    * No ACK within ``ack_wait_rounds``: ``retries += 1``; past
      ``macMaxFrameRetries`` the frame drops, otherwise the CSMA-CA
      procedure restarts (``NB = 0``, ``BE = macMinBE``) after the ack
      wait — the standard's per-retry reset, which also makes the
      schedule livelock-safe: every frame terminates within a bounded
      number of micro-rounds.

    A receiver that decodes a frame (addressed or overheard) is occupied
    for the rest of the slot (turnaround + ACK), preserving the
    one-decode-per-receiver-per-slot contract; senders stay semi-duplex
    for the whole slot.
    """

    kind = "csma_802154"

    def __init__(
        self,
        mac_min_be: int = 3,
        mac_max_be: int = 5,
        max_csma_backoffs: int = 4,
        max_frame_retries: int = 3,
        ack_wait_rounds: int = 3,
    ):
        mac_min_be = int(mac_min_be)
        mac_max_be = int(mac_max_be)
        max_csma_backoffs = int(max_csma_backoffs)
        max_frame_retries = int(max_frame_retries)
        ack_wait_rounds = int(ack_wait_rounds)
        if not (0 <= mac_min_be <= mac_max_be):
            raise ValueError(
                f"need 0 <= mac_min_be <= mac_max_be, got "
                f"mac_min_be={mac_min_be}, mac_max_be={mac_max_be}"
            )
        if mac_max_be > 8:
            raise ValueError(
                f"mac_max_be must be <= 8 (802.15.4 bound), got {mac_max_be}"
            )
        if max_csma_backoffs < 0:
            raise ValueError(
                f"max_csma_backoffs must be >= 0, got {max_csma_backoffs}"
            )
        if max_frame_retries < 0:
            raise ValueError(
                f"max_frame_retries must be >= 0, got {max_frame_retries}"
            )
        if ack_wait_rounds < 0:
            raise ValueError(
                f"ack_wait_rounds must be >= 0, got {ack_wait_rounds}"
            )
        self.mac_min_be = mac_min_be
        self.mac_max_be = mac_max_be
        self.max_csma_backoffs = max_csma_backoffs
        self.max_frame_retries = max_frame_retries
        self.ack_wait_rounds = ack_wait_rounds
        self.params = {
            "mac_min_be": mac_min_be,
            "mac_max_be": mac_max_be,
            "max_csma_backoffs": max_csma_backoffs,
            "max_frame_retries": max_frame_retries,
            "ack_wait_rounds": ack_wait_rounds,
        }

    # -- serial path ---------------------------------------------------

    def resolve(self, batch, topo, awake, rng, radio, dynamics=None,
                assume_unique_senders=False, profiler=None):
        outcome = SlotOutcome()
        if not isinstance(batch, TxBatch):
            if not batch:
                return outcome
            batch = TxBatch.from_transmissions(batch)
        k = len(batch)
        if k == 0:
            return outcome
        t_mac = perf_counter() if profiler is not None else 0.0
        t_phy = 0.0

        senders = batch.senders
        receivers = batch.receivers
        packets = batch.packets
        if not assume_unique_senders and k > 1 \
                and np.unique(senders).size != k:
            raise ValueError("duplicate sender in CSMA batch")

        # Receiver availability for the whole slot: awake, not a
        # committed sender, and not yet occupied by a decoded frame.
        avail = np.zeros(topo.n_nodes, dtype=bool)
        avail[np.asarray(
            awake if isinstance(awake, np.ndarray) else list(awake),
            dtype=np.int64,
        )] = True
        avail[senders] = False

        wait = np.zeros(k, dtype=np.int64)
        be = np.full(k, self.mac_min_be, dtype=np.int64)
        nb = np.zeros(k, dtype=np.int64)
        retries = np.zeros(k, dtype=np.int64)
        alive = np.ones(k, dtype=bool)
        delivered = np.zeros(k, dtype=bool)
        collided = np.zeros(k, dtype=bool)
        pending_draw = np.ones(k, dtype=bool)  # initial backoff draw
        # Sender id -> batch row, for collision attribution (senders are
        # unique within a validated slot batch).
        row_of = np.full(topo.n_nodes, -1, dtype=np.int64)
        row_of[senders] = np.arange(k)

        # Provable bound (belt and braces, never reached): every counted
        # round consumes a CCA attempt or a transmission attempt of at
        # least one ready frame, and each frame owns at most
        # (retries+1) * (backoffs+2) such attempts in total.
        max_rounds = k * (self.max_frame_retries + 1) * (
            self.max_csma_backoffs + 2
        ) + 8
        rounds = 0
        while alive.any() and rounds <= max_rounds:
            live = np.flatnonzero(alive)
            # 1. Backoff (re)draws: one combined block, batch-row order.
            redraw = live[pending_draw[live]]
            if redraw.size:
                u = rng.random(redraw.size)
                wait[redraw] += (u * (1 << be[redraw])).astype(np.int64)
                pending_draw[redraw] = False
            ready = live[wait[live] == 0]
            if ready.size == 0:
                # Quiescent micro-round span: jump it (no draws happen).
                wait[live] -= wait[live].min()
                continue
            rounds += 1
            # 2. CCA: physical carrier sense in batch-row rank order.
            winner_ids, _ = csma_select(senders[ready].tolist(), topo)
            is_win = np.isin(senders[ready], winner_ids)
            blocked = ready[~is_win]
            winners = ready[is_win]
            if blocked.size:
                nb[blocked] += 1
                be[blocked] = np.minimum(be[blocked] + 1, self.mac_max_be)
                dead = blocked[nb[blocked] > self.max_csma_backoffs]
                alive[dead] = False  # CHANNEL_ACCESS_FAILURE
                again = blocked[nb[blocked] <= self.max_csma_backoffs]
                pending_draw[again] = True
            # 3. Transmit the winners through the raw resolver.
            if winners.size:
                sub = TxBatch(
                    senders[winners], receivers[winners], packets[winners]
                )
                if profiler is not None:
                    _phy0 = perf_counter()
                sub_out = resolve_slot(
                    sub, topo, np.flatnonzero(avail), rng, radio,
                    dynamics=dynamics, assume_unique_senders=True,
                )
                if profiler is not None:
                    t_phy += perf_counter() - _phy0
                outcome.receptions.extend(sub_out.receptions)
                # Attribute collision events to frames; they surface in
                # the outcome only for frames that ultimately fail.
                for tx in sub_out.collisions:
                    collided[row_of[tx.sender]] = True
                for rec in sub_out.receptions:
                    avail[rec.receiver] = False  # occupied: turnaround+ACK
                # 4. Implicit ACK: a winner not in the failure list was
                # delivered to its addressed receiver.
                if sub_out.failures:
                    fail_senders = np.fromiter(
                        (tx.sender for tx in sub_out.failures), np.int64,
                        count=len(sub_out.failures),
                    )
                    failed = np.isin(senders[winners], fail_senders)
                else:
                    failed = np.zeros(winners.size, dtype=bool)
                acked = winners[~failed]
                delivered[acked] = True
                alive[acked] = False
                noack = winners[failed]
                if noack.size:
                    retries[noack] += 1
                    dead = noack[retries[noack] > self.max_frame_retries]
                    alive[dead] = False
                    retry = noack[retries[noack] <= self.max_frame_retries]
                    if retry.size:
                        # Per-retry CSMA-CA restart after the ack wait.
                        nb[retry] = 0
                        be[retry] = self.mac_min_be
                        wait[retry] = self.ack_wait_rounds
                        pending_draw[retry] = True
            # 5. One unit backoff period elapses.
            ticking = alive & (wait > 0)
            wait[ticking] -= 1
        alive[:] = False

        fail_rows = np.flatnonzero(~delivered)
        if fail_rows.size:
            txs = batch.to_transmissions()
            outcome.failures.extend(txs[i] for i in fail_rows.tolist())
            outcome.collisions.extend(
                txs[i] for i in fail_rows[collided[fail_rows]].tolist()
            )
        if profiler is not None:
            profiler.note("mac", (perf_counter() - t_mac) - t_phy)
        return outcome

    # -- batched path --------------------------------------------------

    def resolve_reps(self, kk, ss, rr, pp, topo, awake_by_rep, rngs, radio,
                     dynamics=None, awake_stack=None, arena=None,
                     profiler=None):
        T = int(ss.size)
        if T == 0:
            return RepSlotOutcome.empty()
        if arena is None:
            arena = _default_arena()
        t_mac = perf_counter() if profiler is not None else 0.0
        t_phy = 0.0
        n = topo.n_nodes

        # Replication boundaries (kk arrives in ascending groups) and a
        # local group index per frame for the carrier-sense call.
        is_head = arena.buf("mac.is_head", T, np.bool_)
        is_head[0] = True
        np.not_equal(kk[1:], kk[:-1], out=is_head[1:])
        local = arena.buf("mac.local", T, np.int64)
        np.cumsum(is_head, out=local)
        local -= 1
        rep_ids = kk[np.flatnonzero(is_head)]

        # Slot-long receiver availability, one row per *global* rep id
        # (the raw resolver gathers rows by rep id). Mutated as frames
        # are decoded, so it must be a private copy.
        R = int(rep_ids[-1]) + 1
        avail = arena.buf2("mac.avail", (R, n), np.bool_)
        if awake_stack is not None:
            np.copyto(avail, awake_stack[:R])
        else:
            avail[:] = False
            for rep in rep_ids.tolist():
                avail[rep, awake_by_rep[int(rep)]] = True
        avail[kk, ss] = False  # semi-duplex for the whole slot

        wait = arena.buf("mac.wait", T, np.int64)
        be = arena.buf("mac.be", T, np.int64)
        nb = arena.buf("mac.nb", T, np.int64)
        retries = arena.buf("mac.retries", T, np.int64)
        alive = arena.buf("mac.alive", T, np.bool_)
        delivered = arena.buf("mac.delivered", T, np.bool_)
        collided = arena.buf("mac.collided", T, np.bool_)
        pending_draw = arena.buf("mac.pending", T, np.bool_)
        draws = arena.buf("mac.draws", T, np.float64)
        wait[:] = 0
        be[:] = self.mac_min_be
        nb[:] = 0
        retries[:] = 0
        alive[:] = True
        delivered[:] = False
        collided[:] = False
        pending_draw[:] = True

        rec_parts = []  # (rep, receiver, sender, packet, overheard) rounds

        # Same provable bound as the serial path (over all T frames).
        max_rounds = T * (self.max_frame_retries + 1) * (
            self.max_csma_backoffs + 2
        ) + 8
        rounds = 0
        while rounds <= max_rounds:
            live = np.flatnonzero(alive)
            if live.size == 0:
                break
            # 1. Backoff (re)draws: one block per replication, in the
            # serial batch-row order (flat ascending == (rep, row)).
            redraw = live[pending_draw[live]]
            if redraw.size:
                r_kk = kk[redraw]
                heads = np.flatnonzero(
                    np.concatenate(([True], r_kk[1:] != r_kk[:-1]))
                ).tolist()
                heads.append(redraw.size)
                buf = draws[: redraw.size]
                for i in range(len(heads) - 1):
                    lo, hi = heads[i], heads[i + 1]
                    rngs[int(r_kk[lo])].random(out=buf[lo:hi])
                wait[redraw] += (buf * (1 << be[redraw])).astype(np.int64)
                pending_draw[redraw] = False
            ready = live[wait[live] == 0]
            if ready.size == 0:
                wait[live] -= wait[live].min()
                continue
            rounds += 1
            # 2. CCA across replications; within a group the rank order
            # is batch-row order, exactly the serial csma_select input.
            win_mask = csma_select_reps(
                local[ready], ss[ready], topo, arena=arena
            )
            blocked = ready[~win_mask]
            winners = ready[win_mask]
            if blocked.size:
                nb[blocked] += 1
                be[blocked] = np.minimum(be[blocked] + 1, self.mac_max_be)
                dead = blocked[nb[blocked] > self.max_csma_backoffs]
                alive[dead] = False
                again = blocked[nb[blocked] <= self.max_csma_backoffs]
                pending_draw[again] = True
            # 3. Transmit winners; per-replication jitter/Bernoulli
            # draws happen inside, in the serial order.
            if winners.size:
                if profiler is not None:
                    _phy0 = perf_counter()
                sub = resolve_slot_reps(
                    kk[winners], ss[winners], rr[winners], pp[winners],
                    topo, awake_by_rep, rngs, radio, dynamics=dynamics,
                    awake_stack=avail, arena=arena,
                    collect_collision_rows=True,
                )
                if profiler is not None:
                    t_phy += perf_counter() - _phy0
                if sub.rec_rep.size:
                    rec_parts.append((
                        sub.rec_rep, sub.rec_receiver, sub.rec_sender,
                        sub.rec_packet, sub.rec_overheard,
                    ))
                    avail[sub.rec_rep, sub.rec_receiver] = False
                if sub.coll_rows is not None and sub.coll_rows.size:
                    # coll_rows index the winner sub-batch; surface them
                    # only for frames that ultimately fail (below).
                    collided[winners[sub.coll_rows]] = True
                # 4. Implicit ACK via the per-round failure rows; (rep,
                # sender) is unique within the winner sub-batch.
                if sub.fail_rep.size:
                    failed = np.isin(
                        kk[winners] * n + ss[winners],
                        sub.fail_rep * n + sub.fail_sender,
                    )
                else:
                    failed = np.zeros(winners.size, dtype=bool)
                acked = winners[~failed]
                delivered[acked] = True
                alive[acked] = False
                noack = winners[failed]
                if noack.size:
                    retries[noack] += 1
                    dead = noack[retries[noack] > self.max_frame_retries]
                    alive[dead] = False
                    retry = noack[retries[noack] <= self.max_frame_retries]
                    if retry.size:
                        nb[retry] = 0
                        be[retry] = self.mac_min_be
                        wait[retry] = self.ack_wait_rounds
                        pending_draw[retry] = True
            # 5. One unit backoff period elapses.
            live = np.flatnonzero(alive)
            ticking = live[wait[live] > 0]
            wait[ticking] -= 1
        alive[:] = False

        if rec_parts:
            rec_rep = np.concatenate([p[0] for p in rec_parts])
            rec_recv = np.concatenate([p[1] for p in rec_parts])
            rec_send = np.concatenate([p[2] for p in rec_parts])
            rec_pack = np.concatenate([p[3] for p in rec_parts])
            rec_over = np.concatenate([p[4] for p in rec_parts])
            # Regroup by replication (stable: keeps the serial per-rep
            # round-major, receiver-ascending order).
            order = np.argsort(rec_rep, kind="stable")
            rec_rep = rec_rep[order]
            rec_recv = rec_recv[order]
            rec_send = rec_send[order]
            rec_pack = rec_pack[order]
            rec_over = rec_over[order]
        else:
            rec_rep = rec_recv = rec_send = rec_pack = np.empty(0, np.int64)
            rec_over = np.empty(0, bool)
        fail_rows = np.flatnonzero(~delivered[:T])
        coll_fail = fail_rows[collided[fail_rows]]
        collision_counts: Dict[int, int] = {}
        if coll_fail.size:
            reps_c, counts_c = np.unique(kk[coll_fail], return_counts=True)
            collision_counts = {
                int(r): int(c) for r, c in zip(reps_c, counts_c)
            }
        out = RepSlotOutcome(
            rec_rep, rec_recv, rec_send, rec_pack, rec_over,
            kk[fail_rows], ss[fail_rows], collision_counts,
        )
        if profiler is not None:
            profiler.note("mac", (perf_counter() - t_mac) - t_phy)
        return out


#: Scenario-facing registry: MAC kind -> constructor.
MAC_KINDS: Dict[str, type] = {
    "ideal": IdealCsmaLink,
    "csma_802154": Csma802154Link,
}

#: Per-kind allowed ``mac_kwargs`` keys (scenario validation).
MAC_PARAMS: Dict[str, Tuple[str, ...]] = {
    "ideal": (),
    "csma_802154": ("mac_min_be", "mac_max_be", "max_csma_backoffs",
                    "max_frame_retries", "ack_wait_rounds"),
}


def make_link_model(kind: str, **kwargs) -> LinkModel:
    """Instantiate the link model named ``kind`` with ``kwargs``."""
    try:
        cls = MAC_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown MAC kind {kind!r} (valid: {sorted(MAC_KINDS)})"
        ) from None
    return cls(**kwargs)
