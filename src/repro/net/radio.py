"""Semi-duplex radio: contention, collisions, capture, and loss.

The radio layer takes the set of transmissions a protocol committed to in
one slot and resolves what every awake receiver actually hears:

* **Semi-duplex** — a transmitting node never receives in the same slot
  (the engine removes senders from the awake set before resolution).
* **Collisions** — when two or more in-range transmissions overlap at an
  awake receiver, they destroy each other (hidden-terminal losses arise
  exactly this way: two senders outside carrier-sense range of each other
  address the same receiver).
* **Capture effect** (optional) — the strongest overlapping signal
  survives a collision if it dominates the next-strongest sufficiently;
  disabled by default to match the paper's model, but exposed because the
  related work (Flash flooding) builds on it.
* **Bernoulli loss** — a transmission that survives contention is received
  with probability equal to the link PRR (this is the paper's k-class
  behaviour: a PRR-q link needs on average 1/q attempts).
* **Overhearing** (optional) — an awake node in range of a transmission
  addressed to somebody else may still receive the packet; DBAO's
  suppression machinery relies on this.

Carrier sense is *not* the radio's job: it happens before commitment, in
the protocols (see :func:`carrier_sense_groups` used by DBAO/OF).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .topology import Topology

#: Lazily-built fallback arena (allocates per borrow) for callers that
#: pass no arena. Imported lazily: ``repro.sim`` imports this module at
#: package-init time, so a top-level import would be circular.
_null_arena = None


def _default_arena():
    global _null_arena
    if _null_arena is None:
        from ..sim.arena import NullArena

        _null_arena = NullArena()
    return _null_arena


__all__ = [
    "Transmission",
    "TxBatch",
    "Reception",
    "SlotOutcome",
    "RadioModel",
    "RepSlotOutcome",
    "resolve_slot",
    "resolve_slot_reps",
    "carrier_sense_groups",
    "csma_select",
    "csma_select_reps",
]


@dataclass(frozen=True)
class Transmission:
    """One committed unicast: ``sender`` sends ``packet`` to ``receiver``."""

    sender: int
    receiver: int
    packet: int

    def __post_init__(self):
        if self.sender == self.receiver:
            raise ValueError("sender and receiver must differ")
        if self.packet < 0:
            raise ValueError(f"packet index must be non-negative, got {self.packet}")


class TxBatch:
    """Structure-of-arrays view of one slot's committed transmissions.

    The batch is the engine's native currency: protocols propose one,
    the engine validates it with vectorized mask operations, and
    :func:`resolve_slot` resolves it without materialising per-frame
    Python objects on the hot path. ``senders``, ``receivers`` and
    ``packets`` are parallel int64 arrays; row ``i`` is the unicast
    ``senders[i] -> receivers[i]`` carrying ``packets[i]``.

    A batch is logically immutable — callers must not mutate the arrays
    after construction (the object caches its :class:`Transmission`
    materialisation).
    """

    __slots__ = ("senders", "receivers", "packets", "_txs")

    def __init__(self, senders, receivers, packets):
        senders = np.ascontiguousarray(senders, dtype=np.int64)
        receivers = np.ascontiguousarray(receivers, dtype=np.int64)
        packets = np.ascontiguousarray(packets, dtype=np.int64)
        if not (senders.ndim == receivers.ndim == packets.ndim == 1):
            raise ValueError("TxBatch arrays must be one-dimensional")
        if not (senders.size == receivers.size == packets.size):
            raise ValueError("TxBatch arrays must have equal length")
        if senders.size:
            if np.any(senders == receivers):
                raise ValueError("sender and receiver must differ")
            if packets.min() < 0:
                raise ValueError("packet index must be non-negative")
        self.senders = senders
        self.receivers = receivers
        self.packets = packets
        self._txs: Optional[List[Transmission]] = None

    @classmethod
    def empty(cls) -> "TxBatch":
        return cls(
            np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0, np.int64)
        )

    @classmethod
    def from_transmissions(
        cls, transmissions: Iterable[Transmission]
    ) -> "TxBatch":
        txs = transmissions if isinstance(transmissions, list) else list(transmissions)
        n = len(txs)
        batch = cls(
            np.fromiter((tx.sender for tx in txs), np.int64, count=n),
            np.fromiter((tx.receiver for tx in txs), np.int64, count=n),
            np.fromiter((tx.packet for tx in txs), np.int64, count=n),
        )
        batch._txs = txs
        return batch

    def to_transmissions(self) -> List[Transmission]:
        """Materialise (and cache) the per-frame dataclass view."""
        if self._txs is None:
            self._txs = [
                Transmission(int(s), int(r), int(p))
                for s, r, p in zip(
                    self.senders.tolist(),
                    self.receivers.tolist(),
                    self.packets.tolist(),
                )
            ]
        return self._txs

    def __len__(self) -> int:
        return self.senders.size

    def __iter__(self):
        return iter(self.to_transmissions())

    def __eq__(self, other) -> bool:
        if not isinstance(other, TxBatch):
            return NotImplemented
        return (
            np.array_equal(self.senders, other.senders)
            and np.array_equal(self.receivers, other.receivers)
            and np.array_equal(self.packets, other.packets)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"TxBatch(n={len(self)}, senders={self.senders.tolist()}, "
            f"receivers={self.receivers.tolist()}, packets={self.packets.tolist()})"
        )


@dataclass(frozen=True)
class Reception:
    """A successful packet reception at ``receiver``.

    ``overheard`` is True when the packet was addressed to another node.
    """

    receiver: int
    sender: int
    packet: int
    overheard: bool = False


@dataclass
class SlotOutcome:
    """Everything that happened in one slot at the radio level."""

    receptions: List[Reception] = field(default_factory=list)
    #: Transmissions whose *intended* receiver did not get the packet.
    failures: List[Transmission] = field(default_factory=list)
    #: Subset of failures destroyed by a collision (vs. plain link loss).
    collisions: List[Transmission] = field(default_factory=list)

    @property
    def n_failures(self) -> int:
        return len(self.failures)

    @property
    def n_collisions(self) -> int:
        return len(self.collisions)

    def delivered_to(self, receiver: int) -> List[Reception]:
        return [r for r in self.receptions if r.receiver == receiver]


@dataclass(frozen=True)
class RadioModel:
    """Physical-layer behaviour switches.

    Parameters
    ----------
    collisions:
        Whether overlapping in-range transmissions destroy each other.
        The OPT oracle runs with this off.
    capture_guard:
        Preamble-capture window. Every transmission starts at a random
        sub-slot phase in ``[0, 1)`` (CSMA jitter); a receiver locks onto
        the earliest in-range frame and decodes it if the next frame
        starts at least ``capture_guard`` later — otherwise the overlap
        destroys both. Without this effect, deterministic protocols on
        deterministic schedules can livelock: the same hidden-terminal
        pair collides at the same wake slot every period, forever. Set to
        ``1.0`` to disable capture entirely (every overlap collides).
    capture_margin_db:
        SIR power capture for topologies that carry RSSI data: the
        strongest overlapping signal survives when it exceeds the
        runner-up by at least this many dB — every real receiver exhibits
        this, and without it a weak fringe interferer would "destroy" a
        frame arriving 30 dB hotter. ``None`` disables SIR capture.
    capture_ratio:
        Power-capture fallback for PRR-only topologies (no RSSI): the
        strongest signal survives when its PRR is at least
        ``capture_ratio`` times the runner-up's. Crude — PRR saturates at
        1 — but better than nothing. ``None`` disables the fallback.
    overhearing:
        Whether awake third parties can receive *data* frames addressed to
        others. Default **off**, matching the paper's unicast model
        (Sec. III-B assumes simultaneous neighbor wake-ups are rare and
        models flooding as pure unicasts; data overhearing would let one
        transmission spawn several copies, breaking the ``mu <= 2``
        branching bound behind Lemma 2 and the Sec. IV-B recurrence).
        DBAO's "overhearing" is different — it is ACK-based suppression,
        handled inside the protocol. The cross-layer future-work sketch
        turns data overhearing on deliberately.
    lossless:
        Force every surviving transmission to succeed (ideal networks of
        Sec. IV-A).
    """

    collisions: bool = True
    capture_guard: float = 0.3
    capture_margin_db: Optional[float] = 4.0
    capture_ratio: Optional[float] = 2.0
    overhearing: bool = False
    lossless: bool = False

    def __post_init__(self):
        if not (0.0 < self.capture_guard <= 1.0):
            raise ValueError("capture guard must be in (0, 1]")
        if self.capture_margin_db is not None and self.capture_margin_db < 0:
            raise ValueError("capture margin must be non-negative")
        if self.capture_ratio is not None and self.capture_ratio < 1.0:
            raise ValueError("capture ratio must be >= 1")


def _resolve_contention_idx(
    idxs: np.ndarray,
    addr_idxs: np.ndarray,
    col: int,
    senders: np.ndarray,
    prr: np.ndarray,
    rssi: Optional[np.ndarray],
    jitter: Optional[np.ndarray],
    model: RadioModel,
) -> Tuple[int, List[int]]:
    """Pick the frame (if any) a receiver decodes from >= 2 overlaps.

    Operates on batch row indices; ``idxs`` are the in-range rows,
    ``addr_idxs`` the subset addressed to this receiver, ``col`` the
    receiver's column in the ``prr``/``rssi`` gather matrices.

    Resolution order mirrors real receivers:

    1. **SIR power capture** — the strongest signal survives if it clears
       the runner-up by ``capture_margin_db`` (needs RSSI data; falls
       back to the PRR-ratio rule on PRR-only topologies).
    2. **Preamble capture** — the earliest frame survives if the next one
       starts at least ``capture_guard`` later (the receiver finished
       synchronizing before the interferer appeared).
    3. Otherwise the overlap destroys every addressed frame.

    Returns ``(surviving_row_or_-1, collided_addressed_rows)``.
    """
    # 1. Power capture. Stable descending sorts keep batch order on ties,
    # matching the stable `sorted(..., reverse=True)` this replaced.
    if rssi is not None and model.capture_margin_db is not None:
        vals = rssi[idxs, col]
        order = np.argsort(-vals, kind="stable")
        if vals[order[0]] - vals[order[1]] >= model.capture_margin_db:
            surv = int(idxs[order[0]])
            return surv, [i for i in addr_idxs.tolist() if i != surv]
    elif rssi is None and model.capture_ratio is not None:
        vals = prr[idxs, col]
        order = np.argsort(-vals, kind="stable")
        strongest, runner_up = vals[order[0]], vals[order[1]]
        if runner_up > 0 and strongest >= model.capture_ratio * runner_up:
            surv = int(idxs[order[0]])
            return surv, [i for i in addr_idxs.tolist() if i != surv]

    # 2. Preamble capture.
    if model.capture_guard < 1.0:
        order = np.lexsort((senders[idxs], jitter[idxs]))
        first, second = idxs[order[0]], idxs[order[1]]
        if jitter[second] - jitter[first] >= model.capture_guard:
            surv = int(first)
            return surv, [i for i in addr_idxs.tolist() if i != surv]

    # 3. Destructive collision.
    return -1, addr_idxs.tolist()


def resolve_slot(
    transmissions,
    topo: Topology,
    awake: Iterable[int],
    rng: np.random.Generator,
    model: RadioModel = RadioModel(),
    dynamics=None,
    assume_unique_senders: bool = False,
) -> SlotOutcome:
    """Resolve one slot of concurrent transmissions.

    Parameters
    ----------
    transmissions:
        Committed unicasts — a :class:`TxBatch` or a sequence of
        :class:`Transmission`; at most one per sender (validated).
    topo:
        The static topology (adjacency decides interference range).
    awake:
        Node ids able to receive this slot. Senders are removed
        automatically (semi-duplex).
    rng:
        Loss/capture randomness stream.
    model:
        Radio behaviour switches.
    dynamics:
        Optional :class:`~repro.net.dynamics.GilbertElliott` link state;
        when present, the per-transmission success draw uses the link's
        *current effective* PRR (contention and capture still use the
        long-term figures — interference physics does not change with a
        momentary fade, only decodability does).

    Notes
    -----
    Resolution is batch-native but RNG-equivalent to the original
    per-frame implementation: the jitter block ``rng.random(k)`` consumes
    the same stream as ``k`` sender-sorted scalar draws, and the Bernoulli
    block consumes one draw per eligible receiver in ascending receiver
    order, exactly as the per-receiver loop did.
    """
    outcome = SlotOutcome()
    if isinstance(transmissions, TxBatch):
        batch = transmissions
    else:
        if not transmissions:
            return outcome
        batch = TxBatch.from_transmissions(transmissions)
    k = len(batch)
    if k == 0:
        return outcome

    senders = batch.senders
    # Duplicate-sender guard without the per-slot sort np.unique costs:
    # bincount over the (small, bounded-by-n_nodes) id range. The engine
    # pipeline's validate stage already proves uniqueness and passes
    # ``assume_unique_senders`` — the guard is then folded into that
    # stage instead of re-running per resolve.
    if not assume_unique_senders and k > 1 and int(np.bincount(senders).max()) > 1:
        seen: Set[int] = set()
        for s in senders.tolist():
            if s in seen:
                raise ValueError(f"node {s} committed two transmissions in one slot")
            seen.add(s)

    txs: Optional[List[Transmission]] = None  # materialized on demand
    tx_receivers = batch.receivers
    tx_packets = batch.packets

    # CSMA start-phase jitter, one draw per transmission per slot, shared
    # by every receiver (a frame starts when it starts). The block draw
    # fills sender-sorted positions for reproducibility.
    jitter: Optional[np.ndarray] = None
    if model.collisions:
        jitter = np.empty(k)
        jitter[np.argsort(senders)] = rng.random(k)

    awake_arr = np.asarray(
        awake if isinstance(awake, np.ndarray) else list(awake), dtype=np.int64
    )
    # Semi-duplex: senders cannot receive. A mask pass replaces
    # setdiff1d's sort; wake sets arrive sorted unique from the engine
    # (unsorted callers get the normalizing fallback).
    if awake_arr.size > 1 and not np.all(awake_arr[1:] > awake_arr[:-1]):
        awake_arr = np.unique(awake_arr)
    sender_mask = np.zeros(topo.n_nodes, dtype=bool)
    sender_mask[senders] = True
    r_ids = awake_arr[~sender_mask[awake_arr]]
    delivered = np.zeros(k, dtype=bool)

    if r_ids.size:
        in_range = topo.adjacency[senders][:, r_ids]  # (k, R)
        prr_mat = topo.prr[senders][:, r_ids]
        rssi_mat = topo.rssi[senders][:, r_ids] if topo.rssi is not None else None
        addressed = in_range & (tx_receivers[:, None] == r_ids[None, :])

        # (receiver, surviving row, is_addressed, effective prr) for every
        # receiver that reaches the Bernoulli stage, in receiver order.
        pending: List[Tuple[int, int, bool, float]] = []
        for j in np.nonzero(in_range.any(axis=0))[0].tolist():
            idxs = np.nonzero(in_range[:, j])[0]
            r = int(r_ids[j])
            collided: List[int] = []
            if idxs.size == 1:
                surv = int(idxs[0])
            elif not model.collisions:
                # Collision-free oracle: every addressed signal is
                # independent; the receiver can decode at most one per
                # slot — the best addressed one, or (overhearing
                # permitting) the best bystander frame when nothing is
                # addressed to it.
                addr_idxs = idxs[addressed[idxs, j]]
                if addr_idxs.size:
                    surv = int(addr_idxs[np.argmax(prr_mat[addr_idxs, j])])
                elif model.overhearing:
                    surv = int(idxs[np.argmax(prr_mat[idxs, j])])
                else:
                    surv = -1
            else:
                surv, collided = _resolve_contention_idx(
                    idxs, idxs[addressed[idxs, j]], j,
                    senders, prr_mat, rssi_mat, jitter, model,
                )

            if collided:
                if txs is None:
                    txs = batch.to_transmissions()
                outcome.collisions.extend(txs[i] for i in collided)
            if surv < 0:
                continue
            is_addressed = bool(tx_receivers[surv] == r)
            if not is_addressed and not model.overhearing:
                continue
            prr = float(prr_mat[surv, j])
            if dynamics is not None:
                prr *= dynamics.gain(int(senders[surv]), r)
            if prr <= 0.0:
                continue
            pending.append((r, surv, is_addressed, prr))

        # Bernoulli reception draws, batched in receiver order.
        draws = None
        if not model.lossless and pending:
            draws = rng.random(len(pending))
        for i, (r, surv, is_addressed, prr) in enumerate(pending):
            if draws is not None and not draws[i] < prr:
                continue
            outcome.receptions.append(
                Reception(
                    receiver=r,
                    sender=int(senders[surv]),
                    packet=int(tx_packets[surv]),
                    overheard=not is_addressed,
                )
            )
            if is_addressed:
                delivered[surv] = True

    fail_rows = np.nonzero(~delivered)[0]
    if fail_rows.size:
        if txs is None:
            txs = batch.to_transmissions()
        outcome.failures.extend(txs[i] for i in fail_rows.tolist())
    return outcome


class RepSlotOutcome:
    """Structure-of-arrays slot outcome across R replications.

    The replication-batched pipeline's analogue of :class:`SlotOutcome`:
    receptions and failures carry an explicit replication id per entry so
    the apply stage can scatter them back onto the (R, …) state stacks.
    Entry order within one replication is receiver-ascending for
    receptions (matching the serial resolver) and batch-row order for
    failures; replications appear grouped but their relative order is an
    implementation detail — per-replication *state* never depends on it.
    """

    __slots__ = (
        "rec_rep", "rec_receiver", "rec_sender", "rec_packet",
        "rec_overheard", "fail_rep", "fail_sender", "collision_counts",
        "coll_rows",
    )

    def __init__(self, rec_rep, rec_receiver, rec_sender, rec_packet,
                 rec_overheard, fail_rep, fail_sender, collision_counts,
                 coll_rows=None):
        self.rec_rep = rec_rep
        self.rec_receiver = rec_receiver
        self.rec_sender = rec_sender
        self.rec_packet = rec_packet
        self.rec_overheard = rec_overheard
        self.fail_rep = fail_rep
        self.fail_sender = fail_sender
        #: replication id -> number of collision-destroyed transmissions.
        self.collision_counts = collision_counts
        #: Flat input-row indices of collision-destroyed transmissions,
        #: populated only when the resolver ran with
        #: ``collect_collision_rows`` (MAC layers attribute collisions to
        #: frames across retry rounds with it); ``None`` otherwise.
        self.coll_rows = coll_rows

    @classmethod
    def empty(cls) -> "RepSlotOutcome":
        z = np.empty(0, np.int64)
        return cls(z, z, z, z, np.empty(0, bool), z, z, {}, z)


def resolve_slot_reps(
    kk: np.ndarray,
    ss: np.ndarray,
    rr: np.ndarray,
    pp: np.ndarray,
    topo: Topology,
    awake_by_rep,
    rngs,
    model: RadioModel = RadioModel(),
    dynamics=None,
    awake_stack: Optional[np.ndarray] = None,
    arena=None,
    collect_collision_rows: bool = False,
) -> RepSlotOutcome:
    """Resolve one slot's transmissions across R replications at once.

    Parameters
    ----------
    kk, ss, rr, pp:
        Parallel flat arrays: replication id (ascending groups), sender,
        receiver, packet. Each replication's rows must appear in the
        exact order the serial proposer would have emitted them.
    awake_by_rep:
        Indexable by replication id; sorted unique wake set per rep.
        Ignored when ``awake_stack`` is supplied.
    awake_stack:
        Optional ``(R, n_nodes)`` boolean wake matrix (row per
        replication id). Engines that cache wake sets per schedule phase
        pass it to skip the per-replication mask scatter.
    rngs:
        Indexable by replication id; each replication's channel stream.
    dynamics:
        Optional :class:`~repro.net.dynamics.BatchGilbertElliott`.
    collect_collision_rows:
        When true, the outcome's ``coll_rows`` holds the flat input-row
        indices of collision-destroyed transmissions (each row at most
        once per call — a frame is addressed to exactly one receiver).
        MAC layers that retry frames across micro-rounds need the
        per-frame identity to keep flood-level collision accounting a
        subset of frame failures. Off by default: the ideal path never
        pays for it.

    Stream identity
    ---------------
    The resolver consumes each replication's channel stream exactly like
    the serial :func:`resolve_slot`: one jitter block per replication
    with transmissions (``collisions`` models, filled in sender-sorted
    positions) and one Bernoulli draw per pending receiver in
    ascending-receiver order. Contended receivers — the capture
    tie-breaks — are re-derived per (replication, receiver) group on the
    same row order the serial resolver would see, so every replication
    stays bit-identical without routing whole replications through the
    serial path.
    """
    T = int(ss.size)
    if T == 0:
        return RepSlotOutcome.empty()
    n = topo.n_nodes
    if arena is None:
        arena = _default_arena()

    # kk arrives in ascending replication groups: boundary detection
    # replaces np.unique's sort.
    is_head = arena.buf("radio.is_head", T, np.bool_)
    is_head[0] = True
    np.not_equal(kk[1:], kk[:-1], out=is_head[1:])
    starts = np.flatnonzero(is_head)
    rep_ids = kk[starts]
    blist = starts.tolist()
    blist.append(T)
    n_local = rep_ids.size
    local = arena.buf("radio.local", T, np.int64)
    np.cumsum(is_head, out=local)
    local -= 1

    # CSMA start-phase jitter: the serial resolver draws one block per
    # replication per slot with transmissions, scattered to sender-sorted
    # positions, before any receiver logic — even when nothing ends up
    # contended.
    rep_list = rep_ids.tolist()
    jitter = None
    if model.collisions:
        draws = arena.buf("radio.draws", T, np.float64)
        for li in range(n_local):
            lo, hi = blist[li], blist[li + 1]
            rngs[rep_list[li]].random(out=draws[lo:hi])
        # One global (replication, sender) sort lands every block draw on
        # the same position the serial per-replication scatter used.
        # (rep, sender) rows are duplicate-free, so the fused integer key
        # sorts identically to lexsort((ss, kk)).
        skey = arena.buf("radio.skey", T, np.int64)
        np.multiply(kk, n, out=skey)
        skey += ss
        jitter = arena.buf("radio.jitter", T, np.float64)
        jitter[np.argsort(skey, kind="stable")] = draws

    # Per-replication receiver eligibility: awake and not transmitting.
    mask = arena.buf2("radio.mask", (n_local, n), np.bool_)
    if awake_stack is not None:
        np.take(awake_stack, rep_ids, axis=0, out=mask)
    else:
        mask[:] = False
        for li in range(n_local):
            mask[li, awake_by_rep[int(rep_ids[li])]] = True
    mask[local, ss] = False
    hits = arena.buf2("radio.hits", (T, n), np.bool_)  # (T, n)
    np.take(topo.adjacency, ss, axis=0, out=hits)
    mlocal = arena.buf2("radio.mlocal", (T, n), np.bool_)
    np.take(mask, local, axis=0, out=mlocal)
    hits &= mlocal
    tx_idx, recv = np.nonzero(hits)

    delivered = arena.buf("radio.delivered", T, np.bool_)
    delivered[:] = False
    collision_counts = {}
    coll_rows = np.empty(0, np.int64) if collect_collision_rows else None

    if tx_idx.size:
        key = arena.buf("radio.key", tx_idx.size, np.int64)
        np.take(local, tx_idx, out=key)
        key *= n
        key += recv
        order = np.argsort(key, kind="stable")
        key_s = key[order]
        tx_s = tx_idx[order]
        recv_s = recv[order]
        g_head = np.empty(key_s.size, dtype=bool)
        g_head[0] = True
        np.not_equal(key_s[1:], key_s[:-1], out=g_head[1:])
        start_u = np.flatnonzero(g_head)
        uniq = key_s[start_u]
        G = start_u.size
        counts = arena.buf("radio.counts", G, np.int64)
        np.subtract(start_u[1:], start_u[:-1], out=counts[: G - 1])
        counts[G - 1] = key_s.size - start_u[G - 1]
        grp_rep_local = uniq // n
        grp_recv = uniq % n
        addr_s = rr[tx_s] == recv_s
        addr_counts = np.add.reduceat(addr_s.astype(np.int64), start_u)

        # Survivor per group. Vectorized cases: the single in-range
        # frame, and — collision-free — the unique addressed frame among
        # several.
        surv_row = np.full(uniq.size, -1, dtype=np.int64)
        single = counts == 1
        surv_row[single] = tx_s[start_u[single]]
        if model.collisions:
            hard = np.flatnonzero(counts >= 2)
        else:
            multi = (~single) & (addr_counts == 1)
            if multi.any():
                idx_addr = np.flatnonzero(addr_s)
                grp_of = np.searchsorted(
                    start_u, idx_addr, side="right") - 1
                pick = multi[grp_of]
                surv_row[grp_of[pick]] = tx_s[idx_addr[pick]]
            # Collision-free oracle picks with >= 2 addressed frames (or
            # an overhearing pick among unaddressed ones) tie-break on
            # row order — the per-group loop below re-derives them.
            hard = np.flatnonzero(
                (addr_counts >= 2)
                | ((counts >= 2) & (addr_counts == 0) & model.overhearing)
            )

        if hard.size:
            # Flatten the hard groups into one segmented array so every
            # capture rule runs as a single lexsort + segment-head gather
            # instead of a per-group Python call. lexsort is stable, so
            # within a group ties keep ascending batch-row order — the
            # exact tie-breaks of _resolve_contention_idx / np.argmax.
            prr_all = topo.prr
            stops_u = np.append(start_u[1:], key_s.size)
            seg_len = (stops_u[hard] - start_u[hard]).astype(np.int64)
            seg_start = np.concatenate(([0], np.cumsum(seg_len)[:-1]))
            total = int(seg_len.sum())
            offs = arena.arange(total) - np.repeat(seg_start, seg_len)
            flat = np.repeat(start_u[hard], seg_len) + offs
            gid = np.repeat(arena.arange(hard.size), seg_len)
            rows_f = tx_s[flat]
            r_f = np.repeat(grp_recv[hard], seg_len)
            send_f = ss[rows_f]
            if not model.collisions:
                # Oracle pick: best addressed frame, else (overhearing)
                # best bystander frame.
                vals = prr_all[send_f, r_f]
                elig = addr_s[flat] | np.repeat(
                    addr_counts[hard] == 0, seg_len)
                ord_c = np.lexsort((-vals, ~elig, gid))
                surv_row[hard] = rows_f[ord_c[seg_start]]
            else:
                surv_h = np.full(hard.size, -1, dtype=np.int64)
                cap = np.zeros(hard.size, dtype=bool)
                # 1. Power capture: strongest survives if it clears the
                # runner-up (SIR margin with RSSI, PRR ratio without).
                if topo.rssi is not None and model.capture_margin_db is not None:
                    vals = topo.rssi[send_f, r_f]
                    ord_p = np.lexsort((-vals, gid))
                    v1 = vals[ord_p[seg_start]]
                    v2 = vals[ord_p[seg_start + 1]]
                    cap = v1 - v2 >= model.capture_margin_db
                    surv_h[cap] = rows_f[ord_p[seg_start]][cap]
                elif topo.rssi is None and model.capture_ratio is not None:
                    vals = prr_all[send_f, r_f]
                    ord_p = np.lexsort((-vals, gid))
                    v1 = vals[ord_p[seg_start]]
                    v2 = vals[ord_p[seg_start + 1]]
                    cap = (v2 > 0) & (v1 >= model.capture_ratio * v2)
                    surv_h[cap] = rows_f[ord_p[seg_start]][cap]
                # 2. Preamble capture: earliest start survives if the
                # next frame began at least capture_guard later.
                if model.capture_guard < 1.0 and not cap.all():
                    jit_f = jitter[rows_f]
                    ord_g = np.lexsort((send_f, jit_f, gid))
                    j_sorted = jit_f[ord_g]
                    j1 = j_sorted[seg_start]
                    j2 = j_sorted[seg_start + 1]
                    pre = ~cap & (j2 - j1 >= model.capture_guard)
                    surv_h[pre] = rows_f[ord_g[seg_start]][pre]
                surv_row[hard] = surv_h
                # 3. Collision accounting: every addressed frame except
                # a surviving addressed one is destroyed.
                safe = np.maximum(surv_h, 0)
                surv_addr = (surv_h >= 0) & (rr[safe] == grp_recv[hard])
                n_coll = addr_counts[hard] - surv_addr.astype(np.int64)
                cc = np.zeros(n_local, dtype=np.int64)
                np.add.at(cc, grp_rep_local[hard], n_coll)
                for li in np.flatnonzero(cc).tolist():
                    collision_counts[int(rep_ids[li])] = int(cc[li])
                if collect_collision_rows:
                    # Destroyed addressed frames: every addressed row in
                    # a contended group except the survivor (surv_h = -1
                    # never equals a real row, so "no survivor" keeps
                    # all addressed rows).
                    coll_rows = rows_f[
                        addr_s[flat] & (rows_f != np.repeat(surv_h, seg_len))
                    ].copy()

        # Pending receivers across all replications, already in the
        # serial (replication, ascending receiver) order from the group
        # key sort above.
        ok = surv_row >= 0
        g_row = surv_row[ok]
        g_recv = grp_recv[ok]
        g_rep_local = grp_rep_local[ok]
        is_addr = rr[g_row] == g_recv
        keep = is_addr | model.overhearing
        prr = topo.prr[ss[g_row], g_recv]
        if dynamics is not None:
            prr = prr * dynamics.gains(kk[g_row], ss[g_row], g_recv)
        keep &= prr > 0.0
        g_row, g_recv, g_rep_local = g_row[keep], g_recv[keep], g_rep_local[keep]
        is_addr, prr = is_addr[keep], prr[keep]
    else:
        g_row = g_recv = g_rep_local = np.empty(0, dtype=np.int64)
        is_addr = np.empty(0, dtype=bool)
        prr = np.empty(0, dtype=np.float64)
    # Bernoulli reception draws: one block per replication with pending
    # receivers, exactly the serial draw, written into one flat buffer so
    # the accept/gather stage runs once across all replications.
    if model.lossless:
        okd = arena.buf("radio.okd", g_row.size, np.bool_)
        okd[:] = True
    else:
        pend_starts = np.searchsorted(
            g_rep_local, arena.arange(n_local + 1)).tolist()
        rnd = arena.buf("radio.bern", g_row.size, np.float64)
        for li in range(n_local):
            p_lo, p_hi = pend_starts[li], pend_starts[li + 1]
            if p_hi > p_lo:
                rngs[rep_list[li]].random(out=rnd[p_lo:p_hi])
        okd = arena.buf("radio.okd", g_row.size, np.bool_)
        np.less(rnd, prr, out=okd)
    acc_rows = g_row[okd]
    addr_ok = is_addr[okd]
    delivered[acc_rows[addr_ok]] = True

    # Failures: undelivered rows in batch order (the serial order).
    fail_rows = np.flatnonzero(~delivered)
    return RepSlotOutcome(
        rep_ids[g_rep_local[okd]], g_recv[okd], ss[acc_rows], pp[acc_rows],
        ~addr_ok, kk[fail_rows], ss[fail_rows], collision_counts,
        coll_rows,
    )


def csma_select(
    ranked_senders: Sequence[int], topo: Topology
) -> Tuple[List[int], Dict[int, List[int]]]:
    """Physical carrier sense: who actually transmits, who defers to whom.

    Senders are processed in back-off order (``ranked_senders[0]`` has the
    shortest back-off). A sender transmits unless it can *hear* an
    earlier-ranked sender that already started — direct audibility only,
    so spatially-separated senders reuse the channel even when chained
    through common neighbors (the standard CSMA spatial-reuse behaviour).
    Hidden terminals — senders that cannot hear any active transmitter —
    proceed and may collide at shared receivers; that is the radio
    resolver's business.

    Returns
    -------
    (winners, deferrals):
        ``winners`` in rank order; ``deferrals[w]`` lists the senders that
        stayed silent because they heard ``w`` (attributed to the first
        audible winner). Deferring senders remain awake through the slot —
        they are the overhearing audience DBAO's suppression uses.
    """
    ids = [int(s) for s in ranked_senders]
    if len(set(ids)) != len(ids):
        seen = set()
        for s in ids:
            if s in seen:
                raise ValueError(f"duplicate sender {s} in ranked list")
            seen.add(s)
    k = len(ids)
    winners: List[int] = []
    deferrals: Dict[int, List[int]] = {}
    if k == 0:
        return winners, deferrals
    arr = np.asarray(ids, dtype=np.int64)
    # One gather of the symmetric audibility submatrix replaces the
    # per-pair link lookups; each sender then defers to the first
    # audible earlier winner (argmax finds the first True).
    aud = topo.audible[np.ix_(arr, arr)]
    win_rows = np.empty(k, dtype=np.int64)
    n_win = 0
    for i, s in enumerate(ids):
        if n_win:
            hits = aud[i, win_rows[:n_win]]
            h = int(hits.argmax())
            if hits[h]:
                deferrals[ids[int(win_rows[h])]].append(s)
                continue
        winners.append(s)
        deferrals[s] = []
        win_rows[n_win] = i
        n_win += 1
    return winners, deferrals


def csma_select_reps(
    groups: np.ndarray, senders: np.ndarray, topo: Topology, arena=None
) -> np.ndarray:
    """Winners-only :func:`csma_select` across independent groups.

    ``groups`` holds an ascending group index (one group per
    replication) for each candidate; within a group candidates appear in
    back-off rank order, duplicate-free. Returns a boolean winner mask —
    per group, exactly ``csma_select``'s winners (a candidate defers iff
    it can hear an earlier winner of its own group) without the deferral
    attribution the batched callers never use.
    """
    win = np.zeros(senders.size, dtype=bool)
    if senders.size == 0:
        return win
    if arena is None:
        arena = _default_arena()
    heard = arena.buf2(
        "radio.csma_heard", (int(groups[-1]) + 1, topo.n_nodes), np.bool_
    )
    heard[:] = False
    audible = topo.audible
    # Round-based greedy: each round, the earliest-ranked candidate of
    # every group that hears no winner yet transmits. Equivalent to the
    # sequential scan — ``heard`` only grows, so a deferred candidate
    # stays deferred and the earliest eligible candidate each round is
    # exactly the scan's next winner — but each round is one vector pass
    # instead of a Python iteration per candidate.
    idx = arena.arange(senders.size)
    while idx.size:
        g = groups[idx]
        first = np.empty(idx.size, dtype=bool)
        first[0] = True
        np.not_equal(g[1:], g[:-1], out=first[1:])
        winners = idx[first]
        win[winners] = True
        heard[groups[winners]] |= audible[senders[winners]]
        idx = idx[~first]
        if idx.size:
            idx = idx[~heard[groups[idx], senders[idx]]]
    return win


def carrier_sense_groups(
    senders: Sequence[int], topo: Topology
) -> List[List[int]]:
    """Partition would-be senders into mutually-audible groups.

    Two senders belong to the same group when they are connected through a
    chain of audible (in-range) sender pairs. Within a group, a MAC layer
    with carrier sense can serialize transmissions; across groups it
    cannot — those are each other's hidden terminals.

    Returns groups as lists of node ids, each sorted ascending; groups are
    ordered by their smallest member.
    """
    remaining = set(senders)
    if len(remaining) != len(senders):
        raise ValueError("duplicate sender ids")
    audible = lambda a, b: topo.has_link(a, b) or topo.has_link(b, a)
    groups: List[List[int]] = []
    while remaining:
        seed = min(remaining)
        group = {seed}
        frontier = [seed]
        remaining.discard(seed)
        while frontier:
            cur = frontier.pop()
            heard = [s for s in remaining if audible(cur, s)]
            for s in heard:
                remaining.discard(s)
                group.add(s)
                frontier.append(s)
        groups.append(sorted(group))
    groups.sort(key=lambda g: g[0])
    return groups
