"""Semi-duplex radio: contention, collisions, capture, and loss.

The radio layer takes the set of transmissions a protocol committed to in
one slot and resolves what every awake receiver actually hears:

* **Semi-duplex** — a transmitting node never receives in the same slot
  (the engine removes senders from the awake set before resolution).
* **Collisions** — when two or more in-range transmissions overlap at an
  awake receiver, they destroy each other (hidden-terminal losses arise
  exactly this way: two senders outside carrier-sense range of each other
  address the same receiver).
* **Capture effect** (optional) — the strongest overlapping signal
  survives a collision if it dominates the next-strongest sufficiently;
  disabled by default to match the paper's model, but exposed because the
  related work (Flash flooding) builds on it.
* **Bernoulli loss** — a transmission that survives contention is received
  with probability equal to the link PRR (this is the paper's k-class
  behaviour: a PRR-q link needs on average 1/q attempts).
* **Overhearing** (optional) — an awake node in range of a transmission
  addressed to somebody else may still receive the packet; DBAO's
  suppression machinery relies on this.

Carrier sense is *not* the radio's job: it happens before commitment, in
the protocols (see :func:`carrier_sense_groups` used by DBAO/OF).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .topology import Topology

__all__ = [
    "Transmission",
    "Reception",
    "SlotOutcome",
    "RadioModel",
    "resolve_slot",
    "carrier_sense_groups",
    "csma_select",
]


@dataclass(frozen=True)
class Transmission:
    """One committed unicast: ``sender`` sends ``packet`` to ``receiver``."""

    sender: int
    receiver: int
    packet: int

    def __post_init__(self):
        if self.sender == self.receiver:
            raise ValueError("sender and receiver must differ")
        if self.packet < 0:
            raise ValueError(f"packet index must be non-negative, got {self.packet}")


@dataclass(frozen=True)
class Reception:
    """A successful packet reception at ``receiver``.

    ``overheard`` is True when the packet was addressed to another node.
    """

    receiver: int
    sender: int
    packet: int
    overheard: bool = False


@dataclass
class SlotOutcome:
    """Everything that happened in one slot at the radio level."""

    receptions: List[Reception] = field(default_factory=list)
    #: Transmissions whose *intended* receiver did not get the packet.
    failures: List[Transmission] = field(default_factory=list)
    #: Subset of failures destroyed by a collision (vs. plain link loss).
    collisions: List[Transmission] = field(default_factory=list)

    @property
    def n_failures(self) -> int:
        return len(self.failures)

    @property
    def n_collisions(self) -> int:
        return len(self.collisions)

    def delivered_to(self, receiver: int) -> List[Reception]:
        return [r for r in self.receptions if r.receiver == receiver]


@dataclass(frozen=True)
class RadioModel:
    """Physical-layer behaviour switches.

    Parameters
    ----------
    collisions:
        Whether overlapping in-range transmissions destroy each other.
        The OPT oracle runs with this off.
    capture_guard:
        Preamble-capture window. Every transmission starts at a random
        sub-slot phase in ``[0, 1)`` (CSMA jitter); a receiver locks onto
        the earliest in-range frame and decodes it if the next frame
        starts at least ``capture_guard`` later — otherwise the overlap
        destroys both. Without this effect, deterministic protocols on
        deterministic schedules can livelock: the same hidden-terminal
        pair collides at the same wake slot every period, forever. Set to
        ``1.0`` to disable capture entirely (every overlap collides).
    capture_margin_db:
        SIR power capture for topologies that carry RSSI data: the
        strongest overlapping signal survives when it exceeds the
        runner-up by at least this many dB — every real receiver exhibits
        this, and without it a weak fringe interferer would "destroy" a
        frame arriving 30 dB hotter. ``None`` disables SIR capture.
    capture_ratio:
        Power-capture fallback for PRR-only topologies (no RSSI): the
        strongest signal survives when its PRR is at least
        ``capture_ratio`` times the runner-up's. Crude — PRR saturates at
        1 — but better than nothing. ``None`` disables the fallback.
    overhearing:
        Whether awake third parties can receive *data* frames addressed to
        others. Default **off**, matching the paper's unicast model
        (Sec. III-B assumes simultaneous neighbor wake-ups are rare and
        models flooding as pure unicasts; data overhearing would let one
        transmission spawn several copies, breaking the ``mu <= 2``
        branching bound behind Lemma 2 and the Sec. IV-B recurrence).
        DBAO's "overhearing" is different — it is ACK-based suppression,
        handled inside the protocol. The cross-layer future-work sketch
        turns data overhearing on deliberately.
    lossless:
        Force every surviving transmission to succeed (ideal networks of
        Sec. IV-A).
    """

    collisions: bool = True
    capture_guard: float = 0.3
    capture_margin_db: Optional[float] = 4.0
    capture_ratio: Optional[float] = 2.0
    overhearing: bool = False
    lossless: bool = False

    def __post_init__(self):
        if not (0.0 < self.capture_guard <= 1.0):
            raise ValueError("capture guard must be in (0, 1]")
        if self.capture_margin_db is not None and self.capture_margin_db < 0:
            raise ValueError("capture margin must be non-negative")
        if self.capture_ratio is not None and self.capture_ratio < 1.0:
            raise ValueError("capture ratio must be >= 1")


def _signal_success(
    prr: float, rng: np.random.Generator, model: RadioModel
) -> bool:
    """Bernoulli reception draw for a contention-surviving signal."""
    if model.lossless:
        return True
    return bool(rng.random() < prr)


def _resolve_contention(
    in_range: List[Transmission],
    addressed: List[Transmission],
    r: int,
    topo: Topology,
    jitter: Dict[Transmission, float],
    model: RadioModel,
) -> Tuple[Optional[Transmission], List[Transmission]]:
    """Pick the frame (if any) receiver ``r`` decodes from >= 2 overlaps.

    Resolution order mirrors real receivers:

    1. **SIR power capture** — the strongest signal survives if it clears
       the runner-up by ``capture_margin_db`` (needs RSSI data; falls
       back to the PRR-ratio rule on PRR-only topologies).
    2. **Preamble capture** — the earliest frame survives if the next one
       starts at least ``capture_guard`` later (the receiver finished
       synchronizing before the interferer appeared).
    3. Otherwise the overlap destroys every addressed frame.

    Returns ``(surviving, collided_addressed)``.
    """
    # 1. Power capture.
    if topo.rssi is not None and model.capture_margin_db is not None:
        strengths = sorted(
            in_range, key=lambda tx: topo.link_rssi(tx.sender, r), reverse=True
        )
        strongest, runner_up = strengths[0], strengths[1]
        gap = topo.link_rssi(strongest.sender, r) - topo.link_rssi(
            runner_up.sender, r
        )
        if gap >= model.capture_margin_db:
            return strongest, [tx for tx in addressed if tx is not strongest]
    elif topo.rssi is None and model.capture_ratio is not None:
        strengths = sorted(
            in_range, key=lambda tx: topo.link_prr(tx.sender, r), reverse=True
        )
        strongest, runner_up = strengths[0], strengths[1]
        if topo.link_prr(runner_up.sender, r) > 0 and topo.link_prr(
            strongest.sender, r
        ) >= model.capture_ratio * topo.link_prr(runner_up.sender, r):
            return strongest, [tx for tx in addressed if tx is not strongest]

    # 2. Preamble capture.
    if model.capture_guard < 1.0:
        by_start = sorted(in_range, key=lambda tx: (jitter[tx], tx.sender))
        first, second = by_start[0], by_start[1]
        if jitter[second] - jitter[first] >= model.capture_guard:
            return first, [tx for tx in addressed if tx is not first]

    # 3. Destructive collision.
    return None, list(addressed)


def resolve_slot(
    transmissions: Sequence[Transmission],
    topo: Topology,
    awake: Iterable[int],
    rng: np.random.Generator,
    model: RadioModel = RadioModel(),
    dynamics=None,
) -> SlotOutcome:
    """Resolve one slot of concurrent transmissions.

    Parameters
    ----------
    transmissions:
        Committed unicasts; at most one per sender (validated).
    topo:
        The static topology (adjacency decides interference range).
    awake:
        Node ids able to receive this slot. Senders are removed
        automatically (semi-duplex).
    rng:
        Loss/capture randomness stream.
    model:
        Radio behaviour switches.
    dynamics:
        Optional :class:`~repro.net.dynamics.GilbertElliott` link state;
        when present, the per-transmission success draw uses the link's
        *current effective* PRR (contention and capture still use the
        long-term figures — interference physics does not change with a
        momentary fade, only decodability does).
    """
    outcome = SlotOutcome()
    if not transmissions:
        return outcome

    senders: Set[int] = set()
    for tx in transmissions:
        if tx.sender in senders:
            raise ValueError(f"node {tx.sender} committed two transmissions in one slot")
        senders.add(tx.sender)

    receivers = set(awake) - senders
    delivered_intended: Set[Tuple[int, int]] = set()  # (sender, receiver)

    # CSMA start-phase jitter, one draw per transmission per slot, shared
    # by every receiver (a frame starts when it starts). Drawn in a fixed
    # (sender-sorted) order for reproducibility.
    jitter: Dict[Transmission, float] = {}
    if model.collisions:
        for tx in sorted(transmissions, key=lambda tx: tx.sender):
            jitter[tx] = float(rng.random())

    for r in sorted(receivers):
        in_range = [tx for tx in transmissions if topo.has_link(tx.sender, r)]
        if not in_range:
            continue
        addressed = [tx for tx in in_range if tx.receiver == r]

        if len(in_range) == 1:
            surviving: Optional[Transmission] = in_range[0]
            collided: List[Transmission] = []
        elif not model.collisions:
            # Collision-free oracle: every addressed signal is independent;
            # the receiver can decode at most one per slot — the best
            # addressed one, or (overhearing permitting) the best bystander
            # frame when nothing is addressed to it.
            surviving = max(
                addressed, key=lambda tx: topo.link_prr(tx.sender, r), default=None
            )
            if surviving is None and model.overhearing:
                surviving = max(
                    in_range, key=lambda tx: topo.link_prr(tx.sender, r)
                )
            collided = []
        else:
            surviving, collided = _resolve_contention(
                in_range, addressed, r, topo, jitter, model
            )

        for tx in collided:
            outcome.collisions.append(tx)

        if surviving is None:
            continue
        is_addressed = surviving.receiver == r
        if not is_addressed and not model.overhearing:
            continue
        prr = topo.link_prr(surviving.sender, r)
        if dynamics is not None:
            prr *= dynamics.gain(surviving.sender, r)
        if prr <= 0.0:
            continue
        if _signal_success(prr, rng, model):
            outcome.receptions.append(
                Reception(
                    receiver=r,
                    sender=surviving.sender,
                    packet=surviving.packet,
                    overheard=not is_addressed,
                )
            )
            if is_addressed:
                delivered_intended.add((surviving.sender, r))

    for tx in transmissions:
        if (tx.sender, tx.receiver) not in delivered_intended:
            outcome.failures.append(tx)

    return outcome


def csma_select(
    ranked_senders: Sequence[int], topo: Topology
) -> Tuple[List[int], Dict[int, List[int]]]:
    """Physical carrier sense: who actually transmits, who defers to whom.

    Senders are processed in back-off order (``ranked_senders[0]`` has the
    shortest back-off). A sender transmits unless it can *hear* an
    earlier-ranked sender that already started — direct audibility only,
    so spatially-separated senders reuse the channel even when chained
    through common neighbors (the standard CSMA spatial-reuse behaviour).
    Hidden terminals — senders that cannot hear any active transmitter —
    proceed and may collide at shared receivers; that is the radio
    resolver's business.

    Returns
    -------
    (winners, deferrals):
        ``winners`` in rank order; ``deferrals[w]`` lists the senders that
        stayed silent because they heard ``w`` (attributed to the first
        audible winner). Deferring senders remain awake through the slot —
        they are the overhearing audience DBAO's suppression uses.
    """
    seen = set()
    for s in ranked_senders:
        if s in seen:
            raise ValueError(f"duplicate sender {s} in ranked list")
        seen.add(s)
    audible = lambda a, b: topo.has_link(a, b) or topo.has_link(b, a)
    winners: List[int] = []
    deferrals: Dict[int, List[int]] = {}
    for s in ranked_senders:
        silencer = next((w for w in winners if audible(s, w)), None)
        if silencer is None:
            winners.append(s)
            deferrals[s] = []
        else:
            deferrals[silencer].append(s)
    return winners, deferrals


def carrier_sense_groups(
    senders: Sequence[int], topo: Topology
) -> List[List[int]]:
    """Partition would-be senders into mutually-audible groups.

    Two senders belong to the same group when they are connected through a
    chain of audible (in-range) sender pairs. Within a group, a MAC layer
    with carrier sense can serialize transmissions; across groups it
    cannot — those are each other's hidden terminals.

    Returns groups as lists of node ids, each sorted ascending; groups are
    ordered by their smallest member.
    """
    remaining = set(senders)
    if len(remaining) != len(senders):
        raise ValueError("duplicate sender ids")
    audible = lambda a, b: topo.has_link(a, b) or topo.has_link(b, a)
    groups: List[List[int]] = []
    while remaining:
        seed = min(remaining)
        group = {seed}
        frontier = [seed]
        remaining.discard(seed)
        while frontier:
            cur = frontier.pop()
            heard = [s for s in remaining if audible(cur, s)]
            for s in heard:
                remaining.discard(s)
                group.add(s)
                frontier.append(s)
        groups.append(sorted(group))
    groups.sort(key=lambda g: g[0])
    return groups
