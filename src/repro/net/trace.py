"""Synthetic GreenOrbs trace.

The paper's Sec. V drives its simulations with the topology of GreenOrbs,
a 298-node forest-monitoring deployment, with link qualities computed from
six months of RSSI measurements. That trace is not publicly released, so
this module synthesizes the closest equivalent (documented in DESIGN.md):

* 298 sensors placed in clustered patches over a forest plot, plus the
  sink/source, mirroring the patchy canopy layout visible in the paper's
  Fig. 8;
* link PRRs derived from a log-distance path-loss model with log-normal
  shadowing whose variance matches heavy-foliage environments, producing
  the characteristic mix of good, gray-region, and poor links;
* a handful of weakly connected stragglers — the reason the paper measures
  delay at 99% (not 100%) delivery ratio.

The generator retries seeds until the 99%-core of the network is connected
from the source, then verifies the realism envelope (degree and link
quality spread) with :func:`trace_statistics`.

Traces can be saved/loaded as ``.npz`` so experiments can pin an exact
topology.
"""

from __future__ import annotations

import dataclasses
import io
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from .generators import clustered_positions, positions_to_topology
from .links import RadioParameters
from .topology import SOURCE, Topology

__all__ = [
    "GreenOrbsConfig",
    "synthesize_greenorbs",
    "trace_statistics",
    "save_trace",
    "load_trace",
]

#: Node count reported by the paper's Sec. V-B (298 sensors).
GREENORBS_SENSORS = 298


@dataclass(frozen=True)
class GreenOrbsConfig:
    """Knobs of the synthetic GreenOrbs generator.

    Defaults are calibrated so the resulting network matches the paper's
    description: 298 sensors, multi-hop diameter of roughly 8-12 hops, a
    broad PRR spread with a substantial gray region, and ~1% of sensors
    with marginal connectivity.
    """

    n_sensors: int = GREENORBS_SENSORS
    area_m: float = 700.0
    n_clusters: int = 10
    cluster_sigma_m: float = 60.0
    background_fraction: float = 0.25
    radio: RadioParameters = dataclasses.field(
        default_factory=lambda: RadioParameters(
            tx_power_dbm=0.0,
            path_loss_exponent=2.8,
            reference_loss_db=38.0,
            shadowing_sigma_db=4.5,
        )
    )
    neighbor_threshold: float = 0.1
    coverage_target: float = 0.99
    max_attempts: int = 25

    def __post_init__(self):
        if self.n_sensors < 1:
            raise ValueError("need at least one sensor")
        if not (0.0 < self.coverage_target <= 1.0):
            raise ValueError("coverage target must be in (0, 1]")
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")


def synthesize_greenorbs(
    seed: int = 2011, config: Optional[GreenOrbsConfig] = None
) -> Topology:
    """Generate a GreenOrbs-like 298-node lossy topology.

    Parameters
    ----------
    seed:
        Root seed; the same seed always yields the same trace.
    config:
        Generator configuration; defaults reproduce the paper-scale network.

    Returns
    -------
    Topology
        Source (node 0, placed near the plot center as the sink) plus
        ``config.n_sensors`` sensors.

    Raises
    ------
    RuntimeError
        If no attempt reaches the coverage target — only possible with
        pathological configurations (e.g. tiny areas with huge loss).
    """
    config = config or GreenOrbsConfig()
    n_nodes = config.n_sensors + 1
    for attempt in range(config.max_attempts):
        rng = np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(attempt,)))
        positions = np.empty((n_nodes, 2))
        positions[0] = (config.area_m / 2.0, config.area_m / 2.0)
        positions[1:] = clustered_positions(
            config.n_sensors,
            config.area_m,
            config.n_clusters,
            config.cluster_sigma_m,
            rng,
            config.background_fraction,
        )
        topo = positions_to_topology(
            positions,
            config.radio,
            rng,
            neighbor_threshold=config.neighbor_threshold,
        )
        reach = topo.reachable_from_source()
        coverage = (reach.sum() - 1) / config.n_sensors
        if coverage >= config.coverage_target:
            return topo
    raise RuntimeError(
        f"failed to reach {config.coverage_target:.0%} source coverage in "
        f"{config.max_attempts} attempts; relax the radio or area parameters"
    )


def trace_statistics(topo: Topology) -> dict:
    """Realism summary of a trace (used by tests and EXPERIMENTS.md).

    Returns a dict with degree statistics, PRR quantiles, the gray-region
    fraction (0.1 < PRR < 0.9), hop-diameter from the source, and the
    fraction of sensors reachable from the source.
    """
    mean_deg, min_deg, max_deg = topo.degree_stats()
    mask = topo.adjacency
    prrs = topo.prr[mask]
    hops = topo.hop_distances_from_source()
    reachable = hops >= 0
    gray = float(((prrs > 0.1) & (prrs < 0.9)).mean()) if prrs.size else 0.0
    return {
        "n_sensors": topo.n_sensors,
        "mean_degree": mean_deg,
        "min_degree": min_deg,
        "max_degree": max_deg,
        "prr_mean": float(prrs.mean()) if prrs.size else 0.0,
        "prr_p10": float(np.quantile(prrs, 0.10)) if prrs.size else 0.0,
        "prr_p50": float(np.quantile(prrs, 0.50)) if prrs.size else 0.0,
        "prr_p90": float(np.quantile(prrs, 0.90)) if prrs.size else 0.0,
        "gray_fraction": gray,
        "hop_diameter": int(hops[reachable].max()) if reachable.any() else -1,
        "source_coverage": float((reachable.sum() - 1) / max(topo.n_sensors, 1)),
        "mean_k_class": topo.mean_k_class(),
    }


def save_trace(topo: Topology, path: Union[str, Path]) -> None:
    """Persist a topology as ``.npz`` (PRR matrix + positions + threshold)."""
    path = Path(path)
    payload = {
        "prr": topo.prr,
        "neighbor_threshold": np.float64(topo.neighbor_threshold),
    }
    if topo.positions is not None:
        payload["positions"] = topo.positions
    if topo.rssi is not None:
        payload["rssi"] = topo.rssi
    with path.open("wb") as fh:
        np.savez_compressed(fh, **payload)


def load_trace(path: Union[str, Path]) -> Topology:
    """Load a topology previously written by :func:`save_trace`."""
    path = Path(path)
    with np.load(path) as data:
        prr = data["prr"]
        positions = data["positions"] if "positions" in data else None
        rssi = data["rssi"] if "rssi" in data else None
        threshold = float(data["neighbor_threshold"])
    return Topology(
        prr, positions=positions, neighbor_threshold=threshold, rssi=rssi
    )
