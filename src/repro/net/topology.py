"""Network topology: nodes, directed lossy links, neighbor tables.

A :class:`Topology` is the static substrate every simulation runs on. It
follows the paper's conventions:

* Node ``0`` is the flooding **source**; nodes ``1..N`` are the nominal
  sensors (Sec. III-A). ``n_nodes = N + 1`` total.
* Links are directed and quality-weighted by PRR. Two nodes are
  *neighbors* when the PRR in either direction reaches the neighbor
  threshold — below that, a radio cannot sustain communication and the
  pair is simply out of range.

The PRR matrix is stored dense (``float64``, ``n x n``) because the
simulator's hot loops slice rows/columns of it; for the paper-scale
networks (298-4096 nodes) a dense matrix is both faster and simpler than
sparse storage.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

try:  # networkx is a hard dependency but keep the import failure readable
    import networkx as nx
except ImportError as exc:  # pragma: no cover
    raise ImportError("repro.net.topology requires networkx") from exc

__all__ = ["Topology", "SOURCE", "homogenized"]

#: Conventional node id of the flooding source.
SOURCE = 0

#: Links below this PRR are treated as non-existent (out of radio range).
DEFAULT_NEIGHBOR_THRESHOLD = 0.1


class Topology:
    """Static network graph with per-link PRR.

    Parameters
    ----------
    prr:
        ``(n, n)`` matrix; ``prr[i, j]`` is the probability that one
        transmission from ``i`` is received by ``j``. The diagonal must
        be zero. Entries below ``neighbor_threshold`` are treated as 0
        (no link).
    positions:
        Optional ``(n, 2)`` array of planar coordinates (used by the
        synthetic trace generator and by carrier-sense range logic).
    neighbor_threshold:
        Minimum PRR for a usable link.
    """

    def __init__(
        self,
        prr: np.ndarray,
        positions: Optional[np.ndarray] = None,
        neighbor_threshold: float = DEFAULT_NEIGHBOR_THRESHOLD,
        rssi: Optional[np.ndarray] = None,
    ):
        prr = np.asarray(prr, dtype=np.float64)
        if prr.ndim != 2 or prr.shape[0] != prr.shape[1]:
            raise ValueError(f"PRR matrix must be square, got shape {prr.shape}")
        if prr.shape[0] < 2:
            raise ValueError("topology needs at least a source and one sensor")
        if np.any((prr < 0) | (prr > 1)):
            raise ValueError("PRR entries must lie in [0, 1]")
        if np.any(np.diag(prr) != 0):
            raise ValueError("self-links are not allowed (diagonal must be 0)")
        if not (0.0 < neighbor_threshold <= 1.0):
            raise ValueError(
                f"neighbor threshold must be in (0, 1], got {neighbor_threshold}"
            )

        self.prr = prr.copy()
        self.prr[self.prr < neighbor_threshold] = 0.0
        self.neighbor_threshold = float(neighbor_threshold)
        self.n_nodes = int(prr.shape[0])

        if positions is not None:
            positions = np.asarray(positions, dtype=np.float64)
            if positions.shape != (self.n_nodes, 2):
                raise ValueError(
                    f"positions must have shape ({self.n_nodes}, 2), "
                    f"got {positions.shape}"
                )
        self.positions = positions

        if rssi is not None:
            rssi = np.asarray(rssi, dtype=np.float64)
            if rssi.shape != prr.shape:
                raise ValueError(
                    f"rssi matrix must match PRR shape {prr.shape}, "
                    f"got {rssi.shape}"
                )
        #: Long-term mean received power in dBm per directed link (NaN/None
        #: when the topology was specified by PRR only). Drives the radio's
        #: SIR-based power capture.
        self.rssi = rssi

        # Content fingerprint for the result store, computed lazily.
        self._fingerprint: Optional[str] = None
        # Shared-memory segments backing the arrays (zero-copy transport
        # only; ``None`` for ordinarily constructed topologies).
        self._shm_keepalive = None

        self._derive()

    def _derive(self) -> None:
        """Compute the views the hot loops use from the primary arrays."""
        # Adjacency by usable links (boolean, directed).
        self.adjacency = self.prr > 0.0
        # Symmetric audibility (either direction in range): the carrier-
        # sense relation, cached for the CSMA hot path.
        self.audible = self.adjacency | self.adjacency.T
        # Neighbor lists by out-links (who can I transmit to).
        self._out_neighbors: List[np.ndarray] = [
            np.flatnonzero(self.adjacency[i]) for i in range(self.n_nodes)
        ]
        # Neighbor lists by in-links (who can transmit to me).
        self._in_neighbors: List[np.ndarray] = [
            np.flatnonzero(self.adjacency[:, i]) for i in range(self.n_nodes)
        ]

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def homogeneous(
        cls,
        graph: "nx.Graph",
        prr: float = 1.0,
        positions: Optional[np.ndarray] = None,
    ) -> "Topology":
        """Build a topology where every link of ``graph`` has the same PRR.

        Used for the paper's homogeneous k-class analysis (Sec. IV-B) and
        for the ideal-network theory checks (Sec. IV-A).
        """
        if not (0.0 < prr <= 1.0):
            raise ValueError(f"PRR must be in (0, 1], got {prr}")
        n = graph.number_of_nodes()
        nodes = sorted(graph.nodes())
        if nodes != list(range(n)):
            raise ValueError("graph nodes must be labeled 0..n-1")
        mat = np.zeros((n, n), dtype=np.float64)
        for u, v in graph.edges():
            mat[u, v] = prr
            mat[v, u] = prr
        return cls(mat, positions=positions, neighbor_threshold=min(prr, 0.1) or 0.1)

    @classmethod
    def complete(cls, n_sensors: int, prr: float = 1.0) -> "Topology":
        """Fully-connected network with one source and ``n_sensors`` sensors."""
        n = n_sensors + 1
        mat = np.full((n, n), prr, dtype=np.float64)
        np.fill_diagonal(mat, 0.0)
        return cls(mat, neighbor_threshold=min(prr, 0.1))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def n_sensors(self) -> int:
        """Number of nominal sensors ``N`` (excluding the source)."""
        return self.n_nodes - 1

    def out_neighbors(self, node: int) -> np.ndarray:
        """Nodes this node can transmit to (ascending ids)."""
        return self._out_neighbors[node]

    def in_neighbors(self, node: int) -> np.ndarray:
        """Nodes that can transmit to this node (ascending ids)."""
        return self._in_neighbors[node]

    def link_prr(self, sender: int, receiver: int) -> float:
        """PRR of the directed link, 0 when out of range."""
        return float(self.prr[sender, receiver])

    def link_rssi(self, sender: int, receiver: int) -> float:
        """Mean received power in dBm (NaN when no RSSI data exists)."""
        if self.rssi is None:
            return float("nan")
        return float(self.rssi[sender, receiver])

    def has_link(self, sender: int, receiver: int) -> bool:
        return bool(self.adjacency[sender, receiver])

    def degree_stats(self) -> Tuple[float, int, int]:
        """(mean, min, max) out-degree over all nodes."""
        degs = self.adjacency.sum(axis=1)
        return float(degs.mean()), int(degs.min()), int(degs.max())

    def mean_prr(self) -> float:
        """Average PRR over existing links."""
        mask = self.adjacency
        if not mask.any():
            return 0.0
        return float(self.prr[mask].mean())

    def mean_k_class(self) -> float:
        """Network-average k-class (expected transmissions per link)."""
        mask = self.adjacency
        if not mask.any():
            raise ValueError("topology has no links")
        return float((1.0 / self.prr[mask]).mean())

    def fingerprint(self) -> str:
        """Content digest of the substrate (hex, cached after first call).

        Hashes everything a simulation's outcome can depend on — the
        thresholded PRR matrix, positions, RSSI and the neighbor
        threshold — so the :mod:`repro.exec` result store can address
        cached summaries by topology *content* rather than identity.
        """
        if self._fingerprint is None:
            import hashlib

            h = hashlib.sha256()
            h.update(np.ascontiguousarray(self.prr).tobytes())
            h.update(repr(self.neighbor_threshold).encode())
            for arr in (self.positions, self.rssi):
                if arr is None:
                    h.update(b"none")
                else:
                    h.update(np.ascontiguousarray(arr).tobytes())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # Shared-memory transport (zero-copy broadcast to worker processes)
    # ------------------------------------------------------------------

    def to_shared(self):
        """Export the substrate into ``multiprocessing.shared_memory``.

        Returns a :class:`repro.exec.shared.SharedTopologyHandle`: the
        owner of the segments, whose picklable ``ref`` is a few hundred
        bytes of segment names — workers rebuild the topology zero-copy
        with :meth:`from_shared`. The caller must ``close()`` the handle
        (executors do this in their own ``close()``).
        """
        from ..exec.shared import share_topology

        return share_topology(self)

    @classmethod
    def from_shared(cls, ref) -> "Topology":
        """Attach a topology exported by :meth:`to_shared`, zero-copy.

        The primary arrays become **read-only** views over the shared
        segments (no copy, no re-validation — the exporting process
        already thresholded the PRR matrix); derived state (adjacency,
        audibility, neighbor lists) is recomputed locally, and the
        content fingerprint is inherited so store keys and broadcast
        dedup agree across processes.
        """
        from ..exec.shared import attach_array

        keepalive = []
        prr, shm = attach_array(ref.prr)
        keepalive.append(shm)
        positions = rssi = None
        if ref.positions is not None:
            positions, shm = attach_array(ref.positions)
            keepalive.append(shm)
        if ref.rssi is not None:
            rssi, shm = attach_array(ref.rssi)
            keepalive.append(shm)

        topo = cls.__new__(cls)
        topo.prr = prr
        topo.neighbor_threshold = float(ref.neighbor_threshold)
        topo.n_nodes = int(prr.shape[0])
        topo.positions = positions
        topo.rssi = rssi
        topo._fingerprint = ref.token
        topo._shm_keepalive = keepalive
        topo._derive()
        return topo

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between two nodes (requires positions)."""
        if self.positions is None:
            raise ValueError("topology has no position information")
        return float(np.linalg.norm(self.positions[a] - self.positions[b]))

    # ------------------------------------------------------------------
    # Graph views
    # ------------------------------------------------------------------

    def to_networkx(self, weight: str = "prr") -> "nx.DiGraph":
        """Directed networkx view with ``prr`` and ``etx`` edge attributes.

        ``weight`` selects which attribute to duplicate into the standard
        ``"weight"`` key (handy for shortest-path calls).
        """
        g = nx.DiGraph()
        g.add_nodes_from(range(self.n_nodes))
        rows, cols = np.nonzero(self.adjacency)
        for i, j in zip(rows.tolist(), cols.tolist()):
            prr = float(self.prr[i, j])
            etx = 1.0 / prr
            g.add_edge(i, j, prr=prr, etx=etx, weight=prr if weight == "prr" else etx)
        return g

    def undirected_view(self) -> "nx.Graph":
        """Undirected view where an edge exists if either direction does."""
        g = nx.Graph()
        g.add_nodes_from(range(self.n_nodes))
        rows, cols = np.nonzero(self.adjacency | self.adjacency.T)
        for i, j in zip(rows.tolist(), cols.tolist()):
            if i < j:
                prr = max(float(self.prr[i, j]), float(self.prr[j, i]))
                g.add_edge(i, j, prr=prr, etx=1.0 / prr)
        return g

    def is_connected_from_source(self) -> bool:
        """Whether every sensor is reachable from the source over out-links."""
        g = self.to_networkx()
        reach = nx.descendants(g, SOURCE)
        return len(reach) == self.n_nodes - 1

    def reachable_from_source(self) -> np.ndarray:
        """Boolean mask of nodes reachable from the source (source included).

        The BFS result is memoized (the topology is immutable once
        built); callers receive a private copy because the engines mask
        the source out of it in place.
        """
        cached = getattr(self, "_reachable_cache", None)
        if cached is None:
            g = self.to_networkx()
            cached = np.zeros(self.n_nodes, dtype=bool)
            cached[SOURCE] = True
            for v in nx.descendants(g, SOURCE):
                cached[v] = True
            self._reachable_cache = cached
        return cached.copy()

    def hop_distances_from_source(self) -> np.ndarray:
        """Unweighted hop count from the source; ``-1`` for unreachable nodes."""
        g = self.to_networkx()
        dist = np.full(self.n_nodes, -1, dtype=np.int64)
        for v, d in nx.single_source_shortest_path_length(g, SOURCE).items():
            dist[v] = d
        return dist

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        mean_deg, _, _ = self.degree_stats()
        return (
            f"Topology(n_sensors={self.n_sensors}, mean_degree={mean_deg:.1f}, "
            f"mean_prr={self.mean_prr():.2f})"
        )


def homogenized(topo: Topology) -> Topology:
    """Mean-matched twin: same adjacency, every link at the network-mean PRR.

    The Sec. IV-B heterogeneity experiment floods this twin with the same
    seeds as the original trace — homogenizing removes the good-link
    subgraph that link-aware protocols actually ride on, isolating what
    the PRR *spread* (as opposed to the mean) is worth.
    """
    mean_prr = topo.mean_prr()
    prr = np.where(topo.adjacency, mean_prr, 0.0)
    return Topology(
        prr,
        positions=topo.positions,
        neighbor_threshold=min(topo.neighbor_threshold, mean_prr),
        rssi=topo.rssi,
    )
