"""Network substrate: topologies, link models, schedules, packets, radio."""

from .generators import (
    binary_tree_topology,
    grid_topology,
    line_topology,
    positions_to_topology,
    random_geometric_topology,
    star_topology,
)
from .links import (
    LinkQuality,
    RadioParameters,
    distance_to_prr,
    expected_transmissions,
    k_class_to_prr,
    prr_to_k_class,
    rssi_to_prr,
)
from .packet import FcfsBuffer, FloodWorkload, Packet
from .radio import (
    RadioModel,
    Reception,
    SlotOutcome,
    Transmission,
    TxBatch,
    carrier_sense_groups,
    resolve_slot,
)
from .schedule import (
    ScheduleTable,
    WorkingSchedule,
    duty_ratio_to_period,
    period_to_duty_ratio,
    random_schedules,
)
from .sync import LocalSyncService
from .topology import SOURCE, Topology
from .trace import (
    GreenOrbsConfig,
    load_trace,
    save_trace,
    synthesize_greenorbs,
    trace_statistics,
)

__all__ = [
    "binary_tree_topology", "grid_topology", "line_topology",
    "positions_to_topology", "random_geometric_topology", "star_topology",
    "LinkQuality", "RadioParameters", "distance_to_prr",
    "expected_transmissions", "k_class_to_prr", "prr_to_k_class",
    "rssi_to_prr",
    "FcfsBuffer", "FloodWorkload", "Packet",
    "RadioModel", "Reception", "SlotOutcome", "Transmission", "TxBatch",
    "carrier_sense_groups", "resolve_slot",
    "ScheduleTable", "WorkingSchedule", "duty_ratio_to_period",
    "period_to_duty_ratio", "random_schedules",
    "LocalSyncService", "SOURCE", "Topology",
    "GreenOrbsConfig", "load_trace", "save_trace", "synthesize_greenorbs",
    "trace_statistics",
]

from .dynamics import GilbertElliott

__all__.append("GilbertElliott")

from .multislot import MultiSlotScheduleTable

__all__.append("MultiSlotScheduleTable")
