"""Local synchronization service.

The paper assumes *local synchronization* (Sec. III-B): every sender knows
the working schedules of its neighbors, so it can wake itself exactly when
a neighbor becomes able to receive. Real deployments achieve this with
low-cost schedule-exchange protocols (the paper cites [26], [27]).

We model the service explicitly rather than baking the assumption into the
engine, for two reasons:

* it lets tests assert the engine only ever uses *neighbor* schedule
  knowledge (nothing global leaks into protocol decisions), and
* it provides a place to inject clock skew, which the stress/ablation
  suite uses to probe how sensitive flooding delay is to synchronization
  error (the paper's model corresponds to zero skew).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .schedule import ScheduleTable, validate_slot_index
from .topology import Topology

__all__ = ["LocalSyncService", "JitteredSchedules"]


class JitteredSchedules:
    """True radio-on times: advertised slots with per-period jitter.

    Each period, independently per node, the actual wake slot shifts by
    ±1 slot with probability ``jitter_prob`` (split evenly), else matches
    the advertisement. Jitter draws are deterministic in
    ``(seed, node, period index)``, so the table is stateless and can be
    queried in any order — the engine only needs :meth:`awake_at`.

    This is the residual-error model of an imperfect synchronization
    protocol; ``jitter_prob = 0`` is the paper's perfectly
    locally-synchronized assumption.
    """

    def __init__(
        self, advertised: ScheduleTable, jitter_prob: float, seed: int
    ):
        if not (0.0 <= jitter_prob <= 1.0):
            raise ValueError(
                f"jitter probability must be in [0, 1], got {jitter_prob}"
            )
        self._advertised = advertised
        self._prob = float(jitter_prob)
        self._seed = int(seed)
        self._cache_key = -1
        self._cache_offsets: np.ndarray = advertised.offsets

    def __len__(self) -> int:
        return len(self._advertised)

    @property
    def period(self) -> int:
        return self._advertised.period

    def _offsets_for_period(self, k: int) -> np.ndarray:
        if k == self._cache_key:
            return self._cache_offsets
        rng = np.random.default_rng(
            np.random.SeedSequence(self._seed, spawn_key=(k,))
        )
        n = len(self._advertised)
        u = rng.random(n)
        shift = np.zeros(n, dtype=np.int64)
        shift[u < self._prob / 2] = -1
        shift[(u >= self._prob / 2) & (u < self._prob)] = 1
        offsets = (self._advertised.offsets + shift) % self.period
        self._cache_key, self._cache_offsets = k, offsets
        return offsets

    def awake_at(self, t: int) -> np.ndarray:
        t = validate_slot_index(t)
        offsets = self._offsets_for_period(t // self.period)
        return np.flatnonzero(offsets == (t % self.period))

    def is_active(self, node: int, t: int) -> bool:
        offsets = self._offsets_for_period(t // self.period)
        return int(offsets[node]) == (t % self.period)


class LocalSyncService:
    """Neighbor-schedule knowledge with optional per-node clock skew.

    Parameters
    ----------
    topo:
        The network; knowledge is restricted to graph neighbors.
    schedules:
        Ground-truth schedule table.
    skew_slots:
        Optional per-node clock skew (signed, in slots). A sender
        estimating a neighbor's wake-up adds its *belief error*, i.e. the
        difference between the neighbor's true offset and the offset it
        advertised before skew accumulated. Zero (default) gives the
        paper's perfectly locally-synchronized model.
    """

    def __init__(
        self,
        topo: Topology,
        schedules: ScheduleTable,
        skew_slots: Optional[np.ndarray] = None,
    ):
        if len(schedules) != topo.n_nodes:
            raise ValueError(
                f"schedule table covers {len(schedules)} nodes but the "
                f"topology has {topo.n_nodes}"
            )
        self._topo = topo
        self._schedules = schedules
        if skew_slots is None:
            skew_slots = np.zeros(topo.n_nodes, dtype=np.int64)
        else:
            skew_slots = np.asarray(skew_slots, dtype=np.int64)
            if skew_slots.shape != (topo.n_nodes,):
                raise ValueError(
                    f"skew must have shape ({topo.n_nodes},), got {skew_slots.shape}"
                )
        self._skew = skew_slots

    @property
    def is_perfect(self) -> bool:
        """True when no node has clock skew (the paper's assumption)."""
        return bool(np.all(self._skew == 0))

    def knows_schedule(self, observer: int, target: int) -> bool:
        """Whether ``observer`` legitimately knows ``target``'s schedule."""
        return self._topo.has_link(observer, target) or self._topo.has_link(
            target, observer
        )

    def believed_offset(self, observer: int, target: int) -> int:
        """The active-slot offset ``observer`` believes ``target`` has.

        Raises
        ------
        PermissionError
            If the nodes are not neighbors — protocol code asking for a
            non-neighbor schedule indicates a modelling bug.
        """
        if observer != target and not self.knows_schedule(observer, target):
            raise PermissionError(
                f"node {observer} has no schedule knowledge of non-neighbor {target}"
            )
        true_offset = int(self._schedules.offsets[target])
        error = int(self._skew[target] - self._skew[observer])
        return (true_offset + error) % self._schedules.period

    def believed_next_active(self, observer: int, target: int, t: int) -> int:
        """When ``observer`` believes ``target`` will next be able to receive."""
        offset = self.believed_offset(observer, target)
        phase = t % self._schedules.period
        wait = (offset - phase) % self._schedules.period
        return t + wait

    def wakeup_is_correct(self, observer: int, target: int, t: int) -> bool:
        """Whether a wake-up planned by ``observer`` actually hits an active slot."""
        planned = self.believed_next_active(observer, target, t)
        return self._schedules.is_active(target, planned)
