"""Time-varying link dynamics (Gilbert-Elliott bursty links).

The paper's model draws every transmission outcome independently (static
PRR). Real WSN links are *bursty* — the related work it cites ([23],
Alizai et al., "Bursty traffic over bursty links") shows losses cluster
in time. The Gilbert-Elliott two-state Markov model is the standard
abstraction: each link alternates between a GOOD state (nominal PRR) and
a BAD state (PRR suppressed by a factor), with geometric sojourn times.

Burstiness interacts badly with duty cycling: a bad period that spans a
receiver's wake slot costs a *full duty-cycle period* per loss, so
correlated losses inflate sleep latency far more than their long-run
average suggests. The ``abl-bursty`` experiment quantifies this.

The state only exists for actual links (sparse representation), so
per-slot stepping is cheap even on the 298-node trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .topology import Topology

__all__ = ["GilbertElliott"]

#: Row budget for :meth:`GilbertElliott.advance` block draws: one chunk
#: draws at most this many doubles, bounding peak memory on very long
#: idle spans. Equality with ``k`` sequential ``step()`` draws holds for
#: any positive value (tests shrink it to force the chunked path).
_ADVANCE_BLOCK_DRAWS = 4_000_000


@dataclass(frozen=True)
class _GeParams:
    p_good_to_bad: float
    p_bad_to_good: float
    bad_factor: float


class GilbertElliott:
    """Two-state Markov link dynamics.

    Parameters
    ----------
    topo:
        The static topology whose links get dynamic state.
    p_good_to_bad, p_bad_to_good:
        Per-slot transition probabilities. Expected sojourns are their
        inverses; the stationary bad fraction is
        ``p_gb / (p_gb + p_bg)``.
    bad_factor:
        PRR multiplier while a link is BAD (0 = complete outage).
    rng:
        Stream for state transitions (independent of the loss draws so
        enabling dynamics does not reshuffle the channel stream).
    start_stationary:
        Draw initial states from the stationary distribution (else all
        links start GOOD).
    """

    def __init__(
        self,
        topo: Topology,
        p_good_to_bad: float = 0.02,
        p_bad_to_good: float = 0.1,
        bad_factor: float = 0.1,
        rng: Optional[np.random.Generator] = None,
        start_stationary: bool = True,
    ):
        for name, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
        ):
            if not (0.0 < p <= 1.0):
                raise ValueError(f"{name} must be in (0, 1], got {p}")
        if not (0.0 <= bad_factor <= 1.0):
            raise ValueError(f"bad factor must be in [0, 1], got {bad_factor}")
        self._params = _GeParams(p_good_to_bad, p_bad_to_good, bad_factor)
        self._topo = topo
        self._rng = rng if rng is not None else np.random.default_rng(0)

        rows, cols = np.nonzero(topo.adjacency)
        self._rows = rows
        self._cols = cols
        #: Per-link BAD flags, indexed like rows/cols.
        n_links = rows.size
        if start_stationary:
            p_bad = p_good_to_bad / (p_good_to_bad + p_bad_to_good)
            self._bad = self._rng.random(n_links) < p_bad
        else:
            self._bad = np.zeros(n_links, dtype=bool)
        #: (sender, receiver) -> link index for O(1) lookups.
        self._index = {
            (int(s), int(r)): i
            for i, (s, r) in enumerate(zip(rows.tolist(), cols.tolist()))
        }

    @property
    def n_links(self) -> int:
        return int(self._rows.size)

    @property
    def stationary_bad_fraction(self) -> float:
        p = self._params
        return p.p_good_to_bad / (p.p_good_to_bad + p.p_bad_to_good)

    def long_run_prr_scale(self) -> float:
        """Expected PRR multiplier under the stationary distribution."""
        pb = self.stationary_bad_fraction
        return (1 - pb) + pb * self._params.bad_factor

    def bad_fraction(self) -> float:
        """Current fraction of links in the BAD state."""
        return float(self._bad.mean()) if self._bad.size else 0.0

    def fork(self, rng: np.random.Generator) -> "GilbertElliott":
        """Clone with the current link states but an independent stream.

        Used by the Fig. 9 probe floods: each probe starts from the
        channel conditions the parent flood is experiencing *now*, then
        evolves on its own randomness so probes stay i.i.d.
        """
        p = self._params
        clone = GilbertElliott(
            self._topo,
            p_good_to_bad=p.p_good_to_bad,
            p_bad_to_good=p.p_bad_to_good,
            bad_factor=p.bad_factor,
            rng=rng,
            start_stationary=False,
        )
        clone._bad = self._bad.copy()
        return clone

    def step(self) -> None:
        """Advance every link's state by one slot (vectorized)."""
        if self._bad.size == 0:
            return
        u = self._rng.random(self._bad.size)
        go_bad = ~self._bad & (u < self._params.p_good_to_bad)
        go_good = self._bad & (u < self._params.p_bad_to_good)
        self._bad ^= go_bad | go_good

    def advance(self, k: int) -> None:
        """Advance every link by ``k`` slots, bit-identical to ``k`` steps.

        The engine's quiescence fast-forward must keep the RNG stream and
        the final link states exactly as if :meth:`step` had run ``k``
        times. NumPy generators fill multi-dimensional ``random`` output
        in C order, so ``random((m, n_links))`` consumes the same doubles
        as ``m`` sequential ``random(n_links)`` calls — one block draw per
        chunk replaces ``k`` per-slot draws.

        The per-row Markov recursion then collapses into a closed form.
        With thresholds ``lo = min(p_gb, p_bg)`` and ``hi = max(...)``,
        a draw ``u < lo`` flips the state no matter what it is (both
        transitions fire for their respective states), while
        ``lo <= u < hi`` *forces* the state whose exit probability is the
        larger threshold's complement: e.g. for ``p_gb < p_bg`` it sends
        BAD to GOOD and leaves GOOD alone — the row ends GOOD either way.
        A link's final state is therefore the last forcing row's outcome
        (or the initial state if none) flipped once per later toggle row,
        which five vectorized passes over the block compute exactly.
        """
        if k < 0:
            raise ValueError(f"cannot advance by a negative count, got {k}")
        if k == 0 or self._bad.size == 0:
            return
        p_gb = self._params.p_good_to_bad
        p_bg = self._params.p_bad_to_good
        lo, hi = min(p_gb, p_bg), max(p_gb, p_bg)
        forced_bad = p_gb > p_bg  # the forcing event lands on BAD
        n = self._bad.size
        bad = self._bad
        # Chunk the block draw so a long idle span cannot balloon memory.
        chunk = max(1, _ADVANCE_BLOCK_DRAWS // n)
        done = 0
        link_ix = np.arange(n)
        while done < k:
            m = min(chunk, k - done)
            u = self._rng.random((m, n))
            toggle = u < lo
            n_toggles = toggle.sum(axis=0)
            if lo == hi:
                bad ^= (n_toggles & 1).astype(bool)
            else:
                force = (u < hi) & ~toggle
                any_force = force.any(axis=0)
                # Last forcing row per link; toggles strictly after it.
                last = (m - 1) - np.argmax(force[::-1], axis=0)
                cum = np.cumsum(toggle, axis=0)
                after = n_toggles - np.where(
                    any_force, cum[last, link_ix], 0
                )
                base = np.where(any_force, forced_bad, bad)
                bad = base ^ (after & 1).astype(bool)
            done += m
        self._bad = bad

    def gain(self, sender: int, receiver: int) -> float:
        """Current PRR multiplier of a directed link (1.0 when GOOD)."""
        idx = self._index.get((sender, receiver))
        if idx is None:
            return 0.0
        return self._params.bad_factor if self._bad[idx] else 1.0

    def effective_prr(self, sender: int, receiver: int) -> float:
        """Nominal PRR scaled by the current link state."""
        return self._topo.link_prr(sender, receiver) * self.gain(
            sender, receiver
        )
