"""Time-varying link dynamics (Gilbert-Elliott bursty links).

The paper's model draws every transmission outcome independently (static
PRR). Real WSN links are *bursty* — the related work it cites ([23],
Alizai et al., "Bursty traffic over bursty links") shows losses cluster
in time. The Gilbert-Elliott two-state Markov model is the standard
abstraction: each link alternates between a GOOD state (nominal PRR) and
a BAD state (PRR suppressed by a factor), with geometric sojourn times.

Burstiness interacts badly with duty cycling: a bad period that spans a
receiver's wake slot costs a *full duty-cycle period* per loss, so
correlated losses inflate sleep latency far more than their long-run
average suggests. The ``abl-bursty`` experiment quantifies this.

The state only exists for actual links (sparse representation), so
per-slot stepping is cheap even on the 298-node trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .topology import Topology

__all__ = ["BatchGilbertElliott", "GilbertElliott"]

#: Row budget for :meth:`GilbertElliott.advance` block draws: one chunk
#: draws at most this many doubles, bounding peak memory on very long
#: idle spans. Equality with ``k`` sequential ``step()`` draws holds for
#: any positive value (tests shrink it to force the chunked path).
_ADVANCE_BLOCK_DRAWS = 4_000_000


@dataclass(frozen=True)
class _GeParams:
    p_good_to_bad: float
    p_bad_to_good: float
    bad_factor: float


def _step_bad(
    bad: np.ndarray, rng: np.random.Generator, p_gb: float, p_bg: float
) -> None:
    """One Markov step on a 1-D BAD-flag array, in place."""
    u = rng.random(bad.size)
    go_bad = ~bad & (u < p_gb)
    go_good = bad & (u < p_bg)
    bad ^= go_bad | go_good


def _advance_bad(
    bad: np.ndarray,
    rng: np.random.Generator,
    k: int,
    p_gb: float,
    p_bg: float,
) -> np.ndarray:
    """``k`` Markov steps on a 1-D BAD-flag array via chunked block draws.

    Bit-identical (state *and* stream) to ``k`` calls of :func:`_step_bad`
    on the same generator; see :meth:`GilbertElliott.advance` for why the
    closed form is exact. Returns the final flags (may be a new array).
    """
    lo, hi = min(p_gb, p_bg), max(p_gb, p_bg)
    forced_bad = p_gb > p_bg  # the forcing event lands on BAD
    n = bad.size
    # Chunk the block draw so a long idle span cannot balloon memory.
    chunk = max(1, _ADVANCE_BLOCK_DRAWS // n)
    done = 0
    link_ix = np.arange(n)
    while done < k:
        m = min(chunk, k - done)
        u = rng.random((m, n))
        toggle = u < lo
        n_toggles = toggle.sum(axis=0)
        if lo == hi:
            bad ^= (n_toggles & 1).astype(bool)
        else:
            force = (u < hi) & ~toggle
            any_force = force.any(axis=0)
            # Last forcing row per link; toggles strictly after it.
            last = (m - 1) - np.argmax(force[::-1], axis=0)
            cum = np.cumsum(toggle, axis=0)
            after = n_toggles - np.where(
                any_force, cum[last, link_ix], 0
            )
            base = np.where(any_force, forced_bad, bad)
            bad = base ^ (after & 1).astype(bool)
        done += m
    return bad


class GilbertElliott:
    """Two-state Markov link dynamics.

    Parameters
    ----------
    topo:
        The static topology whose links get dynamic state.
    p_good_to_bad, p_bad_to_good:
        Per-slot transition probabilities. Expected sojourns are their
        inverses; the stationary bad fraction is
        ``p_gb / (p_gb + p_bg)``.
    bad_factor:
        PRR multiplier while a link is BAD (0 = complete outage).
    rng:
        Stream for state transitions (independent of the loss draws so
        enabling dynamics does not reshuffle the channel stream).
    start_stationary:
        Draw initial states from the stationary distribution (else all
        links start GOOD).
    """

    def __init__(
        self,
        topo: Topology,
        p_good_to_bad: float = 0.02,
        p_bad_to_good: float = 0.1,
        bad_factor: float = 0.1,
        rng: Optional[np.random.Generator] = None,
        start_stationary: bool = True,
    ):
        for name, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
        ):
            if not (0.0 < p <= 1.0):
                raise ValueError(f"{name} must be in (0, 1], got {p}")
        if not (0.0 <= bad_factor <= 1.0):
            raise ValueError(f"bad factor must be in [0, 1], got {bad_factor}")
        self._params = _GeParams(p_good_to_bad, p_bad_to_good, bad_factor)
        self._topo = topo
        self._rng = rng if rng is not None else np.random.default_rng(0)

        rows, cols = np.nonzero(topo.adjacency)
        self._rows = rows
        self._cols = cols
        #: Per-link BAD flags, indexed like rows/cols.
        n_links = rows.size
        if start_stationary:
            p_bad = p_good_to_bad / (p_good_to_bad + p_bad_to_good)
            self._bad = self._rng.random(n_links) < p_bad
        else:
            self._bad = np.zeros(n_links, dtype=bool)
        #: (sender, receiver) -> link index for O(1) lookups.
        self._index = {
            (int(s), int(r)): i
            for i, (s, r) in enumerate(zip(rows.tolist(), cols.tolist()))
        }

    @property
    def n_links(self) -> int:
        return int(self._rows.size)

    @property
    def stationary_bad_fraction(self) -> float:
        p = self._params
        return p.p_good_to_bad / (p.p_good_to_bad + p.p_bad_to_good)

    def long_run_prr_scale(self) -> float:
        """Expected PRR multiplier under the stationary distribution."""
        pb = self.stationary_bad_fraction
        return (1 - pb) + pb * self._params.bad_factor

    def bad_fraction(self) -> float:
        """Current fraction of links in the BAD state."""
        return float(self._bad.mean()) if self._bad.size else 0.0

    def fork(self, rng: np.random.Generator) -> "GilbertElliott":
        """Clone with the current link states but an independent stream.

        Used by the Fig. 9 probe floods: each probe starts from the
        channel conditions the parent flood is experiencing *now*, then
        evolves on its own randomness so probes stay i.i.d.
        """
        p = self._params
        clone = GilbertElliott(
            self._topo,
            p_good_to_bad=p.p_good_to_bad,
            p_bad_to_good=p.p_bad_to_good,
            bad_factor=p.bad_factor,
            rng=rng,
            start_stationary=False,
        )
        clone._bad = self._bad.copy()
        return clone

    def step(self) -> None:
        """Advance every link's state by one slot (vectorized)."""
        if self._bad.size == 0:
            return
        _step_bad(
            self._bad,
            self._rng,
            self._params.p_good_to_bad,
            self._params.p_bad_to_good,
        )

    def advance(self, k: int) -> None:
        """Advance every link by ``k`` slots, bit-identical to ``k`` steps.

        The engine's quiescence fast-forward must keep the RNG stream and
        the final link states exactly as if :meth:`step` had run ``k``
        times. NumPy generators fill multi-dimensional ``random`` output
        in C order, so ``random((m, n_links))`` consumes the same doubles
        as ``m`` sequential ``random(n_links)`` calls — one block draw per
        chunk replaces ``k`` per-slot draws.

        The per-row Markov recursion then collapses into a closed form.
        With thresholds ``lo = min(p_gb, p_bg)`` and ``hi = max(...)``,
        a draw ``u < lo`` flips the state no matter what it is (both
        transitions fire for their respective states), while
        ``lo <= u < hi`` *forces* the state whose exit probability is the
        larger threshold's complement: e.g. for ``p_gb < p_bg`` it sends
        BAD to GOOD and leaves GOOD alone — the row ends GOOD either way.
        A link's final state is therefore the last forcing row's outcome
        (or the initial state if none) flipped once per later toggle row,
        which five vectorized passes over the block compute exactly.
        """
        if k < 0:
            raise ValueError(f"cannot advance by a negative count, got {k}")
        if k == 0 or self._bad.size == 0:
            return
        self._bad = _advance_bad(
            self._bad,
            self._rng,
            k,
            self._params.p_good_to_bad,
            self._params.p_bad_to_good,
        )

    def gain(self, sender: int, receiver: int) -> float:
        """Current PRR multiplier of a directed link (1.0 when GOOD)."""
        idx = self._index.get((sender, receiver))
        if idx is None:
            return 0.0
        return self._params.bad_factor if self._bad[idx] else 1.0

    def effective_prr(self, sender: int, receiver: int) -> float:
        """Nominal PRR scaled by the current link state."""
        return self._topo.link_prr(sender, receiver) * self.gain(
            sender, receiver
        )


class _RepGainView:
    """Single-replication read-only adapter over a batch's link states.

    Quacks like :class:`GilbertElliott` for the one method the channel
    resolver calls (:meth:`gain`), so the batched engine can hand a
    contended replication to the serial ``resolve_slot`` unchanged.
    """

    def __init__(self, batch: "BatchGilbertElliott", rep: int):
        self._batch = batch
        self._rep = int(rep)

    def gain(self, sender: int, receiver: int) -> float:
        return self._batch.gain(self._rep, sender, receiver)


class BatchGilbertElliott:
    """R independent Gilbert-Elliott universes with a leading R axis.

    Each replication keeps its own generator and its own BAD-flag row of
    the ``(R, n_links)`` state matrix; stepping/advancing replication
    ``k`` consumes exactly the doubles a standalone
    :class:`GilbertElliott` seeded with the same stream would, so any row
    extracted from the batch is bit-identical to its serial twin.

    Build it with :meth:`from_instances` from the per-replication
    instances the serial runner would have constructed — their
    stationary-init draws have then already been consumed from the right
    streams.
    """

    def __init__(
        self,
        topo: Topology,
        params: _GeParams,
        bad: np.ndarray,
        rngs: "list[np.random.Generator]",
    ):
        if bad.ndim != 2 or bad.shape[0] != len(rngs):
            raise ValueError(
                f"bad flags must be (R, n_links) matching {len(rngs)} rngs, "
                f"got shape {bad.shape}"
            )
        self._topo = topo
        self._params = params
        self._bad = bad
        self._rngs = rngs
        rows, cols = np.nonzero(topo.adjacency)
        self._rows = rows
        self._cols = cols
        n = topo.adjacency.shape[0]
        #: (sender, receiver) -> link column, -1 for non-links.
        self._pair_idx = np.full((n, n), -1, dtype=np.int64)
        self._pair_idx[rows, cols] = np.arange(rows.size)

    @classmethod
    def from_instances(
        cls, instances: "list[GilbertElliott]"
    ) -> "BatchGilbertElliott":
        """Stack per-replication instances into one (R, n_links) batch."""
        if not instances:
            raise ValueError("need at least one replication instance")
        first = instances[0]
        for inst in instances[1:]:
            if inst._params != first._params or inst._topo is not first._topo:
                raise ValueError(
                    "replications must share topology and parameters"
                )
        bad = np.stack([inst._bad for inst in instances], axis=0)
        return cls(
            first._topo,
            first._params,
            bad,
            [inst._rng for inst in instances],
        )

    @property
    def n_reps(self) -> int:
        return len(self._rngs)

    @property
    def n_links(self) -> int:
        return int(self._rows.size)

    @property
    def bad_factor(self) -> float:
        return self._params.bad_factor

    def step_reps(self, rep_ids: np.ndarray) -> None:
        """One Markov step for each listed replication.

        Draws come from each replication's own stream (one call per
        replication, matching the serial consumption order); the state
        update itself is row-local so the loop is the only scalar part.
        """
        if self._bad.shape[1] == 0:
            return
        p = self._params
        for k in rep_ids:
            _step_bad(
                self._bad[int(k)], self._rngs[int(k)],
                p.p_good_to_bad, p.p_bad_to_good,
            )

    def advance_rep(self, rep: int, k: int) -> None:
        """Advance one replication by ``k`` slots (lazy catch-up)."""
        if k < 0:
            raise ValueError(f"cannot advance by a negative count, got {k}")
        if k == 0 or self._bad.shape[1] == 0:
            return
        p = self._params
        self._bad[int(rep)] = _advance_bad(
            self._bad[int(rep)], self._rngs[int(rep)], k,
            p.p_good_to_bad, p.p_bad_to_good,
        )

    def gain(self, rep: int, sender: int, receiver: int) -> float:
        """Current PRR multiplier of a link in one replication."""
        idx = self._pair_idx[sender, receiver]
        if idx < 0:
            return 0.0
        return (
            self._params.bad_factor if self._bad[rep, idx] else 1.0
        )

    def gains(
        self, kk: np.ndarray, ss: np.ndarray, rr: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`gain` over (replication, sender, receiver)."""
        idx = self._pair_idx[ss, rr]
        valid = idx >= 0
        out = np.zeros(len(kk), dtype=np.float64)
        if valid.any():
            vk = kk[valid]
            bad = self._bad[vk, idx[valid]]
            out[valid] = np.where(bad, self._params.bad_factor, 1.0)
        return out

    def view(self, rep: int) -> _RepGainView:
        """A serial-shaped gain adapter for one replication."""
        return _RepGainView(self, rep)

    def rep_state(self, rep: int) -> np.ndarray:
        """Copy of one replication's BAD flags (tests/diagnostics)."""
        return self._bad[int(rep)].copy()
