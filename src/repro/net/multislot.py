"""Multi-active-slot schedule tables (duty ratio ``a/T``).

The paper's general model lets a sensor pick *several* active slots per
period before Sec. IV normalizes to one slot per period. This module
implements the general table with the same query interface as
:class:`~repro.net.schedule.ScheduleTable`, so the engine and protocols
run unchanged.

Why it matters: at a fixed duty ratio (fixed radio-on energy), splitting
the budget into more, shorter wake windows spread over a longer period
shortens the *sleep latency* a sender sees — the expected wait to the
next active slot drops from ``~T/2`` to ``~T/(2a)`` per period-length
unit. The ``slot-split`` experiment quantifies this energy-neutral delay
lever, which the paper's normalized analysis deliberately sets aside.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .schedule import (
    ScheduleTable,
    WorkingSchedule,
    slots_until_phase,
    validate_slot_index,
)

__all__ = ["MultiSlotScheduleTable"]


class MultiSlotScheduleTable:
    """Vectorized schedule store with ``a`` active slots per node.

    Parameters
    ----------
    period:
        Cycle length ``T`` in slots (shared by all nodes).
    offsets:
        ``(n_nodes, a)`` array; row ``v`` lists node ``v``'s active slot
        offsets within ``[0, period)``. Duplicate offsets within a row
        are rejected (they would silently lower the duty ratio).
    """

    def __init__(self, period: int, offsets: np.ndarray):
        self.period = int(period)
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.ndim != 2 or offsets.shape[0] < 1 or offsets.shape[1] < 1:
            raise ValueError("offsets must be a non-empty (n_nodes, a) array")
        if np.any((offsets < 0) | (offsets >= self.period)):
            raise ValueError("offsets must lie in [0, period)")
        for v in range(offsets.shape[0]):
            if np.unique(offsets[v]).size != offsets.shape[1]:
                raise ValueError(f"node {v} has duplicate active slots")
        self.offsets_matrix = offsets
        self.n_nodes = int(offsets.shape[0])
        self.slots_per_period = int(offsets.shape[1])
        # Wake list per phase, precomputed like the single-slot table.
        self.wake_lists: List[np.ndarray] = [
            np.unique(np.nonzero(offsets == phase)[0])
            for phase in range(self.period)
        ]

    # -- Constructors ---------------------------------------------------

    @classmethod
    def random(
        cls,
        n_nodes: int,
        period: int,
        slots_per_period: int,
        rng: np.random.Generator,
    ) -> "MultiSlotScheduleTable":
        """Each node independently picks ``a`` distinct random slots."""
        if n_nodes < 1:
            raise ValueError("need at least one node")
        if not (1 <= slots_per_period <= period):
            raise ValueError(
                f"slots_per_period must be in [1, period], got "
                f"{slots_per_period} for period {period}"
            )
        offsets = np.empty((n_nodes, slots_per_period), dtype=np.int64)
        for v in range(n_nodes):
            offsets[v] = rng.choice(period, size=slots_per_period,
                                    replace=False)
        return cls(period=period, offsets=offsets)

    @classmethod
    def from_single(cls, table: ScheduleTable) -> "MultiSlotScheduleTable":
        """Wrap a normalized single-slot table (duty ``1/T``)."""
        return cls(period=table.period, offsets=table.offsets[:, None])

    # -- Queries (ScheduleTable-compatible) ------------------------------

    @property
    def duty_ratio(self) -> float:
        return self.slots_per_period / self.period

    #: Compatibility shim: protocols that need *an* offset per node (the
    #: DCA tree builder) get each node's first active slot. Documented
    #: approximation — the delay-optimal tree is then built against the
    #: first wake window only.
    @property
    def offsets(self) -> np.ndarray:
        return self.offsets_matrix[:, 0]

    def awake_at(self, t: int) -> np.ndarray:
        return self.wake_lists[validate_slot_index(t) % self.period]

    def is_active(self, node: int, t: int) -> bool:
        return bool(np.any(self.offsets_matrix[node] == (t % self.period)))

    def next_active(self, node: int, t: int) -> int:
        t = validate_slot_index(t)
        waits = slots_until_phase(self.offsets_matrix[node], t, self.period)
        return t + int(waits.min())

    def next_active_array(self, t: int) -> np.ndarray:
        t = validate_slot_index(t)
        waits = slots_until_phase(self.offsets_matrix, t, self.period)
        return t + waits.min(axis=1)

    def next_wake_after(self, t: int, nodes=None) -> np.ndarray:
        """Earliest active slot strictly after ``t`` (see ScheduleTable)."""
        t = validate_slot_index(t)
        mat = (
            self.offsets_matrix if nodes is None
            else self.offsets_matrix[nodes]
        )
        waits = slots_until_phase(mat, t + 1, self.period)
        return (t + 1) + waits.min(axis=1)

    def schedule_of(self, node: int) -> WorkingSchedule:
        return WorkingSchedule(
            period=self.period,
            active_slots=frozenset(int(s) for s in self.offsets_matrix[node]),
        )

    def __len__(self) -> int:
        return self.n_nodes

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"MultiSlotScheduleTable(n_nodes={self.n_nodes}, "
            f"period={self.period}, a={self.slots_per_period}, "
            f"duty={self.duty_ratio:.2%})"
        )
