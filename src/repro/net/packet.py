"""Packets, FCFS buffers, and flood workloads.

The paper's queueing discipline (Sec. III-C) is FCFS everywhere: the
source injects packets sequentially, and every relay forwards the packet
that *arrived at it* earliest among those the intended receiver still
needs. :class:`FcfsBuffer` implements exactly that discipline for the
object-level API; the vectorized simulator keeps the equivalent state in
arrays (see :mod:`repro.sim.engine`) but is tested against this reference
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

__all__ = ["Packet", "FcfsBuffer", "FloodWorkload"]


@dataclass(frozen=True, order=True)
class Packet:
    """One flooded packet.

    Ordering is by ``index`` (the source injection order ``p = 0..M-1``),
    which matches FCFS at the source.
    """

    index: int
    generated_at: int = 0

    def __post_init__(self):
        if self.index < 0:
            raise ValueError(f"packet index must be non-negative, got {self.index}")
        if self.generated_at < 0:
            raise ValueError(
                f"generation slot must be non-negative, got {self.generated_at}"
            )


class FcfsBuffer:
    """Arrival-ordered packet buffer of one node.

    Packets are queued in the order they arrived at *this* node. For a
    given receiver, the head-of-line packet is the earliest-arrived packet
    the receiver still needs — later packets may not overtake it (the
    FCFS policy the paper's waiting analysis is built on).
    """

    def __init__(self):
        self._order: List[int] = []  # packet indices, arrival order
        self._arrival: Dict[int, int] = {}

    def __contains__(self, packet_index: int) -> bool:
        return packet_index in self._arrival

    def __len__(self) -> int:
        return len(self._order)

    @property
    def packets(self) -> List[int]:
        """Packet indices in arrival order (a copy)."""
        return list(self._order)

    def arrival_slot(self, packet_index: int) -> int:
        """Slot at which the packet arrived here."""
        try:
            return self._arrival[packet_index]
        except KeyError:
            raise KeyError(f"packet {packet_index} not in buffer") from None

    def add(self, packet_index: int, slot: int) -> bool:
        """Record arrival of a packet; returns False for duplicates.

        Duplicate receptions (possible via overhearing) are ignored — the
        first arrival fixes the FCFS position.
        """
        if packet_index in self._arrival:
            return False
        if self._order and slot < self._arrival[self._order[-1]]:
            # Arrivals within one slot are fine; going backwards is a bug.
            if slot < max(self._arrival.values()) - 0:
                pass  # equal-slot arrivals keep insertion order
        self._order.append(packet_index)
        self._arrival[packet_index] = int(slot)
        return True

    def head_for(self, needed: Iterable[int]) -> Optional[int]:
        """Earliest-arrived packet among ``needed`` (None if none held).

        ``needed`` is the set of packets the intended receiver lacks.
        """
        needed_set = set(needed)
        for p in self._order:
            if p in needed_set:
                return p
        return None


class FloodWorkload:
    """The source's injection plan: ``M`` packets with generation slots.

    ``generation_interval`` spaces out the injections (``gen[p] = p * g``).
    The paper's experiments use back-to-back injection (``g = 0``): all
    packets are ready at slot 0 and serialize purely through FCFS and the
    one-transmission-per-slot radio constraint.
    """

    def __init__(self, n_packets: int, generation_interval: int = 0):
        if n_packets < 1:
            raise ValueError(f"need at least one packet, got {n_packets}")
        if generation_interval < 0:
            raise ValueError("generation interval must be non-negative")
        self.n_packets = int(n_packets)
        self.generation_interval = int(generation_interval)

    def generation_slot(self, packet_index: int) -> int:
        """Slot at which packet ``p`` becomes available at the source."""
        if not (0 <= packet_index < self.n_packets):
            raise IndexError(
                f"packet index {packet_index} outside [0, {self.n_packets})"
            )
        return packet_index * self.generation_interval

    def generation_slots(self) -> np.ndarray:
        """Vector of generation slots for all packets."""
        return np.arange(self.n_packets, dtype=np.int64) * self.generation_interval

    def packets(self) -> List[Packet]:
        """Materialized packet objects in injection order."""
        return [
            Packet(index=p, generated_at=self.generation_slot(p))
            for p in range(self.n_packets)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"FloodWorkload(M={self.n_packets}, "
            f"interval={self.generation_interval})"
        )
