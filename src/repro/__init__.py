"""repro — reproduction of *Understanding the Flooding in Low-Duty-Cycle
Wireless Sensor Networks* (Li, Li, Liu, Tang; ICPP 2011).

The package has six layers:

* :mod:`repro.core` — the paper's analytical results: FWL/FDL limits
  (Lemmas 2-3, Theorems 1-2, Table I, Corollary 1), the matrix-based
  flooding Algorithm 1, the Galton-Watson machinery behind Lemma 1, the
  k-class link-loss recurrence of Sec. IV-B, and the duty-cycle
  trade-off instrument sketched as future work.
* :mod:`repro.net` — the network substrate: lossy-link topologies (incl.
  the synthetic GreenOrbs 298-node trace), working schedules, packets,
  the semi-duplex collision radio, and local synchronization.
* :mod:`repro.sim` — the slot-stepped simulation engine, metrics (the
  paper's 99%-coverage delay rule), energy accounting, and the seeded
  experiment runner.
* :mod:`repro.protocols` — OPT / DBAO / OF from Sec. V plus naive, DCA
  and the cross-layer future-work sketch.
* :mod:`repro.exec` — pluggable execution backends (serial /
  process-pool parallel, bit-identical results) and a content-addressed
  result store shared by the runner, sweeps, experiments and CLI.
* :mod:`repro.scenario` — the declarative layer: a frozen, serializable
  :class:`~repro.scenario.Scenario` spec (topology, schedule, protocol,
  workload, sim overrides) with a canonical content fingerprint, plus
  :class:`~repro.scenario.ScenarioGrid` sweeps loadable from JSON files
  (``repro run-scenario FILE.json``).

Quickstart::

    import numpy as np
    from repro import (ExperimentSpec, run_experiment, synthesize_greenorbs)

    topo = synthesize_greenorbs(seed=1)
    summary = run_experiment(
        topo, ExperimentSpec(protocol="dbao", duty_ratio=0.05, n_packets=10)
    )
    print(summary.mean_delay())
"""

from .exec import (
    ExecutionContext,
    ParallelExecutor,
    ResultStore,
    SerialExecutor,
    configure_execution,
    execution_context,
    use_execution,
)
from .core import (
    fdl_theorem1,
    fdl_theorem2_bounds,
    fwl_lossy,
    fwl_reliable,
    knee_point,
    optimal_duty_cycle,
    predicted_delay,
    recurrence_hitting_time,
)
from .core.matrix_flood import MatrixFloodSimulator
from .net import (
    SOURCE,
    FloodWorkload,
    RadioModel,
    ScheduleTable,
    Topology,
    duty_ratio_to_period,
    grid_topology,
    random_geometric_topology,
    synthesize_greenorbs,
)
from .protocols import available_protocols, make_protocol
from .scenario import (
    Scenario,
    ScenarioGrid,
    TopologySpec,
    as_scenario,
    load_scenario_file,
)
from .sim import (
    ExperimentSpec,
    RngStreams,
    RunSummary,
    SimConfig,
    run_experiment,
    run_experiments,
    run_flood,
    run_protocol_sweep,
    run_replication,
    run_scenarios,
)

__version__ = "1.0.0"

__all__ = [
    "fdl_theorem1", "fdl_theorem2_bounds", "fwl_lossy", "fwl_reliable",
    "knee_point", "optimal_duty_cycle", "predicted_delay",
    "recurrence_hitting_time", "MatrixFloodSimulator",
    "SOURCE", "FloodWorkload", "RadioModel", "ScheduleTable", "Topology",
    "duty_ratio_to_period", "grid_topology", "random_geometric_topology",
    "synthesize_greenorbs",
    "available_protocols", "make_protocol",
    "Scenario", "ScenarioGrid", "TopologySpec", "as_scenario",
    "load_scenario_file",
    "ExperimentSpec", "RngStreams", "RunSummary", "SimConfig",
    "run_experiment", "run_experiments", "run_flood", "run_protocol_sweep",
    "run_replication", "run_scenarios",
    "ExecutionContext", "ParallelExecutor", "ResultStore", "SerialExecutor",
    "configure_execution", "execution_context", "use_execution",
    "__version__",
]
