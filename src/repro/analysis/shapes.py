"""Shape audit: the paper's qualitative claims as checkable predicates.

DESIGN.md §5 lists what each figure must *look like* (who wins, where the
knee falls, what grows and what stays flat). This module turns that list
into code: one :class:`ShapeCheck` per claim, evaluated against
:class:`~repro.analysis.series.ExperimentResult` objects, so EXPERIMENTS.md's
"shape holds" column is produced by the machine rather than by eyeball.

Usage::

    from repro.analysis.shapes import audit
    report = audit({"fig10": result10, "fig11": result11})
    for check in report:
        print(check.claim, "->", "PASS" if check.passed else "FAIL", check.detail)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from .series import ExperimentResult
from .validate import relative_spread

__all__ = ["ShapeCheck", "audit", "CHECKS"]


@dataclass
class ShapeCheck:
    """Outcome of one audited claim."""

    experiment_id: str
    claim: str
    passed: bool
    detail: str = ""


def _check_fig5(result: ExperimentResult) -> List[ShapeCheck]:
    checks = []
    # Larger N strictly above smaller N at the same T.
    s256 = result.get_series("panelA: N=256, T=5").y
    s1024 = result.get_series("panelA: N=1024, T=5").y
    s4096 = result.get_series("panelA: N=4096, T=5").y
    checks.append(ShapeCheck(
        "fig5", "FDL increases with N at fixed T",
        bool(np.all(s256 < s1024) and np.all(s1024 < s4096)),
    ))
    # Knee: slope halves after M = m.
    slopes = np.diff(s1024)
    m = 11
    ok = np.isclose(slopes[m - 3], 2 * slopes[m + 2])
    checks.append(ShapeCheck(
        "fig5", "per-packet marginal delay halves at the knee M = m",
        bool(ok), f"slope before {slopes[m-3]:.2f}, after {slopes[m+2]:.2f}",
    ))
    # Panel B: lower duty strictly slower.
    b10 = result.get_series("panelB: N=1024, duty=10%").y
    b20 = result.get_series("panelB: N=1024, duty=20%").y
    b100 = result.get_series("panelB: N=1024, duty=100%").y
    checks.append(ShapeCheck(
        "fig5", "FDL ordered by duty ratio (10% > 20% > 100%)",
        bool(np.all(b10 > b20) and np.all(b20 > b100)),
    ))
    return checks


def _check_fig6(result: ExperimentResult) -> List[ShapeCheck]:
    checks = []
    for n in (256, 1024):
        lo = result.get_series(f"N={n}, lower bound").y
        hi = result.get_series(f"N={n}, upper bound").y
        checks.append(ShapeCheck(
            "fig6", f"bounds bracket correctly for N={n}",
            bool(np.all(lo <= hi)),
        ))
    return checks


def _check_fig7(result: ExperimentResult) -> List[ShapeCheck]:
    k2 = result.get_series("k=2 (link quality 50%)")
    k125 = result.get_series("k=1.25 (link quality 80%)")
    spread = k2.y - k125.y
    return [
        ShapeCheck("fig7", "delay decreases with duty cycle",
                   k2.is_monotone_decreasing() and k125.is_monotone_decreasing()),
        ShapeCheck("fig7", "worse links strictly slower",
                   bool(np.all(k2.y > k125.y))),
        ShapeCheck("fig7", "loss magnifies the duty penalty (spread widens)",
                   bool(spread[0] > spread[-1]),
                   f"spread {spread[0]} at 2% vs {spread[-1]} at 20%"),
    ]


def _check_fig9(result: ExperimentResult) -> List[ShapeCheck]:
    checks = []
    for proto in ("dbao", "of"):
        total = result.get_series(f"{proto}: total delay").y
        third = max(len(total) // 3, 1)
        head, tail = np.nanmean(total[:third]), np.nanmean(total[-third:])
        checks.append(ShapeCheck(
            "fig9", f"{proto}: blocking grows with packet index",
            bool(tail > head), f"head {head:.0f} vs tail {tail:.0f}",
        ))
        trans = result.get_series(f"{proto}: transmission delay").y
        checks.append(ShapeCheck(
            "fig9", f"{proto}: transmission delay below blocked total",
            bool(np.nanmean(trans) < tail),
        ))
    return checks


def _check_fig10(result: ExperimentResult) -> List[ShapeCheck]:
    opt = result.get_series("opt: avg delay").y
    dbao = result.get_series("dbao: avg delay").y
    of = result.get_series("of: avg delay").y
    bound = result.get_series("predicted lower bound").y
    return [
        ShapeCheck("fig10", "delay deteriorates at low duty (all protocols)",
                   bool(opt[0] > opt[-1] and dbao[0] > dbao[-1]
                        and of[0] > of[-1])),
        ShapeCheck("fig10", "OPT <= DBAO at every duty ratio",
                   bool(np.all(opt <= dbao * 1.15))),
        ShapeCheck("fig10", "OPT <= OF at every duty ratio",
                   bool(np.all(opt <= of * 1.15))),
        ShapeCheck("fig10", "DBAO <= OF at every duty ratio",
                   bool(np.all(dbao <= of * 1.25))),
        ShapeCheck("fig10", "analytic prediction below OPT",
                   bool(np.all(bound <= opt * 1.1))),
    ]


def _check_fig11(result: ExperimentResult) -> List[ShapeCheck]:
    checks = []
    opt = result.get_series("opt: failures").y
    checks.append(ShapeCheck(
        "fig11", "OPT failures roughly constant across duty ratios",
        relative_spread(opt) < 0.5,
        f"relative spread {relative_spread(opt):.2f}",
    ))
    for proto in ("dbao", "of"):
        f = result.get_series(f"{proto}: failures").y
        checks.append(ShapeCheck(
            "fig11", f"{proto} failures within one order of magnitude",
            bool(f.max() <= 10 * max(f.min(), 1.0)),
            f"min {f.min():.0f}, max {f.max():.0f}",
        ))
    return checks


def _check_gain(result: ExperimentResult) -> List[ShapeCheck]:
    gains = result.get_series("networking gain").y
    best = int(np.argmax(gains))
    return [
        ShapeCheck("gain", "interior gain maximum (extremely low duty is "
                           "not optimal)",
                   bool(0 < best < gains.size - 1),
                   f"optimum at duty {result.metadata.get('optimal_duty')}"),
    ]


def _check_skew(result: ExperimentResult) -> List[ShapeCheck]:
    delays = result.get_series("avg delay").y
    misses = result.get_series("sleep misses").y
    return [
        ShapeCheck("skew", "delay degrades with clock skew",
                   bool(delays[-1] > delays[0])),
        ShapeCheck("skew", "sleep misses monotone in skew",
                   bool(misses[0] == 0 and np.all(np.diff(misses) >= 0))),
    ]


def _check_hetero(result: ExperimentResult) -> List[ShapeCheck]:
    het = result.get_series("heterogeneous trace").y
    hom = result.get_series("homogenized twin").y
    bound = result.get_series("analytic lower bound").y
    return [
        ShapeCheck("hetero", "both variants above the analytic bound",
                   bool(np.all(het >= bound * 0.75)
                        and np.all(hom >= bound * 0.75))),
    ]


CHECKS: Dict[str, Callable[[ExperimentResult], List[ShapeCheck]]] = {
    "fig5": _check_fig5,
    "fig6": _check_fig6,
    "fig7": _check_fig7,
    "fig9": _check_fig9,
    "fig10": _check_fig10,
    "fig11": _check_fig11,
    "gain": _check_gain,
    "skew": _check_skew,
    "hetero": _check_hetero,
}


def audit(results: Mapping[str, ExperimentResult]) -> List[ShapeCheck]:
    """Evaluate every registered claim against available results.

    Experiments without results are skipped; unknown ids are an error
    (a typo would otherwise silently audit nothing).
    """
    out: List[ShapeCheck] = []
    for eid, result in results.items():
        checker = CHECKS.get(eid)
        if checker is None:
            raise KeyError(
                f"no shape checks registered for {eid!r}; "
                f"known: {sorted(CHECKS)}"
            )
        out.extend(checker(result))
    return out
