"""ASCII rendering of experiment results.

The harness is terminal-first: every figure becomes an aligned data table
(one row per x grid point, one column per series) and, where it helps, a
crude unicode sparkline. EXPERIMENTS.md embeds these renderings.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from .series import ExperimentResult, Series, Table

__all__ = ["render_series_table", "render_table", "render_result",
           "sparkline", "grid_cell_axes", "grid_digest"]

_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Compress a numeric series into a one-line unicode sparkline."""
    vals = np.asarray(values, dtype=np.float64)
    vals = vals[np.isfinite(vals)]
    if vals.size == 0:
        return "(no data)"
    if vals.size > width:
        # Average into `width` buckets.
        edges = np.linspace(0, vals.size, width + 1).astype(int)
        vals = np.asarray(
            [vals[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a]
        )
    lo, hi = float(vals.min()), float(vals.max())
    if hi - lo < 1e-12:
        return _SPARK[0] * vals.size
    idx = ((vals - lo) / (hi - lo) * (len(_SPARK) - 1)).round().astype(int)
    return "".join(_SPARK[i] for i in idx)


def _fmt(value) -> str:
    if isinstance(value, (str, np.str_)):
        return str(value)
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    v = float(value)
    if not np.isfinite(v):
        return "-"
    if v == int(v) and abs(v) < 1e9:
        return str(int(v))
    return f"{v:.2f}"


def render_series_table(
    series_list: Sequence[Series], x_label: str = "x"
) -> str:
    """Align multiple series that share an x grid into one text table."""
    if not series_list:
        raise ValueError("nothing to render")
    base_x = series_list[0].x
    for s in series_list[1:]:
        if s.x.size != base_x.size or not np.array_equal(s.x, base_x):
            raise ValueError(
                f"series {s.label!r} is on a different x grid; render it separately"
            )
    headers = [x_label] + [s.label for s in series_list]
    rows = [
        [_fmt(base_x[i])] + [_fmt(s.y[i]) for s in series_list]
        for i in range(base_x.size)
    ]
    return _render_aligned(headers, rows)


def render_table(table: Table) -> str:
    headers = list(table.columns)
    rows = [
        [_fmt(table.columns[h][i]) for h in headers] for i in range(table.n_rows)
    ]
    return f"{table.title}\n" + _render_aligned(headers, rows)


def _render_aligned(headers: List[str], rows: List[List[str]]) -> str:
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in rows)) if rows else len(headers[j])
        for j in range(len(headers))
    ]
    fmt_row = lambda cells: "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    lines = [fmt_row(headers), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(r) for r in rows)
    return "\n".join(lines)


def grid_cell_axes(grid, combo) -> dict:
    """One cell's axis values as JSON-able data, keyed by axis name."""
    from ..scenario import TopologySpec

    return {
        name: (value.to_dict() if isinstance(value, TopologySpec) else value)
        for (name, _), value in zip(grid.axes, combo)
    }


def grid_digest(grid, summaries) -> dict:
    """Deterministic per-cell digest of a grid run (expectation diffing).

    Simulation is bit-identical across backends and machines, so the
    rounded metrics are stable; NaNs (no finite delays) become nulls so
    the digest stays valid JSON. ``repro run-scenario --summary`` and
    ``repro report`` both emit exactly this structure, which is what
    makes the shard-merge acceptance check a plain file diff: a grid
    run as k shards and merged must digest byte-identically to the
    unsharded run.

    ``summaries`` aligns with ``grid.items()`` — for a shard, that is
    the shard's cells only, and the digest carries the *full-grid*
    fingerprint-stamped name so shard digests are recognizably partial.
    """
    import math

    from ..sim.engine import ENGINE_VERSION

    def num(x: float):
        return None if math.isnan(x) else round(float(x), 6)

    cells = []
    for (combo, scenario), summary in zip(grid.items(), summaries):
        cells.append({
            "axes": grid_cell_axes(grid, combo),
            "fingerprint": scenario.fingerprint(),
            "mean_delay": num(summary.mean_delay()),
            "completion_rate": num(summary.completion_rate()),
            "mean_failures": num(summary.mean_failures()),
            "mean_tx_attempts": num(summary.mean_tx_attempts()),
        })
    return {"name": grid.name, "engine": ENGINE_VERSION,
            "n_cells": len(cells), "cells": cells}


def render_result(result: ExperimentResult, with_sparklines: bool = True) -> str:
    """Full text rendering of one experiment."""
    parts = [f"== {result.experiment_id}: {result.title} =="]
    # Group series by shared x grid, preserving order.
    remaining = list(result.series)
    while remaining:
        head = remaining[0]
        group = [
            s
            for s in remaining
            if s.x.size == head.x.size and np.array_equal(s.x, head.x)
        ]
        remaining = [s for s in remaining if s not in group]
        parts.append(render_series_table(group))
        if with_sparklines:
            for s in group:
                parts.append(f"  {s.label:<28} {sparkline(s.y)}")
    for table in result.tables:
        parts.append(render_table(table))
    if result.metadata:
        meta = ", ".join(f"{k}={v}" for k, v in sorted(result.metadata.items()))
        parts.append(f"[{meta}]")
    return "\n\n".join(parts)
