"""Streaming, mergeable statistics for sharded sweeps.

The materialized path (:mod:`repro.analysis.stats`, ``RunSummary``)
keeps every per-replication value around and calls ``np.mean`` at the
end — fine for a 20-replication cell, hopeless for the planned
1k–100k-node scalability sweeps where a single grid holds millions of
per-packet delays. Every accumulator here is

* **online** — ``add`` consumes one observation in O(1) memory
  (Welford's recurrence for moments, a KLL-style compactor for
  quantiles), so aggregating a sweep never materializes per-replication
  delay arrays; and
* **mergeable** — ``merge(other)`` folds a second accumulator in, with
  the merge algebra matching the pooled computation: moments merge by
  the Chan et al. parallel-variance update, vector means by
  count-weighted averaging, quantile sketches by buffer union +
  recompaction. Merging per-shard accumulators therefore equals
  accumulating the unsharded stream (exactly for counts/means/variance,
  within documented rank error for quantiles) — the property the
  sharded execution story rests on, tested in
  ``tests/analysis/test_streaming.py``.

Parity contract with the materialized path: means, variances and CIs
agree with :func:`repro.analysis.stats.mean_ci` to floating-point
round-off (identical in exact arithmetic — both feed the same
``student_t_ci``; summation order differs, so the last bits may).
Quantiles are exact while a sketch is below capacity (small cells never
approximate) and within :attr:`QuantileSketch.rank_error` of the true
rank afterwards.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

import numpy as np

from .stats import MeanCI, student_t_ci

__all__ = [
    "StreamingMoments",
    "VectorNanMean",
    "QuantileSketch",
    "RunAccumulator",
]


class StreamingMoments:
    """Welford online mean/variance with non-finite samples skipped.

    Skipping NaN/inf on ``add`` mirrors ``stats._clean``: the streaming
    and materialized paths see the same sample set, so their moments
    agree. State is the classic ``(n, mean, M2)`` triple; ``merge``
    uses the Chan et al. pairwise update, which is associative and
    commutative up to round-off — shard order cannot change the result
    beyond the last bits.
    """

    __slots__ = ("n", "mean", "_m2")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            return
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (value - self.mean)

    def add_many(self, values: Sequence[float]) -> None:
        """Fold a batch in (vectorized: one pass + one moment merge)."""
        arr = np.asarray(values, dtype=np.float64).ravel()
        arr = arr[np.isfinite(arr)]
        if arr.size == 0:
            return
        batch = StreamingMoments()
        batch.n = int(arr.size)
        batch.mean = float(arr.mean())
        batch._m2 = float(((arr - batch.mean) ** 2).sum())
        self.merge(batch)

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Fold ``other`` in; pooled result equals one combined stream."""
        if other.n == 0:
            return self
        if self.n == 0:
            self.n, self.mean, self._m2 = other.n, other.mean, other._m2
            return self
        n = self.n + other.n
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.n * other.n / n
        self.mean += delta * other.n / n
        self.n = n
        return self

    def variance(self, ddof: int = 1) -> float:
        if self.n <= ddof:
            return float("nan")
        return self._m2 / (self.n - ddof)

    def std(self, ddof: int = 1) -> float:
        return math.sqrt(self.variance(ddof))

    def ci(self, confidence: float = 0.95) -> MeanCI:
        """Student-t interval; same formula as :func:`stats.mean_ci`."""
        sd = self.std(ddof=1) if self.n > 1 else 0.0
        return student_t_ci(self.mean, sd, self.n, confidence)

    def __repr__(self) -> str:
        return (f"StreamingMoments(n={self.n}, mean={self.mean!r}, "
                f"var={self.variance()!r})")


class VectorNanMean:
    """Per-element running nan-mean over equal-length vectors.

    The streaming counterpart of ``np.nanmean(np.vstack(curves),
    axis=0)`` (``RunSummary.per_packet_delay``): each element keeps its
    own finite-sample count and running mean, so curves with missing
    packets (NaN) average over exactly the replications that delivered
    them — without ever stacking the curves.
    """

    __slots__ = ("counts", "means")

    def __init__(self) -> None:
        self.counts: Optional[np.ndarray] = None
        self.means: Optional[np.ndarray] = None

    def add(self, vector: Sequence[float]) -> None:
        arr = np.asarray(vector, dtype=np.float64)
        if self.counts is None:
            self.counts = np.zeros(arr.shape, dtype=np.int64)
            self.means = np.zeros(arr.shape, dtype=np.float64)
        elif arr.shape != self.counts.shape:
            raise ValueError(
                f"vector length changed: {arr.shape} != {self.counts.shape}"
            )
        mask = np.isfinite(arr)
        self.counts[mask] += 1
        delta = arr[mask] - self.means[mask]
        self.means[mask] += delta / self.counts[mask]

    def merge(self, other: "VectorNanMean") -> "VectorNanMean":
        if other.counts is None:
            return self
        if self.counts is None:
            self.counts = other.counts.copy()
            self.means = other.means.copy()
            return self
        if self.counts.shape != other.counts.shape:
            raise ValueError(
                f"vector length mismatch: {self.counts.shape} != "
                f"{other.counts.shape}"
            )
        n = self.counts + other.counts
        both = n > 0
        # Count-weighted mean; elements unseen on either side keep the
        # other side's mean untouched (weight zero).
        merged = self.means.copy()
        merged[both] = (
            self.means[both] * self.counts[both]
            + other.means[both] * other.counts[both]
        ) / n[both]
        self.means = merged
        self.counts = n
        return self

    def result(self) -> np.ndarray:
        """Per-element means; elements with no finite samples are NaN."""
        if self.counts is None:
            return np.asarray([], dtype=np.float64)
        out = self.means.copy()
        out[self.counts == 0] = float("nan")
        return out


class QuantileSketch:
    """Deterministic KLL-style quantile sketch (mergeable, bounded).

    Level ``i`` holds a buffer of values each representing ``2**i``
    original observations. When a buffer exceeds ``capacity``, it is
    sorted and **compacted**: every second value (starting from an
    offset that alternates deterministically per level — no RNG, so
    shard runs are reproducible) is promoted to level ``i + 1`` with
    doubled weight, the rest are dropped. Memory is O(capacity · log(n
    / capacity)) regardless of stream length.

    * **Exact below capacity** — until the first compaction everything
      sits at level 0 with weight 1, and :meth:`quantile` is plain
      order statistics: small cells are never approximated.
    * **Bounded rank error after** — each compaction of a level-``i``
      buffer perturbs any rank by at most ``2**i`` of the items it
      covers; summing the geometric series gives a worst-case rank
      error of about ``2 · n / capacity`` observations, i.e. a rank
      *fraction* of :attr:`rank_error` ≈ ``2 / capacity`` (0.4% at the
      default capacity of 512). Observed error is far smaller;
      tests assert the documented bound on 100k-sample streams.

    ``merge`` concatenates the per-level buffers and recompacts — the
    merged sketch covers the union stream with the same error bound.
    """

    __slots__ = ("capacity", "n", "_levels", "_parity")

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 8:
            raise ValueError(f"capacity must be >= 8, got {capacity}")
        self.capacity = int(capacity)
        self.n = 0  # finite observations consumed (with multiplicity)
        self._levels: List[List[float]] = [[]]
        self._parity: List[int] = [0]

    def add(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            return
        self.n += 1
        self._levels[0].append(value)
        if len(self._levels[0]) > self.capacity:
            self._compact(0)

    def add_many(self, values: Sequence[float]) -> None:
        arr = np.asarray(values, dtype=np.float64).ravel()
        arr = arr[np.isfinite(arr)]
        for value in arr.tolist():
            self.n += 1
            self._levels[0].append(value)
            if len(self._levels[0]) > self.capacity:
                self._compact(0)

    def _compact(self, level: int) -> None:
        buf = sorted(self._levels[level])
        offset = self._parity[level]
        self._parity[level] ^= 1
        promoted = buf[offset::2]
        self._levels[level] = []
        if level + 1 == len(self._levels):
            self._levels.append([])
            self._parity.append(0)
        self._levels[level + 1].extend(promoted)
        if len(self._levels[level + 1]) > self.capacity:
            self._compact(level + 1)

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` in (union stream, same error bound)."""
        for level, buf in enumerate(other._levels):
            if not buf:
                continue
            while level >= len(self._levels):
                self._levels.append([])
                self._parity.append(0)
            self._levels[level].extend(buf)
        self.n += other.n
        for level in range(len(self._levels)):
            while len(self._levels[level]) > self.capacity:
                self._compact(level)
        return self

    @property
    def rank_error(self) -> float:
        """Documented worst-case quantile rank error (fraction of n)."""
        return 2.0 / self.capacity

    @property
    def is_exact(self) -> bool:
        """True while no compaction has happened (order statistics)."""
        return all(not buf for buf in self._levels[1:])

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` (weighted-rank interpolation)."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        pairs = [
            (value, 1 << level)
            for level, buf in enumerate(self._levels)
            for value in buf
        ]
        if not pairs:
            return float("nan")
        pairs.sort()
        values = np.asarray([p[0] for p in pairs], dtype=np.float64)
        weights = np.asarray([p[1] for p in pairs], dtype=np.float64)
        # Midpoint cumulative ranks, normalized — matches numpy's
        # 'linear' interpolation exactly in the unit-weight (exact) case.
        cum = np.cumsum(weights) - weights / 2.0
        total = float(weights.sum())
        if total <= weights[0]:
            return float(values[0])
        ranks = (cum - cum[0]) / (cum[-1] - cum[0])
        return float(np.interp(q, ranks, values))

    def __repr__(self) -> str:
        return (f"QuantileSketch(n={self.n}, capacity={self.capacity}, "
                f"levels={[len(b) for b in self._levels]})")


class RunAccumulator:
    """Streaming equivalent of ``RunSummary``'s aggregate metrics.

    Consumes per-replication :class:`~repro.sim.metrics.FloodResult`
    objects one at a time (or whole ``RunSummary`` objects via
    :meth:`add_summary`) and answers the same questions —
    ``mean_delay`` / ``delay_ci`` / ``completion_rate`` /
    ``mean_failures`` / ``mean_collisions`` / ``mean_tx_attempts`` /
    ``per_packet_delay`` — without retaining any per-replication array.
    Adds :meth:`delay_quantile` (sketch over all finite per-packet
    delays), which the materialized path never offered because it would
    require exactly the arrays this class avoids.

    Accumulators from different shards :meth:`merge` into the pooled
    answer; see the module docstring for the algebra.
    """

    __slots__ = ("n_runs", "delay", "completion", "failures", "collisions",
                 "tx_attempts", "per_packet", "packet_delays")

    def __init__(self, sketch_capacity: int = 512) -> None:
        self.n_runs = 0
        self.delay = StreamingMoments()        # per-replication mean delay
        self.completion = StreamingMoments()   # 0/1 per replication
        self.failures = StreamingMoments()
        self.collisions = StreamingMoments()
        self.tx_attempts = StreamingMoments()
        self.per_packet = VectorNanMean()      # Fig. 9 curve
        self.packet_delays = QuantileSketch(sketch_capacity)

    def add(self, result) -> None:
        """Fold one :class:`FloodResult` (a single replication) in."""
        metrics = result.metrics
        self.n_runs += 1
        self.delay.add(metrics.average_delay())
        self.completion.add(1.0 if result.completed else 0.0)
        self.failures.add(metrics.tx_failures)
        self.collisions.add(metrics.collisions)
        self.tx_attempts.add(metrics.tx_attempts)
        d = metrics.delays.total_delay().astype(np.float64)
        d[d < 0] = np.nan
        self.per_packet.add(d)
        self.packet_delays.add_many(d)

    def add_summary(self, summary) -> None:
        """Fold every replication of a ``RunSummary`` in."""
        for result in summary.results:
            self.add(result)

    def merge(self, other: "RunAccumulator") -> "RunAccumulator":
        self.n_runs += other.n_runs
        self.delay.merge(other.delay)
        self.completion.merge(other.completion)
        self.failures.merge(other.failures)
        self.collisions.merge(other.collisions)
        self.tx_attempts.merge(other.tx_attempts)
        self.per_packet.merge(other.per_packet)
        self.packet_delays.merge(other.packet_delays)
        return self

    # -- RunSummary-compatible accessors ------------------------------

    def mean_delay(self) -> float:
        return self.delay.mean if self.delay.n else float("nan")

    def delay_ci(self, confidence: float = 0.95) -> MeanCI:
        return self.delay.ci(confidence)

    def completion_rate(self) -> float:
        return self.completion.mean if self.completion.n else float("nan")

    def mean_failures(self) -> float:
        return self.failures.mean if self.failures.n else float("nan")

    def mean_collisions(self) -> float:
        return self.collisions.mean if self.collisions.n else float("nan")

    def mean_tx_attempts(self) -> float:
        return self.tx_attempts.mean if self.tx_attempts.n else float("nan")

    def per_packet_delay(self) -> np.ndarray:
        return self.per_packet.result()

    def delay_quantile(self, q: float) -> float:
        """Quantile of the pooled finite per-packet delay stream."""
        return self.packet_delays.quantile(q)

    def __repr__(self) -> str:
        return f"RunAccumulator(n_runs={self.n_runs})"


def accumulate(summaries: Iterable, **kwargs) -> RunAccumulator:
    """Fold an iterable of ``RunSummary`` objects into one accumulator."""
    acc = RunAccumulator(**kwargs)
    for summary in summaries:
        acc.add_summary(summary)
    return acc
