"""Analysis utilities: experiment output containers, ASCII rendering,
parameter sweeps, and theory-vs-simulation validation checks."""

from .report import (
    grid_cell_axes,
    grid_digest,
    render_result,
    render_series_table,
    render_table,
    sparkline,
)
from .series import ExperimentResult, Series, Table
from .shapes import CHECKS, ShapeCheck, audit
from .stats import (
    MeanCI,
    dominates_paired,
    mean_ci,
    paired_delta_ci,
    student_t_ci,
)
from .streaming import (
    QuantileSketch,
    RunAccumulator,
    StreamingMoments,
    VectorNanMean,
    accumulate,
)
from .sweep import SweepAxis, accumulate_grid, collect, sweep
from .validate import (
    analytic_lower_bound,
    dominance_holds,
    knee_index,
    relative_spread,
    respects_lower_bound,
)

__all__ = [
    "render_result", "render_series_table", "render_table", "sparkline",
    "grid_cell_axes", "grid_digest",
    "ExperimentResult", "Series", "Table",
    "CHECKS", "ShapeCheck", "audit",
    "MeanCI", "dominates_paired", "mean_ci", "paired_delta_ci",
    "student_t_ci",
    "StreamingMoments", "VectorNanMean", "QuantileSketch",
    "RunAccumulator", "accumulate",
    "SweepAxis", "collect", "sweep", "accumulate_grid",
    "analytic_lower_bound", "dominance_holds", "knee_index",
    "relative_spread", "respects_lower_bound",
]
