"""Analysis utilities: experiment output containers, ASCII rendering,
parameter sweeps, and theory-vs-simulation validation checks."""

from .report import render_result, render_series_table, render_table, sparkline
from .series import ExperimentResult, Series, Table
from .shapes import CHECKS, ShapeCheck, audit
from .stats import MeanCI, dominates_paired, mean_ci, paired_delta_ci
from .sweep import SweepAxis, collect, sweep
from .validate import (
    analytic_lower_bound,
    dominance_holds,
    knee_index,
    relative_spread,
    respects_lower_bound,
)

__all__ = [
    "render_result", "render_series_table", "render_table", "sparkline",
    "ExperimentResult", "Series", "Table",
    "CHECKS", "ShapeCheck", "audit",
    "MeanCI", "dominates_paired", "mean_ci", "paired_delta_ci",
    "SweepAxis", "collect", "sweep",
    "analytic_lower_bound", "dominance_holds", "knee_index",
    "relative_spread", "respects_lower_bound",
]
