"""Theory-vs-simulation comparison helpers.

The paper's Sec. V validates the Sec. IV analysis against trace-driven
simulation. These helpers encode the *checks* that validation makes —
used by both the integration tests and the EXPERIMENTS.md shape audit:

* simulated flooding delay must respect the analytic lower bound
  (Theorem 2 lower / link-loss recurrence);
* the per-packet delay curve must show the bounded-blocking knee;
* protocol dominance (OPT <= DBAO <= OF) must hold on paired seeds;
* failure counts must be roughly flat across duty ratios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..core.fdl import fdl_theorem2_bounds
from ..core.linkloss import effective_k, recurrence_hitting_time
from ..net.topology import Topology

__all__ = [
    "analytic_lower_bound",
    "respects_lower_bound",
    "dominance_holds",
    "relative_spread",
    "knee_index",
]


def analytic_lower_bound(
    topo: Topology, duty_ratio: float, n_packets: int = 1
) -> float:
    """Per-packet flooding-delay lower bound for a lossy trace network.

    The Sec. IV-B recurrence hitting time evaluated at the *optimistic*
    k-class — the average expected transmission count over each
    receiver's **best** incoming link. Even the OPT oracle, which always
    receives via the best link, pays at least this much per reception, so
    the bound sits below every protocol — the "Predicted Lower Bound"
    curve of Fig. 10. (Using the mean link quality instead would predict
    delays *above* OPT, which cherry-picks links the average never uses.)
    For multi-packet floods the single-packet bound remains a valid
    per-packet lower bound.
    """
    if not (0.0 < duty_ratio <= 1.0):
        raise ValueError(f"duty ratio must be in (0, 1], got {duty_ratio}")
    period = max(int(round(1.0 / duty_ratio)), 1)
    best_in = topo.prr.max(axis=0)  # best incoming PRR per receiver
    best_in = best_in[1:]  # the source never receives
    best_in = best_in[best_in > 0.0]
    if best_in.size == 0:
        raise ValueError("no sensor has an incoming link")
    k = effective_k(best_in)
    return float(recurrence_hitting_time(topo.n_sensors, k, period))


def respects_lower_bound(
    measured_delay: float, bound: float, tolerance: float = 0.0
) -> bool:
    """Whether a measured delay sits above the analytic bound.

    ``tolerance`` allows a small relative dip (coverage at 99%, not 100%,
    can finish slightly before the full-coverage bound).
    """
    if not math.isfinite(measured_delay):
        return False
    return measured_delay >= bound * (1.0 - tolerance)


def dominance_holds(
    delays: Dict[str, float], order: Sequence[str], slack: float = 1.05
) -> bool:
    """Whether protocol delays respect the expected ordering.

    ``order`` lists protocol names best-first; each must be no worse than
    ``slack`` times the next one's delay (statistical noise allowance).
    """
    vals = [delays[name] for name in order]
    return all(a <= b * slack for a, b in zip(vals, vals[1:]))


def relative_spread(values: Sequence[float]) -> float:
    """(max - min) / mean — the Fig. 11 'roughly constant' check."""
    arr = np.asarray(values, dtype=np.float64)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0 or arr.mean() == 0:
        return float("inf")
    return float((arr.max() - arr.min()) / arr.mean())


def knee_index(per_packet_delay: np.ndarray, window: int = 5) -> Optional[int]:
    """Locate the pipeline-saturation knee in a per-packet delay curve.

    Returns the packet index after which the smoothed slope falls below
    half of the initial slope, or None when no knee is visible (curve too
    short or still in the ramp).
    """
    y = np.asarray(per_packet_delay, dtype=np.float64)
    y = np.where(np.isfinite(y), y, np.nan)
    if y.size < 3 * window:
        return None
    kernel = np.ones(window) / window
    smooth = np.convolve(
        np.nan_to_num(y, nan=np.nanmean(y)), kernel, mode="valid"
    )
    slopes = np.diff(smooth)
    head = slopes[:window].mean()
    if head <= 0:
        return None
    below = np.flatnonzero(slopes < 0.5 * head)
    return int(below[0]) + window // 2 if below.size else None
