"""Small-sample statistics for replicated experiments.

The trace experiments average a handful of replications; reporting a
bare mean hides how noisy low-duty-cycle floods are (a single unlucky
straggler cluster can double a replication's delay). These helpers
compute Student-t confidence intervals and the paired comparisons the
protocol-dominance checks should really be using.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as sps

__all__ = [
    "MeanCI", "mean_ci", "student_t_ci", "paired_delta_ci",
    "dominates_paired",
]


@dataclass(frozen=True)
class MeanCI:
    """A mean with its two-sided confidence interval."""

    mean: float
    lower: float
    upper: float
    confidence: float
    n: int

    def __post_init__(self):
        if not (self.lower <= self.mean <= self.upper):
            raise ValueError("interval must contain the mean")

    @property
    def halfwidth(self) -> float:
        return (self.upper - self.lower) / 2

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def _clean(values: Sequence[float]) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        raise ValueError("no finite samples")
    return arr


def student_t_ci(
    mean: float, sd: float, n: int, confidence: float = 0.95
) -> MeanCI:
    """Student-t interval from sufficient statistics ``(mean, sd, n)``.

    The single CI formula shared by the materialized path
    (:func:`mean_ci`) and the streaming path
    (:meth:`repro.analysis.streaming.StreamingMoments.ci`), so both
    produce the same interval from the same moments. ``sd`` is the
    sample standard deviation (``ddof=1``); with ``n == 1`` the interval
    degenerates to a point (reported honestly rather than raising —
    one-replication experiments exist).
    """
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n < 1:
        raise ValueError("no finite samples")
    if n == 1:
        return MeanCI(mean=mean, lower=mean, upper=mean,
                      confidence=confidence, n=1)
    sem = float(sd) / math.sqrt(n)
    t = float(sps.t.ppf(0.5 + confidence / 2, df=n - 1))
    return MeanCI(
        mean=mean, lower=mean - t * sem, upper=mean + t * sem,
        confidence=confidence, n=int(n),
    )


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> MeanCI:
    """Student-t confidence interval for the mean."""
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    arr = _clean(values)
    m = float(arr.mean())
    sd = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return student_t_ci(m, sd, int(arr.size), confidence)


def paired_delta_ci(
    a: Sequence[float], b: Sequence[float], confidence: float = 0.95
) -> MeanCI:
    """Confidence interval for the paired difference ``a - b``.

    Replications of two protocols run on identical schedules/loss
    streams, so differences are paired — far tighter than comparing two
    independent means.
    """
    a_arr = np.asarray(a, dtype=np.float64)
    b_arr = np.asarray(b, dtype=np.float64)
    if a_arr.shape != b_arr.shape:
        raise ValueError("paired samples must have equal length")
    mask = np.isfinite(a_arr) & np.isfinite(b_arr)
    return mean_ci((a_arr - b_arr)[mask], confidence)


def dominates_paired(
    better: Sequence[float], worse: Sequence[float], confidence: float = 0.9
) -> bool:
    """Whether ``better`` is significantly below ``worse`` (paired test).

    True when the upper confidence limit of ``better - worse`` is below
    zero; with a single replication falls back to a plain comparison.
    """
    ci = paired_delta_ci(better, worse, confidence)
    if ci.n == 1:
        return ci.mean < 0
    return ci.upper < 0
