"""Typed containers for experiment outputs.

Every experiment in :mod:`repro.experiments` returns a
:class:`ExperimentResult`: named :class:`Series` (x/y arrays, one per
curve of the paper figure) plus free-form metadata. The containers are
deliberately dumb — they exist so benchmarks, tests, and EXPERIMENTS.md
generation all consume one shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["Series", "Table", "ExperimentResult"]


@dataclass
class Series:
    """One labeled curve: ``y`` against ``x``."""

    label: str
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self):
        self.x = np.asarray(self.x)
        self.y = np.asarray(self.y)
        if self.x.ndim != 1 or self.y.ndim != 1:
            raise ValueError("series axes must be 1-D")
        if self.x.size != self.y.size:
            raise ValueError(
                f"series {self.label!r}: x has {self.x.size} points, "
                f"y has {self.y.size}"
            )
        if self.x.size == 0:
            raise ValueError(f"series {self.label!r} is empty")

    def __len__(self) -> int:
        return int(self.x.size)

    def at(self, x_value) -> float:
        """The y value at an exact x grid point."""
        idx = np.flatnonzero(self.x == x_value)
        if idx.size == 0:
            raise KeyError(f"x = {x_value!r} not on the grid of {self.label!r}")
        return float(self.y[idx[0]])

    def is_monotone_decreasing(self, strict: bool = False) -> bool:
        d = np.diff(self.y.astype(np.float64))
        return bool(np.all(d < 0) if strict else np.all(d <= 0))

    def is_monotone_increasing(self, strict: bool = False) -> bool:
        d = np.diff(self.y.astype(np.float64))
        return bool(np.all(d > 0) if strict else np.all(d >= 0))


@dataclass
class Table:
    """A labeled table: named columns of equal length."""

    title: str
    columns: Dict[str, np.ndarray]

    def __post_init__(self):
        if not self.columns:
            raise ValueError("table needs at least one column")
        lengths = {name: np.asarray(col).size for name, col in self.columns.items()}
        if len(set(lengths.values())) != 1:
            raise ValueError(f"ragged table {self.title!r}: {lengths}")
        self.columns = {
            name: np.asarray(col) for name, col in self.columns.items()
        }

    @property
    def n_rows(self) -> int:
        return int(next(iter(self.columns.values())).size)

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    experiment_id: str
    title: str
    series: List[Series] = field(default_factory=list)
    tables: List[Table] = field(default_factory=list)
    metadata: Dict = field(default_factory=dict)

    def get_series(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(
            f"no series {label!r} in {self.experiment_id}; "
            f"have {[s.label for s in self.series]}"
        )

    def labels(self) -> List[str]:
        return [s.label for s in self.series]
