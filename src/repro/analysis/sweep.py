"""Parameter-sweep utilities.

Thin declarative layer over :func:`repro.sim.runner.run_experiments`
used by the experiment harness: build the cartesian grid of specs, fan
every ``(spec, replication)`` task through a pluggable
:class:`repro.exec.Executor` in one dispatch, and collect named scalar
metrics into arrays. Memoization is delegated to the content-addressed
:class:`repro.exec.ResultStore` — grid cells whose
``(spec, topology, engine-version)`` key is already stored are answered
from the store (in-memory within a process, on disk across CLI
invocations when a cache directory is configured) instead of
re-simulated.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..net.topology import Topology
from ..scenario import Scenario, ScenarioGrid
from ..sim.runner import ExperimentSpec, RunSummary, run_experiments, run_scenarios

__all__ = ["SweepAxis", "sweep", "sweep_grid", "collect",
           "accumulate_grid"]


@dataclass(frozen=True)
class SweepAxis:
    """One swept parameter: a spec field name (``ExperimentSpec`` or
    :class:`~repro.scenario.Scenario`) and its values."""

    field: str
    values: Tuple

    def __init__(self, field: str, values: Iterable):
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "values", tuple(values))
        if not self.values:
            raise ValueError(f"axis {field!r} has no values")
        if field not in ExperimentSpec.__dataclass_fields__ \
                and field not in Scenario.__dataclass_fields__:
            raise ValueError(
                f"{field!r} is not an ExperimentSpec or Scenario field"
            )


def sweep(
    topo: Topology,
    base: ExperimentSpec,
    axes: Sequence[SweepAxis],
    progress: Optional[Callable[[ExperimentSpec], None]] = None,
    executor=None,
    store=None,
) -> Dict[Tuple, RunSummary]:
    """Run the full cartesian grid of ``axes`` over ``base``.

    Returns a dict keyed by the value tuple (in axis order).

    Parameters
    ----------
    progress:
        Called once per grid cell, with its spec, as the grid is built
        (i.e. before dispatch — under a parallel executor cells have no
        meaningful "start" order).
    executor:
        Optional :class:`repro.exec.Executor`; the flattened
        ``(spec, replication)`` tasks of the whole grid go through one
        ``map`` call, so a parallel backend load-balances across cells.
        Cells differing only in per-replication axes (duty ratio, seed,
        traffic interval) stack into shared ``(R, …)`` batched engine
        invocations when the protocol supports it — a whole duty column
        is one task. ``None`` runs serially in-process.
    store:
        Optional :class:`repro.exec.ResultStore`; cells already stored
        under their content key (spec + topology fingerprint + engine
        version) are served from the store instead of re-simulated, and
        fresh cells are recorded for the next caller.
    """
    if not axes:
        combos: List[Tuple] = [()]
        specs = [base]
    else:
        combos = list(itertools.product(*(a.values for a in axes)))
        specs = [
            replace(base, **{a.field: v for a, v in zip(axes, combo)})
            for combo in combos
        ]
    if progress is not None:
        for spec in specs:
            progress(spec)
    summaries = run_experiments(topo, specs, executor=executor, store=store)
    return dict(zip(combos, summaries))


def sweep_grid(
    grid: ScenarioGrid,
    executor=None,
    store=None,
    topo: Optional[Topology] = None,
) -> Dict[Tuple, RunSummary]:
    """Run a declarative :class:`~repro.scenario.ScenarioGrid`.

    The grid analogue of :func:`sweep` for self-describing scenarios:
    every cell's topology comes from its ``topology`` spec (``topo`` is
    the fallback substrate), cells sharing a substrate go through one
    batched dispatch, and the result dict is keyed by the axis-value
    tuples — so :func:`collect` works on it unchanged. Unhashable axis
    values are frozen into the key (dicts as sorted item tuples,
    topology specs by fingerprint).
    """
    summaries = run_scenarios(grid.scenarios(), executor=executor,
                              store=store, topo=topo)
    def freeze(v):
        if isinstance(v, dict):
            return tuple(sorted((k, freeze(x)) for k, x in v.items()))
        return v.fingerprint() if hasattr(v, "fingerprint") else v
    keys = [tuple(freeze(v) for v in combo) for combo in grid.combos()]
    return dict(zip(keys, summaries))


def accumulate_grid(grid: Dict[Tuple, RunSummary]) -> Dict[Tuple, "RunAccumulator"]:
    """Per-cell streaming accumulators for a sweep result dict.

    Each cell's ``RunSummary`` folds into a
    :class:`~repro.analysis.streaming.RunAccumulator`, the mergeable
    O(1)-memory aggregate: accumulators for the same cell from
    different shards ``merge()`` into the pooled statistics, which is
    how sharded sweeps aggregate without materializing per-replication
    delay arrays.
    """
    from .streaming import RunAccumulator

    out: Dict[Tuple, RunAccumulator] = {}
    for key, summary in grid.items():
        acc = RunAccumulator()
        acc.add_summary(summary)
        out[key] = acc
    return out


def collect(
    grid: Dict[Tuple, RunSummary],
    metric: Callable[[RunSummary], float],
    axis_index: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Extract ``(x, y)`` arrays along one axis of a 1-D sweep grid.

    Only valid for grids produced from a single axis (keys of length 1)
    unless ``axis_index`` selects which key element is the x value and the
    rest are expected constant.
    """
    xs, ys = [], []
    for key in sorted(grid):
        xs.append(key[axis_index])
        ys.append(metric(grid[key]))
    return np.asarray(xs), np.asarray(ys)
