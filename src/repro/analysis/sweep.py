"""Parameter-sweep utilities.

Thin declarative layer over :func:`repro.sim.runner.run_experiments`
used by the experiment harness: build the cartesian grid of specs, fan
every ``(spec, replication)`` task through a pluggable
:class:`repro.exec.Executor` in one dispatch, and collect named scalar
metrics into arrays. Memoization is delegated to the content-addressed
:class:`repro.exec.ResultStore` — grid cells whose
``(spec, topology, engine-version)`` key is already stored are answered
from the store (in-memory within a process, on disk across CLI
invocations when a cache directory is configured) instead of
re-simulated.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..net.topology import Topology
from ..sim.runner import ExperimentSpec, RunSummary, run_experiments

__all__ = ["SweepAxis", "sweep", "collect"]


@dataclass(frozen=True)
class SweepAxis:
    """One swept parameter: an ``ExperimentSpec`` field name and values."""

    field: str
    values: Tuple

    def __init__(self, field: str, values: Iterable):
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "values", tuple(values))
        if not self.values:
            raise ValueError(f"axis {field!r} has no values")
        if field not in ExperimentSpec.__dataclass_fields__:
            raise ValueError(f"{field!r} is not an ExperimentSpec field")


def sweep(
    topo: Topology,
    base: ExperimentSpec,
    axes: Sequence[SweepAxis],
    progress: Optional[Callable[[ExperimentSpec], None]] = None,
    executor=None,
    store=None,
) -> Dict[Tuple, RunSummary]:
    """Run the full cartesian grid of ``axes`` over ``base``.

    Returns a dict keyed by the value tuple (in axis order).

    Parameters
    ----------
    progress:
        Called once per grid cell, with its spec, as the grid is built
        (i.e. before dispatch — under a parallel executor cells have no
        meaningful "start" order).
    executor:
        Optional :class:`repro.exec.Executor`; the flattened
        ``(spec, replication)`` tasks of the whole grid go through one
        ``map`` call, so a parallel backend load-balances across cells.
        ``None`` runs serially in-process.
    store:
        Optional :class:`repro.exec.ResultStore`; cells already stored
        under their content key (spec + topology fingerprint + engine
        version) are served from the store instead of re-simulated, and
        fresh cells are recorded for the next caller.
    """
    if not axes:
        combos: List[Tuple] = [()]
        specs = [base]
    else:
        combos = list(itertools.product(*(a.values for a in axes)))
        specs = [
            replace(base, **{a.field: v for a, v in zip(axes, combo)})
            for combo in combos
        ]
    if progress is not None:
        for spec in specs:
            progress(spec)
    summaries = run_experiments(topo, specs, executor=executor, store=store)
    return dict(zip(combos, summaries))


def collect(
    grid: Dict[Tuple, RunSummary],
    metric: Callable[[RunSummary], float],
    axis_index: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Extract ``(x, y)`` arrays along one axis of a 1-D sweep grid.

    Only valid for grids produced from a single axis (keys of length 1)
    unless ``axis_index`` selects which key element is the x value and the
    rest are expected constant.
    """
    xs, ys = [], []
    for key in sorted(grid):
        xs.append(key[axis_index])
        ys.append(metric(grid[key]))
    return np.asarray(xs), np.asarray(ys)
