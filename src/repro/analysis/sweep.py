"""Parameter-sweep utilities.

Thin declarative layer over :func:`repro.sim.runner.run_experiment` used
by the experiment harness: build a grid of specs, run them (optionally
memoized within a process), collect named scalar metrics into arrays.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..net.topology import Topology
from ..sim.runner import ExperimentSpec, RunSummary, run_experiment

__all__ = ["SweepAxis", "sweep", "collect"]


@dataclass(frozen=True)
class SweepAxis:
    """One swept parameter: an ``ExperimentSpec`` field name and values."""

    field: str
    values: Tuple

    def __init__(self, field: str, values: Iterable):
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "values", tuple(values))
        if not self.values:
            raise ValueError(f"axis {field!r} has no values")
        if field not in ExperimentSpec.__dataclass_fields__:
            raise ValueError(f"{field!r} is not an ExperimentSpec field")


def sweep(
    topo: Topology,
    base: ExperimentSpec,
    axes: Sequence[SweepAxis],
    progress: Optional[Callable[[ExperimentSpec], None]] = None,
) -> Dict[Tuple, RunSummary]:
    """Run the full cartesian grid of ``axes`` over ``base``.

    Returns a dict keyed by the value tuple (in axis order).
    """
    if not axes:
        return {(): run_experiment(topo, base)}
    out: Dict[Tuple, RunSummary] = {}
    for combo in itertools.product(*(a.values for a in axes)):
        spec = replace(base, **{a.field: v for a, v in zip(axes, combo)})
        if progress is not None:
            progress(spec)
        out[combo] = run_experiment(topo, spec)
    return out


def collect(
    grid: Dict[Tuple, RunSummary],
    metric: Callable[[RunSummary], float],
    axis_index: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Extract ``(x, y)`` arrays along one axis of a 1-D sweep grid.

    Only valid for grids produced from a single axis (keys of length 1)
    unless ``axis_index`` selects which key element is the x value and the
    rest are expected constant.
    """
    xs, ys = [], []
    for key in sorted(grid):
        xs.append(key[axis_index])
        ys.append(metric(grid[key]))
    return np.asarray(xs), np.asarray(ys)
