"""Shared row-building machinery for replication-batched proposals.

The batch-native receiver-driven floods (OF, naive, FLASH, cross-layer)
all walk the same per-slot structure: for every waking non-source
receiver, a protocol-specific ordered list of candidate senders. Across
R replications that flattens to parallel ``(replication, sender,
receiver)`` row arrays whose content depends only on the schedule phase,
so each protocol builds them once per phase (through these helpers) and
caches the result alongside its own static per-row annotations.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..net.topology import SOURCE

__all__ = ["flatten_sender_lists", "candidate_rows"]


def flatten_sender_lists(
    sender_lists: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pack per-receiver candidate-sender lists into gather arrays.

    Returns ``(sizes, starts, flat)``: receiver ``r``'s candidates (in
    the protocol's traversal order) live at ``flat[starts[r] :
    starts[r] + sizes[r]]``. Phase-row builds then gather ranges out of
    one array instead of concatenating hundreds of per-receiver arrays.
    """
    sizes = np.fromiter(
        (np.asarray(lst).size for lst in sender_lists), np.int64,
        count=len(sender_lists),
    )
    starts = np.concatenate(([0], np.cumsum(sizes)))
    if sender_lists:
        flat = np.concatenate(
            [np.asarray(lst, dtype=np.int64) for lst in sender_lists]
        )
    else:
        flat = np.empty(0, dtype=np.int64)
    return sizes, starts, flat


def candidate_rows(
    schedules_list,
    t: int,
    sizes: np.ndarray,
    starts: np.ndarray,
    flat: np.ndarray,
    with_sender_awake: bool = False,
):
    """All-replication candidate rows for slot ``t``'s wake sets.

    For each replication ``k`` and each waking non-source receiver
    ``r`` (ascending — the wake lists are sorted), one row per candidate
    sender in list order. Returns ``(kk, ss, rr)`` — plus the per-row
    sender-awake mask when requested (the listen rule's static part) —
    matching the exact traversal order of the serial proposal loops.
    """
    kk_parts: List[np.ndarray] = []
    s_parts: List[np.ndarray] = []
    r_parts: List[np.ndarray] = []
    aw_parts: List[np.ndarray] = []
    n_nodes = len(sizes)
    awake_mask = np.zeros(n_nodes, dtype=bool) if with_sender_awake else None
    for k, sched in enumerate(schedules_list):
        aw = sched.awake_at(t)
        if aw.size == 0:
            continue
        recv = aw[aw != SOURCE]
        sz = sizes[recv]
        total = int(sz.sum())
        if total:
            seg = np.concatenate(([0], np.cumsum(sz)[:-1]))
            idx = np.repeat(starts[recv] - seg, sz) + np.arange(total)
            s_part = flat[idx]
            kk_parts.append(np.full(total, k, dtype=np.int64))
            s_parts.append(s_part)
            r_parts.append(np.repeat(recv, sz))
            if with_sender_awake:
                awake_mask[aw] = True
                aw_parts.append(awake_mask[s_part])
                awake_mask[aw] = False
    if kk_parts:
        kk = np.concatenate(kk_parts)
        ss = np.concatenate(s_parts)
        rr = np.concatenate(r_parts)
        sender_awake = (
            np.concatenate(aw_parts) if with_sender_awake else None
        )
    else:
        kk = ss = rr = np.empty(0, dtype=np.int64)
        sender_awake = np.empty(0, dtype=bool) if with_sender_awake else None
    if with_sender_awake:
        return kk, ss, rr, sender_awake
    return kk, ss, rr
