"""Naive duty-cycle-oblivious flooding baseline.

The "classic flooding ported to unicasts" strawman the paper's
introduction argues against: every node holding a packet a waking
neighbor needs transmits immediately — no carrier sense, no back-off, no
coverage beliefs beyond its own ACKs. The result is heavy contention:
whenever several covered senders share a waking receiver, they collide,
and the packet waits a full period for the retry.

Useful as the lower anchor of protocol comparisons and in tests that
check the engine's collision accounting actually bites.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..net.radio import TxBatch
from ..net.topology import SOURCE
from ._belief import NeighborBelief, RepNeighborBelief
from ._repbatch import candidate_rows, flatten_sender_lists
from .base import (
    FloodingProtocol,
    RepSimView,
    SimView,
    earliest_wake,
    phase_cache_period,
    register_protocol,
)

__all__ = ["NaiveFlooding"]


@register_protocol
class NaiveFlooding(FloodingProtocol):
    """Uncoordinated p-persistent flooding.

    ``persistence`` is the classic p-persistent knob: a sender with an
    opportunity transmits with probability ``p`` and stays silent
    otherwise. ``p = 1`` is the pure transmit-always strawman, which on
    dense networks collides essentially forever; the default 0.35 keeps
    the baseline terrible-but-terminating.
    """

    name = "naive"

    def __init__(self, persistence: float = 0.35):
        if not (0.0 < persistence <= 1.0):
            raise ValueError(f"persistence must be in (0, 1], got {persistence}")
        self.persistence = float(persistence)
        self.init_kwargs = {"persistence": self.persistence}
        self._topo = None
        self._belief: NeighborBelief = None  # type: ignore[assignment]
        self._rng: np.random.Generator = None  # type: ignore[assignment]

    def prepare(self, topo, schedules, workload, rng):
        self._topo = topo
        self._rng = rng
        self._schedules = schedules
        self._belief = NeighborBelief(topo, workload.n_packets)

    def next_action_slot(self, t, awake, view):
        # The proposal considers every (in-neighbor, waking receiver)
        # link, so the frontier is every receiver some believing holder
        # could serve. Exact for naive: options (and hence persistence
        # draws — the RNG-quiescence requirement) are nonempty iff an
        # offering link has a waking receiver.
        receivers = self._belief.offer_receivers(view.possession_by_holder())
        receivers = receivers[receivers != SOURCE]
        return earliest_wake(self._schedules, t, receivers)

    def propose_batch(self, t: int, awake: np.ndarray, view: SimView) -> TxBatch:
        # Each sender independently picks one waking neighbor it believes
        # needs something — uniformly at random among its options, with no
        # coordination whatsoever.
        options: Dict[int, List[Tuple[int, int]]] = {}
        for r in awake.tolist():
            if r == SOURCE:
                continue
            for s in self._topo.in_neighbors(r).tolist():
                head = view.fcfs_head(s, self._belief.believed_needs(s, r))
                if head is not None:
                    options.setdefault(s, []).append((r, head))

        rows: List[Tuple[int, int, int]] = []
        for s in sorted(options):
            if self.persistence < 1.0 and self._rng.random() >= self.persistence:
                continue
            cands = options[s]
            r, pkt = cands[int(self._rng.integers(len(cands)))]
            rows.append((s, r, pkt))
        if not rows:
            return TxBatch.empty()
        arr = np.asarray(rows, dtype=np.int64)
        return TxBatch(arr[:, 0], arr[:, 1], arr[:, 2])

    def observe(self, t, outcome, view):
        # Even the naive baseline reads the ACK's possession summary —
        # its problem is contention, not bookkeeping.
        for rec in outcome.receptions:
            if not rec.overheard:
                self._belief.sync_possession(
                    rec.sender, rec.receiver, view.held_packets(rec.receiver)
                )

    # -- Replication-batched path ---------------------------------------
    #
    # The option-collection loop flattens to (replication, sender,
    # receiver) rows per phase; the persistence and uniform-pick draws
    # stay a small Python loop over the per-(replication, sender) option
    # groups so each replication consumes its channel stream exactly as
    # its serial run does.

    def rep_batchable(self) -> bool:
        return True

    def prepare_reps(self, topo, schedules_list, workload, rngs):
        # Serial prepare consumes no randomness and holds no
        # period-dependent state.
        self.prepare(topo, schedules_list[0], workload, rngs[0])
        self._rep_rngs = list(rngs)
        self._rep_schedules = list(schedules_list)
        n = topo.n_nodes
        self._rep_belief = RepNeighborBelief(
            topo, workload.n_packets, len(schedules_list))
        self._in_sizes, self._in_starts, self._in_flat = flatten_sender_lists(
            [topo.in_neighbors(r) for r in range(n)]
        )
        self._rep_cache_period = phase_cache_period(schedules_list)
        self._rep_phase_cache: Dict[int, Tuple] = {}
        s_parts, r_parts = [], []
        for r in range(n):
            if r == SOURCE:
                continue
            nbs = topo.in_neighbors(r)
            if nbs.size:
                s_parts.append(nbs)
                r_parts.append(np.full(nbs.size, r, dtype=np.int64))
        if s_parts:
            self._frontier_s = np.concatenate(s_parts)
            self._frontier_r = np.concatenate(r_parts)
        else:
            self._frontier_s = np.empty(0, dtype=np.int64)
            self._frontier_r = np.empty(0, dtype=np.int64)
        self._off_frontier = None

    def _rep_rows(self, t: int):
        key = t % self._rep_cache_period if self._rep_cache_period else None
        if key is not None:
            hit = self._rep_phase_cache.get(key)
            if hit is not None:
                return hit
        rows = candidate_rows(
            self._rep_schedules, t, self._in_sizes, self._in_starts,
            self._in_flat,
        )
        if key is not None:
            self._rep_phase_cache[key] = rows
        return rows

    def propose_reps(self, t, rep_ids, awake_by_rep, view: RepSimView):
        empty = np.empty(0, dtype=np.int64)
        kk, ss, rr = self._rep_rows(t)
        if kk.size == 0:
            return empty, empty, empty, empty
        if rep_ids.size < len(self._rep_schedules):
            active = np.zeros(len(self._rep_schedules), dtype=bool)
            active[rep_ids] = True
            keep = active[kk]
            if not keep.all():
                kk, ss, rr = kk[keep], ss[keep], rr[keep]
        needs = self._rep_belief.needs_pairs(kk, ss, rr)
        heads, valid = view.fcfs_heads_pairs(kk, ss, needs)
        if not valid.any():
            return empty, empty, empty, empty
        k_o, s_o, r_o, h_o = kk[valid], ss[valid], rr[valid], heads[valid]

        # Group the option rows by (replication, sender). The stable
        # sort keeps each group's rows in flat traversal order — the
        # exact candidate-list order the serial loop accumulates — and
        # orders groups by ascending (replication, sender), matching the
        # serial `for s in sorted(options)` draw and emission order.
        n = self._topo.n_nodes
        key = k_o * n + s_o
        order = np.argsort(key, kind="stable")
        key_srt = key[order]
        first = np.ones(order.size, dtype=bool)
        first[1:] = key_srt[1:] != key_srt[:-1]
        starts = np.flatnonzero(first)
        bounds = np.append(starts, order.size)
        group_reps = k_o[order[starts]].tolist()

        p = self.persistence
        sel: List[int] = []
        for gi, k in enumerate(group_reps):
            rng = self._rep_rngs[k]
            if p < 1.0 and rng.random() >= p:
                continue
            lo = int(bounds[gi])
            hi = int(bounds[gi + 1])
            sel.append(lo + int(rng.integers(hi - lo)))
        if not sel:
            return empty, empty, empty, empty
        rows = order[np.asarray(sel, dtype=np.int64)]
        return k_o[rows], s_o[rows], r_o[rows], h_o[rows]

    def observe_reps(self, t, outcome, view: RepSimView):
        self._rep_belief.sync_ack_summaries(outcome, view)

    def next_action_slots(self, t, rep_ids, view: RepSimView):
        if self._off_frontier is None:
            self._off_frontier = view.offsets_stack[:, self._frontier_r]
        offers = self._rep_belief.offer_pairs_reps(
            rep_ids, self._frontier_s, self._frontier_r, view.has_stack,
            view.has_packed,
        )
        return view.earliest_wakes(
            t, rep_ids, self._frontier_r, offers, self._off_frontier
        )
