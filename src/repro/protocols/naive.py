"""Naive duty-cycle-oblivious flooding baseline.

The "classic flooding ported to unicasts" strawman the paper's
introduction argues against: every node holding a packet a waking
neighbor needs transmits immediately — no carrier sense, no back-off, no
coverage beliefs beyond its own ACKs. The result is heavy contention:
whenever several covered senders share a waking receiver, they collide,
and the packet waits a full period for the retry.

Useful as the lower anchor of protocol comparisons and in tests that
check the engine's collision accounting actually bites.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..net.radio import TxBatch
from ..net.topology import SOURCE
from ._belief import NeighborBelief
from .base import FloodingProtocol, SimView, earliest_wake, register_protocol

__all__ = ["NaiveFlooding"]


@register_protocol
class NaiveFlooding(FloodingProtocol):
    """Uncoordinated p-persistent flooding.

    ``persistence`` is the classic p-persistent knob: a sender with an
    opportunity transmits with probability ``p`` and stays silent
    otherwise. ``p = 1`` is the pure transmit-always strawman, which on
    dense networks collides essentially forever; the default 0.35 keeps
    the baseline terrible-but-terminating.
    """

    name = "naive"

    def __init__(self, persistence: float = 0.35):
        if not (0.0 < persistence <= 1.0):
            raise ValueError(f"persistence must be in (0, 1], got {persistence}")
        self.persistence = float(persistence)
        self.init_kwargs = {"persistence": self.persistence}
        self._topo = None
        self._belief: NeighborBelief = None  # type: ignore[assignment]
        self._rng: np.random.Generator = None  # type: ignore[assignment]

    def prepare(self, topo, schedules, workload, rng):
        self._topo = topo
        self._rng = rng
        self._schedules = schedules
        self._belief = NeighborBelief(topo, workload.n_packets)

    def next_action_slot(self, t, awake, view):
        # The proposal considers every (in-neighbor, waking receiver)
        # link, so the frontier is every receiver some believing holder
        # could serve. Exact for naive: options (and hence persistence
        # draws — the RNG-quiescence requirement) are nonempty iff an
        # offering link has a waking receiver.
        receivers = self._belief.offer_receivers(view.possession_by_holder())
        receivers = receivers[receivers != SOURCE]
        return earliest_wake(self._schedules, t, receivers)

    def propose_batch(self, t: int, awake: np.ndarray, view: SimView) -> TxBatch:
        # Each sender independently picks one waking neighbor it believes
        # needs something — uniformly at random among its options, with no
        # coordination whatsoever.
        options: Dict[int, List[Tuple[int, int]]] = {}
        for r in awake.tolist():
            if r == SOURCE:
                continue
            for s in self._topo.in_neighbors(r).tolist():
                head = view.fcfs_head(s, self._belief.believed_needs(s, r))
                if head is not None:
                    options.setdefault(s, []).append((r, head))

        rows: List[Tuple[int, int, int]] = []
        for s in sorted(options):
            if self.persistence < 1.0 and self._rng.random() >= self.persistence:
                continue
            cands = options[s]
            r, pkt = cands[int(self._rng.integers(len(cands)))]
            rows.append((s, r, pkt))
        if not rows:
            return TxBatch.empty()
        arr = np.asarray(rows, dtype=np.int64)
        return TxBatch(arr[:, 0], arr[:, 1], arr[:, 2])

    def observe(self, t, outcome, view):
        # Even the naive baseline reads the ACK's possession summary —
        # its problem is contention, not bookkeeping.
        for rec in outcome.receptions:
            if not rec.overheard:
                self._belief.sync_possession(
                    rec.sender, rec.receiver, view.held_packets(rec.receiver)
                )
