"""Flash flooding: exploit the capture effect instead of avoiding it.

Lu & Whitehouse's INFOCOM'09 scheme (the paper's related work [17])
inverts the usual collision-avoidance logic: when a receiver wakes, *all*
covered neighbors transmit concurrently and the radio's capture effect —
the strongest or earliest frame surviving the overlap — delivers the
packet anyway most of the time. No back-off waiting, no coordination
traffic; the price is wasted transmissions and the residual overlaps that
capture cannot rescue.

In this codebase Flash doubles as a stress test of the radio layer's
capture model (preamble jitter + SIR): with capture disabled it must
collapse to naive flooding's collision storm, with capture enabled it
should be delay-competitive on dense topologies.

Senders do keep ACK-summary beliefs — Flash floods concurrently, it does
not flood *blindly* — so transmissions stop once neighbors are known to
be covered.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..net.radio import TxBatch
from ..net.topology import SOURCE
from ._belief import NeighborBelief, RepNeighborBelief
from ._repbatch import candidate_rows, flatten_sender_lists
from .base import (
    FloodingProtocol,
    RepSimView,
    SimView,
    earliest_wake,
    phase_cache_period,
    register_protocol,
)

__all__ = ["FlashFlooding"]


@register_protocol
class FlashFlooding(FloodingProtocol):
    """Concurrent-transmission flooding that relies on capture."""

    name = "flash"

    def __init__(self, max_concurrent: int = 2):
        if max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        #: Cap on concurrent senders per receiver: the real protocol
        #: prunes the transmitter set because too many overlaps defeat
        #: capture ("recover from or prevent too many concurrent
        #: transmissions" in the paper's summary of [17]). Empirically,
        #: three or more concurrent bursts on a dense deployment produce
        #: collision storms capture cannot dig out of.
        self.max_concurrent = int(max_concurrent)
        self.init_kwargs = {"max_concurrent": self.max_concurrent}
        self._topo = None
        self._belief: NeighborBelief = None  # type: ignore[assignment]

    def prepare(self, topo, schedules, workload, rng):
        self._topo = topo
        self._schedules = schedules
        self._belief = NeighborBelief(topo, workload.n_packets)

    def next_action_slot(self, t, awake, view):
        # Candidate senders are exactly the receiver's in-neighbors, so
        # the frontier is every receiver with an offering believed link.
        # The cap and the RX-mode listen rule only *shrink* a slot's
        # batch — ignoring them keeps the bound conservative (a bounded
        # slot may still execute empty, never the reverse).
        receivers = self._belief.offer_receivers(view.possession_by_holder())
        receivers = receivers[receivers != SOURCE]
        return earliest_wake(self._schedules, t, receivers)

    def propose_batch(self, t: int, awake: np.ndarray, view: SimView) -> TxBatch:
        rows: List[Tuple[int, int, int]] = []
        assigned = set()
        # A node whose own active slot is now and whose buffer is still
        # incomplete keeps its radio in RX mode: its active slot exists to
        # receive, and transmitting through it would deterministically
        # starve schedule-aligned neighbor pairs (each forever serving the
        # other instead of listening).
        listening = {
            int(v) for v in awake.tolist()
            if v != SOURCE and view.held_packets(int(v)).size < view.n_packets
        }
        for r in awake.tolist():
            if r == SOURCE:
                continue
            nbs = self._topo.in_neighbors(r)
            if nbs.size == 0:
                continue
            needs = self._belief.needs_matrix(r, nbs)
            heads, valid = view.fcfs_heads_batch(nbs, needs)
            # Strongest-first, capped: overlaps beyond the cap only add
            # interference that capture cannot recover.
            order = np.argsort(-self._topo.prr[nbs, r], kind="stable")
            sent = 0
            for i in order.tolist():
                if sent >= self.max_concurrent:
                    break
                s = int(nbs[i])
                if not valid[i] or s in assigned or s in listening:
                    continue
                rows.append((s, r, int(heads[i])))
                assigned.add(s)
                sent += 1
        if not rows:
            return TxBatch.empty()
        arr = np.asarray(rows, dtype=np.int64)
        return TxBatch(arr[:, 0], arr[:, 1], arr[:, 2])

    def observe(self, t, outcome, view):
        for rec in outcome.receptions:
            if not rec.overheard:
                self._belief.sync_possession(
                    rec.sender, rec.receiver, view.held_packets(rec.receiver)
                )

    # -- Replication-batched path ---------------------------------------
    #
    # Candidate rows are the serial traversal flattened (receivers
    # ascending, each receiver's in-neighbors strongest-first); validity
    # and the listen rule vectorize, then a small Python walk over the
    # surviving rows applies the stateful one-TX-per-sender /
    # cap-per-receiver greedy exactly as the serial loop does. Flash
    # consumes no protocol randomness and uses no CSMA.

    def rep_batchable(self) -> bool:
        return True

    def prepare_reps(self, topo, schedules_list, workload, rngs):
        # Serial prepare consumes no randomness and holds no
        # period-dependent state.
        self.prepare(topo, schedules_list[0], workload, rngs[0])
        self._rep_schedules = list(schedules_list)
        n = topo.n_nodes
        self._rep_belief = RepNeighborBelief(
            topo, workload.n_packets, len(schedules_list))
        strongest_first = []
        for r in range(n):
            nbs = topo.in_neighbors(r)
            order = np.argsort(-topo.prr[nbs, r], kind="stable")
            strongest_first.append(nbs[order])
        self._in_sizes, self._in_starts, self._in_flat = flatten_sender_lists(
            strongest_first
        )
        self._rep_cache_period = phase_cache_period(schedules_list)
        self._rep_phase_cache: Dict[int, Tuple] = {}
        s_parts, r_parts = [], []
        for r in range(n):
            if r == SOURCE:
                continue
            nbs = topo.in_neighbors(r)
            if nbs.size:
                s_parts.append(nbs)
                r_parts.append(np.full(nbs.size, r, dtype=np.int64))
        if s_parts:
            self._frontier_s = np.concatenate(s_parts)
            self._frontier_r = np.concatenate(r_parts)
        else:
            self._frontier_s = np.empty(0, dtype=np.int64)
            self._frontier_r = np.empty(0, dtype=np.int64)
        self._off_frontier = None

    def _rep_rows(self, t: int):
        key = t % self._rep_cache_period if self._rep_cache_period else None
        if key is not None:
            hit = self._rep_phase_cache.get(key)
            if hit is not None:
                return hit
        rows = candidate_rows(
            self._rep_schedules, t, self._in_sizes, self._in_starts,
            self._in_flat, with_sender_awake=True,
        )
        if key is not None:
            self._rep_phase_cache[key] = rows
        return rows

    def propose_reps(self, t, rep_ids, awake_by_rep, view: RepSimView):
        empty = np.empty(0, dtype=np.int64)
        kk, ss, rr, sender_awake = self._rep_rows(t)
        if kk.size == 0:
            return empty, empty, empty, empty
        if rep_ids.size < len(self._rep_schedules):
            active = np.zeros(len(self._rep_schedules), dtype=bool)
            active[rep_ids] = True
            keep = active[kk]
            if not keep.all():
                kk, ss, rr = kk[keep], ss[keep], rr[keep]
                sender_awake = sender_awake[keep]
        needs = self._rep_belief.needs_pairs(kk, ss, rr)
        heads, valid = view.fcfs_heads_pairs(kk, ss, needs)
        listen = sender_awake & (ss != SOURCE) & (
            view.held_counts[kk, ss] < view.n_packets
        )
        ok = valid & ~listen
        if not ok.any():
            return empty, empty, empty, empty

        # Greedy walk over the surviving rows in traversal order: one TX
        # per sender, at most max_concurrent accepted rows per receiver
        # (a cap-skipped sender stays available at a later receiver —
        # the serial `break` never assigns it).
        el = np.flatnonzero(ok)
        k_l = kk[el].tolist()
        s_l = ss[el].tolist()
        r_l = rr[el].tolist()
        cap = self.max_concurrent
        assigned = set()
        sent: Dict[Tuple[int, int], int] = {}
        sel: List[int] = []
        for j, k in enumerate(k_l):
            s = s_l[j]
            if (k, s) in assigned:
                continue
            rkey = (k, r_l[j])
            c = sent.get(rkey, 0)
            if c >= cap:
                continue
            assigned.add((k, s))
            sent[rkey] = c + 1
            sel.append(int(el[j]))
        rows = np.asarray(sel, dtype=np.int64)
        return kk[rows], ss[rows], rr[rows], heads[rows]

    def observe_reps(self, t, outcome, view: RepSimView):
        self._rep_belief.sync_ack_summaries(outcome, view)

    def next_action_slots(self, t, rep_ids, view: RepSimView):
        if self._off_frontier is None:
            self._off_frontier = view.offsets_stack[:, self._frontier_r]
        offers = self._rep_belief.offer_pairs_reps(
            rep_ids, self._frontier_s, self._frontier_r, view.has_stack,
            view.has_packed,
        )
        return view.earliest_wakes(
            t, rep_ids, self._frontier_r, offers, self._off_frontier
        )
