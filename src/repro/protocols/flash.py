"""Flash flooding: exploit the capture effect instead of avoiding it.

Lu & Whitehouse's INFOCOM'09 scheme (the paper's related work [17])
inverts the usual collision-avoidance logic: when a receiver wakes, *all*
covered neighbors transmit concurrently and the radio's capture effect —
the strongest or earliest frame surviving the overlap — delivers the
packet anyway most of the time. No back-off waiting, no coordination
traffic; the price is wasted transmissions and the residual overlaps that
capture cannot rescue.

In this codebase Flash doubles as a stress test of the radio layer's
capture model (preamble jitter + SIR): with capture disabled it must
collapse to naive flooding's collision storm, with capture enabled it
should be delay-competitive on dense topologies.

Senders do keep ACK-summary beliefs — Flash floods concurrently, it does
not flood *blindly* — so transmissions stop once neighbors are known to
be covered.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..net.radio import TxBatch
from ..net.topology import SOURCE
from ._belief import NeighborBelief
from .base import FloodingProtocol, SimView, earliest_wake, register_protocol

__all__ = ["FlashFlooding"]


@register_protocol
class FlashFlooding(FloodingProtocol):
    """Concurrent-transmission flooding that relies on capture."""

    name = "flash"

    def __init__(self, max_concurrent: int = 2):
        if max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        #: Cap on concurrent senders per receiver: the real protocol
        #: prunes the transmitter set because too many overlaps defeat
        #: capture ("recover from or prevent too many concurrent
        #: transmissions" in the paper's summary of [17]). Empirically,
        #: three or more concurrent bursts on a dense deployment produce
        #: collision storms capture cannot dig out of.
        self.max_concurrent = int(max_concurrent)
        self.init_kwargs = {"max_concurrent": self.max_concurrent}
        self._topo = None
        self._belief: NeighborBelief = None  # type: ignore[assignment]

    def prepare(self, topo, schedules, workload, rng):
        self._topo = topo
        self._schedules = schedules
        self._belief = NeighborBelief(topo, workload.n_packets)

    def next_action_slot(self, t, awake, view):
        # Candidate senders are exactly the receiver's in-neighbors, so
        # the frontier is every receiver with an offering believed link.
        # The cap and the RX-mode listen rule only *shrink* a slot's
        # batch — ignoring them keeps the bound conservative (a bounded
        # slot may still execute empty, never the reverse).
        receivers = self._belief.offer_receivers(view.possession_by_holder())
        receivers = receivers[receivers != SOURCE]
        return earliest_wake(self._schedules, t, receivers)

    def propose_batch(self, t: int, awake: np.ndarray, view: SimView) -> TxBatch:
        rows: List[Tuple[int, int, int]] = []
        assigned = set()
        # A node whose own active slot is now and whose buffer is still
        # incomplete keeps its radio in RX mode: its active slot exists to
        # receive, and transmitting through it would deterministically
        # starve schedule-aligned neighbor pairs (each forever serving the
        # other instead of listening).
        listening = {
            int(v) for v in awake.tolist()
            if v != SOURCE and view.held_packets(int(v)).size < view.n_packets
        }
        for r in awake.tolist():
            if r == SOURCE:
                continue
            nbs = self._topo.in_neighbors(r)
            if nbs.size == 0:
                continue
            needs = self._belief.needs_matrix(r, nbs)
            heads, valid = view.fcfs_heads_batch(nbs, needs)
            # Strongest-first, capped: overlaps beyond the cap only add
            # interference that capture cannot recover.
            order = np.argsort(-self._topo.prr[nbs, r], kind="stable")
            sent = 0
            for i in order.tolist():
                if sent >= self.max_concurrent:
                    break
                s = int(nbs[i])
                if not valid[i] or s in assigned or s in listening:
                    continue
                rows.append((s, r, int(heads[i])))
                assigned.add(s)
                sent += 1
        if not rows:
            return TxBatch.empty()
        arr = np.asarray(rows, dtype=np.int64)
        return TxBatch(arr[:, 0], arr[:, 1], arr[:, 2])

    def observe(self, t, outcome, view):
        for rec in outcome.receptions:
            if not rec.overheard:
                self._belief.sync_possession(
                    rec.sender, rec.receiver, view.held_packets(rec.receiver)
                )
