"""Cross-layer design sketch (the paper's future-work direction 2).

The paper concludes that (1) the duty-cycle length should be configured
to balance lifetime against delay, and (2) opportunistic forwarding
should be *co-designed* with that configuration rather than bolted on.
This module implements the sketch:

* :class:`CrossLayerFlooding` — DBAO's deterministic back-off and
  overhearing, *plus* OF-style opportunistic forwarding over every
  usable link with **no lateness suppression**: under a duty cycle tuned
  by the gain optimizer, extra early copies are cheap insurance against
  loss, so the cross-layer design spends them freely while the
  deterministic back-off keeps the added contention collision-free
  within carrier-sense range. (DBAO is already "opportunistic" in that
  any covered neighbor may serve a waking receiver; the cross-layer
  variant additionally ranks senders by *residual usefulness* — how many
  of their other neighbors still need the packet — so transmissions do
  double duty via overhearing.)
* :func:`recommended_configuration` — couples the protocol with
  :func:`repro.core.tradeoff.optimal_duty_cycle`, returning the duty
  cycle the analytic gain model picks for a given topology.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.tradeoff import EnergyModel, GainWeights, TradeoffPoint, optimal_duty_cycle
from ..net.radio import TxBatch, csma_select
from ..net.topology import SOURCE, Topology
from ._belief import NeighborBelief
from .base import FloodingProtocol, SimView, earliest_wake, register_protocol

__all__ = ["CrossLayerFlooding", "recommended_configuration"]


def recommended_configuration(
    topo: Topology,
    weights: Optional[GainWeights] = None,
    energy: Optional[EnergyModel] = None,
    duty_min: float = 0.01,
    duty_max: float = 0.5,
) -> TradeoffPoint:
    """Gain-optimal duty cycle for this topology's loss profile.

    Folds the topology's link ensemble into its effective k-class and
    runs the trade-off optimizer — the "instruction to configure the duty
    cycle length" the paper notes is missing from existing designs.
    """
    k = topo.mean_k_class()
    return optimal_duty_cycle(
        n_sensors=topo.n_sensors,
        k=k,
        weights=weights,
        energy=energy,
        duty_min=duty_min,
        duty_max=duty_max,
    )


@register_protocol
class CrossLayerFlooding(FloodingProtocol):
    """DBAO mechanics + unsuppressed opportunistic forwarding."""

    name = "crosslayer"

    def __init__(self):
        self.init_kwargs: dict = {}
        self._topo = None
        self._belief: NeighborBelief = None  # type: ignore[assignment]
        self._last_contenders: Dict[int, List[int]] = {}

    def prepare(self, topo, schedules, workload, rng):
        from .dbao import forwarder_clique
        from .tree import build_etx_tree

        self._topo = topo
        self._belief = NeighborBelief(topo, workload.n_packets)
        self._last_contenders = {}
        tree = build_etx_tree(topo, schedules.period)
        self._forwarders = [
            forwarder_clique(topo, r, anchor=int(tree.parent[r]))
            for r in range(topo.n_nodes)
        ]
        self._schedules = schedules
        # Quiescence frontier: all (clique member, receiver) pairs, like
        # DBAO's — the opportunistic ranking only reorders senders, it
        # never adds pairs beyond the cliques.
        s_parts = []
        r_parts = []
        for r, fwd in enumerate(self._forwarders):
            if r == SOURCE or not fwd:
                continue
            s_parts.append(np.asarray(fwd, dtype=np.int64))
            r_parts.append(np.full(len(fwd), r, dtype=np.int64))
        if s_parts:
            self._frontier_s = np.concatenate(s_parts)
            self._frontier_r = np.concatenate(r_parts)
        else:
            self._frontier_s = np.empty(0, dtype=np.int64)
            self._frontier_r = np.empty(0, dtype=np.int64)

    def next_action_slot(self, t, awake, view):
        offers = self._belief.offer_pairs(
            self._frontier_s, self._frontier_r, view.possession_by_holder()
        )
        return earliest_wake(self._schedules, t, self._frontier_r[offers])

    def _usefulness(self, s: int, packet: int) -> int:
        """How many of s's out-neighbors still (believably) need ``packet``."""
        deg = self._topo.out_neighbors(s).size
        return deg - self._belief.believed_coverage_count(s, packet)

    def propose_batch(self, t: int, awake: np.ndarray, view: SimView) -> TxBatch:
        choices: Dict[int, Tuple[int, int, float, int]] = {}
        # RX-mode rule: see FlashFlooding.propose.
        listening = {
            int(v) for v in awake.tolist()
            if v != SOURCE and view.held_packets(int(v)).size < view.n_packets
        }
        for r in awake.tolist():
            if r == SOURCE:
                continue
            forwarders = self._forwarders[r]
            if not forwarders:
                continue
            needs = self._belief.needs_matrix(r, forwarders)
            heads, valid = view.fcfs_heads_batch(np.asarray(forwarders), needs)
            for i, s in enumerate(forwarders):
                if not valid[i] or s in listening:
                    continue
                head = int(heads[i])
                prr = self._topo.link_prr(s, r)
                useful = self._usefulness(s, head)
                prev = choices.get(s)
                if prev is None or prr > prev[2]:
                    choices[s] = (r, head, prr, useful)
        self._last_contenders = {}
        if not choices:
            return TxBatch.empty()

        # Deterministic back-off rank: best link first (like DBAO), then
        # most-useful transmission (overhearing turns usefulness into
        # free coverage), then id.
        ranked = sorted(choices, key=lambda s: (-choices[s][2], -choices[s][3], s))
        winners, _ = csma_select(ranked, self._topo)
        n = len(winners)
        out_s = np.fromiter(winners, dtype=np.int64, count=n)
        out_r = np.empty(n, dtype=np.int64)
        out_p = np.empty(n, dtype=np.int64)
        for i, winner in enumerate(winners):
            r, pkt, _, _ = choices[winner]
            out_r[i] = r
            out_p[i] = pkt
        # All contenders for r hear r's ACK (they are in range of r).
        for s, (r, _, _, _) in choices.items():
            self._last_contenders.setdefault(r, []).append(s)
        return TxBatch(out_s, out_r, out_p)

    def observe(self, t, outcome, view):
        for rec in outcome.receptions:
            if rec.overheard:
                continue
            held = view.held_packets(rec.receiver)
            self._belief.sync_possession(rec.sender, rec.receiver, held)
            audience = self._last_contenders.get(rec.receiver, ())
            self._belief.sync_for_witnesses(audience, rec.receiver, held)
