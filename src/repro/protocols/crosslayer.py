"""Cross-layer design sketch (the paper's future-work direction 2).

The paper concludes that (1) the duty-cycle length should be configured
to balance lifetime against delay, and (2) opportunistic forwarding
should be *co-designed* with that configuration rather than bolted on.
This module implements the sketch:

* :class:`CrossLayerFlooding` — DBAO's deterministic back-off and
  overhearing, *plus* OF-style opportunistic forwarding over every
  usable link with **no lateness suppression**: under a duty cycle tuned
  by the gain optimizer, extra early copies are cheap insurance against
  loss, so the cross-layer design spends them freely while the
  deterministic back-off keeps the added contention collision-free
  within carrier-sense range. (DBAO is already "opportunistic" in that
  any covered neighbor may serve a waking receiver; the cross-layer
  variant additionally ranks senders by *residual usefulness* — how many
  of their other neighbors still need the packet — so transmissions do
  double duty via overhearing.)
* :func:`recommended_configuration` — couples the protocol with
  :func:`repro.core.tradeoff.optimal_duty_cycle`, returning the duty
  cycle the analytic gain model picks for a given topology.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.tradeoff import EnergyModel, GainWeights, TradeoffPoint, optimal_duty_cycle
from ..net.radio import TxBatch, csma_select, csma_select_reps
from ..net.topology import SOURCE, Topology
from ._belief import NeighborBelief, RepNeighborBelief
from ._repbatch import candidate_rows, flatten_sender_lists
from .base import (
    FloodingProtocol,
    RepSimView,
    SimView,
    earliest_wake,
    phase_cache_period,
    register_protocol,
)

__all__ = ["CrossLayerFlooding", "recommended_configuration"]


def recommended_configuration(
    topo: Topology,
    weights: Optional[GainWeights] = None,
    energy: Optional[EnergyModel] = None,
    duty_min: float = 0.01,
    duty_max: float = 0.5,
) -> TradeoffPoint:
    """Gain-optimal duty cycle for this topology's loss profile.

    Folds the topology's link ensemble into its effective k-class and
    runs the trade-off optimizer — the "instruction to configure the duty
    cycle length" the paper notes is missing from existing designs.
    """
    k = topo.mean_k_class()
    return optimal_duty_cycle(
        n_sensors=topo.n_sensors,
        k=k,
        weights=weights,
        energy=energy,
        duty_min=duty_min,
        duty_max=duty_max,
    )


@register_protocol
class CrossLayerFlooding(FloodingProtocol):
    """DBAO mechanics + unsuppressed opportunistic forwarding."""

    name = "crosslayer"

    def __init__(self):
        self.init_kwargs: dict = {}
        self._topo = None
        self._belief: NeighborBelief = None  # type: ignore[assignment]
        self._last_contenders: Dict[int, List[int]] = {}

    def prepare(self, topo, schedules, workload, rng):
        from .dbao import forwarder_clique
        from .tree import build_etx_tree

        self._topo = topo
        self._belief = NeighborBelief(topo, workload.n_packets)
        self._last_contenders = {}
        tree = build_etx_tree(topo, schedules.period)
        self._forwarders = [
            forwarder_clique(topo, r, anchor=int(tree.parent[r]))
            for r in range(topo.n_nodes)
        ]
        self._schedules = schedules
        # Quiescence frontier: all (clique member, receiver) pairs, like
        # DBAO's — the opportunistic ranking only reorders senders, it
        # never adds pairs beyond the cliques.
        s_parts = []
        r_parts = []
        for r, fwd in enumerate(self._forwarders):
            if r == SOURCE or not fwd:
                continue
            s_parts.append(np.asarray(fwd, dtype=np.int64))
            r_parts.append(np.full(len(fwd), r, dtype=np.int64))
        if s_parts:
            self._frontier_s = np.concatenate(s_parts)
            self._frontier_r = np.concatenate(r_parts)
        else:
            self._frontier_s = np.empty(0, dtype=np.int64)
            self._frontier_r = np.empty(0, dtype=np.int64)

    def next_action_slot(self, t, awake, view):
        offers = self._belief.offer_pairs(
            self._frontier_s, self._frontier_r, view.possession_by_holder()
        )
        return earliest_wake(self._schedules, t, self._frontier_r[offers])

    def _usefulness(self, s: int, packet: int) -> int:
        """How many of s's out-neighbors still (believably) need ``packet``."""
        deg = self._topo.out_neighbors(s).size
        return deg - self._belief.believed_coverage_count(s, packet)

    def propose_batch(self, t: int, awake: np.ndarray, view: SimView) -> TxBatch:
        choices: Dict[int, Tuple[int, int, float, int]] = {}
        # RX-mode rule: see FlashFlooding.propose.
        listening = {
            int(v) for v in awake.tolist()
            if v != SOURCE and view.held_packets(int(v)).size < view.n_packets
        }
        for r in awake.tolist():
            if r == SOURCE:
                continue
            forwarders = self._forwarders[r]
            if not forwarders:
                continue
            needs = self._belief.needs_matrix(r, forwarders)
            heads, valid = view.fcfs_heads_batch(np.asarray(forwarders), needs)
            for i, s in enumerate(forwarders):
                if not valid[i] or s in listening:
                    continue
                head = int(heads[i])
                prr = self._topo.link_prr(s, r)
                useful = self._usefulness(s, head)
                prev = choices.get(s)
                if prev is None or prr > prev[2]:
                    choices[s] = (r, head, prr, useful)
        self._last_contenders = {}
        if not choices:
            return TxBatch.empty()

        # Deterministic back-off rank: best link first (like DBAO), then
        # most-useful transmission (overhearing turns usefulness into
        # free coverage), then id.
        ranked = sorted(choices, key=lambda s: (-choices[s][2], -choices[s][3], s))
        winners, _ = csma_select(ranked, self._topo)
        n = len(winners)
        out_s = np.fromiter(winners, dtype=np.int64, count=n)
        out_r = np.empty(n, dtype=np.int64)
        out_p = np.empty(n, dtype=np.int64)
        for i, winner in enumerate(winners):
            r, pkt, _, _ = choices[winner]
            out_r[i] = r
            out_p[i] = pkt
        # All contenders for r hear r's ACK (they are in range of r).
        for s, (r, _, _, _) in choices.items():
            self._last_contenders.setdefault(r, []).append(s)
        return TxBatch(out_s, out_r, out_p)

    def observe(self, t, outcome, view):
        for rec in outcome.receptions:
            if rec.overheard:
                continue
            held = view.held_packets(rec.receiver)
            self._belief.sync_possession(rec.sender, rec.receiver, held)
            audience = self._last_contenders.get(rec.receiver, ())
            self._belief.sync_for_witnesses(audience, rec.receiver, held)

    # -- Replication-batched path ---------------------------------------
    #
    # Clique candidate rows per phase like DBAO; the best-link pick per
    # (replication, sender) keeps the earliest traversal row on PRR ties
    # (matching the serial strictly-greater replacement), usefulness is
    # computed on the picked rows (beliefs are static within a slot),
    # and the observe join mirrors DBAO's contender matching with the
    # sender sync applied unconditionally.

    def rep_batchable(self) -> bool:
        return True

    def prepare_reps(self, topo, schedules_list, workload, rngs):
        # Serial prepare consumes no randomness; the ETX anchor (and so
        # the cliques) is period-independent.
        self.prepare(topo, schedules_list[0], workload, rngs[0])
        self._rep_belief = RepNeighborBelief(
            topo, workload.n_packets, len(schedules_list))
        self._rep_schedules = list(schedules_list)
        self._fwd_sizes, self._fwd_starts, self._fwd_flat = (
            flatten_sender_lists(
                [np.asarray(f, dtype=np.int64) for f in self._forwarders]
            )
        )
        self._out_deg = np.asarray(
            [topo.out_neighbors(v).size for v in range(topo.n_nodes)],
            dtype=np.int64,
        )
        self._rep_cache_period = phase_cache_period(schedules_list)
        self._rep_phase_cache: Dict[int, Tuple] = {}
        self._contender_k = None
        self._contender_s = None
        self._contender_r = None
        self._off_frontier = None

    def _rep_rows(self, t: int):
        key = t % self._rep_cache_period if self._rep_cache_period else None
        if key is not None:
            hit = self._rep_phase_cache.get(key)
            if hit is not None:
                return hit
        kk, ss, rr, sender_awake = candidate_rows(
            self._rep_schedules, t, self._fwd_sizes, self._fwd_starts,
            self._fwd_flat, with_sender_awake=True,
        )
        rows = (kk, ss, rr, sender_awake, self._topo.prr[ss, rr])
        if key is not None:
            self._rep_phase_cache[key] = rows
        return rows

    def propose_reps(self, t, rep_ids, awake_by_rep, view: RepSimView):
        empty = np.empty(0, dtype=np.int64)
        self._contender_k = self._contender_s = self._contender_r = None
        kk, ss, rr, sender_awake, prr = self._rep_rows(t)
        if kk.size == 0:
            return empty, empty, empty, empty
        if rep_ids.size < len(self._rep_schedules):
            active = np.zeros(len(self._rep_schedules), dtype=bool)
            active[rep_ids] = True
            keep = active[kk]
            if not keep.all():
                kk, ss, rr = kk[keep], ss[keep], rr[keep]
                sender_awake, prr = sender_awake[keep], prr[keep]
        needs = self._rep_belief.needs_pairs(kk, ss, rr)
        heads, valid = view.fcfs_heads_pairs(kk, ss, needs)
        listen = sender_awake & (ss != SOURCE) & (
            view.held_counts[kk, ss] < view.n_packets
        )
        ok = valid & ~listen
        if not ok.any():
            return empty, empty, empty, empty
        k_o, s_o, r_o = kk[ok], ss[ok], rr[ok]
        h_o, prr_o = heads[ok], prr[ok]

        # Best-link receiver per (replication, sender); the serial
        # replacement is strictly-greater, so PRR ties keep the earliest
        # traversal row (seq as the final sort key).
        n = self._topo.n_nodes
        seq = np.flatnonzero(ok)
        pair = k_o * n + s_o
        order = np.lexsort((seq, -prr_o, pair))
        pair_srt = pair[order]
        first = np.ones(pair_srt.size, dtype=bool)
        first[1:] = pair_srt[1:] != pair_srt[:-1]
        pick = order[first]  # ascending (replication, sender)
        chosen_k = k_o[pick]
        chosen_s = s_o[pick]
        chosen_r = r_o[pick]
        chosen_p = h_o[pick]
        chosen_prr = prr_o[pick]

        # Residual usefulness on the picked rows only — beliefs are
        # static within a slot, so this matches the serial evaluation at
        # traversal time.
        useful = self._out_deg[chosen_s] - self._rep_belief.coverage_counts(
            chosen_k, chosen_s, chosen_p
        )

        # All contenders (winners and deferrers) hear their receiver's
        # ACK; observe_reps joins them against the slot's receptions.
        self._contender_k = chosen_k
        self._contender_s = chosen_s
        self._contender_r = chosen_r

        # Back-off rank: best link, then most useful, then id.
        rank = np.lexsort((chosen_s, -useful, -chosen_prr, chosen_k))
        win = csma_select_reps(
            np.searchsorted(rep_ids, chosen_k[rank]), chosen_s[rank],
            self._topo,
        )
        rows = rank[win]
        if rows.size == 0:
            return empty, empty, empty, empty
        return chosen_k[rows], chosen_s[rows], chosen_r[rows], chosen_p[rows]

    def observe_reps(self, t, outcome, view: RepSimView):
        sel = ~outcome.rec_overheard
        if not sel.any():
            return
        rep_f = outcome.rec_rep[sel]
        recv_f = outcome.rec_receiver[sel]
        send_f = outcome.rec_sender[sel]
        wk, w_obs, w_recv = rep_f, send_f, recv_f
        if self._contender_k is not None and self._contender_k.size:
            # Witness audience: contenders whose chosen receiver got a
            # non-overheard reception (at most one per (replication,
            # receiver) per slot). Senders already sync above; repeated
            # (rep, observer, receiver) tuples OR identical words, so
            # the overlap is harmless.
            n = view.n_nodes
            ckey = self._contender_k * n + self._contender_r
            rkey = rep_f * n + recv_f
            rkey_sorted = np.sort(rkey)
            pos = np.searchsorted(rkey_sorted, ckey)
            pos_c = np.minimum(pos, rkey_sorted.size - 1)
            match = rkey_sorted[pos_c] == ckey
            if match.any():
                wk = np.concatenate([wk, self._contender_k[match]])
                w_obs = np.concatenate([w_obs, self._contender_s[match]])
                w_recv = np.concatenate([w_recv, self._contender_r[match]])
        if (self._rep_belief._packed is not None
                and view.has_packed is not None):
            self._rep_belief.sync_pairs_words(
                wk, w_obs, w_recv, view.has_packed[wk, w_recv]
            )
        else:
            self._rep_belief.sync_pairs(
                wk, w_obs, w_recv, view.has_stack[wk, :, w_recv]
            )

    def next_action_slots(self, t, rep_ids, view: RepSimView):
        if self._off_frontier is None:
            self._off_frontier = view.offsets_stack[:, self._frontier_r]
        offers = self._rep_belief.offer_pairs_reps(
            rep_ids, self._frontier_s, self._frontier_r, view.has_stack,
            view.has_packed,
        )
        return view.earliest_wakes(
            t, rep_ids, self._frontier_r, offers, self._off_frontier
        )
