"""Flooding-protocol interface and registry.

A protocol's job each slot: given which nodes are awake (able to receive),
decide which covered nodes transmit what to whom. Everything else —
injection, channel resolution, possession bookkeeping, metrics — is the
engine's. Protocols see network state only through :class:`SimView`,
which exposes *exactly* the information the paper's model grants a node:
its own buffer, its neighbors' schedules (local synchronization), and
whatever it learned from acknowledged or overheard transmissions.

The one deliberate exception is :class:`~repro.protocols.opt.OptOracle`,
which reads ground-truth possession — that is the point of OPT.
"""

from __future__ import annotations

import math
from abc import ABC
from typing import Callable, Dict, List, Optional, Type

import numpy as np

from ..net.packet import FloodWorkload
from ..net.radio import SlotOutcome, Transmission, TxBatch
from ..net.schedule import ScheduleTable
from ..net.topology import Topology

__all__ = ["SimView", "RepSimView", "FloodingProtocol", "register_protocol",
           "make_protocol", "available_protocols", "NEVER", "earliest_wake",
           "phase_cache_period"]

#: Sentinel arrival for absent packets in FCFS computations (hoisted —
#: ``np.iinfo`` on every call shows up hard in profiles).
_INT64_MAX = np.iinfo(np.int64).max

#: "No action possible ever" sentinel for :meth:`next_action_slot`.
#: Far beyond any horizon yet small enough that the engine's clamping
#: arithmetic cannot overflow int64.
NEVER = _INT64_MAX // 4


def phase_cache_period(schedules_list, cap: int = 16384) -> int:
    """Common wake-phase period across a replication stack's schedules.

    Wake sets — and every per-phase row structure derived from them —
    repeat with the least common multiple of the replications' wake
    periods, so caches keyed on ``t % period`` stay exact even when a
    cross-cell stack mixes duty cycles. Returns ``0`` when the LCM
    exceeds ``cap`` (pathological period mixes); callers must then
    rebuild rows per slot instead of caching.
    """
    period = 1
    for schedules in schedules_list:
        period = math.lcm(period, int(schedules.period))
        if period > cap:
            return 0
    return period


def earliest_wake(schedules, t: int, receivers: np.ndarray) -> int:
    """Earliest slot after ``t`` at which any of ``receivers`` can receive.

    The shared tail of every protocol's quiescence frontier: given the
    receivers the protocol could still serve, the earliest of their next
    active slots bounds the next slot with possible traffic. An empty
    receiver set means no transmission is ever possible again
    (:data:`NEVER` — the engine clamps it to injections/horizon); a
    schedule object without the vectorized ``next_wake_after`` bulk query
    degrades to the conservative ``t + 1`` (no fast-forward).
    """
    if len(receivers) == 0:
        return NEVER
    bulk = getattr(schedules, "next_wake_after", None)
    if bulk is None:
        return t + 1
    return int(bulk(t, receivers).min())


class SimView:
    """Read-only window onto simulation state handed to protocols.

    Parameters
    ----------
    topo, schedules, workload:
        The static substrate.
    has:
        ``(M, n_nodes)`` ground-truth possession matrix. Protocols other
        than OPT must only read *their own* columns (a node knows its own
        buffer) — the engine cannot enforce this, but the test suite
        audits each protocol's information usage on crafted scenarios.
    arrival:
        ``(M, n_nodes)`` arrival slots (``-1`` if absent); defines FCFS
        order at each node.
    """

    def __init__(
        self,
        topo: Topology,
        schedules: ScheduleTable,
        workload: FloodWorkload,
        has: np.ndarray,
        arrival: np.ndarray,
    ):
        self.topo = topo
        self.schedules = schedules
        self.workload = workload
        self._has = has
        self._arrival = arrival
        #: Monotone state-change counter, bumped by the engine whenever
        #: possession (and hence any belief derived from channel events)
        #: may have changed. Quiescence frontiers cache their offer sets
        #: keyed on this so repeated ``next_action_slot`` probes between
        #: state changes skip the possession scan.
        self.state_version = 0

    @property
    def n_nodes(self) -> int:
        return self.topo.n_nodes

    @property
    def n_packets(self) -> int:
        return self.workload.n_packets

    def holds(self, node: int, packet: int) -> bool:
        """Whether ``node`` has ``packet`` (a node's own-buffer query)."""
        return bool(self._has[packet, node])

    def held_packets(self, node: int) -> np.ndarray:
        """Packet indices in ``node``'s buffer (ascending index)."""
        return np.flatnonzero(self._has[:, node])

    def held_counts(self, nodes: np.ndarray) -> np.ndarray:
        """Buffer sizes of ``nodes`` — batch form of ``len(held_packets)``.

        Each count is the node's own-buffer cardinality, which any node
        may advertise about itself; the batched accessor leaks nothing a
        per-node query would not.
        """
        return self._has[:, nodes].sum(axis=0)

    def arrival_slot(self, node: int, packet: int) -> int:
        """When ``packet`` arrived at ``node`` (-1 if absent)."""
        return int(self._arrival[packet, node])

    def fcfs_head(self, sender: int, needed_mask: np.ndarray) -> Optional[int]:
        """Earliest-arrived packet at ``sender`` among ``needed_mask``.

        ``needed_mask`` is an ``(M,)`` boolean mask of packets the
        intended receiver lacks *according to the sender's information*.
        Returns the packet index or None.
        """
        cand = self._has[:, sender] & needed_mask
        if not cand.any():
            return None
        arrivals = np.where(cand, self._arrival[:, sender], _INT64_MAX)
        return int(arrivals.argmin())

    def fcfs_heads_batch(
        self, senders: np.ndarray, needs_matrix: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Vectorized :meth:`fcfs_head` for many senders of one receiver.

        ``needs_matrix`` is ``(M, len(senders))`` — column ``i`` is the
        needs mask *as believed by* ``senders[i]``. Returns
        ``(heads, valid)``: per-sender head packet indices (undefined
        where ``valid`` is False). One NumPy pass instead of a Python
        call per neighbor — the simulator's hottest path.
        """
        senders = np.asarray(senders)
        cand = self._has[:, senders] & needs_matrix
        arrivals = np.where(cand, self._arrival[:, senders], _INT64_MAX)
        return arrivals.argmin(axis=0), cand.any(axis=0)

    def candidate_senders(
        self, neighbors: np.ndarray, needed_mask: np.ndarray
    ) -> np.ndarray:
        """Subset of ``neighbors`` holding at least one packet in ``needed_mask``.

        Vectorized hot-path helper: one boolean sub-matrix slice instead of
        a per-neighbor Python loop.
        """
        neighbors = np.asarray(neighbors)
        if neighbors.size == 0 or not needed_mask.any():
            return neighbors[:0]
        sub = self._has[:, neighbors] & needed_mask[:, None]
        return neighbors[sub.any(axis=0)]

    def possession_by_holder(self) -> np.ndarray:
        """Read-only ``(M, n_nodes)`` possession matrix; column = own buffer.

        For quiescence-frontier queries
        (:meth:`FloodingProtocol.next_action_slot`): the frontier asks,
        for every (holder, receiver) pair at once, whether the holder
        owns a packet it believes the receiver lacks. Each column is the
        corresponding node's *own* buffer — information that node may
        freely use about itself — so, like :meth:`held_counts`, the
        batched accessor leaks nothing a per-node :meth:`holds` scan
        would not.
        """
        view = self._has.view()
        view.flags.writeable = False
        return view

    # -- Oracle-only accessors (used by OPT; audited in tests) ---------

    def oracle_needed(self, receiver: int) -> np.ndarray:
        """(M,) mask of packets ``receiver`` truly lacks. OPT only."""
        return ~self._has[:, receiver]

    def oracle_possession(self) -> np.ndarray:
        """Ground-truth possession matrix (read-only view). OPT only."""
        view = self._has.view()
        view.flags.writeable = False
        return view


class RepSimView:
    """Stacked read-only window across R replications of one scenario.

    The replication-batched pipeline's analogue of :class:`SimView`:
    possession and arrival matrices gain a leading replication axis
    (``(R, M, n_nodes)``), schedules stay per-replication objects plus a
    stacked ``(R, n_nodes)`` offsets matrix for vectorized wake queries.
    The information-visibility contract is unchanged — a batched accessor
    exposes exactly what R serial views would.
    """

    def __init__(
        self,
        topo: Topology,
        schedules_list: "List[ScheduleTable]",
        workload: FloodWorkload,
        has_stack: np.ndarray,
        arrival_stack: np.ndarray,
    ):
        self.topo = topo
        self.schedules_list = schedules_list
        self.workload = workload
        self.has_stack = has_stack
        self.arrival_stack = arrival_stack
        self.offsets_stack = np.stack(
            [np.asarray(s.offsets) for s in schedules_list]
        )
        #: (R,) per-replication wake periods; cross-cell stacks mix duty
        #: cycles, so ``period`` (the first replication's) only stands
        #: for the whole stack when ``uniform_period`` holds.
        self.periods = np.asarray(
            [int(s.period) for s in schedules_list], dtype=np.int64)
        self.period = int(self.periods[0])
        self.uniform_period = bool((self.periods == self.period).all())
        #: (R, n) buffer sizes, kept in sync by the engine as possession
        #: changes so pair queries skip the (P, M) gather-and-sum.
        self.held_counts = has_stack.sum(axis=1, dtype=np.int64)
        #: (R, n) possession bitmask (packet m -> bit m), kept in sync by
        #: the engine alongside ``held_counts``; lets frontier queries
        #: compare whole buffers with one uint64 op instead of an (M,)
        #: reduction. ``None`` when M exceeds the 64-bit word.
        if self.n_packets <= 64:
            pw = np.uint64(1) << np.arange(self.n_packets, dtype=np.uint64)
            self.has_packed = (
                has_stack.astype(np.uint64) * pw[None, :, None]
            ).sum(axis=1, dtype=np.uint64)
        else:
            self.has_packed = None
        #: (R,) per-replication state-change counters (see
        #: :attr:`SimView.state_version`); the batch engine bumps a
        #: replication's entry whenever its possession/belief inputs may
        #: have changed, and frontier caches key on it.
        self.state_version = np.zeros(self.n_reps, dtype=np.int64)
        #: Scratch arena the engine threads through the run; protocols
        #: may borrow hot-path buffers from it (``None`` outside the
        #: batched engine — borrowers fall back to fresh allocation).
        self.arena = None

    def get_arena(self):
        """The engine's scratch arena, or a lazily-attached NullArena.

        Protocol hot paths borrow per-slot buffers through this; outside
        the batched engine (direct test invocations) the NullArena keeps
        the same API with fresh allocation per borrow.
        """
        ar = self.arena
        if ar is None:
            from ..sim.arena import NullArena

            ar = self.arena = NullArena()
        return ar

    @property
    def n_reps(self) -> int:
        return self.has_stack.shape[0]

    @property
    def n_nodes(self) -> int:
        return self.topo.n_nodes

    @property
    def n_packets(self) -> int:
        return self.workload.n_packets

    def rep_view(self, rep: int) -> SimView:
        """Serial-shaped view of one replication (fallback paths)."""
        return SimView(
            self.topo, self.schedules_list[rep], self.workload,
            self.has_stack[rep], self.arrival_stack[rep],
        )

    def fcfs_heads_pairs(
        self, kk: np.ndarray, senders: np.ndarray, needs: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """FCFS heads for flat (replication, sender) pairs.

        ``needs`` is ``(P, M)`` — row ``i`` is the needs mask believed by
        ``senders[i]`` in replication ``kk[i]``. Returns ``(heads,
        valid)`` exactly like :meth:`SimView.fcfs_heads_batch`.
        """
        cand = self.has_stack[kk, :, senders] & needs  # (P, M)
        arrivals = np.where(
            cand, self.arrival_stack[kk, :, senders], _INT64_MAX)
        return arrivals.argmin(axis=1), cand.any(axis=1)

    def held_counts_pairs(
        self, kk: np.ndarray, nodes: np.ndarray
    ) -> np.ndarray:
        """Buffer sizes for flat (replication, node) pairs."""
        return self.held_counts[kk, nodes]

    def fcfs_heads_masked(
        self, kk: np.ndarray, senders: np.ndarray, cand: np.ndarray
    ) -> np.ndarray:
        """FCFS heads when the (P, M) candidate mask is already known.

        ``cand`` rows must be non-empty (callers pre-filter with the
        packed-word validity test); returns the earliest-arrival packet
        per row under the same argmin tie-break as
        :meth:`fcfs_heads_pairs`.
        """
        arrivals = np.where(
            cand, self.arrival_stack[kk, :, senders], _INT64_MAX)
        return arrivals.argmin(axis=1)

    def earliest_wakes(
        self, t: int, rep_ids: np.ndarray, frontier: np.ndarray,
        offers: np.ndarray, off_frontier: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Per-replication :func:`earliest_wake` over a masked frontier.

        ``frontier`` holds candidate receiver node ids; ``offers`` is
        ``(len(rep_ids), len(frontier))`` marking which of them each
        replication could still serve. Returns one sound lower bound per
        replication (:data:`NEVER` where no receiver offers).

        ``off_frontier`` may carry the precomputed ``(R, len(frontier))``
        offset gather for protocols whose frontier is static — queries
        then skip the per-call node-axis fancy index.
        """
        if frontier.size == 0:
            return np.full(len(rep_ids), NEVER, dtype=np.int64)
        if off_frontier is None:
            off = self.offsets_stack[rep_ids[:, None], frontier[None, :]]
        else:
            off = off_frontier[rep_ids]
        nxt = t + 1
        if self.uniform_period:
            # Offsets live in [0, period), so the modular next-wake
            # formula collapses to a period-length lookup table per
            # query slot.
            wake_map = nxt + (
                (np.arange(self.period, dtype=np.int64) - nxt) % self.period
            )
            return np.where(offers, wake_map[off], NEVER).min(axis=1)
        # Heterogeneous-period stack: apply the formula directly with
        # each replication's own period.
        per = self.periods[rep_ids][:, None]
        wakes = nxt + ((off - nxt) % per)
        return np.where(offers, wakes, NEVER).min(axis=1)


class FloodingProtocol(ABC):
    """Base class for flooding protocols.

    Lifecycle: ``prepare`` once per run, then per slot a proposal followed
    by ``observe`` with the channel outcome.

    A subclass implements **either** proposal method; each default
    delegates to the other. List-returning protocols override
    :meth:`propose` and get batching through the adapter; hot protocols
    override :meth:`propose_batch` and emit structure-of-arrays
    :class:`~repro.net.radio.TxBatch` directly — the engine only ever
    consumes batches. Overriding neither raises ``NotImplementedError``
    at proposal time.
    """

    #: Registry key; subclasses must override.
    name: str = ""

    #: Constructor kwargs, for faithful reconstruction (e.g. the Fig. 9
    #: single-packet probe floods re-instantiate the protocol per probe).
    #: :func:`make_protocol` records the passed kwargs on every instance;
    #: this class-level default only covers protocols instantiated
    #: directly with default arguments.
    init_kwargs: Dict = {}

    def prepare(
        self,
        topo: Topology,
        schedules: ScheduleTable,
        workload: FloodWorkload,
        rng: np.random.Generator,
    ) -> None:
        """One-time setup (tree construction, backoff ranks, beliefs)."""

    def propose(self, t: int, awake: np.ndarray, view: SimView) -> List[Transmission]:
        """Transmissions to commit at slot ``t``.

        Constraints the engine enforces: at most one transmission per
        sender; the sender must hold the packet; the receiver must be
        awake. Sending a packet the receiver already has is allowed
        (belief-limited protocols do it), it just wastes a slot.
        """
        if type(self).propose_batch is FloodingProtocol.propose_batch:
            raise NotImplementedError(
                f"{type(self).__name__} must override propose or propose_batch"
            )
        return self.propose_batch(t, awake, view).to_transmissions()

    def propose_batch(self, t: int, awake: np.ndarray, view: SimView) -> TxBatch:
        """Batched form of :meth:`propose`; same contract, SoA container.

        This is what the engine calls. The default adapts a
        list-returning :meth:`propose`.
        """
        if type(self).propose is FloodingProtocol.propose:
            raise NotImplementedError(
                f"{type(self).__name__} must override propose or propose_batch"
            )
        return TxBatch.from_transmissions(self.propose(t, awake, view))

    def observe(self, t: int, outcome: SlotOutcome, view: SimView) -> None:
        """Learn from the slot's outcome (ACKs, overheard receptions)."""

    def next_action_slot(self, t: int, awake: np.ndarray, view: SimView) -> int:
        """Quiescence contract: earliest slot after ``t`` with possible traffic.

        Called by the engine after an executed slot ``t`` whose proposal
        came back empty. The returned slot is a *sound lower bound*: the
        protocol guarantees that at every slot in ``(t, returned)`` it
        would again propose nothing **and consume no randomness** —
        possession, beliefs, and injections cannot change while no
        transmission occurs, so only schedule progression matters and the
        bound is typically the minimum
        :meth:`~repro.net.schedule.ScheduleTable.next_wake_after` over
        the receivers the protocol could still serve (its pending
        frontier). The engine fast-forwards to the bound (clamped by
        pending injections and the horizon), advancing link dynamics and
        energy accounting exactly.

        Under-estimating is always safe — the skipped-to slot simply
        executes as a no-op. Over-estimating breaks trajectory fidelity;
        when in doubt return the conservative default ``t + 1`` (no
        skip), which keeps any protocol correct.
        """
        return t + 1

    # -- Replication-batched interface ---------------------------------
    #
    # Batch-native protocols answer True from ``rep_batchable`` and
    # implement the ``*_reps`` methods; all seven paper-era floods do
    # (OPT only under the designated server policy). A protocol that
    # keeps the defaults makes the runner fall back to
    # replication-by-replication serial runs (documented in DESIGN.md's
    # "replication axis" section).

    def rep_batchable(self) -> bool:
        """Whether this instance supports (R, …) batched proposals."""
        return False

    def prepare_reps(
        self,
        topo: Topology,
        schedules_list: "List[ScheduleTable]",
        workload: FloodWorkload,
        rngs: "List[np.random.Generator]",
    ) -> None:
        """One-time setup across R replications.

        Must leave each replication's protocol state exactly as R serial
        :meth:`prepare` calls would have, consuming each replication's
        stream identically (the batch-native protocols consume none).
        """
        raise NotImplementedError(
            f"{type(self).__name__} is not replication-batchable"
        )

    def propose_reps(
        self, t: int, rep_ids: np.ndarray, awake_by_rep, view: RepSimView
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
        """Batched proposal: flat ``(kk, senders, receivers, packets)``.

        ``rep_ids`` lists the replications executing slot ``t`` with a
        non-empty wake set, ascending; rows must come back grouped by
        replication in that order, and **within each replication in the
        exact row order the serial :meth:`propose_batch` would emit** —
        capture tie-breaking in the channel depends on it.
        """
        raise NotImplementedError(
            f"{type(self).__name__} is not replication-batchable"
        )

    def observe_reps(self, t: int, outcome, view: RepSimView) -> None:
        """Batched :meth:`observe` over a
        :class:`~repro.net.radio.RepSlotOutcome`."""

    def next_action_slots(
        self, t: int, rep_ids: np.ndarray, view: RepSimView
    ) -> np.ndarray:
        """Per-replication :meth:`next_action_slot` bounds (sound, vectorized)."""
        return np.full(len(rep_ids), t + 1, dtype=np.int64)


_REGISTRY: Dict[str, Type[FloodingProtocol]] = {}


def register_protocol(cls: Type[FloodingProtocol]) -> Type[FloodingProtocol]:
    """Class decorator adding a protocol to the name registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty name")
    if cls.name in _REGISTRY:
        raise ValueError(f"protocol name {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def make_protocol(name: str, **kwargs) -> FloodingProtocol:
    """Instantiate a registered protocol by name.

    The constructor kwargs are recorded on the instance as
    ``init_kwargs`` regardless of whether the class does so itself, so
    engine paths that rebuild the protocol (the Fig. 9 probe floods)
    always reconstruct it with the configuration it was created with.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    protocol = cls(**kwargs)
    protocol.init_kwargs = dict(kwargs)
    return protocol


def available_protocols() -> List[str]:
    """Names of all registered protocols."""
    return sorted(_REGISTRY)
