"""DBAO: Deterministic Back-off Assignment + Overhearing (paper Sec. V-A).

DBAO is the authors' WASA'11 protocol, used in the paper as the best
*practical* approximation of OPT. Two mechanisms:

* **Deterministic back-off assignment.** Each sensor maintains a
  *forwarder subset* of its neighbors in which every member can hear
  every other (a mutually-audible clique, built greedily best-link
  first); only subset members forward to it. Because the subset is a
  clique, carrier sense fully serializes its contention: back-off ranks
  are assigned deterministically — best link quality to the intended
  receiver first, node id as tie-break — and only the rank-0 sender
  transmits while the rest defer silently. Collisions therefore only
  arise between senders serving *different* receivers that happen to
  interfere (cross-receiver hidden terminals), which is exactly the
  residual gap to OPT the paper points out in Fig. 10.

* **Overhearing.** Deferring group members stay awake through the slot,
  hear the winner's frame and the receiver's ACK, and record the
  confirmed reception in their coverage beliefs — suppressing their own
  now-redundant retransmissions of the same packet.

Senders have no oracle: they target packets their *beliefs* say the
receiver lacks, so early transmissions can be redundant; the belief
update rules only record confirmed receptions, keeping beliefs sound
(never wrongly marking a packet as delivered).

``overhearing=False`` ablates the second mechanism (bench
``abl-overhearing``).

The proposal path is fully batched: the per-slot candidate set is the
concatenation of every waking receiver's forwarder clique, flattened to
parallel (sender, receiver, prr) arrays that depend only on the wake set
and are therefore cached per schedule phase. Belief lookups, FCFS heads,
the per-sender best-receiver choice, and the back-off ranking all run as
single NumPy passes over those arrays; the scalar rules they replace are
documented inline where each vectorized step must match them bit-exactly.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..net.radio import TxBatch, csma_select
from ..net.topology import SOURCE
from ._belief import NeighborBelief
from .base import FloodingProtocol, SimView, earliest_wake, register_protocol

__all__ = ["Dbao", "forwarder_clique"]


def forwarder_clique(topo, receiver: int, anchor: int = -1) -> List[int]:
    """The receiver's forwarder subset: a greedy mutually-audible clique.

    In-neighbors are considered best-link-first; a candidate joins only
    if it can hear (or be heard by) every member already in the clique.
    The result is the paper's "subset of neighbors in which those
    neighbors can hear each other": contention inside it is fully
    serialized by carrier sense.

    ``anchor`` (if >= 0) is seeded into the clique before the greedy pass.
    DBAO anchors each receiver's ETX-tree parent so the clique-edge
    subgraph provably keeps every node reachable from the source — an
    arbitrary clique could otherwise cut a node's only upstream path.
    """
    audible = lambda a, b: topo.has_link(a, b) or topo.has_link(b, a)
    nbs = topo.in_neighbors(receiver)
    order = sorted(nbs.tolist(), key=lambda s: (-topo.link_prr(s, receiver), s))
    clique: List[int] = []
    if anchor >= 0:
        if anchor not in order:
            raise ValueError(
                f"anchor {anchor} is not an in-neighbor of {receiver}"
            )
        clique.append(anchor)
    for s in order:
        if s not in clique and all(audible(s, member) for member in clique):
            clique.append(s)
    return clique


@register_protocol
class Dbao(FloodingProtocol):
    """Deterministic back-off + overhearing flooding."""

    name = "dbao"

    def __init__(self, overhearing: bool = True):
        self.overhearing = bool(overhearing)
        self.init_kwargs = {"overhearing": self.overhearing}
        self._belief: NeighborBelief = None  # type: ignore[assignment]
        self._topo = None
        self._forwarders: List[List[int]] = []
        #: Senders that contended (won or deferred) in the last slot, per
        #: receiver — the overhearing audience for that receiver's ACK.
        self._last_contenders: Dict[int, List[int]] = {}

    def prepare(self, topo, schedules, workload, rng):
        from .tree import build_etx_tree

        self._topo = topo
        self._belief = NeighborBelief(topo, workload.n_packets)
        self._last_contenders = {}
        tree = build_etx_tree(topo, schedules.period)
        self._forwarders = [
            forwarder_clique(topo, r, anchor=int(tree.parent[r]))
            for r in range(topo.n_nodes)
        ]
        # Flat per-receiver candidate arrays for the batched proposal:
        # clique members (in clique order) and their link PRRs.
        self._fwd_arrays = [
            np.asarray(f, dtype=np.int64) for f in self._forwarders
        ]
        self._fwd_prr = [
            topo.prr[f, r] for r, f in enumerate(self._fwd_arrays)
        ]
        # The candidate pair set depends only on the wake set; wake
        # arrays repeat identically (same objects) each schedule period,
        # so cache the flattened pairs keyed by wake-array identity. The
        # cap bounds memory when a schedule model returns fresh arrays
        # every slot (e.g. clock skew) — those simply never hit.
        self._pair_cache: Dict[int, Tuple] = {}
        self._pair_cache_cap = int(schedules.period)
        self._listen_mask = np.zeros(topo.n_nodes, dtype=bool)
        self._schedules = schedules
        # Quiescence frontier: every (clique member, receiver) pair of
        # the whole network, flattened once — next_action_slot scans them
        # in one batched belief query.
        s_parts = []
        r_parts = []
        for r, fwd in enumerate(self._fwd_arrays):
            if r == SOURCE or fwd.size == 0:
                continue
            s_parts.append(fwd)
            r_parts.append(np.full(fwd.size, r, dtype=np.int64))
        if s_parts:
            self._frontier_s = np.concatenate(s_parts)
            self._frontier_r = np.concatenate(r_parts)
        else:
            self._frontier_s = np.empty(0, dtype=np.int64)
            self._frontier_r = np.empty(0, dtype=np.int64)

    def next_action_slot(self, t, awake, view):
        # A receiver is actionable when some clique member holds a packet
        # it believes that receiver lacks — the same offer condition the
        # proposal's needs/FCFS pass enforces, minus the per-slot listen
        # rule and back-off (which only shrink a slot's batch, keeping
        # this bound conservative). DBAO's back-off carries no cross-slot
        # phase state — ranks are recomputed each slot — so schedule
        # progression alone decides when the frontier can next transmit.
        offers = self._belief.offer_pairs(
            self._frontier_s, self._frontier_r, view.possession_by_holder()
        )
        return earliest_wake(self._schedules, t, self._frontier_r[offers])

    # ------------------------------------------------------------------

    def _pairs_for(self, awake: np.ndarray):
        """Flattened (senders, receivers, prrs) candidate pairs for a wake set."""
        hit = self._pair_cache.get(id(awake))
        if hit is not None and hit[0] is awake:
            return hit[1]
        s_parts: List[np.ndarray] = []
        r_parts: List[np.ndarray] = []
        p_parts: List[np.ndarray] = []
        for r in awake.tolist():
            fwd = self._fwd_arrays[r]
            if r == SOURCE or fwd.size == 0:
                continue
            s_parts.append(fwd)
            r_parts.append(np.full(fwd.size, r, dtype=np.int64))
            p_parts.append(self._fwd_prr[r])
        if s_parts:
            pairs = (
                np.concatenate(s_parts),
                np.concatenate(r_parts),
                np.concatenate(p_parts),
            )
        else:
            empty = np.empty(0, dtype=np.int64)
            pairs = (empty, empty, np.empty(0, dtype=np.float64))
        if len(self._pair_cache) < self._pair_cache_cap:
            self._pair_cache[id(awake)] = (awake, pairs)
        return pairs

    def propose_batch(self, t: int, awake: np.ndarray, view: SimView) -> TxBatch:
        self._last_contenders = {}
        s_flat, r_flat, prr_flat = self._pairs_for(awake)
        if s_flat.size == 0:
            return TxBatch.empty()

        # What each candidate sender can offer its candidate receiver.
        needs = self._belief.needs_pairs(s_flat, r_flat)
        heads, valid = view.fcfs_heads_batch(s_flat, needs)

        # A node at its own active slot with an incomplete buffer stays
        # in RX mode (see FlashFlooding.propose — the same rule prevents
        # schedule-aligned neighbor pairs from starving each other).
        listen = self._listen_mask
        active = awake[awake != SOURCE]
        listen[active] = view.held_counts(active) < view.n_packets
        eligible = valid & ~listen[s_flat]
        listen[active] = False
        if not eligible.any():
            return TxBatch.empty()

        s_e = s_flat[eligible]
        r_e = r_flat[eligible]
        prr_e = prr_flat[eligible]
        h_e = heads[eligible]

        # A sender with multiple waking neighbors in need picks the one
        # it has the best link to, equal links tie-breaking to the
        # smaller receiver id: sort by (sender, -prr, receiver) and keep
        # each sender's first row.
        order = np.lexsort((r_e, -prr_e, s_e))
        s_sorted = s_e[order]
        first = np.ones(s_sorted.size, dtype=bool)
        first[1:] = s_sorted[1:] != s_sorted[:-1]
        pick = order[first]
        chosen_s = s_e[pick]  # ascending sender id by construction
        chosen_r = r_e[pick]
        chosen_p = h_e[pick]
        chosen_prr = prr_e[pick]

        # Deterministic back-off rank: best link first, id tie-break.
        rank = np.lexsort((chosen_s, -chosen_prr))
        winners, _ = csma_select(chosen_s[rank].tolist(), self._topo)
        w = np.asarray(winners, dtype=np.int64)
        idx = np.searchsorted(chosen_s, w)

        if self.overhearing:
            # Every contender that chose receiver r is awake, within range
            # of r (it wanted to transmit to r), and hears r's link-layer
            # ACK — winner or not. They all learn from a success.
            for s, r in zip(chosen_s.tolist(), chosen_r.tolist()):
                self._last_contenders.setdefault(r, []).append(s)
        return TxBatch(w, chosen_r[idx], chosen_p[idx])

    def observe(self, t, outcome, view):
        # Transmitting senders always learn from their own ACK, which
        # piggybacks the receiver's possession summary; deferring group
        # members pick the same ACK up by overhearing (when enabled).
        for rec in outcome.receptions:
            if rec.overheard:
                # The overhearing third party now *holds* the packet (the
                # engine recorded that): its own belief tables need no
                # update — beliefs are about neighbors.
                continue
            held = view.held_packets(rec.receiver)
            audience = (
                self._last_contenders.get(rec.receiver)
                if self.overhearing else None
            )
            if audience:
                # The winner contended for this receiver, so it is part
                # of the audience: one witness broadcast covers its own
                # ACK learning too, saving a separate sync per reception.
                self._belief.sync_for_witnesses(audience, rec.receiver, held)
            else:
                self._belief.sync_possession(rec.sender, rec.receiver, held)
