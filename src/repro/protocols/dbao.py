"""DBAO: Deterministic Back-off Assignment + Overhearing (paper Sec. V-A).

DBAO is the authors' WASA'11 protocol, used in the paper as the best
*practical* approximation of OPT. Two mechanisms:

* **Deterministic back-off assignment.** Each sensor maintains a
  *forwarder subset* of its neighbors in which every member can hear
  every other (a mutually-audible clique, built greedily best-link
  first); only subset members forward to it. Because the subset is a
  clique, carrier sense fully serializes its contention: back-off ranks
  are assigned deterministically — best link quality to the intended
  receiver first, node id as tie-break — and only the rank-0 sender
  transmits while the rest defer silently. Collisions therefore only
  arise between senders serving *different* receivers that happen to
  interfere (cross-receiver hidden terminals), which is exactly the
  residual gap to OPT the paper points out in Fig. 10.

* **Overhearing.** Deferring group members stay awake through the slot,
  hear the winner's frame and the receiver's ACK, and record the
  confirmed reception in their coverage beliefs — suppressing their own
  now-redundant retransmissions of the same packet.

Senders have no oracle: they target packets their *beliefs* say the
receiver lacks, so early transmissions can be redundant; the belief
update rules only record confirmed receptions, keeping beliefs sound
(never wrongly marking a packet as delivered).

``overhearing=False`` ablates the second mechanism (bench
``abl-overhearing``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..net.radio import Transmission, csma_select
from ..net.topology import SOURCE
from ._belief import NeighborBelief
from .base import FloodingProtocol, SimView, register_protocol

__all__ = ["Dbao", "forwarder_clique"]


def forwarder_clique(topo, receiver: int, anchor: int = -1) -> List[int]:
    """The receiver's forwarder subset: a greedy mutually-audible clique.

    In-neighbors are considered best-link-first; a candidate joins only
    if it can hear (or be heard by) every member already in the clique.
    The result is the paper's "subset of neighbors in which those
    neighbors can hear each other": contention inside it is fully
    serialized by carrier sense.

    ``anchor`` (if >= 0) is seeded into the clique before the greedy pass.
    DBAO anchors each receiver's ETX-tree parent so the clique-edge
    subgraph provably keeps every node reachable from the source — an
    arbitrary clique could otherwise cut a node's only upstream path.
    """
    audible = lambda a, b: topo.has_link(a, b) or topo.has_link(b, a)
    nbs = topo.in_neighbors(receiver)
    order = sorted(nbs.tolist(), key=lambda s: (-topo.link_prr(s, receiver), s))
    clique: List[int] = []
    if anchor >= 0:
        if anchor not in order:
            raise ValueError(
                f"anchor {anchor} is not an in-neighbor of {receiver}"
            )
        clique.append(anchor)
    for s in order:
        if s not in clique and all(audible(s, member) for member in clique):
            clique.append(s)
    return clique


@register_protocol
class Dbao(FloodingProtocol):
    """Deterministic back-off + overhearing flooding."""

    name = "dbao"

    def __init__(self, overhearing: bool = True):
        self.overhearing = bool(overhearing)
        self.init_kwargs = {"overhearing": self.overhearing}
        self._belief: NeighborBelief = None  # type: ignore[assignment]
        self._topo = None
        self._forwarders: List[List[int]] = []
        #: Senders that contended (won or deferred) in the last slot, per
        #: receiver — the overhearing audience for that receiver's ACK.
        self._last_contenders: Dict[int, List[int]] = {}

    def prepare(self, topo, schedules, workload, rng):
        from .tree import build_etx_tree

        self._topo = topo
        self._belief = NeighborBelief(topo, workload.n_packets)
        self._last_contenders = {}
        tree = build_etx_tree(topo, schedules.period)
        self._forwarders = [
            forwarder_clique(topo, r, anchor=int(tree.parent[r]))
            for r in range(topo.n_nodes)
        ]

    # ------------------------------------------------------------------

    def _sender_choices(
        self, awake: np.ndarray, view: SimView
    ) -> Dict[int, Tuple[int, int, float]]:
        """Each potential sender's best (receiver, packet, prr) this slot.

        A sender with multiple waking neighbors in need picks the one it
        has the best link to — the deterministic choice every node can
        compute locally from its schedule table and beliefs.
        """
        topo = self._topo
        choices: Dict[int, Tuple[int, int, float]] = {}
        # A node at its own active slot with an incomplete buffer stays in
        # RX mode (see FlashFlooding.propose — the same rule prevents
        # schedule-aligned neighbor pairs from starving each other).
        listening = {
            int(v) for v in awake.tolist()
            if v != SOURCE and view.held_packets(int(v)).size < view.n_packets
        }
        for r in awake.tolist():
            if r == SOURCE:
                continue
            forwarders = self._forwarders[r]
            if not forwarders:
                continue
            needs = self._belief.needs_matrix(r, forwarders)
            heads, valid = view.fcfs_heads_batch(
                np.asarray(forwarders), needs
            )
            for i, s in enumerate(forwarders):
                if not valid[i] or s in listening:
                    continue
                prr = topo.link_prr(s, r)
                prev = choices.get(s)
                if prev is None or prr > prev[2] or (prr == prev[2] and r < prev[0]):
                    choices[s] = (r, int(heads[i]), prr)
        return choices

    def propose(self, t: int, awake: np.ndarray, view: SimView) -> List[Transmission]:
        choices = self._sender_choices(awake, view)
        self._last_contenders = {}
        if not choices:
            return []

        # Deterministic back-off rank: best link first, id tie-break.
        ranked = sorted(choices, key=lambda s: (-choices[s][2], s))
        winners, _ = csma_select(ranked, self._topo)
        txs: List[Transmission] = []
        for winner in winners:
            r, pkt, _ = choices[winner]
            txs.append(Transmission(sender=winner, receiver=r, packet=pkt))
        if self.overhearing:
            # Every contender that chose receiver r is awake, within range
            # of r (it wanted to transmit to r), and hears r's link-layer
            # ACK — winner or not. They all learn from a success.
            for s, (r, _, _) in choices.items():
                self._last_contenders.setdefault(r, []).append(s)
        return txs

    def observe(self, t, outcome, view):
        # Transmitting senders always learn from their own ACK, which
        # piggybacks the receiver's possession summary; deferring group
        # members pick the same ACK up by overhearing (when enabled).
        for rec in outcome.receptions:
            if rec.overheard:
                # The overhearing third party now *holds* the packet (the
                # engine recorded that); its own belief tables need no
                # update — beliefs are about neighbors.
                continue
            held = view.held_packets(rec.receiver)
            self._belief.sync_possession(rec.sender, rec.receiver, held)
            if self.overhearing:
                audience = self._last_contenders.get(rec.receiver, ())
                self._belief.sync_for_witnesses(audience, rec.receiver, held)
