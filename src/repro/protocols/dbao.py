"""DBAO: Deterministic Back-off Assignment + Overhearing (paper Sec. V-A).

DBAO is the authors' WASA'11 protocol, used in the paper as the best
*practical* approximation of OPT. Two mechanisms:

* **Deterministic back-off assignment.** Each sensor maintains a
  *forwarder subset* of its neighbors in which every member can hear
  every other (a mutually-audible clique, built greedily best-link
  first); only subset members forward to it. Because the subset is a
  clique, carrier sense fully serializes its contention: back-off ranks
  are assigned deterministically — best link quality to the intended
  receiver first, node id as tie-break — and only the rank-0 sender
  transmits while the rest defer silently. Collisions therefore only
  arise between senders serving *different* receivers that happen to
  interfere (cross-receiver hidden terminals), which is exactly the
  residual gap to OPT the paper points out in Fig. 10.

* **Overhearing.** Deferring group members stay awake through the slot,
  hear the winner's frame and the receiver's ACK, and record the
  confirmed reception in their coverage beliefs — suppressing their own
  now-redundant retransmissions of the same packet.

Senders have no oracle: they target packets their *beliefs* say the
receiver lacks, so early transmissions can be redundant; the belief
update rules only record confirmed receptions, keeping beliefs sound
(never wrongly marking a packet as delivered).

``overhearing=False`` ablates the second mechanism (bench
``abl-overhearing``).

The proposal path is fully batched: the per-slot candidate set is the
concatenation of every waking receiver's forwarder clique, flattened to
parallel (sender, receiver, prr) arrays that depend only on the wake set
and are therefore cached per schedule phase. Belief lookups, FCFS heads,
the per-sender best-receiver choice, and the back-off ranking all run as
single NumPy passes over those arrays; the scalar rules they replace are
documented inline where each vectorized step must match them bit-exactly.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..net.radio import TxBatch, csma_select, csma_select_reps
from ..net.topology import SOURCE
from ._belief import NeighborBelief, RepNeighborBelief
from .base import (
    FloodingProtocol,
    RepSimView,
    SimView,
    earliest_wake,
    phase_cache_period,
    register_protocol,
)

__all__ = ["Dbao", "forwarder_clique"]


def forwarder_clique(topo, receiver: int, anchor: int = -1) -> List[int]:
    """The receiver's forwarder subset: a greedy mutually-audible clique.

    In-neighbors are considered best-link-first; a candidate joins only
    if it can hear (or be heard by) every member already in the clique.
    The result is the paper's "subset of neighbors in which those
    neighbors can hear each other": contention inside it is fully
    serialized by carrier sense.

    ``anchor`` (if >= 0) is seeded into the clique before the greedy pass.
    DBAO anchors each receiver's ETX-tree parent so the clique-edge
    subgraph provably keeps every node reachable from the source — an
    arbitrary clique could otherwise cut a node's only upstream path.
    """
    audible = lambda a, b: topo.has_link(a, b) or topo.has_link(b, a)
    nbs = topo.in_neighbors(receiver)
    order = sorted(nbs.tolist(), key=lambda s: (-topo.link_prr(s, receiver), s))
    clique: List[int] = []
    if anchor >= 0:
        if anchor not in order:
            raise ValueError(
                f"anchor {anchor} is not an in-neighbor of {receiver}"
            )
        clique.append(anchor)
    for s in order:
        if s not in clique and all(audible(s, member) for member in clique):
            clique.append(s)
    return clique


@register_protocol
class Dbao(FloodingProtocol):
    """Deterministic back-off + overhearing flooding."""

    name = "dbao"

    def __init__(self, overhearing: bool = True):
        self.overhearing = bool(overhearing)
        self.init_kwargs = {"overhearing": self.overhearing}
        self._belief: NeighborBelief = None  # type: ignore[assignment]
        self._topo = None
        self._forwarders: List[List[int]] = []
        #: Senders that contended (won or deferred) in the last slot, per
        #: receiver — the overhearing audience for that receiver's ACK.
        self._last_contenders: Dict[int, List[int]] = {}

    def prepare(self, topo, schedules, workload, rng):
        from .tree import build_etx_tree

        self._topo = topo
        self._belief = NeighborBelief(topo, workload.n_packets)
        self._last_contenders = {}
        tree = build_etx_tree(topo, schedules.period)
        self._forwarders = [
            forwarder_clique(topo, r, anchor=int(tree.parent[r]))
            for r in range(topo.n_nodes)
        ]
        # Flat per-receiver candidate arrays for the batched proposal:
        # clique members (in clique order) and their link PRRs.
        self._fwd_arrays = [
            np.asarray(f, dtype=np.int64) for f in self._forwarders
        ]
        self._fwd_prr = [
            topo.prr[f, r] for r, f in enumerate(self._fwd_arrays)
        ]
        # The candidate pair set depends only on the wake set; wake
        # arrays repeat identically (same objects) each schedule period,
        # so cache the flattened pairs keyed by wake-array identity. The
        # cap bounds memory when a schedule model returns fresh arrays
        # every slot (e.g. clock skew) — those simply never hit.
        self._pair_cache: Dict[int, Tuple] = {}
        self._pair_cache_cap = int(schedules.period)
        self._listen_mask = np.zeros(topo.n_nodes, dtype=bool)
        self._schedules = schedules
        # Quiescence frontier: every (clique member, receiver) pair of
        # the whole network, flattened once — next_action_slot scans them
        # in one batched belief query.
        s_parts = []
        r_parts = []
        for r, fwd in enumerate(self._fwd_arrays):
            if r == SOURCE or fwd.size == 0:
                continue
            s_parts.append(fwd)
            r_parts.append(np.full(fwd.size, r, dtype=np.int64))
        if s_parts:
            self._frontier_s = np.concatenate(s_parts)
            self._frontier_r = np.concatenate(r_parts)
        else:
            self._frontier_s = np.empty(0, dtype=np.int64)
            self._frontier_r = np.empty(0, dtype=np.int64)
        self._nas_version = -1
        self._nas_receivers = None

    def next_action_slot(self, t, awake, view):
        # A receiver is actionable when some clique member holds a packet
        # it believes that receiver lacks — the same offer condition the
        # proposal's needs/FCFS pass enforces, minus the per-slot listen
        # rule and back-off (which only shrink a slot's batch, keeping
        # this bound conservative). DBAO's back-off carries no cross-slot
        # phase state — ranks are recomputed each slot — so schedule
        # progression alone decides when the frontier can next transmit.
        #
        # Offers depend only on possession and belief, both versioned by
        # the engine, so consecutive probes between state changes (the
        # common case on dense floods, where every non-traffic slot asks
        # again) reuse the cached offering receivers and pay only the
        # earliest-wake scan.
        version = getattr(view, "state_version", None)
        if version is not None and version == self._nas_version:
            receivers = self._nas_receivers
        else:
            offers = self._belief.offer_pairs(
                self._frontier_s, self._frontier_r,
                view.possession_by_holder(),
            )
            receivers = self._frontier_r[offers]
            if version is not None:
                self._nas_version = version
                self._nas_receivers = receivers
        return earliest_wake(self._schedules, t, receivers)

    # ------------------------------------------------------------------

    def _pairs_for(self, awake: np.ndarray):
        """Flattened (senders, receivers, prrs) candidate pairs for a wake set."""
        hit = self._pair_cache.get(id(awake))
        if hit is not None and hit[0] is awake:
            return hit[1]
        s_parts: List[np.ndarray] = []
        r_parts: List[np.ndarray] = []
        p_parts: List[np.ndarray] = []
        for r in awake.tolist():
            fwd = self._fwd_arrays[r]
            if r == SOURCE or fwd.size == 0:
                continue
            s_parts.append(fwd)
            r_parts.append(np.full(fwd.size, r, dtype=np.int64))
            p_parts.append(self._fwd_prr[r])
        if s_parts:
            pairs = (
                np.concatenate(s_parts),
                np.concatenate(r_parts),
                np.concatenate(p_parts),
            )
        else:
            empty = np.empty(0, dtype=np.int64)
            pairs = (empty, empty, np.empty(0, dtype=np.float64))
        if len(self._pair_cache) < self._pair_cache_cap:
            self._pair_cache[id(awake)] = (awake, pairs)
        return pairs

    def propose_batch(self, t: int, awake: np.ndarray, view: SimView) -> TxBatch:
        self._last_contenders = {}
        s_flat, r_flat, prr_flat = self._pairs_for(awake)
        if s_flat.size == 0:
            return TxBatch.empty()

        # What each candidate sender can offer its candidate receiver.
        needs = self._belief.needs_pairs(s_flat, r_flat)
        heads, valid = view.fcfs_heads_batch(s_flat, needs)

        # A node at its own active slot with an incomplete buffer stays
        # in RX mode (see FlashFlooding.propose — the same rule prevents
        # schedule-aligned neighbor pairs from starving each other).
        listen = self._listen_mask
        active = awake[awake != SOURCE]
        listen[active] = view.held_counts(active) < view.n_packets
        eligible = valid & ~listen[s_flat]
        listen[active] = False
        if not eligible.any():
            return TxBatch.empty()

        s_e = s_flat[eligible]
        r_e = r_flat[eligible]
        prr_e = prr_flat[eligible]
        h_e = heads[eligible]

        # A sender with multiple waking neighbors in need picks the one
        # it has the best link to, equal links tie-breaking to the
        # smaller receiver id: sort by (sender, -prr, receiver) and keep
        # each sender's first row.
        order = np.lexsort((r_e, -prr_e, s_e))
        s_sorted = s_e[order]
        first = np.ones(s_sorted.size, dtype=bool)
        first[1:] = s_sorted[1:] != s_sorted[:-1]
        pick = order[first]
        chosen_s = s_e[pick]  # ascending sender id by construction
        chosen_r = r_e[pick]
        chosen_p = h_e[pick]
        chosen_prr = prr_e[pick]

        # Deterministic back-off rank: best link first, id tie-break.
        rank = np.lexsort((chosen_s, -chosen_prr))
        winners, _ = csma_select(chosen_s[rank].tolist(), self._topo)
        w = np.asarray(winners, dtype=np.int64)
        idx = np.searchsorted(chosen_s, w)

        if self.overhearing:
            # Every contender that chose receiver r is awake, within range
            # of r (it wanted to transmit to r), and hears r's link-layer
            # ACK — winner or not. They all learn from a success.
            for s, r in zip(chosen_s.tolist(), chosen_r.tolist()):
                self._last_contenders.setdefault(r, []).append(s)
        return TxBatch(w, chosen_r[idx], chosen_p[idx])

    def observe(self, t, outcome, view):
        # Transmitting senders always learn from their own ACK, which
        # piggybacks the receiver's possession summary; deferring group
        # members pick the same ACK up by overhearing (when enabled).
        for rec in outcome.receptions:
            if rec.overheard:
                # The overhearing third party now *holds* the packet (the
                # engine recorded that): its own belief tables need no
                # update — beliefs are about neighbors.
                continue
            held = view.held_packets(rec.receiver)
            audience = (
                self._last_contenders.get(rec.receiver)
                if self.overhearing else None
            )
            if audience:
                # The winner contended for this receiver, so it is part
                # of the audience: one witness broadcast covers its own
                # ACK learning too, saving a separate sync per reception.
                self._belief.sync_for_witnesses(audience, rec.receiver, held)
            else:
                self._belief.sync_possession(rec.sender, rec.receiver, held)

    # -- Replication-batched path ---------------------------------------
    #
    # DBAO's proposal is already array-shaped per replication; the batch
    # form simply prepends a replication column to the flat pair arrays
    # and keys every per-sender/per-group reduction by (replication,
    # sender). Belief state moves into a 4-D RepNeighborBelief; the CSMA
    # back-off walk runs once over all replications' ranked candidates
    # (csma_select_reps) and the observe-time belief syncs collapse into
    # one batched update per slot.

    def rep_batchable(self) -> bool:
        return True

    def prepare_reps(self, topo, schedules_list, workload, rngs):
        # Serial prepare consumes no randomness, and the ETX anchors it
        # derives are period-independent, so one clique build serves
        # replications with heterogeneous periods too.
        self.prepare(topo, schedules_list[0], workload, rngs[0])
        self._rep_belief = RepNeighborBelief(
            topo, workload.n_packets, len(schedules_list)
        )
        self._rep_schedules = list(schedules_list)
        self._rep_cache_period = phase_cache_period(schedules_list)
        self._rep_phase_cache: Dict[int, Tuple] = {}
        # Static forwarder cliques flattened once: per-phase row builds
        # gather ranges out of these instead of concatenating hundreds
        # of per-receiver arrays.
        self._fwd_sizes = np.fromiter(
            (f.size for f in self._fwd_arrays), np.int64,
            count=len(self._fwd_arrays),
        )
        self._fwd_starts = np.concatenate(
            ([0], np.cumsum(self._fwd_sizes))
        )
        self._fwd_flat = np.concatenate(self._fwd_arrays)
        self._fwd_prr_flat = np.concatenate(self._fwd_prr)
        self._contender_k = None
        self._contender_s = None
        self._contender_r = None
        self._off_frontier = None
        self._nas_vers_reps = None
        self._nas_offers_reps = None

    def _phase_rows(self, t: int):
        """All-replication candidate rows for one slot's schedule phase.

        Wake sets repeat every period per replication, so the flat
        (replication, sender, receiver, prr, sender-awake) concatenation
        across *all* replications is periodic with the LCM of the
        per-replication periods — built once per LCM phase and reused
        for the rest of the run (uncached when the LCM is unreasonable).
        """
        ck = t % self._rep_cache_period if self._rep_cache_period else None
        if ck is not None:
            hit = self._rep_phase_cache.get(ck)
            if hit is not None:
                return hit
        kk_parts: List[np.ndarray] = []
        s_parts: List[np.ndarray] = []
        r_parts: List[np.ndarray] = []
        p_parts: List[np.ndarray] = []
        aw_parts: List[np.ndarray] = []
        awake_mask = np.zeros(self._topo.n_nodes, dtype=bool)
        for k, sched in enumerate(self._rep_schedules):
            aw = sched.awake_at(t)
            if aw.size == 0:
                continue
            awake_mask[aw] = True
            recv = aw[aw != SOURCE]
            sz = self._fwd_sizes[recv]
            total = int(sz.sum())
            if total:
                seg = np.concatenate(([0], np.cumsum(sz)[:-1]))
                idx = (np.repeat(self._fwd_starts[recv] - seg, sz)
                       + np.arange(total))
                s_part = self._fwd_flat[idx]
                kk_parts.append(np.full(total, k, dtype=np.int64))
                s_parts.append(s_part)
                r_parts.append(np.repeat(recv, sz))
                p_parts.append(self._fwd_prr_flat[idx])
                aw_parts.append(awake_mask[s_part])
            awake_mask[aw] = False
        if kk_parts:
            kk = np.concatenate(kk_parts)
            s_flat = np.concatenate(s_parts)
            r_flat = np.concatenate(r_parts)
            prr_flat = np.concatenate(p_parts)
            sender_awake = np.concatenate(aw_parts)
            # Unique (replication, sender) pairs with a row inverse: the
            # hold-something / listen gate is per pair, so propose_reps
            # evaluates it on the (much smaller) pair set and broadcasts.
            key = kk * self._topo.n_nodes + s_flat
            _, first_idx, inv = np.unique(
                key, return_index=True, return_inverse=True)
            # Rows stored pre-sorted by (rep, sender, best-prr,
            # receiver): any row subset keeps this order under a boolean
            # gather, so the per-slot receiver pick needs no lexsort and
            # no index-array gathers — just masks over these arrays.
            srows = np.lexsort((r_flat, -prr_flat, s_flat, kk))
            # Belief columns are static per (sender, receiver) pair, so
            # the per-slot packed-word scan skips the pair-map lookup.
            col_flat = self._rep_belief._pair_col[s_flat, r_flat]
            if np.any(col_flat < 0):
                bad = int(np.flatnonzero(col_flat < 0)[0])
                raise KeyError(
                    f"node {int(r_flat[bad])} is not an out-neighbor of "
                    f"{int(s_flat[bad])}"
                )
            # The listen rule's static part: a waking non-source sender
            # is silenced iff its buffer is incomplete.
            u_listen = sender_awake[first_idx] & (s_flat[first_idx] != SOURCE)
            k_srt, s_srt, col_srt = kk[srows], s_flat[srows], col_flat[srows]
            # Flattened gather indices (static per phase): per-slot word
            # lookups become single `take` calls instead of multi-array
            # advanced indexing.
            n_nodes = self._topo.n_nodes
            if self._rep_belief._packed is not None:
                max_deg = self._rep_belief._packed.shape[2]
                bel_idx = (k_srt * n_nodes + s_srt) * max_deg + col_srt
            else:
                bel_idx = np.empty(0, dtype=np.int64)
            u_idx = kk[first_idx] * n_nodes + s_flat[first_idx]
            rows = (
                k_srt, s_srt, r_flat[srows], prr_flat[srows],
                col_srt, kk[first_idx], s_flat[first_idx],
                u_listen, inv[srows], bel_idx, u_idx,
            )
        else:
            empty = np.empty(0, dtype=np.int64)
            rows = (empty, empty, empty, np.empty(0, dtype=np.float64),
                    empty, empty, empty, np.empty(0, dtype=bool), empty,
                    empty, empty)
        if ck is not None:
            self._rep_phase_cache[ck] = rows
        return rows

    def propose_reps(self, t, rep_ids, awake_by_rep, view: RepSimView):
        empty = np.empty(0, dtype=np.int64)
        self._contender_k = self._contender_s = self._contender_r = None

        (k_srt, s_srt, r_srt, prr_srt, col_srt,
         u_k, u_s, u_listen, inv_srt, bel_idx, u_idx) = self._phase_rows(t)
        if k_srt.size == 0:
            return empty, empty, empty, empty

        belief = self._rep_belief
        arena = view.get_arena()
        if belief._packed is not None and view.has_packed is not None:
            # One fused gate: the pair-level possession word answers both
            # the listen rule (incomplete buffer != full word) and —
            # combined with the per-row belief word — row validity (the
            # sender holds a bit the row's belief lacks, which subsumes
            # "holds at least one packet"). The survivors are then
            # compressed once via flatnonzero + take into borrowed
            # scratch, and the FCFS argmin only runs on winner rows.
            U = u_idx.size
            hw_u = view.has_packed.take(
                u_idx, out=arena.buf("dbao.hw_u", U, np.uint64))
            elig_u = arena.buf("dbao.elig_u", U, np.bool_)
            np.not_equal(hw_u, belief._full_word, out=elig_u)
            elig_u &= u_listen
            np.invert(elig_u, out=elig_u)
            if rep_ids.size < len(self._rep_schedules):
                active = np.zeros(len(self._rep_schedules), dtype=bool)
                active[rep_ids] = True
                elig_u &= active[u_k]
            T = inv_srt.size
            bel_w = belief._packed.take(
                bel_idx, out=arena.buf("dbao.bel_w", T, np.uint64))
            np.invert(bel_w, out=bel_w)
            cand_w = hw_u.take(
                inv_srt, out=arena.buf("dbao.cand_w", T, np.uint64))
            cand_w &= bel_w
            keep = elig_u.take(
                inv_srt, out=arena.buf("dbao.keep", T, np.bool_))
            keep &= cand_w != 0
            sel = np.flatnonzero(keep)
            if sel.size == 0:
                return empty, empty, empty, empty
            E = sel.size
            k_e = k_srt.take(sel, out=arena.buf("dbao.k_e", E, np.int64))
            s_e = s_srt.take(sel, out=arena.buf("dbao.s_e", E, np.int64))

            # Per-sender best receiver = first remaining row per
            # (replication, sender); boundaries via the fused pair key.
            pk = arena.buf("dbao.pk", E, np.int64)
            np.multiply(k_e, self._topo.n_nodes, out=pk)
            pk += s_e
            first = arena.buf("dbao.first", E, np.bool_)
            first[0] = True
            np.not_equal(pk[1:], pk[:-1], out=first[1:])
            fsel = sel[first]
            chosen_k = k_srt.take(fsel)  # ascending (rep, sender)
            chosen_s = s_srt.take(fsel)
            chosen_r = r_srt.take(fsel)
            chosen_prr = prr_srt.take(fsel)
            cand = (
                cand_w.take(fsel)[:, None] & belief._pow2[None, :]
            ) != 0
            chosen_p = view.fcfs_heads_masked(chosen_k, chosen_s, cand)
        else:
            # Pair-level gate, evaluated once per unique (replication,
            # sender): a sender must hold at least one packet (else no
            # row of it can validate), and the listen rule silences a
            # waking non-source node with an incomplete buffer.
            counts_u = view.held_counts_pairs(u_k, u_s)
            elig_u = (counts_u > 0) & ~(
                u_listen & (counts_u < view.n_packets)
            )
            if rep_ids.size < len(self._rep_schedules):
                active = np.zeros(len(self._rep_schedules), dtype=bool)
                active[rep_ids] = True
                elig_u &= active[u_k]
            if not elig_u.any():
                return empty, empty, empty, empty

            # Surviving rows, already in (rep, sender, best-prr,
            # receiver) order from the phase-level sort.
            m = elig_u[inv_srt]
            k_e = k_srt[m]
            s_e = s_srt[m]
            r_e = r_srt[m]
            prr_e = prr_srt[m]

            needs = belief.needs_pairs(k_e, s_e, r_e)
            heads, valid = view.fcfs_heads_pairs(k_e, s_e, needs)
            if not valid.any():
                return empty, empty, empty, empty
            k_e = k_e[valid]
            s_e = s_e[valid]
            r_e = r_e[valid]
            prr_e = prr_e[valid]
            h_e = heads[valid]

            first = np.ones(s_e.size, dtype=bool)
            first[1:] = (s_e[1:] != s_e[:-1]) | (k_e[1:] != k_e[:-1])
            chosen_k = k_e[first]
            chosen_s = s_e[first]
            chosen_r = r_e[first]
            chosen_p = h_e[first]
            chosen_prr = prr_e[first]

        if self.overhearing:
            # Every contender that chose receiver r hears r's link-layer
            # ACK, winner or not; observe_reps joins these against the
            # slot's receptions in one batched sync.
            self._contender_k = chosen_k
            self._contender_s = chosen_s
            self._contender_r = chosen_r

        # Back-off rank within each replication, then one CSMA walk over
        # all replications' ranked candidates. Winner rows come back in
        # (replication, rank) order — the serial emission order.
        rank = np.lexsort((chosen_s, -chosen_prr, chosen_k))
        win = csma_select_reps(
            np.searchsorted(rep_ids, chosen_k[rank]), chosen_s[rank],
            self._topo, arena=arena,
        )
        rows = rank[win]
        if rows.size == 0:
            return empty, empty, empty, empty
        return chosen_k[rows], chosen_s[rows], chosen_r[rows], chosen_p[rows]

    def observe_reps(self, t, outcome, view: RepSimView):
        sel = ~outcome.rec_overheard
        if not sel.any():
            return
        rep_f = outcome.rec_rep[sel]
        recv_f = outcome.rec_receiver[sel]
        send_f = outcome.rec_sender[sel]
        n = view.n_nodes

        if self.overhearing and self._contender_k is not None:
            # Witnesses: every contender whose chosen receiver got a
            # non-overheard reception this slot. At most one such
            # reception per (replication, receiver), so the keys join
            # without ambiguity.
            ckey = self._contender_k * n + self._contender_r
            rkey = rep_f * n + recv_f
            rkey_sorted = np.sort(rkey)
            pos = np.searchsorted(rkey_sorted, ckey)
            pos_c = np.minimum(pos, rkey_sorted.size - 1)
            match = rkey_sorted[pos_c] == ckey
            wk = self._contender_k[match]
            w_obs = self._contender_s[match]
            w_recv = self._contender_r[match]
            # Receivers no contender chose (the winner always contends,
            # so this is defensive parity with the serial path): the
            # sender alone absorbs the summary.
            ckey_sorted = np.sort(ckey)
            rpos = np.searchsorted(ckey_sorted, rkey)
            rpos_c = np.minimum(rpos, ckey_sorted.size - 1)
            lone = ckey_sorted[rpos_c] != rkey
            if lone.any():
                wk = np.concatenate([wk, rep_f[lone]])
                w_obs = np.concatenate([w_obs, send_f[lone]])
                w_recv = np.concatenate([w_recv, recv_f[lone]])
        else:
            wk, w_obs, w_recv = rep_f, send_f, recv_f

        if (self._rep_belief._packed is not None
                and view.has_packed is not None):
            self._rep_belief.sync_pairs_words(
                wk, w_obs, w_recv, view.has_packed[wk, w_recv]
            )
        else:
            self._rep_belief.sync_pairs(
                wk, w_obs, w_recv, view.has_stack[wk, :, w_recv]
            )

    def next_action_slots(self, t, rep_ids, view: RepSimView):
        if self._off_frontier is None:
            self._off_frontier = view.offsets_stack[:, self._frontier_r]
        # Per-replication offer rows are cached keyed on the engine's
        # state-version counters: a replication that keeps probing
        # between state changes (slot-stepping through a quiet stretch)
        # recomputes nothing but the earliest-wake reduction.
        if self._nas_offers_reps is None:
            n_reps = view.n_reps
            self._nas_offers_reps = np.zeros(
                (n_reps, self._frontier_r.size), dtype=bool)
            self._nas_vers_reps = np.full(n_reps, -1, dtype=np.int64)
        stale = rep_ids[
            self._nas_vers_reps[rep_ids] != view.state_version[rep_ids]]
        if stale.size:
            self._nas_offers_reps[stale] = self._rep_belief.offer_pairs_reps(
                stale, self._frontier_s, self._frontier_r, view.has_stack,
                view.has_packed,
            )
            self._nas_vers_reps[stale] = view.state_version[stale]
        offers = self._nas_offers_reps[rep_ids]
        return view.earliest_wakes(
            t, rep_ids, self._frontier_r, offers, self._off_frontier
        )
