"""Energy-optimal (ETX) tree construction and per-node delay distributions.

Opportunistic Flooding (ref [11]) forwards packets along an *energy-
optimal tree* — the shortest-path tree under the expected-transmission-
count (ETX) metric — and makes opportunistic (non-tree) forwarding
decisions against the **delay distribution** each node would see over the
tree. This module builds both:

* :func:`build_etx_tree` — Dijkstra over directed ETX weights from the
  source;
* per-hop delay moments under duty cycling: a link with PRR ``q`` and
  period ``T`` needs a geometric number of attempts, each costing one
  period of sleep latency, so

    ``E[hop]   = T / q``          (first attempt's wait folded in)
    ``Var[hop] = T^2 (1 - q) / q^2``

* :meth:`EtxTree.delay_quantile` — Normal-approximation quantiles of the
  path-summed delay, which is the threshold OF's sender-side decision
  tests against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np
from scipy.stats import norm

from ..net.topology import SOURCE, Topology

__all__ = ["EtxTree", "build_etx_tree", "hop_delay_moments"]


def hop_delay_moments(prr: float, period: int) -> tuple:
    """(mean, variance) of one duty-cycled lossy hop's delay in slots.

    The number of attempts is Geometric(q) (support 1, 2, ...); attempts
    are spaced one period apart, so delay ~ ``T * Geometric(q)`` up to the
    sub-period phase offset (uniform, bounded by ``T``, folded into the
    mean via the ``T/q`` form).
    """
    if not (0.0 < prr <= 1.0):
        raise ValueError(f"PRR must be in (0, 1], got {prr}")
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    mean = period / prr
    var = period**2 * (1.0 - prr) / prr**2
    return mean, var


@dataclass
class EtxTree:
    """The OF substrate: parents, children, ETX costs, delay moments.

    Attributes
    ----------
    parent:
        ``parent[v]`` is v's tree parent (``-1`` for the source and for
        unreachable nodes).
    etx_cost:
        Path ETX from the source (``inf`` if unreachable).
    delay_mean, delay_var:
        Moments of the tree-path delay from the source, in slots.
    """

    parent: np.ndarray
    etx_cost: np.ndarray
    delay_mean: np.ndarray
    delay_var: np.ndarray

    def __post_init__(self):
        n = self.parent.size
        for name in ("etx_cost", "delay_mean", "delay_var"):
            if getattr(self, name).shape != (n,):
                raise ValueError(f"{name} must have shape ({n},)")
        self._children: Optional[List[np.ndarray]] = None

    @property
    def n_nodes(self) -> int:
        return int(self.parent.size)

    def children(self, node: int) -> np.ndarray:
        """Tree children of ``node`` (ascending ids, cached)."""
        if self._children is None:
            kids: List[List[int]] = [[] for _ in range(self.n_nodes)]
            for v, p in enumerate(self.parent.tolist()):
                if p >= 0:
                    kids[p].append(v)
            self._children = [np.asarray(k, dtype=np.int64) for k in kids]
        return self._children[node]

    def is_tree_edge(self, sender: int, receiver: int) -> bool:
        return int(self.parent[receiver]) == sender

    def reachable(self, node: int) -> bool:
        return node == SOURCE or int(self.parent[node]) >= 0

    def depth(self, node: int) -> int:
        """Hop depth in the tree (-1 for unreachable nodes)."""
        if not self.reachable(node):
            return -1
        d, v = 0, node
        while v != SOURCE:
            v = int(self.parent[v])
            d += 1
            if d > self.n_nodes:  # pragma: no cover - defended by Dijkstra
                raise RuntimeError("parent pointers contain a cycle")
        return d

    def delay_quantile(self, node: int, q: float) -> float:
        """q-quantile of the node's tree delay (Normal approximation).

        OF's forwarding rule: an opportunistic copy is worth sending only
        if it beats this quantile — otherwise the tree will deliver the
        packet about as fast anyway.
        """
        if not (0.0 < q < 1.0):
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        if not self.reachable(node):
            return math.inf
        z = float(norm.ppf(q))
        return float(self.delay_mean[node] + z * math.sqrt(self.delay_var[node]))


def build_etx_tree(topo: Topology, period: int) -> EtxTree:
    """Dijkstra shortest-path tree from the source under ETX weights.

    Delay moments accumulate along tree paths assuming hop independence
    (the standard OF approximation).
    """
    import heapq

    n = topo.n_nodes
    etx = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.int64)
    etx[SOURCE] = 0.0
    heap = [(0.0, SOURCE)]
    visited = np.zeros(n, dtype=bool)
    while heap:
        cost, u = heapq.heappop(heap)
        if visited[u]:
            continue
        visited[u] = True
        for v in topo.out_neighbors(u).tolist():
            if visited[v]:
                continue
            w = 1.0 / topo.link_prr(u, v)
            if cost + w < etx[v]:
                etx[v] = cost + w
                parent[v] = u
                heapq.heappush(heap, (etx[v], v))

    delay_mean = np.full(n, np.inf)
    delay_var = np.full(n, np.inf)
    delay_mean[SOURCE] = 0.0
    delay_var[SOURCE] = 0.0
    # Accumulate moments in BFS order over the tree.
    order = sorted(range(n), key=lambda v: etx[v])
    for v in order:
        p = int(parent[v])
        if v == SOURCE or p < 0:
            continue
        mean, var = hop_delay_moments(topo.link_prr(p, v), period)
        delay_mean[v] = delay_mean[p] + mean
        delay_var[v] = delay_var[p] + var

    return EtxTree(
        parent=parent, etx_cost=etx, delay_mean=delay_mean, delay_var=delay_var
    )
