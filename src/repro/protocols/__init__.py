"""Flooding protocols: the paper's three evaluation schemes plus baselines.

Importing this package registers every protocol with the name registry
(`make_protocol`): ``opt``, ``dbao``, ``of``, ``naive``, ``dca``,
``crosslayer``, ``flash``.
"""

from .base import (
    FloodingProtocol,
    SimView,
    available_protocols,
    make_protocol,
    register_protocol,
)
from .crosslayer import CrossLayerFlooding, recommended_configuration
from .dbao import Dbao
from .dca import DutyCycleAwareFlooding, build_delay_optimal_tree
from .flash import FlashFlooding
from .naive import NaiveFlooding
from .opt import OptOracle, opt_radio_model
from .oppflood import OpportunisticFlooding
from .tree import EtxTree, build_etx_tree, hop_delay_moments

__all__ = [
    "FloodingProtocol", "SimView", "available_protocols", "make_protocol",
    "register_protocol",
    "CrossLayerFlooding", "recommended_configuration",
    "Dbao",
    "DutyCycleAwareFlooding", "build_delay_optimal_tree",
    "FlashFlooding",
    "NaiveFlooding",
    "OptOracle", "opt_radio_model",
    "OpportunisticFlooding",
    "EtxTree", "build_etx_tree", "hop_delay_moments",
]
