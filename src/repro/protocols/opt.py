"""OPT: the paper's oracle flooding scheme (Sec. V-A).

OPT defines the delay floor the practical protocols are measured against:

* each waking sensor receives from the in-neighbor **with the best link
  quality** to it (oracle possession knowledge, perfect coordination);
* **no collisions ever occur** (run it with
  ``RadioModel(collisions=False)`` — :func:`opt_radio_model` builds the
  right model);
* link loss still applies: even the best link fails with probability
  ``1 - PRR``, which is why OPT's failure count in Fig. 11 is nonzero.

Two server policies implement two readings of "best neighbor":

* ``"designated"`` (default, the paper's literal wording) — every sensor
  has a fixed best server: the highest-PRR in-neighbor among its strict
  upstream set (nodes with smaller ETX cost from the source; strictness
  keeps the server graph acyclic and source-connected). Because the link
  used per reception is fixed, the expected transmission-failure count is
  independent of the duty ratio — exactly the Fig. 11 behaviour.
* ``"any"`` — receive from the best *currently covered* in-neighbor.
  More aggressive; on a complete always-on graph this reproduces the
  per-slot population doubling of the Galton-Watson analysis, which the
  branching-correspondence tests rely on.

Packet choice follows the paper's FCFS rule: the chosen sender forwards
its earliest-arrived packet among those the receiver lacks.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..net.radio import RadioModel, TxBatch
from ..net.topology import SOURCE
from .base import (
    FloodingProtocol,
    RepSimView,
    SimView,
    earliest_wake,
    phase_cache_period,
    register_protocol,
)

__all__ = ["OptOracle", "opt_radio_model"]


def opt_radio_model(lossless: bool = False, overhearing: bool = False) -> RadioModel:
    """The channel OPT assumes: collision-free, unicast-only.

    Data overhearing stays off (the paper's unicast model — see
    :class:`~repro.net.radio.RadioModel`); the oracle's edge over the
    practical protocols is collision freedom and perfect link choice, and
    all three evaluation protocols play on the same unicast channel.
    """
    return RadioModel(
        collisions=False, overhearing=overhearing, lossless=lossless
    )


@register_protocol
class OptOracle(FloodingProtocol):
    """Globally-coordinated best-link reception with oracle knowledge."""

    name = "opt"

    def __init__(self, server_policy: str = "designated"):
        if server_policy not in ("designated", "any"):
            raise ValueError(
                f"server policy must be 'designated' or 'any', got {server_policy!r}"
            )
        self.server_policy = server_policy
        self.init_kwargs = {"server_policy": server_policy}
        self._topo = None
        self._period = 1
        self._designated: Optional[np.ndarray] = None
        self._etx_cost: Optional[np.ndarray] = None
        self._ranked_in: List[np.ndarray] = []

    def prepare(self, topo, schedules, workload, rng):
        from .tree import build_etx_tree

        self._topo = topo
        self._period = schedules.period
        self._schedules = schedules
        # In-neighbor lists ordered by descending link quality: the
        # oracle always tries the best link first.
        self._ranked_in = []
        for r in range(topo.n_nodes):
            nbs = topo.in_neighbors(r)
            order = np.argsort(-topo.prr[nbs, r], kind="stable")
            self._ranked_in.append(nbs[order])
        # Padded in-neighbor ids for the "any"-policy frontier query.
        max_deg = max((a.size for a in self._ranked_in), default=1) or 1
        n = topo.n_nodes
        self._in_pad = np.zeros((n, max_deg), dtype=np.int64)
        self._in_valid = np.zeros((n, max_deg), dtype=bool)
        for r, nbs in enumerate(self._ranked_in):
            self._in_pad[r, : nbs.size] = nbs
            self._in_valid[r, : nbs.size] = True

        if self.server_policy == "designated":
            tree = build_etx_tree(topo, schedules.period)
            designated = np.full(topo.n_nodes, -1, dtype=np.int64)
            for r in range(topo.n_nodes):
                if r == SOURCE:
                    continue
                cost_r = tree.etx_cost[r]
                if not np.isfinite(cost_r):
                    continue  # unreachable: no server
                best, best_prr = -1, -1.0
                for s in topo.in_neighbors(r).tolist():
                    if tree.etx_cost[s] < cost_r:
                        prr = topo.link_prr(s, r)
                        if prr > best_prr:
                            best, best_prr = s, prr
                # The tree parent always qualifies (its cost is strictly
                # smaller), so reachable sensors always get a server.
                designated[r] = best
            self._designated = designated
            self._etx_cost = np.asarray(tree.etx_cost, dtype=np.float64)
            # Quiescence frontier under the designated policy: only the
            # fixed (server, sensor) pairs can ever carry traffic.
            rs = np.flatnonzero(designated >= 0)
            rs = rs[rs != SOURCE]
            self._frontier_r = rs
            self._frontier_s = designated[rs]
        # Frontier cache: offers depend only on possession, so repeated
        # probes between state changes reuse the last receiver set.
        self._nas_version = -1
        self._nas_receivers = None

    def next_action_slot(self, t, awake, view):
        # OPT's frontier reads ground truth (that is the point of OPT):
        # a sensor is actionable iff a candidate server truly holds a
        # packet the sensor truly lacks. Round-robin rotation, parity
        # fallback, and semi-duplex conflicts only *defer* service within
        # a wake slot — they never create traffic where no pair offers —
        # so the oracle offer set is a sound frontier.
        if view.state_version == self._nas_version:
            receivers = self._nas_receivers
        else:
            has = view.oracle_possession()
            if self.server_policy == "designated":
                offers = (has[:, self._frontier_s] & ~has[:, self._frontier_r])
                receivers = self._frontier_r[offers.any(axis=0)]
            else:
                held = has[:, self._in_pad]  # (M, n, max_deg)
                offers = (held & ~has[:, :, None]).any(axis=0) & self._in_valid
                receivers = np.flatnonzero(offers.any(axis=1))
                receivers = receivers[receivers != SOURCE]
            self._nas_version = view.state_version
            self._nas_receivers = receivers
        return earliest_wake(self._schedules, t, receivers)

    # ------------------------------------------------------------------

    def propose_batch(self, t: int, awake: np.ndarray, view: SimView) -> TxBatch:
        awake_set = set(awake.tolist())
        # Starvation avoidance: drafting a node that is itself awake and
        # still missing packets as a sender costs it its own reception
        # (semi-duplex). With deterministic schedules a greedy would
        # repeat the same sacrifice at the same phase every period,
        # starving that node forever. Such nodes are last-resort senders,
        # and even then only on alternating periods, so they receive at
        # least every other wake-up.
        period_parity = (t // max(self._period, 1)) % 2

        def is_receiving_priority(s: int) -> bool:
            return s in awake_set and bool(view.oracle_needed(s).any())

        if self.server_policy == "designated":
            rows = self._propose_designated(
                t, awake, view, is_receiving_priority, period_parity
            )
        else:
            rows = self._propose_any(
                t, awake, view, is_receiving_priority, period_parity
            )
        if not rows:
            return TxBatch.empty()
        arr = np.asarray(rows, dtype=np.int64)
        return TxBatch(arr[:, 0], arr[:, 1], arr[:, 2])

    def _propose_designated(
        self, t, awake, view, is_receiving_priority, period_parity
    ) -> List[tuple]:
        # Each waking sensor asks its fixed best server. The oracle
        # schedules the slot jointly, upstream-first (ascending ETX cost):
        # once a server commits to a receiver, that receiver is marked
        # busy-receiving and is excluded from transmitting in the same
        # slot (semi-duplex), so server/dependent role conflicts never
        # waste a transmission. Dependents of one server are served
        # round-robin across periods so no weak-link dependent starves.
        requests: dict = {}
        for r in awake.tolist():
            if r == SOURCE:
                continue
            s = int(self._designated[r])
            if s < 0:
                continue
            if view.oracle_needed(r).any():
                requests.setdefault(s, []).append(r)

        rows: List[tuple] = []
        assigned = set()
        receiving = set()
        rotation = t // max(self._period, 1)
        for s in sorted(requests, key=lambda s: (self._etx_cost[s], s)):
            if s in assigned or s in receiving:
                continue
            deps = [r for r in requests[s] if r not in receiving]
            if not deps:
                continue
            start = rotation % len(deps)
            for i in range(len(deps)):
                r = deps[(start + i) % len(deps)]
                head = view.fcfs_head(s, view.oracle_needed(r))
                if head is None:
                    continue
                rows.append((s, r, head))
                assigned.add(s)
                receiving.add(r)
                break
        return rows

    # -- Replication-batched path (designated policy only) -------------
    #
    # The designated-server slot schedule decomposes exactly: each
    # server's *candidate* commitment (which dependent, which packet) is
    # independent of every other server's — dependents of one server are
    # never dependents or chosen receivers of another (designation is
    # unique), so ``deps == requests[s]`` always — and the only coupling
    # is "server s stays silent iff its own designated server committed
    # to *it* this slot", which is resolved strictly earlier in the
    # ascending-ETX order. Candidate edges therefore form disjoint
    # ETX-increasing paths, along which act/defer simply alternates from
    # each path head. The batched path computes all candidates with array
    # ops and resolves the alternation by pointer chasing; the "any"
    # policy has no such decomposition (its greedy matching couples every
    # receiver through the shared ``assigned`` set), so it stays serial.

    def rep_batchable(self) -> bool:
        return self.server_policy == "designated"

    def prepare_reps(self, topo, schedules_list, workload, rngs):
        # Serial prepare consumes no randomness, and the designated map
        # is derived from ETX costs and link PRRs only — both
        # period-independent — so it serves replications with
        # heterogeneous periods too.
        self.prepare(topo, schedules_list[0], workload, rngs[0])
        self._rep_periods = np.asarray(
            [int(s.period) for s in schedules_list], dtype=np.int64
        )
        self._rep_cache_period = phase_cache_period(schedules_list)
        self._off_frontier = None
        self._rep_phase_cache: dict = {}
        # Per-replication frontier cache for next_action_slots, keyed on
        # the engine-maintained state versions (see dbao for the pattern).
        self._nas_vers_reps = None
        self._nas_offers_reps = None

    def _phase_pairs(self, t: int, awake_by_rep):
        """Static (replication, server, receiver) request rows per slot.

        Wake sets repeat with the LCM of the per-replication periods,
        and the designated-server map is static, so the sorted flat
        request list across all replications only depends on the LCM
        phase — built once and reused (uncached when the LCM is
        unreasonable).
        """
        key = t % self._rep_cache_period if self._rep_cache_period else None
        if key is not None:
            hit = self._rep_phase_cache.get(key)
            if hit is not None:
                return hit
        kk_parts = []
        rr_parts = []
        for k, aw in enumerate(awake_by_rep):
            ok = aw[(aw != SOURCE) & (self._designated[aw] >= 0)]
            if ok.size:
                kk_parts.append(np.full(ok.size, k, dtype=np.int64))
                rr_parts.append(ok)
        empty = np.empty(0, dtype=np.int64)
        if kk_parts:
            kk_r = np.concatenate(kk_parts)
            rr_flat = np.concatenate(rr_parts)
            ss_flat = self._designated[rr_flat]
            order = np.lexsort((rr_flat, ss_flat, kk_r))
            rows = (kk_r[order], ss_flat[order], rr_flat[order])
        else:
            rows = (empty, empty, empty)
        if key is not None:
            self._rep_phase_cache[key] = rows
        return rows

    def propose_reps(self, t, rep_ids, awake_by_rep, view: RepSimView):
        assert self.server_policy == "designated"
        n = self._topo.n_nodes
        empty = np.empty(0, dtype=np.int64)

        # Flat (replication, waking sensor) pairs with a live request,
        # presorted by (replication, server, receiver) from the phase
        # cache; subset gathers preserve that order.
        kk_r, ss_flat, rr_flat = self._phase_pairs(t, awake_by_rep)
        if kk_r.size and rep_ids.size < view.n_reps:
            active = np.zeros(view.n_reps, dtype=bool)
            active[rep_ids] = True
            keep = active[kk_r]
            kk_r, ss_flat, rr_flat = kk_r[keep], ss_flat[keep], rr_flat[keep]
        arena = view.get_arena()
        cand_w = None
        if kk_r.size:
            hp = view.has_packed
            if hp is not None:
                # Packed possession words: "receiver still lacks a
                # packet" and "server holds one of those" are single
                # uint64 ops per row, gathered through flat takes into
                # borrowed scratch.
                hp_flat = hp.reshape(-1)
                full = np.uint64((1 << view.n_packets) - 1)
                idx = arena.buf("opt.idx", kk_r.size, np.int64)
                np.multiply(kk_r, n, out=idx)
                idx += rr_flat
                recv_w = arena.buf("opt.recv_w", kk_r.size, np.uint64)
                np.take(hp_flat, idx, out=recv_w)
                sel = np.flatnonzero(recv_w != full)
                kk_r = kk_r.take(sel)
                ss_flat = ss_flat.take(sel)
                rr_flat = rr_flat.take(sel)
                idx2 = idx[: sel.size]
                np.multiply(kk_r, n, out=idx2)
                idx2 += ss_flat
                cand_w = hp_flat.take(idx2) & ~recv_w.take(sel)
            else:
                needy = ~view.has_stack[kk_r, :, rr_flat].all(axis=1)
                kk_r, ss_flat, rr_flat = (
                    kk_r[needy], ss_flat[needy], rr_flat[needy])
        if kk_r.size == 0:
            return empty, empty, empty, empty
        P = kk_r.size
        new_grp = np.ones(P, dtype=bool)
        new_grp[1:] = (kk_r[1:] != kk_r[:-1]) | (ss_flat[1:] != ss_flat[:-1])
        group_start = np.flatnonzero(new_grp)
        G = group_start.size
        L = np.diff(np.append(group_start, P))
        g = np.repeat(arena.arange(G), L)
        pos = arena.arange(P) - group_start[g]

        # FCFS head per (server, dependent) pair; round-robin rotation
        # picks each group's first valid head in rotated order.
        if cand_w is not None:
            heads = None
            valid = cand_w != 0
        else:
            needs = ~view.has_stack[kk_r, :, rr_flat]
            heads, valid = view.fcfs_heads_pairs(kk_r, ss_flat, needs)
        # Round-robin rotation counts each replication's own periods.
        rotk = t // self._rep_periods[kk_r]
        rot = (pos - (rotk % L[g])) % L[g]
        big = P + 1
        score = np.where(valid, rot, big)
        enc = score * big + arena.arange(P)
        best = np.minimum.reduceat(enc, group_start)
        has_cand = (best // big) < big
        pick = (best % big)[has_cand]
        if pick.size == 0:
            return empty, empty, empty, empty

        cand_k = kk_r[pick]
        cand_s = ss_flat[pick]
        cand_r = rr_flat[pick]
        if cand_w is not None:
            # The FCFS argmin only runs on the picked rows, unpacking
            # their candidate words back to an (C, M) mask.
            pw = np.uint64(1) << np.arange(view.n_packets, dtype=np.uint64)
            cand = (cand_w[pick][:, None] & pw[None, :]) != 0
            cand_h = view.fcfs_heads_masked(cand_k, cand_s, cand)
        else:
            cand_h = heads[pick]

        # A server defers iff its own designated server committed to it.
        # Chosen receivers are unique per replication, so the candidate
        # edges s -> r form disjoint ETX-ascending paths; walk each
        # candidate to its path head counting hops — even depth acts.
        key_s = cand_k * n + cand_s
        key_r = cand_k * n + cand_r
        o = np.argsort(key_r)
        sorted_r = key_r[o]
        ins = np.searchsorted(sorted_r, key_s)
        ins_c = np.minimum(ins, sorted_r.size - 1)
        pred = np.where(sorted_r[ins_c] == key_s, o[ins_c], -1)
        depth = np.zeros(pred.size, dtype=np.int64)
        ptr = pred.copy()
        while True:
            live = ptr >= 0
            if not live.any():
                break
            depth[live] += 1
            ptr[live] = pred[ptr[live]]
        act = (depth & 1) == 0

        cand_k, cand_s = cand_k[act], cand_s[act]
        cand_r, cand_h = cand_r[act], cand_h[act]
        # Serial emission order: ascending (ETX cost, server) per rep.
        emit = np.lexsort((cand_s, self._etx_cost[cand_s], cand_k))
        return cand_k[emit], cand_s[emit], cand_r[emit], cand_h[emit]

    def next_action_slots(self, t, rep_ids, view: RepSimView):
        assert self.server_policy == "designated"
        if self._off_frontier is None:
            self._off_frontier = view.offsets_stack[:, self._frontier_r]
        # Offers depend only on possession: recompute only for
        # replications whose state version moved since the last probe.
        if self._nas_offers_reps is None:
            F = self._frontier_r.size
            self._nas_offers_reps = np.zeros((view.n_reps, F), dtype=bool)
            self._nas_vers_reps = np.full(view.n_reps, -1, dtype=np.int64)
        stale = rep_ids[
            self._nas_vers_reps[rep_ids] != view.state_version[rep_ids]
        ]
        if stale.size:
            if view.has_packed is not None:
                hp = view.has_packed[stale]
                self._nas_offers_reps[stale] = (
                    hp[:, self._frontier_s] & ~hp[:, self._frontier_r]
                ) != 0
            else:
                has = view.has_stack[stale]
                self._nas_offers_reps[stale] = (
                    has[:, :, self._frontier_s] & ~has[:, :, self._frontier_r]
                ).any(axis=1)
            self._nas_vers_reps[stale] = view.state_version[stale]
        offers = self._nas_offers_reps[rep_ids]
        return view.earliest_wakes(
            t, rep_ids, self._frontier_r, offers, self._off_frontier
        )

    def _propose_any(
        self, t, awake, view, is_receiving_priority, period_parity
    ) -> List[tuple]:
        rows: List[tuple] = []
        assigned = set()
        # Receivers are served in order of how few candidate senders they
        # have (scarcest first), so the greedy matching wastes no sender.
        pending = []
        for r in awake.tolist():
            if r == SOURCE:
                continue
            needed = view.oracle_needed(r)
            if not needed.any():
                continue
            ranked = self._ranked_in[r]
            candidates = view.candidate_senders(ranked, needed)
            if candidates.size:
                pending.append((candidates.size, r, needed, ranked))
        pending.sort(key=lambda item: (item[0], item[1]))

        for _, r, needed, ranked in pending:
            fallback = None
            chosen = None
            for s in ranked.tolist():
                if s in assigned:
                    continue
                head = view.fcfs_head(s, needed)
                if head is None:
                    continue
                if is_receiving_priority(s):
                    if fallback is None and (s % 2) == period_parity:
                        fallback = (s, head)
                    continue
                chosen = (s, head)
                break
            if chosen is None:
                chosen = fallback
            if chosen is not None:
                s, head = chosen
                rows.append((s, r, head))
                assigned.add(s)
        return rows
