"""Neighbor-coverage beliefs shared by the practical protocols.

A sender in a real low-duty-cycle network does not know which packets its
neighbors hold; it knows only what it can infer from link-layer
acknowledgements of its own transmissions and from ACKs it overhears
while awake in transmit mode. :class:`NeighborBelief` stores exactly that
inference — per node, a boolean matrix over (packet, out-neighbor).

Beliefs are *sound under our update rules* (only confirmed receptions are
recorded), so a sender may waste transmissions on packets the receiver
already has, but never wrongly skips a needed packet. The DBAO and OF
implementations both rely on this one-sided-error property for their
coverage guarantees; a property test enforces it.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..net.topology import Topology

__all__ = ["NeighborBelief"]


class NeighborBelief:
    """Per-node beliefs about out-neighbors' packet possession.

    Parameters
    ----------
    topo:
        The network; belief is kept only for graph out-neighbors.
    n_packets:
        Flood size ``M``.
    """

    def __init__(self, topo: Topology, n_packets: int):
        if n_packets < 1:
            raise ValueError("need at least one packet")
        self._topo = topo
        self._n_packets = int(n_packets)
        self._col: List[Dict[int, int]] = []
        self._belief: List[np.ndarray] = []
        for node in range(topo.n_nodes):
            nbs = topo.out_neighbors(node)
            self._col.append({int(r): i for i, r in enumerate(nbs.tolist())})
            self._belief.append(np.zeros((n_packets, nbs.size), dtype=bool))

    def believes_has(self, observer: int, receiver: int, packet: int) -> bool:
        """Whether ``observer`` believes ``receiver`` holds ``packet``."""
        col = self._col[observer].get(receiver)
        if col is None:
            raise KeyError(f"node {receiver} is not an out-neighbor of {observer}")
        return bool(self._belief[observer][packet, col])

    def believed_needs(self, observer: int, receiver: int) -> np.ndarray:
        """(M,) mask of packets ``observer`` believes ``receiver`` lacks."""
        col = self._col[observer].get(receiver)
        if col is None:
            raise KeyError(f"node {receiver} is not an out-neighbor of {observer}")
        return ~self._belief[observer][:, col]

    def needs_matrix(self, receiver: int, observers) -> np.ndarray:
        """(M, len(observers)) stacked :meth:`believed_needs` columns.

        Column ``i`` is what ``observers[i]`` believes ``receiver``
        lacks — the batch input for ``SimView.fcfs_heads_batch``.
        """
        cols = np.empty((self._n_packets, len(observers)), dtype=bool)
        for i, obs in enumerate(observers):
            col = self._col[int(obs)].get(receiver)
            if col is None:
                raise KeyError(
                    f"node {receiver} is not an out-neighbor of {obs}"
                )
            cols[:, i] = ~self._belief[int(obs)][:, col]
        return cols

    def confirm(self, observer: int, receiver: int, packet: int) -> None:
        """Record confirmed possession (own ACK or overheard ACK)."""
        col = self._col[observer].get(receiver)
        if col is None:
            return  # evidence about a non-neighbor is useless — drop it
        self._belief[observer][packet, col] = True

    def confirm_for_witnesses(
        self, witnesses, receiver: int, packet: int
    ) -> None:
        """Let every node in ``witnesses`` record the same ACK evidence."""
        for w in witnesses:
            self.confirm(int(w), receiver, packet)

    def sync_possession(self, observer: int, receiver: int, held) -> None:
        """Absorb a possession summary advertised by ``receiver``.

        Link-layer ACKs in dissemination protocols piggyback the
        receiver's packet summary (Deluge-style version vectors); a
        sender that hears one learns the receiver's *entire* buffer state
        at once, not just the fate of its own frame. Without this,
        belief lag makes every clique member retransmit every packet the
        receiver obtained elsewhere — one wasted unicast per
        (sender, packet) pair — and the redundant contention snowballs
        into collisions.

        ``held`` is an iterable of packet indices the receiver holds;
        the summary is still sound (receivers advertise only what they
        have), so the one-sided-error property is preserved.
        """
        col = self._col[observer].get(receiver)
        if col is None:
            return
        self._belief[observer][list(held), col] = True

    def sync_for_witnesses(self, witnesses, receiver: int, held) -> None:
        """Broadcast one possession summary to several overhearers."""
        held = list(held)
        for w in witnesses:
            self.sync_possession(int(w), receiver, held)

    def believed_coverage_count(self, observer: int, packet: int) -> int:
        """How many out-neighbors ``observer`` believes hold ``packet``."""
        return int(self._belief[observer][packet].sum())
