"""Neighbor-coverage beliefs shared by the practical protocols.

A sender in a real low-duty-cycle network does not know which packets its
neighbors hold; it knows only what it can infer from link-layer
acknowledgements of its own transmissions and from ACKs it overhears
while awake in transmit mode. :class:`NeighborBelief` stores exactly that
inference — per node, a boolean matrix over (packet, out-neighbor).

Beliefs are *sound under our update rules* (only confirmed receptions are
recorded), so a sender may waste transmissions on packets the receiver
already has, but never wrongly skips a needed packet. The DBAO and OF
implementations both rely on this one-sided-error property for their
coverage guarantees; a property test enforces it.

Storage is one padded ``(n_nodes, M, max_degree)`` boolean array plus an
``(n_nodes, n_nodes)`` pair-to-column map; the per-node matrices exposed
through the scalar API are views aliasing the big array. That layout lets
the batched queries (:meth:`needs_pairs`) and the broadcast updates
(:meth:`sync_for_witnesses`) run as single fancy-indexing operations over
arbitrary (observer, receiver) pair sets — the DBAO proposal loop's
hottest accesses.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..net.topology import Topology

__all__ = ["NeighborBelief", "RepNeighborBelief"]


def _index_array(x) -> np.ndarray:
    """Normalize an iterable of node/packet ids to an int64 index array."""
    if isinstance(x, np.ndarray):
        return x.astype(np.int64, copy=False)
    return np.fromiter((int(v) for v in x), dtype=np.int64)


class NeighborBelief:
    """Per-node beliefs about out-neighbors' packet possession.

    Parameters
    ----------
    topo:
        The network; belief is kept only for graph out-neighbors.
    n_packets:
        Flood size ``M``.
    """

    def __init__(self, topo: Topology, n_packets: int):
        if n_packets < 1:
            raise ValueError("need at least one packet")
        self._topo = topo
        self._n_packets = int(n_packets)
        n = topo.n_nodes
        degrees = [topo.out_neighbors(node).size for node in range(n)]
        #: (observer, receiver) -> column in the observer's belief matrix,
        #: -1 for non-neighbors.
        self._pair_col = np.full((n, n), -1, dtype=np.int64)
        #: Padded backing store; row ``node`` uses columns [0, degree).
        self._belief3d = np.zeros(
            (n, self._n_packets, max(max(degrees, default=0), 1)), dtype=bool
        )
        self._col: List[Dict[int, int]] = []
        self._belief: List[np.ndarray] = []
        #: Padded neighbor ids aligned with the belief columns, plus the
        #: mask of real (non-padding) columns — the offer queries below
        #: translate column hits back to receiver ids through these.
        max_deg = self._belief3d.shape[2]
        self._nbr_pad = np.zeros((n, max_deg), dtype=np.int64)
        self._nbr_valid = np.zeros((n, max_deg), dtype=bool)
        for node in range(n):
            nbs = topo.out_neighbors(node)
            self._pair_col[node, nbs] = np.arange(nbs.size)
            self._nbr_pad[node, : nbs.size] = nbs
            self._nbr_valid[node, : nbs.size] = True
            self._col.append({int(r): i for i, r in enumerate(nbs.tolist())})
            # A view, not a copy: scalar and batched APIs share storage.
            self._belief.append(self._belief3d[node, :, : nbs.size])

    def believes_has(self, observer: int, receiver: int, packet: int) -> bool:
        """Whether ``observer`` believes ``receiver`` holds ``packet``."""
        col = self._col[observer].get(receiver)
        if col is None:
            raise KeyError(f"node {receiver} is not an out-neighbor of {observer}")
        return bool(self._belief[observer][packet, col])

    def believed_needs(self, observer: int, receiver: int) -> np.ndarray:
        """(M,) mask of packets ``observer`` believes ``receiver`` lacks."""
        col = self._col[observer].get(receiver)
        if col is None:
            raise KeyError(f"node {receiver} is not an out-neighbor of {observer}")
        return ~self._belief[observer][:, col]

    def needs_matrix(self, receiver: int, observers) -> np.ndarray:
        """(M, len(observers)) stacked :meth:`believed_needs` columns.

        Column ``i`` is what ``observers[i]`` believes ``receiver``
        lacks — the batch input for ``SimView.fcfs_heads_batch``.
        """
        cols = np.empty((self._n_packets, len(observers)), dtype=bool)
        for i, obs in enumerate(observers):
            col = self._col[int(obs)].get(receiver)
            if col is None:
                raise KeyError(
                    f"node {receiver} is not an out-neighbor of {obs}"
                )
            cols[:, i] = ~self._belief[int(obs)][:, col]
        return cols

    def needs_pairs(
        self, observers: np.ndarray, receivers: np.ndarray
    ) -> np.ndarray:
        """(M, P) believed-needs columns for P (observer, receiver) pairs.

        The fully batched form of :meth:`needs_matrix`: pair ``i`` asks
        what ``observers[i]`` believes ``receivers[i]`` lacks. Every
        receiver must be an out-neighbor of its observer.
        """
        cols = self._pair_col[observers, receivers]
        if np.any(cols < 0):
            bad = int(np.flatnonzero(cols < 0)[0])
            raise KeyError(
                f"node {int(receivers[bad])} is not an out-neighbor of "
                f"{int(observers[bad])}"
            )
        return ~self._belief3d[observers, :, cols].T

    def confirm(self, observer: int, receiver: int, packet: int) -> None:
        """Record confirmed possession (own ACK or overheard ACK)."""
        col = self._col[observer].get(receiver)
        if col is None:
            return  # evidence about a non-neighbor is useless — drop it
        self._belief[observer][packet, col] = True

    def confirm_for_witnesses(
        self, witnesses, receiver: int, packet: int
    ) -> None:
        """Let every node in ``witnesses`` record the same ACK evidence."""
        w = _index_array(witnesses)
        if w.size == 0:
            return
        cols = self._pair_col[w, receiver]
        keep = cols >= 0
        self._belief3d[w[keep], packet, cols[keep]] = True

    def sync_possession(self, observer: int, receiver: int, held) -> None:
        """Absorb a possession summary advertised by ``receiver``.

        Link-layer ACKs in dissemination protocols piggyback the
        receiver's packet summary (Deluge-style version vectors); a
        sender that hears one learns the receiver's *entire* buffer state
        at once, not just the fate of its own frame. Without this,
        belief lag makes every clique member retransmit every packet the
        receiver obtained elsewhere — one wasted unicast per
        (sender, packet) pair — and the redundant contention snowballs
        into collisions.

        ``held`` is an iterable of packet indices the receiver holds;
        the summary is still sound (receivers advertise only what they
        have), so the one-sided-error property is preserved.
        """
        col = self._col[observer].get(receiver)
        if col is None:
            return
        self._belief[observer][_index_array(held), col] = True

    def sync_for_witnesses(self, witnesses, receiver: int, held) -> None:
        """Broadcast one possession summary to several overhearers.

        One three-axis fancy assignment over (witness, packet) instead of
        a Python loop over witnesses — this runs once per non-overheard
        reception in DBAO's observe path.
        """
        w = _index_array(witnesses)
        if w.size == 0:
            return
        held_idx = _index_array(held)
        cols = self._pair_col[w, receiver]
        keep = cols >= 0
        if not keep.all():
            w, cols = w[keep], cols[keep]
            if w.size == 0:
                return
        if held_idx.size == 0:
            return
        self._belief3d[w[:, None], held_idx[None, :], cols[:, None]] = True

    def believed_coverage_count(self, observer: int, packet: int) -> int:
        """How many out-neighbors ``observer`` believes hold ``packet``."""
        return int(self._belief[observer][packet].sum())

    # -- Quiescence-frontier queries -----------------------------------

    def offer_pairs(
        self, observers: np.ndarray, receivers: np.ndarray, has: np.ndarray
    ) -> np.ndarray:
        """(P,) mask: pair ``i``'s observer has something to offer.

        Pair ``i`` offers when ``observers[i]`` holds (per ``has``, the
        ``(M, n_nodes)`` possession matrix — each observer's own column)
        at least one packet it believes ``receivers[i]`` lacks. This is
        exactly the condition under which the belief-driven protocols
        would commit a transmission on that pair, so the pairs' receivers
        form the protocol's pending frontier.
        """
        cols = self._pair_col[observers, receivers]
        believed = self._belief3d[observers, :, cols]  # (P, M)
        return (has[:, observers].T & ~believed).any(axis=1)

    def offer_receivers(self, has: np.ndarray) -> np.ndarray:
        """Receivers some believing in-neighbor could serve, over all links.

        The all-pairs form of :meth:`offer_pairs` for protocols whose
        candidate senders are simply the receiver's in-neighbors. Returns
        receiver ids (possibly with duplicates — one per offering link).
        """
        offers = (
            (has.T[:, :, None] & ~self._belief3d).any(axis=1)
            & self._nbr_valid
        )
        return self._nbr_pad[offers]


class RepNeighborBelief:
    """R independent :class:`NeighborBelief` universes in one array.

    Replication ``rep``'s slice evolves exactly like a standalone
    :class:`NeighborBelief` driven by that replication's observations,
    so belief-limited decisions extracted from the batch match their
    serial twins bit for bit.

    For M <= 64 packets the backing store packs the packet axis into
    uint64 words (packet ``m`` -> bit ``m``, shape ``(R, n_nodes,
    max_degree)``): belief updates and frontier offer scans become 2-D
    word gathers instead of 3-D boolean gathers plus an (M,) reduction.
    Wider workloads fall back to the ``(R, n_nodes, M, max_degree)``
    boolean tensor.
    """

    def __init__(self, topo: Topology, n_packets: int, n_reps: int):
        if n_reps < 1:
            raise ValueError("need at least one replication")
        template = NeighborBelief(topo, n_packets)
        self._pair_col = template._pair_col
        self._nbr_pad = template._nbr_pad
        self._nbr_valid = template._nbr_valid
        self._n_packets = template._n_packets
        if self._n_packets <= 64:
            self._pow2 = np.uint64(1) << np.arange(
                self._n_packets, dtype=np.uint64
            )
            n_nodes, _, max_deg = template._belief3d.shape
            self._packed = np.zeros(
                (int(n_reps), n_nodes, max_deg), dtype=np.uint64
            )
            self._full_word = np.uint64((1 << self._n_packets) - 1)
            self._belief4 = None
        else:
            self._pow2 = None
            self._packed = None
            self._belief4 = np.zeros(
                (int(n_reps),) + template._belief3d.shape, dtype=bool
            )

    @property
    def n_reps(self) -> int:
        if self._packed is not None:
            return self._packed.shape[0]
        return self._belief4.shape[0]

    def needs_pairs(
        self, kk: np.ndarray, observers: np.ndarray, receivers: np.ndarray
    ) -> np.ndarray:
        """(P, M) believed needs for flat (replication, observer, receiver)."""
        cols = self._pair_col[observers, receivers]
        if np.any(cols < 0):
            bad = int(np.flatnonzero(cols < 0)[0])
            raise KeyError(
                f"node {int(receivers[bad])} is not an out-neighbor of "
                f"{int(observers[bad])}"
            )
        if self._packed is not None:
            words = self._packed[kk, observers, cols]
            return (words[:, None] & self._pow2[None, :]) == 0
        return ~self._belief4[kk, observers, :, cols]

    def sync_possession(
        self, rep: int, observer: int, receiver: int, held
    ) -> None:
        """Per-replication :meth:`NeighborBelief.sync_possession`."""
        col = self._pair_col[observer, receiver]
        if col < 0:
            return
        held_idx = _index_array(held)
        if self._packed is not None:
            if held_idx.size:
                self._packed[rep, observer, col] |= np.bitwise_or.reduce(
                    self._pow2[held_idx]
                )
            return
        self._belief4[rep, observer, held_idx, col] = True

    def sync_for_witnesses(
        self, rep: int, witnesses, receiver: int, held
    ) -> None:
        """Per-replication :meth:`NeighborBelief.sync_for_witnesses`."""
        w = _index_array(witnesses)
        if w.size == 0:
            return
        held_idx = _index_array(held)
        if held_idx.size == 0:
            return
        cols = self._pair_col[w, receiver]
        keep = cols >= 0
        if not keep.all():
            w, cols = w[keep], cols[keep]
            if w.size == 0:
                return
        if self._packed is not None:
            self._packed[rep, w, cols] |= np.bitwise_or.reduce(
                self._pow2[held_idx]
            )
            return
        self._belief4[rep, w[:, None], held_idx[None, :], cols[:, None]] = True

    def sync_pairs(
        self,
        kk: np.ndarray,
        observers: np.ndarray,
        receivers: np.ndarray,
        held_rows: np.ndarray,
    ) -> None:
        """Batched :meth:`sync_possession` over flat observation tuples.

        Tuple ``i`` has ``observers[i]`` (in replication ``kk[i]``)
        absorb ``receivers[i]``'s possession summary ``held_rows[i]`` —
        an ``(M,)`` boolean row. Non-neighbor evidence is dropped, like
        the scalar form. Updates only ever set bits, so the batched OR
        is order-independent and matches any serial application order.
        """
        cols = self._pair_col[observers, receivers]
        keep = cols >= 0
        if not keep.all():
            kk, observers, cols = kk[keep], observers[keep], cols[keep]
            held_rows = held_rows[keep]
        if kk.size == 0:
            return
        if self._packed is not None:
            # Any repeated (rep, observer, col) tuple carries an
            # identical possession row (one reception per receiver per
            # slot), so the plain fancy OR is exact.
            words = (held_rows.astype(np.uint64) * self._pow2).sum(
                axis=1, dtype=np.uint64
            )
            self._packed[kk, observers, cols] |= words
            return
        self._belief4[kk, observers, :, cols] |= held_rows

    def sync_pairs_words(
        self,
        kk: np.ndarray,
        observers: np.ndarray,
        receivers: np.ndarray,
        words: np.ndarray,
    ) -> None:
        """:meth:`sync_pairs` with possession already packed to words.

        Only callable in the packed (M <= 64) regime — callers holding
        an engine-maintained possession bitmask skip the (W, M) boolean
        gather entirely.
        """
        cols = self._pair_col[observers, receivers]
        keep = cols >= 0
        if not keep.all():
            kk, observers, cols = kk[keep], observers[keep], cols[keep]
            words = words[keep]
        if kk.size == 0:
            return
        self._packed[kk, observers, cols] |= words

    def sync_ack_summaries(self, outcome, view) -> None:
        """Absorb each non-overheard reception's ACK possession summary.

        The shared observe rule of the ACK-summary protocols (OF, naive,
        FLASH, DCA): the transmitting sender — and only it — learns the
        receiver's whole buffer from the piggybacked summary. One
        batched sync per slot over a
        :class:`~repro.net.radio.RepSlotOutcome`.
        """
        sel = ~outcome.rec_overheard
        if not sel.any():
            return
        kk = outcome.rec_rep[sel]
        observers = outcome.rec_sender[sel]
        receivers = outcome.rec_receiver[sel]
        if self._packed is not None and view.has_packed is not None:
            self.sync_pairs_words(
                kk, observers, receivers, view.has_packed[kk, receivers]
            )
        else:
            self.sync_pairs(
                kk, observers, receivers, view.has_stack[kk, :, receivers]
            )

    def coverage_counts(
        self, kk: np.ndarray, observers: np.ndarray, packets: np.ndarray
    ) -> np.ndarray:
        """Batched :meth:`NeighborBelief.believed_coverage_count`.

        Row ``i``: how many out-neighbors ``observers[i]`` believes hold
        ``packets[i]`` in replication ``kk[i]``. Padding columns never
        hold set bits, so the whole padded row sums exactly.
        """
        if self._packed is not None:
            words = self._packed[kk, observers]  # (C, max_deg)
            bits = (
                words >> packets.astype(np.uint64)[:, None]
            ) & np.uint64(1)
            return bits.sum(axis=1).astype(np.int64)
        return self._belief4[kk, observers, packets, :].sum(axis=1)

    def offer_pairs_matrix(
        self,
        rep_ids: np.ndarray,
        observers: np.ndarray,
        receivers: np.ndarray,
        has_stack: np.ndarray,
        has_packed: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """:meth:`offer_pairs_reps` with per-replication observers.

        ``observers`` is ``(len(rep_ids), P)`` — protocols whose
        forwarding structure differs per replication (DCA's
        schedule-dependent trees) ask about a different sender per
        replication for the same frontier receiver. Entries ``< 0`` mark
        pairs with no observer in that replication (never offer).
        """
        valid = observers >= 0
        obs = np.where(valid, observers, 0)
        cols = self._pair_col[obs, receivers[None, :]]
        ok = valid & (cols >= 0)
        cols = np.where(ok, cols, 0)
        kk = rep_ids[:, None]
        if self._packed is not None:
            bel = self._packed[kk, obs, cols]
            if has_packed is not None:
                holds_w = has_packed[kk, obs]
            else:
                holds_w = (
                    has_stack[rep_ids[:, None], :, obs].astype(np.uint64)
                    * self._pow2[None, None, :]
                ).sum(axis=2, dtype=np.uint64)
            return ok & ((holds_w & ~bel) != 0)
        believed = self._belief4[kk, obs, :, cols]  # (R', P, M)
        holds = has_stack[rep_ids[:, None], :, obs]  # (R', P, M)
        return ok & (holds & ~believed).any(axis=2)

    def offer_pairs_reps(
        self,
        rep_ids: np.ndarray,
        observers: np.ndarray,
        receivers: np.ndarray,
        has_stack: np.ndarray,
        has_packed: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """(len(rep_ids), P) offer mask across replications.

        ``has_stack`` is the ``(R, M, n_nodes)`` possession stack; pair
        ``j`` offers in replication ``rep_ids[i]`` under the same
        condition as :meth:`NeighborBelief.offer_pairs`. When the caller
        supplies the engine-maintained ``(R, n)`` possession bitmask the
        scan runs on packed words — two 2-D gathers and one uint64 op
        per pair instead of the 3-D boolean gather.
        """
        cols = self._pair_col[observers, receivers]
        if self._packed is not None:
            bel = self._packed[
                rep_ids[:, None], observers[None, :], cols[None, :]
            ]
            if has_packed is not None:
                holds_w = has_packed[rep_ids[:, None], observers[None, :]]
            else:
                holds_w = (
                    has_stack[rep_ids][:, :, observers].astype(np.uint64)
                    * self._pow2[None, :, None]
                ).sum(axis=1, dtype=np.uint64)
            return (holds_w & ~bel) != 0
        believed = self._belief4[
            rep_ids[:, None], observers[None, :], :, cols[None, :]
        ]  # (R', P, M)
        holds = has_stack[rep_ids][:, :, observers].transpose(0, 2, 1)
        return (holds & ~believed).any(axis=2)

    def rep_state(self, rep: int) -> np.ndarray:
        """Copy of one replication's belief tensor (tests/diagnostics)."""
        if self._packed is not None:
            return (
                self._packed[int(rep)][:, None, :]
                & self._pow2[None, :, None]
            ) != 0
        return self._belief4[int(rep)].copy()
