"""DCA: duty-cycle-aware tree flooding for reliable links (paper ref [10]).

Wang & Liu's INFOCOM'09 scheme builds a *delay-optimal* forwarding
structure from the working schedules themselves: the cost of edge
``u -> v`` is the sleep latency from ``u``'s wake phase to ``v``'s next
active slot, and packets flow along the resulting shortest-delay tree
only.

The scheme assumes **reliable links** — under loss it has no forwarding
diversity (one parent per node), so its delay degrades faster than OPT /
DBAO / OF, which is exactly why the paper's own analysis calls for
loss-aware designs. We include it as the reliable-link baseline.

Contention between tree senders is serialized by deterministic id-based
back-off within carrier-sense groups (the scheme's TDMA-like schedule
makes simultaneous same-group sends rare to begin with).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

import numpy as np

from ..net.radio import TxBatch, csma_select, csma_select_reps
from ..net.topology import SOURCE, Topology
from ._belief import NeighborBelief, RepNeighborBelief
from .base import (
    NEVER,
    FloodingProtocol,
    RepSimView,
    SimView,
    earliest_wake,
    phase_cache_period,
    register_protocol,
)

__all__ = ["DutyCycleAwareFlooding", "build_delay_optimal_tree"]


def build_delay_optimal_tree(topo: Topology, offsets: np.ndarray, period: int):
    """Time-dependent Dijkstra: earliest-arrival tree under sleep latency.

    ``dist[v]`` is the earliest slot (starting from slot 0 at the source)
    at which ``v`` can first hold the packet, assuming reliable links and
    no contention; ``parent`` realizes those paths.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    n = topo.n_nodes
    if offsets.shape != (n,):
        raise ValueError(f"offsets must have shape ({n},)")
    dist = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[SOURCE] = 0
    heap: List[Tuple[int, int]] = [(0, SOURCE)]
    done = np.zeros(n, dtype=bool)
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for v in topo.out_neighbors(u).tolist():
            if done[v]:
                continue
            # Wait from slot d until v's next active slot, then 1 TX slot.
            wait = (int(offsets[v]) - d) % period
            cand = d + wait + 1
            if cand < dist[v]:
                dist[v] = cand
                parent[v] = u
                heapq.heappush(heap, (cand, v))
    return parent, dist


@register_protocol
class DutyCycleAwareFlooding(FloodingProtocol):
    """Forward along the schedule-derived delay-optimal tree."""

    name = "dca"

    def __init__(self):
        self.init_kwargs: dict = {}
        self._topo = None
        self._parent: np.ndarray = None  # type: ignore[assignment]
        self._belief: NeighborBelief = None  # type: ignore[assignment]

    def prepare(self, topo, schedules, workload, rng):
        self._topo = topo
        self._schedules = schedules
        self._parent, _ = build_delay_optimal_tree(
            topo, schedules.offsets, schedules.period
        )
        self._belief = NeighborBelief(topo, workload.n_packets)
        # Quiescence frontier: the only candidate pairs are tree edges.
        rs = np.flatnonzero(self._parent >= 0)
        rs = rs[rs != SOURCE]
        self._frontier_r = rs
        self._frontier_s = self._parent[rs]

    def next_action_slot(self, t, awake, view):
        offers = self._belief.offer_pairs(
            self._frontier_s, self._frontier_r, view.possession_by_holder()
        )
        # The listen rule and sender conflicts only shrink slots further;
        # the tree-edge offer set stays a sound (conservative) frontier.
        return earliest_wake(self._schedules, t, self._frontier_r[offers])

    def propose_batch(self, t: int, awake: np.ndarray, view: SimView) -> TxBatch:
        choices: Dict[int, Tuple[int, int]] = {}
        # RX-mode rule: see FlashFlooding.propose.
        listening = {
            int(v) for v in awake.tolist()
            if v != SOURCE and view.held_packets(int(v)).size < view.n_packets
        }
        for r in awake.tolist():
            if r == SOURCE:
                continue
            s = int(self._parent[r])
            if s < 0 or s in choices or s in listening:
                continue
            head = view.fcfs_head(s, self._belief.believed_needs(s, r))
            if head is not None:
                choices[s] = (r, head)
        if not choices:
            return TxBatch.empty()
        winners, _ = csma_select(sorted(choices), self._topo)  # id back-off
        n = len(winners)
        out_s = np.fromiter(winners, dtype=np.int64, count=n)
        out_r = np.empty(n, dtype=np.int64)
        out_p = np.empty(n, dtype=np.int64)
        for i, winner in enumerate(winners):
            r, pkt = choices[winner]
            out_r[i] = r
            out_p[i] = pkt
        return TxBatch(out_s, out_r, out_p)

    def observe(self, t, outcome, view):
        # Tree parents track their children via ACK possession summaries.
        for rec in outcome.receptions:
            if not rec.overheard:
                self._belief.sync_possession(
                    rec.sender, rec.receiver, view.held_packets(rec.receiver)
                )

    # -- Replication-batched path ---------------------------------------
    #
    # DCA's forwarding structure is *schedule-derived*, so unlike the
    # other floods its per-replication state is a whole tree: one
    # delay-optimal parent vector per replication's offsets. Candidate
    # rows are one (parent, receiver) pair per waking receiver; the
    # frontier query asks about a different observer per replication
    # (offer_pairs_matrix).

    def rep_batchable(self) -> bool:
        return True

    def prepare_reps(self, topo, schedules_list, workload, rngs):
        # Serial prepare consumes no randomness; replication 0's tree is
        # exactly what it built.
        self.prepare(topo, schedules_list[0], workload, rngs[0])
        R = len(schedules_list)
        n = topo.n_nodes
        parents = np.empty((R, n), dtype=np.int64)
        parents[0] = self._parent
        for k in range(1, R):
            sched = schedules_list[k]
            parents[k], _ = build_delay_optimal_tree(
                topo, sched.offsets, sched.period
            )
        self._rep_parent = parents
        self._rep_belief = RepNeighborBelief(topo, workload.n_packets, R)
        self._rep_schedules = list(schedules_list)
        self._rep_cache_period = phase_cache_period(schedules_list)
        self._rep_phase_cache: Dict[int, Tuple] = {}
        fr = np.flatnonzero((parents >= 0).any(axis=0))
        self._rep_frontier_r = fr[fr != SOURCE]
        self._off_frontier = None

    def _rep_rows(self, t: int):
        key = t % self._rep_cache_period if self._rep_cache_period else None
        if key is not None:
            hit = self._rep_phase_cache.get(key)
            if hit is not None:
                return hit
        kk_parts: List[np.ndarray] = []
        s_parts: List[np.ndarray] = []
        r_parts: List[np.ndarray] = []
        aw_parts: List[np.ndarray] = []
        awake_mask = np.zeros(self._topo.n_nodes, dtype=bool)
        for k, sched in enumerate(self._rep_schedules):
            aw = sched.awake_at(t)
            if aw.size == 0:
                continue
            recv = aw[aw != SOURCE]
            par = self._rep_parent[k, recv]
            keep = par >= 0
            recv, par = recv[keep], par[keep]
            if recv.size:
                awake_mask[aw] = True
                kk_parts.append(np.full(recv.size, k, dtype=np.int64))
                s_parts.append(par)
                r_parts.append(recv)
                aw_parts.append(awake_mask[par])
                awake_mask[aw] = False
        if kk_parts:
            rows = (
                np.concatenate(kk_parts), np.concatenate(s_parts),
                np.concatenate(r_parts), np.concatenate(aw_parts),
            )
        else:
            empty = np.empty(0, dtype=np.int64)
            rows = (empty, empty, empty, np.empty(0, dtype=bool))
        if key is not None:
            self._rep_phase_cache[key] = rows
        return rows

    def propose_reps(self, t, rep_ids, awake_by_rep, view: RepSimView):
        empty = np.empty(0, dtype=np.int64)
        kk, ss, rr, sender_awake = self._rep_rows(t)
        if kk.size == 0:
            return empty, empty, empty, empty
        if rep_ids.size < len(self._rep_schedules):
            active = np.zeros(len(self._rep_schedules), dtype=bool)
            active[rep_ids] = True
            keep = active[kk]
            if not keep.all():
                kk, ss, rr = kk[keep], ss[keep], rr[keep]
                sender_awake = sender_awake[keep]
        needs = self._rep_belief.needs_pairs(kk, ss, rr)
        heads, valid = view.fcfs_heads_pairs(kk, ss, needs)
        # RX-mode rule: a waking non-source parent with an incomplete
        # buffer listens instead of forwarding.
        listen = sender_awake & (ss != SOURCE) & (
            view.held_counts[kk, ss] < view.n_packets
        )
        ok = valid & ~listen
        if not ok.any():
            return empty, empty, empty, empty
        k_o, s_o, r_o, h_o = kk[ok], ss[ok], rr[ok], heads[ok]

        # One TX per parent per slot: the serial loop serves the first
        # waking child (ascending id) with a valid head; the first flat
        # occurrence per (replication, parent) is that choice.
        n = self._topo.n_nodes
        _, first_idx = np.unique(k_o * n + s_o, return_index=True)
        chosen_k = k_o[first_idx]  # ascending (replication, sender)
        chosen_s = s_o[first_idx]
        chosen_r = r_o[first_idx]
        chosen_p = h_o[first_idx]

        # Deterministic id back-off: ascending sender id is both the
        # rank order and the order `chosen_*` is already in.
        win = csma_select_reps(
            np.searchsorted(rep_ids, chosen_k), chosen_s, self._topo
        )
        if not win.any():
            return empty, empty, empty, empty
        return (chosen_k[win], chosen_s[win], chosen_r[win], chosen_p[win])

    def observe_reps(self, t, outcome, view: RepSimView):
        self._rep_belief.sync_ack_summaries(outcome, view)

    def next_action_slots(self, t, rep_ids, view: RepSimView):
        fr = self._rep_frontier_r
        if fr.size == 0:
            return np.full(len(rep_ids), NEVER, dtype=np.int64)
        if self._off_frontier is None:
            self._off_frontier = view.offsets_stack[:, fr]
        observers = self._rep_parent[rep_ids][:, fr]
        offers = self._rep_belief.offer_pairs_matrix(
            rep_ids, observers, fr, view.has_stack, view.has_packed
        )
        return view.earliest_wakes(
            t, rep_ids, fr, offers, self._off_frontier
        )
