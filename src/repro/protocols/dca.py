"""DCA: duty-cycle-aware tree flooding for reliable links (paper ref [10]).

Wang & Liu's INFOCOM'09 scheme builds a *delay-optimal* forwarding
structure from the working schedules themselves: the cost of edge
``u -> v`` is the sleep latency from ``u``'s wake phase to ``v``'s next
active slot, and packets flow along the resulting shortest-delay tree
only.

The scheme assumes **reliable links** — under loss it has no forwarding
diversity (one parent per node), so its delay degrades faster than OPT /
DBAO / OF, which is exactly why the paper's own analysis calls for
loss-aware designs. We include it as the reliable-link baseline.

Contention between tree senders is serialized by deterministic id-based
back-off within carrier-sense groups (the scheme's TDMA-like schedule
makes simultaneous same-group sends rare to begin with).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

import numpy as np

from ..net.radio import TxBatch, csma_select
from ..net.topology import SOURCE, Topology
from ._belief import NeighborBelief
from .base import FloodingProtocol, SimView, earliest_wake, register_protocol

__all__ = ["DutyCycleAwareFlooding", "build_delay_optimal_tree"]


def build_delay_optimal_tree(topo: Topology, offsets: np.ndarray, period: int):
    """Time-dependent Dijkstra: earliest-arrival tree under sleep latency.

    ``dist[v]`` is the earliest slot (starting from slot 0 at the source)
    at which ``v`` can first hold the packet, assuming reliable links and
    no contention; ``parent`` realizes those paths.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    n = topo.n_nodes
    if offsets.shape != (n,):
        raise ValueError(f"offsets must have shape ({n},)")
    dist = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[SOURCE] = 0
    heap: List[Tuple[int, int]] = [(0, SOURCE)]
    done = np.zeros(n, dtype=bool)
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for v in topo.out_neighbors(u).tolist():
            if done[v]:
                continue
            # Wait from slot d until v's next active slot, then 1 TX slot.
            wait = (int(offsets[v]) - d) % period
            cand = d + wait + 1
            if cand < dist[v]:
                dist[v] = cand
                parent[v] = u
                heapq.heappush(heap, (cand, v))
    return parent, dist


@register_protocol
class DutyCycleAwareFlooding(FloodingProtocol):
    """Forward along the schedule-derived delay-optimal tree."""

    name = "dca"

    def __init__(self):
        self.init_kwargs: dict = {}
        self._topo = None
        self._parent: np.ndarray = None  # type: ignore[assignment]
        self._belief: NeighborBelief = None  # type: ignore[assignment]

    def prepare(self, topo, schedules, workload, rng):
        self._topo = topo
        self._schedules = schedules
        self._parent, _ = build_delay_optimal_tree(
            topo, schedules.offsets, schedules.period
        )
        self._belief = NeighborBelief(topo, workload.n_packets)
        # Quiescence frontier: the only candidate pairs are tree edges.
        rs = np.flatnonzero(self._parent >= 0)
        rs = rs[rs != SOURCE]
        self._frontier_r = rs
        self._frontier_s = self._parent[rs]

    def next_action_slot(self, t, awake, view):
        offers = self._belief.offer_pairs(
            self._frontier_s, self._frontier_r, view.possession_by_holder()
        )
        # The listen rule and sender conflicts only shrink slots further;
        # the tree-edge offer set stays a sound (conservative) frontier.
        return earliest_wake(self._schedules, t, self._frontier_r[offers])

    def propose_batch(self, t: int, awake: np.ndarray, view: SimView) -> TxBatch:
        choices: Dict[int, Tuple[int, int]] = {}
        # RX-mode rule: see FlashFlooding.propose.
        listening = {
            int(v) for v in awake.tolist()
            if v != SOURCE and view.held_packets(int(v)).size < view.n_packets
        }
        for r in awake.tolist():
            if r == SOURCE:
                continue
            s = int(self._parent[r])
            if s < 0 or s in choices or s in listening:
                continue
            head = view.fcfs_head(s, self._belief.believed_needs(s, r))
            if head is not None:
                choices[s] = (r, head)
        if not choices:
            return TxBatch.empty()
        winners, _ = csma_select(sorted(choices), self._topo)  # id back-off
        n = len(winners)
        out_s = np.fromiter(winners, dtype=np.int64, count=n)
        out_r = np.empty(n, dtype=np.int64)
        out_p = np.empty(n, dtype=np.int64)
        for i, winner in enumerate(winners):
            r, pkt = choices[winner]
            out_r[i] = r
            out_p[i] = pkt
        return TxBatch(out_s, out_r, out_p)

    def observe(self, t, outcome, view):
        # Tree parents track their children via ACK possession summaries.
        for rec in outcome.receptions:
            if not rec.overheard:
                self._belief.sync_possession(
                    rec.sender, rec.receiver, view.held_packets(rec.receiver)
                )
