"""OF: Opportunistic Flooding (Guo et al., MobiCom'09; paper Sec. V-A).

OF floods over an energy-optimal (ETX) tree and augments it with
*opportunistic* forwarding over non-tree links, gated by a sender-side
statistical-delay decision:

* **Tree forwarding** — a node always forwards a needed packet to a
  waking tree child (standard tree flooding).
* **Opportunistic forwarding** — when a non-tree out-neighbor ``r``
  wakes, the sender forwards packet ``p`` only if the copy is
  *statistically early*: its age plus the expected hop delay beats the
  ``q``-quantile of ``r``'s tree-path delay distribution. Late copies are
  suppressed — the tree will deliver them about as fast anyway, and
  transmitting them would only waste energy and cause collisions.
* **Random back-off** — contending senders that hear each other pick a
  winner by random back-off (OF has no deterministic rank assignment);
  hidden senders still collide.

The quantile threshold ``opp_quantile`` is OF's key knob (the MobiCom
paper's forwarding-probability threshold); the ablation bench sweeps it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..net.radio import TxBatch, csma_select
from ..net.topology import SOURCE
from ._belief import NeighborBelief
from .base import FloodingProtocol, SimView, earliest_wake, register_protocol
from .tree import EtxTree, build_etx_tree, hop_delay_moments

__all__ = ["OpportunisticFlooding"]


@register_protocol
class OpportunisticFlooding(FloodingProtocol):
    """ETX-tree flooding with statistically-gated opportunistic links."""

    name = "of"

    def __init__(self, opp_quantile: float = 0.8):
        if not (0.0 < opp_quantile < 1.0):
            raise ValueError(
                f"opportunistic quantile must be in (0, 1), got {opp_quantile}"
            )
        self.opp_quantile = float(opp_quantile)
        self.init_kwargs = {"opp_quantile": self.opp_quantile}
        self._topo = None
        self._tree: EtxTree = None  # type: ignore[assignment]
        self._belief: NeighborBelief = None  # type: ignore[assignment]
        self._rng: np.random.Generator = None  # type: ignore[assignment]
        self._period = 0
        self._gen_slots: np.ndarray = None  # type: ignore[assignment]
        self._quantiles: np.ndarray = None  # type: ignore[assignment]

    def prepare(self, topo, schedules, workload, rng):
        self._topo = topo
        self._period = schedules.period
        self._schedules = schedules
        self._rng = rng
        self._tree = build_etx_tree(topo, schedules.period)
        self._belief = NeighborBelief(topo, workload.n_packets)
        self._gen_slots = workload.generation_slots()
        self._quantiles = np.asarray(
            [
                self._tree.delay_quantile(v, self.opp_quantile)
                for v in range(topo.n_nodes)
            ]
        )
        # Hot-path precomputation: per-link expected hop delay (T / q) and
        # each node's own expected tree delay, both plain array lookups.
        with np.errstate(divide="ignore"):
            self._hop_mean = np.where(
                topo.prr > 0.0, schedules.period / topo.prr, np.inf
            )
        self._own_mean = np.asarray(self._tree.delay_mean, dtype=np.float64)

    # ------------------------------------------------------------------

    def _wants_to_send(
        self, t: int, s: int, r: int, head: int, view: SimView
    ) -> bool:
        """OF's forwarding rule for sender ``s`` with head packet ``head``."""
        if self._tree.is_tree_edge(s, r):
            return True
        # Opportunistic link: forward only statistically-early copies. The
        # sender estimates how long the packet has been in flight from the
        # copy's arrival at itself: it arrived after roughly its own
        # tree-path delay, so elapsed ~ (t - arrival_here) + E[tree delay
        # to here]. Forward only if the extra hop still beats the
        # receiver's tree-delay quantile.
        own_mean = self._own_mean[s]
        if not np.isfinite(own_mean):
            return False
        arrival_here = view.arrival_slot(s, head)
        estimated_age = (t - arrival_here) + own_mean
        return estimated_age + self._hop_mean[s, r] <= self._quantiles[r]

    def propose_batch(self, t: int, awake: np.ndarray, view: SimView) -> TxBatch:
        choices: Dict[int, Tuple[int, int]] = {}
        for r in awake.tolist():
            if r == SOURCE:
                continue
            nbs = self._topo.in_neighbors(r)
            if nbs.size == 0:
                continue
            needs = self._belief.needs_matrix(r, nbs)
            heads, valid = view.fcfs_heads_batch(nbs, needs)
            for i, s in enumerate(nbs.tolist()):
                if not valid[i] or s in choices:
                    continue  # nothing to offer / one TX per sender per slot
                head = int(heads[i])
                if self._wants_to_send(t, s, r, head, view):
                    choices[s] = (r, head)
        if not choices:
            return TxBatch.empty()

        # Random back-off: contenders draw ranks uniformly at random (OF
        # has no deterministic rank assignment).
        senders = np.asarray(sorted(choices))
        ranked = senders[self._rng.permutation(senders.size)].tolist()
        winners, _ = csma_select(ranked, self._topo)
        n = len(winners)
        out_s = np.fromiter(winners, dtype=np.int64, count=n)
        out_r = np.empty(n, dtype=np.int64)
        out_p = np.empty(n, dtype=np.int64)
        for i, winner in enumerate(winners):
            r, pkt = choices[winner]
            out_r[i] = r
            out_p[i] = pkt
        return TxBatch(out_s, out_r, out_p)

    def next_action_slot(self, t, awake, view):
        # Frontier over every believed in-neighbor link. The statistical
        # lateness gate (:meth:`_wants_to_send`) only suppresses choices,
        # so the ungated offer set is a conservative superset — crucially
        # it also bounds the back-off permutation draw: choices (and the
        # RNG consumption) are empty whenever no link offers.
        receivers = self._belief.offer_receivers(view.possession_by_holder())
        receivers = receivers[receivers != SOURCE]
        return earliest_wake(self._schedules, t, receivers)

    def observe(self, t, outcome, view):
        # The receiver's ACK piggybacks its possession summary.
        for rec in outcome.receptions:
            if not rec.overheard:
                self._belief.sync_possession(
                    rec.sender, rec.receiver, view.held_packets(rec.receiver)
                )
