"""OF: Opportunistic Flooding (Guo et al., MobiCom'09; paper Sec. V-A).

OF floods over an energy-optimal (ETX) tree and augments it with
*opportunistic* forwarding over non-tree links, gated by a sender-side
statistical-delay decision:

* **Tree forwarding** — a node always forwards a needed packet to a
  waking tree child (standard tree flooding).
* **Opportunistic forwarding** — when a non-tree out-neighbor ``r``
  wakes, the sender forwards packet ``p`` only if the copy is
  *statistically early*: its age plus the expected hop delay beats the
  ``q``-quantile of ``r``'s tree-path delay distribution. Late copies are
  suppressed — the tree will deliver them about as fast anyway, and
  transmitting them would only waste energy and cause collisions.
* **Random back-off** — contending senders that hear each other pick a
  winner by random back-off (OF has no deterministic rank assignment);
  hidden senders still collide.

The quantile threshold ``opp_quantile`` is OF's key knob (the MobiCom
paper's forwarding-probability threshold); the ablation bench sweeps it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..net.radio import TxBatch, csma_select, csma_select_reps
from ..net.topology import SOURCE
from ._belief import NeighborBelief, RepNeighborBelief
from ._repbatch import candidate_rows, flatten_sender_lists
from .base import (
    FloodingProtocol,
    RepSimView,
    SimView,
    earliest_wake,
    phase_cache_period,
    register_protocol,
)
from .tree import EtxTree, build_etx_tree, hop_delay_moments

__all__ = ["OpportunisticFlooding"]


@register_protocol
class OpportunisticFlooding(FloodingProtocol):
    """ETX-tree flooding with statistically-gated opportunistic links."""

    name = "of"

    def __init__(self, opp_quantile: float = 0.8):
        if not (0.0 < opp_quantile < 1.0):
            raise ValueError(
                f"opportunistic quantile must be in (0, 1), got {opp_quantile}"
            )
        self.opp_quantile = float(opp_quantile)
        self.init_kwargs = {"opp_quantile": self.opp_quantile}
        self._topo = None
        self._tree: EtxTree = None  # type: ignore[assignment]
        self._belief: NeighborBelief = None  # type: ignore[assignment]
        self._rng: np.random.Generator = None  # type: ignore[assignment]
        self._period = 0
        self._gen_slots: np.ndarray = None  # type: ignore[assignment]
        self._quantiles: np.ndarray = None  # type: ignore[assignment]

    def prepare(self, topo, schedules, workload, rng):
        self._topo = topo
        self._period = schedules.period
        self._schedules = schedules
        self._rng = rng
        self._tree = build_etx_tree(topo, schedules.period)
        self._belief = NeighborBelief(topo, workload.n_packets)
        self._gen_slots = workload.generation_slots()
        self._quantiles = np.asarray(
            [
                self._tree.delay_quantile(v, self.opp_quantile)
                for v in range(topo.n_nodes)
            ]
        )
        # Hot-path precomputation: per-link expected hop delay (T / q) and
        # each node's own expected tree delay, both plain array lookups.
        with np.errstate(divide="ignore"):
            self._hop_mean = np.where(
                topo.prr > 0.0, schedules.period / topo.prr, np.inf
            )
        self._own_mean = np.asarray(self._tree.delay_mean, dtype=np.float64)

    # ------------------------------------------------------------------

    def _wants_to_send(
        self, t: int, s: int, r: int, head: int, view: SimView
    ) -> bool:
        """OF's forwarding rule for sender ``s`` with head packet ``head``."""
        if self._tree.is_tree_edge(s, r):
            return True
        # Opportunistic link: forward only statistically-early copies. The
        # sender estimates how long the packet has been in flight from the
        # copy's arrival at itself: it arrived after roughly its own
        # tree-path delay, so elapsed ~ (t - arrival_here) + E[tree delay
        # to here]. Forward only if the extra hop still beats the
        # receiver's tree-delay quantile.
        own_mean = self._own_mean[s]
        if not np.isfinite(own_mean):
            return False
        arrival_here = view.arrival_slot(s, head)
        estimated_age = (t - arrival_here) + own_mean
        return estimated_age + self._hop_mean[s, r] <= self._quantiles[r]

    def propose_batch(self, t: int, awake: np.ndarray, view: SimView) -> TxBatch:
        choices: Dict[int, Tuple[int, int]] = {}
        for r in awake.tolist():
            if r == SOURCE:
                continue
            nbs = self._topo.in_neighbors(r)
            if nbs.size == 0:
                continue
            needs = self._belief.needs_matrix(r, nbs)
            heads, valid = view.fcfs_heads_batch(nbs, needs)
            for i, s in enumerate(nbs.tolist()):
                if not valid[i] or s in choices:
                    continue  # nothing to offer / one TX per sender per slot
                head = int(heads[i])
                if self._wants_to_send(t, s, r, head, view):
                    choices[s] = (r, head)
        if not choices:
            return TxBatch.empty()

        # Random back-off: contenders draw ranks uniformly at random (OF
        # has no deterministic rank assignment).
        senders = np.asarray(sorted(choices))
        ranked = senders[self._rng.permutation(senders.size)].tolist()
        winners, _ = csma_select(ranked, self._topo)
        n = len(winners)
        out_s = np.fromiter(winners, dtype=np.int64, count=n)
        out_r = np.empty(n, dtype=np.int64)
        out_p = np.empty(n, dtype=np.int64)
        for i, winner in enumerate(winners):
            r, pkt = choices[winner]
            out_r[i] = r
            out_p[i] = pkt
        return TxBatch(out_s, out_r, out_p)

    def next_action_slot(self, t, awake, view):
        # Frontier over every believed in-neighbor link. The statistical
        # lateness gate (:meth:`_wants_to_send`) only suppresses choices,
        # so the ungated offer set is a conservative superset — crucially
        # it also bounds the back-off permutation draw: choices (and the
        # RNG consumption) are empty whenever no link offers.
        receivers = self._belief.offer_receivers(view.possession_by_holder())
        receivers = receivers[receivers != SOURCE]
        return earliest_wake(self._schedules, t, receivers)

    def observe(self, t, outcome, view):
        # The receiver's ACK piggybacks its possession summary.
        for rec in outcome.receptions:
            if not rec.overheard:
                self._belief.sync_possession(
                    rec.sender, rec.receiver, view.held_packets(rec.receiver)
                )

    # -- Replication-batched path ---------------------------------------
    #
    # OF's proposal flattens to (replication, sender, receiver) rows per
    # schedule phase: the statistical gate becomes one vectorized float
    # comparison over the rows (evaluated with the serial operation
    # order, so borderline comparisons agree bit for bit), the
    # one-TX-per-sender rule a first-row-per-(replication, sender) pick,
    # and the random back-off a per-replication permutation drawn from
    # each replication's own channel stream — exactly when the serial
    # run would draw one.

    def rep_batchable(self) -> bool:
        return True

    def prepare_reps(self, topo, schedules_list, workload, rngs):
        # Serial prepare consumes no randomness; the ETX-tree parents
        # (and so the tree-edge set) are period-independent, while the
        # delay statistics the opportunistic gate tests scale with the
        # wake period — build those per distinct period so a cross-cell
        # stack mixing duty cycles gates each replication exactly as its
        # own serial run would.
        self.prepare(topo, schedules_list[0], workload, rngs[0])
        self._rep_rngs = list(rngs)
        self._rep_schedules = list(schedules_list)
        n = topo.n_nodes
        periods = [int(s.period) for s in schedules_list]
        distinct = sorted(set(periods))
        quant = np.empty((len(distinct), n))
        own = np.empty((len(distinct), n))
        hop = np.empty((len(distinct), n, n))
        for d, period in enumerate(distinct):
            tree = (
                self._tree if period == int(self._period)
                else build_etx_tree(topo, period)
            )
            quant[d] = [
                tree.delay_quantile(v, self.opp_quantile) for v in range(n)
            ]
            own[d] = np.asarray(tree.delay_mean, dtype=np.float64)
            with np.errstate(divide="ignore"):
                hop[d] = np.where(topo.prr > 0.0, period / topo.prr, np.inf)
        self._pidx = np.asarray(
            [distinct.index(p) for p in periods], dtype=np.int64)
        self._quant_stack = quant
        self._own_stack = own
        self._hop_stack = hop
        tree_edge = np.zeros((n, n), dtype=bool)
        parent = np.asarray(self._tree.parent, dtype=np.int64)
        kids = np.flatnonzero(parent >= 0)
        tree_edge[parent[kids], kids] = True
        self._tree_edge = tree_edge
        self._rep_belief = RepNeighborBelief(
            topo, workload.n_packets, len(schedules_list))
        self._in_sizes, self._in_starts, self._in_flat = flatten_sender_lists(
            [topo.in_neighbors(r) for r in range(n)]
        )
        self._rep_cache_period = phase_cache_period(schedules_list)
        self._rep_phase_cache: Dict[int, Tuple] = {}
        # Quiescence frontier: every believed in-neighbor link with a
        # non-source receiver — the ungated offer superset the serial
        # next_action_slot scans (it also bounds RNG consumption).
        s_parts, r_parts = [], []
        for r in range(n):
            if r == SOURCE:
                continue
            nbs = topo.in_neighbors(r)
            if nbs.size:
                s_parts.append(nbs)
                r_parts.append(np.full(nbs.size, r, dtype=np.int64))
        if s_parts:
            self._frontier_s = np.concatenate(s_parts)
            self._frontier_r = np.concatenate(r_parts)
        else:
            self._frontier_s = np.empty(0, dtype=np.int64)
            self._frontier_r = np.empty(0, dtype=np.int64)
        self._off_frontier = None

    def _rep_rows(self, t: int):
        """Phase-cached candidate rows plus OF's static gate columns."""
        key = t % self._rep_cache_period if self._rep_cache_period else None
        if key is not None:
            hit = self._rep_phase_cache.get(key)
            if hit is not None:
                return hit
        kk, ss, rr = candidate_rows(
            self._rep_schedules, t, self._in_sizes, self._in_starts,
            self._in_flat,
        )
        pid = self._pidx[kk]
        own_r = self._own_stack[pid, ss]
        rows = (
            kk, ss, rr,
            self._tree_edge[ss, rr],
            own_r,
            self._hop_stack[pid, ss, rr],
            self._quant_stack[pid, rr],
            np.isfinite(own_r),
        )
        if key is not None:
            self._rep_phase_cache[key] = rows
        return rows

    def propose_reps(self, t, rep_ids, awake_by_rep, view: RepSimView):
        empty = np.empty(0, dtype=np.int64)
        kk, ss, rr, tree_e, own_r, hop_r, quant_r, fin = self._rep_rows(t)
        if kk.size == 0:
            return empty, empty, empty, empty
        if rep_ids.size < len(self._rep_schedules):
            active = np.zeros(len(self._rep_schedules), dtype=bool)
            active[rep_ids] = True
            keep = active[kk]
            if not keep.all():
                kk, ss, rr = kk[keep], ss[keep], rr[keep]
                tree_e, own_r = tree_e[keep], own_r[keep]
                hop_r, quant_r, fin = hop_r[keep], quant_r[keep], fin[keep]
        needs = self._rep_belief.needs_pairs(kk, ss, rr)
        heads, valid = view.fcfs_heads_pairs(kk, ss, needs)
        if not valid.any():
            return empty, empty, empty, empty
        # The statistical gate (_wants_to_send), vectorized. Heads on
        # invalid rows are argmin garbage; `valid &` masks them out.
        arrival = view.arrival_stack[kk, heads, ss]
        age = (t - arrival) + own_r
        ok = valid & (tree_e | (fin & (age + hop_r <= quant_r)))
        if not ok.any():
            return empty, empty, empty, empty
        k_o, s_o, r_o, h_o = kk[ok], ss[ok], rr[ok], heads[ok]

        # One TX per sender per slot: the serial loop keeps the first
        # waking receiver (traversal order) whose row is valid and
        # gated; rows are in that exact order, so the first flat
        # occurrence per (replication, sender) is the serial choice.
        n = self._topo.n_nodes
        _, first_idx = np.unique(k_o * n + s_o, return_index=True)
        chosen_k = k_o[first_idx]  # ascending (replication, sender)
        chosen_s = s_o[first_idx]
        chosen_r = r_o[first_idx]
        chosen_p = h_o[first_idx]

        # Random back-off: each replication with a non-empty choice set
        # draws one permutation from its own channel stream — the same
        # draw, at the same point in the stream, as its serial run.
        reps_u, starts = np.unique(chosen_k, return_index=True)
        bounds = np.append(starts, chosen_k.size)
        parts = []
        for i, k in enumerate(reps_u.tolist()):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            parts.append(lo + self._rep_rngs[k].permutation(hi - lo))
        rank = np.concatenate(parts)
        win = csma_select_reps(
            np.searchsorted(rep_ids, chosen_k[rank]), chosen_s[rank],
            self._topo,
        )
        rows = rank[win]
        if rows.size == 0:
            return empty, empty, empty, empty
        return chosen_k[rows], chosen_s[rows], chosen_r[rows], chosen_p[rows]

    def observe_reps(self, t, outcome, view: RepSimView):
        self._rep_belief.sync_ack_summaries(outcome, view)

    def next_action_slots(self, t, rep_ids, view: RepSimView):
        if self._off_frontier is None:
            self._off_frontier = view.offsets_stack[:, self._frontier_r]
        offers = self._rep_belief.offer_pairs_reps(
            rep_ids, self._frontier_s, self._frontier_r, view.has_stack,
            view.has_packed,
        )
        return view.earliest_wakes(
            t, rep_ids, self._frontier_r, offers, self._off_frontier
        )
