"""Pluggable execution backends and a content-addressed result store.

``repro.exec`` decouples *what* the harness simulates from *how* the
work is dispatched and memoized:

* :class:`Executor` / :class:`SerialExecutor` / :class:`ParallelExecutor`
  — map independent ``(spec, replication)`` tasks serially or over a
  process pool, with bit-identical results either way;
* :class:`ResultStore` — layered (memory + optional disk) cache of
  :class:`~repro.sim.runner.RunSummary` payloads keyed by
  ``hash(spec, topology, engine version)``;
* :class:`ExecutionContext` — the process-wide pair the experiment
  harness and CLI route everything through (``--jobs``/``--cache-dir``).
"""

from .context import (
    ExecutionContext,
    configure_execution,
    execution_context,
    reset_execution,
    use_execution,
)
from .executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    WorkerCrashError,
    resolve_executor,
)
from .store import ResultStore, StoreStats, result_key, spec_fingerprint

__all__ = [
    "Executor", "SerialExecutor", "ParallelExecutor", "WorkerCrashError",
    "resolve_executor",
    "ResultStore", "StoreStats", "result_key", "spec_fingerprint",
    "ExecutionContext", "execution_context", "configure_execution",
    "reset_execution", "use_execution",
]
