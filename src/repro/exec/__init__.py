"""Pluggable execution backends and a content-addressed result store.

``repro.exec`` decouples *what* the harness simulates from *how* the
work is dispatched and memoized:

* :class:`Executor` / :class:`SerialExecutor` / :class:`ParallelExecutor`
  — map independent ``(spec, replication)`` tasks serially or over a
  **warm, reusable** process pool, with bit-identical results either
  way; dispatch-shared state (the topology) broadcasts once per
  dispatch over :mod:`multiprocessing.shared_memory`
  (:mod:`repro.exec.shared`), and every dispatch is metered by an
  :class:`ExecutorStats` record;
* :class:`ResultStore` — layered (memory + optional disk) cache of
  :class:`~repro.sim.runner.RunSummary` payloads keyed by
  ``hash(spec, topology, engine version)``, with batched
  ``get_many``/``put_many`` access over a one-scan directory index;
* :class:`ExecutionContext` — the process-wide pair the experiment
  harness and CLI route everything through (``--jobs``/``--cache-dir``),
  with an explicit ``close()`` releasing pools and shared segments.
"""

from .context import (
    ExecutionContext,
    configure_execution,
    execution_context,
    reset_execution,
    use_execution,
)
from .executor import (
    Executor,
    ExecutorStats,
    ParallelExecutor,
    SerialExecutor,
    WorkerCrashError,
    resolve_executor,
)
from .shared import (
    PickledRef,
    SharedTopologyHandle,
    SharedTopologyRef,
    share_topology,
)
from .store import (
    EntryStatus,
    GcReport,
    MergeError,
    MergeReport,
    ResultStore,
    StoreStats,
    VerifyReport,
    gc_store,
    merge_store,
    read_manifest,
    result_key,
    spec_fingerprint,
    update_manifest,
    verify_store,
)

__all__ = [
    "Executor", "SerialExecutor", "ParallelExecutor", "ExecutorStats",
    "WorkerCrashError", "resolve_executor",
    "SharedTopologyHandle", "SharedTopologyRef", "PickledRef",
    "share_topology",
    "ResultStore", "StoreStats", "result_key", "spec_fingerprint",
    "EntryStatus", "VerifyReport", "MergeReport", "GcReport", "MergeError",
    "verify_store", "merge_store", "gc_store",
    "read_manifest", "update_manifest",
    "ExecutionContext", "execution_context", "configure_execution",
    "reset_execution", "use_execution",
]
