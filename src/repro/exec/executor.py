"""Pluggable execution backends for embarrassingly parallel simulation.

Every Sec. V artifact decomposes into independent ``(spec, replication)``
tasks — the runner derives each replication's schedule/channel RNG
streams from ``(seed, rep)`` alone, so tasks never share random state.
An :class:`Executor` maps a picklable function over such tasks; the two
implementations are

* :class:`SerialExecutor` — a plain in-process loop (the reference
  backend; zero overhead, always available), and
* :class:`ParallelExecutor` — a **warm** ``concurrent.futures`` process
  pool: spun up lazily on first dispatch and reused across dispatches
  until ``close()``, with chunked dispatch and one-shot broadcast of
  dispatch-shared state. Broadcast items exposing
  ``to_shared()``/``fingerprint()`` (the :class:`~repro.net.topology.Topology`)
  travel via shared-memory segments instead of per-chunk pickling —
  task payloads shrink from megabytes to tuples of ints. Worker crashes
  (segfault, OOM-kill, interpreter death) are surfaced as
  :class:`WorkerCrashError` instead of the opaque ``BrokenProcessPool``,
  the dead pool is discarded, and the next dispatch re-arms a fresh one.

Every dispatch is metered: :class:`ExecutorStats` records tasks, chunks,
bytes actually pickled to workers, bytes transported zero-copy, pool
spin-up time, and the per-task wall-time spread. ``executor.stats``
accumulates across dispatches, ``executor.last`` holds the most recent
dispatch alone.

Determinism contract: for the same task list and a deterministic task
function, every backend returns bit-identical results in task order.
Parallelism only changes *when* a task runs, never its inputs.
"""

from __future__ import annotations

import atexit
import math
import os
import pickle
import time
import weakref
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from .shared import InlineRef, PickledRef, resolve_ref

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "ExecutorStats",
    "WorkerCrashError",
    "resolve_executor",
]

T = TypeVar("T")
R = TypeVar("R")


class WorkerCrashError(RuntimeError):
    """A parallel worker died without returning (crash, OOM-kill, ...).

    Raised in place of ``concurrent.futures``' ``BrokenProcessPool`` so
    callers see how many tasks were in flight and which backend failed.
    The broken pool is discarded; the executor re-arms a fresh pool on
    its next dispatch.
    """


@dataclass
class ExecutorStats:
    """Dispatch observability: what crossed the process boundary, and when.

    ``pickled_bytes`` counts bytes actually serialized into worker
    payloads (function refs, broadcast refs, task tuples); with
    shared-memory broadcast the substrate does not appear here —
    ``shared_bytes`` counts what traveled zero-copy instead.
    """

    dispatches: int = 0
    tasks: int = 0
    chunks: int = 0
    pickled_bytes: int = 0
    shared_bytes: int = 0
    pool_spinups: int = 0
    spinup_s: float = 0.0
    task_s_total: float = 0.0
    task_s_min: float = math.inf
    task_s_max: float = 0.0
    #: Replication batching (``--reps-per-task``): tasks that carried a
    #: multi-replication chunk, how many replications rode in them, and
    #: the widest chunk seen. ``serial_reps`` counts the replications
    #: that went out as ordinary width-1 tasks instead (non-batchable
    #: scenarios and chunk tails) — together with ``batched_reps`` it
    #: yields the dispatch's batch coverage.
    rep_batches: int = 0
    batched_reps: int = 0
    serial_reps: int = 0
    max_batch_width: int = 0
    #: Cross-cell stacking: ``("stack", …)`` tasks dispatched and the
    #: grid cells they merged. ``stacked_cells / stack_tasks`` is the
    #: mean stacking ratio — the fig10-column diagnosis number.
    stack_tasks: int = 0
    stacked_cells: int = 0
    #: Scratch-arena reuse across the dispatch (in-process backends):
    #: buffer borrows served and the subset that forced a fresh backing
    #: allocation. ``arena_grows ≈ 0`` on a warm arena.
    arena_borrows: int = 0
    arena_grows: int = 0

    def note_stacks(self, n_tasks: int, n_cells: int) -> None:
        """Meter cross-cell stacked tasks and the cells they merged."""
        self.stack_tasks += int(n_tasks)
        self.stacked_cells += int(n_cells)

    def note_arena(self, borrows: int, grows: int) -> None:
        """Meter scratch-arena borrow/grow deltas for one dispatch."""
        self.arena_borrows += int(borrows)
        self.arena_grows += int(grows)

    def note_rep_batches(self, widths: Sequence[int]) -> None:
        """Meter replication-batched tasks (``widths`` in reps per task)."""
        for w in widths:
            if w > 1:
                self.rep_batches += 1
                self.batched_reps += int(w)
                if w > self.max_batch_width:
                    self.max_batch_width = int(w)
            else:
                self.serial_reps += int(w)

    def record_task_times(self, times: Sequence[float]) -> None:
        for t in times:
            self.task_s_total += t
            if t < self.task_s_min:
                self.task_s_min = t
            if t > self.task_s_max:
                self.task_s_max = t

    def task_spread(self) -> Tuple[float, float, float]:
        """(min, mean, max) per-task wall-time in seconds."""
        if not self.tasks or not math.isfinite(self.task_s_min):
            return (0.0, 0.0, 0.0)
        return (self.task_s_min, self.task_s_total / self.tasks,
                self.task_s_max)

    def merge(self, other: "ExecutorStats") -> None:
        self.dispatches += other.dispatches
        self.tasks += other.tasks
        self.chunks += other.chunks
        self.pickled_bytes += other.pickled_bytes
        self.shared_bytes += other.shared_bytes
        self.pool_spinups += other.pool_spinups
        self.spinup_s += other.spinup_s
        self.task_s_total += other.task_s_total
        self.task_s_min = min(self.task_s_min, other.task_s_min)
        self.task_s_max = max(self.task_s_max, other.task_s_max)
        self.rep_batches += other.rep_batches
        self.batched_reps += other.batched_reps
        self.serial_reps += other.serial_reps
        self.max_batch_width = max(self.max_batch_width, other.max_batch_width)
        self.stack_tasks += other.stack_tasks
        self.stacked_cells += other.stacked_cells
        self.arena_borrows += other.arena_borrows
        self.arena_grows += other.arena_grows

    def __str__(self) -> str:
        lo, mean, hi = self.task_spread()
        parts = [
            f"{self.dispatches} dispatch(es), {self.tasks} task(s) "
            f"in {self.chunks} chunk(s)",
            f"{_human_bytes(self.pickled_bytes)} pickled",
        ]
        if self.shared_bytes:
            parts.append(f"{_human_bytes(self.shared_bytes)} shared-memory")
        if self.rep_batches or self.serial_reps:
            total = self.batched_reps + self.serial_reps
            pct = 100.0 * self.batched_reps / total if total else 0.0
            parts.append(
                f"{self.batched_reps} rep(s) in {self.rep_batches} "
                f"batched task(s) (max {self.max_batch_width}/task, "
                f"{pct:.0f}% batch coverage)"
            )
        if self.stack_tasks:
            ratio = self.stacked_cells / self.stack_tasks
            parts.append(
                f"{self.stacked_cells} cell(s) in {self.stack_tasks} "
                f"stacked task(s) ({ratio:.1f} cells/stack)"
            )
        if self.arena_borrows:
            parts.append(
                f"arena {self.arena_borrows} borrow(s) / "
                f"{self.arena_grows} grow(s)"
            )
        if self.pool_spinups:
            parts.append(
                f"{self.pool_spinups} pool spin-up(s) "
                f"({self.spinup_s * 1e3:.0f} ms)"
            )
        parts.append(
            f"task wall {lo * 1e3:.0f}/{mean * 1e3:.0f}/{hi * 1e3:.0f} ms "
            f"(min/mean/max)"
        )
        return "; ".join(parts)


def _human_bytes(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n} B"  # pragma: no cover - unreachable


class Executor(ABC):
    """Maps a function over independent tasks, preserving task order."""

    #: Nominal worker count (1 for the serial backend).
    jobs: int = 1

    def __init__(self):
        #: Cumulative stats across every dispatch of this executor.
        self.stats = ExecutorStats()
        #: Stats of the most recent dispatch alone (``None`` before any).
        self.last: Optional[ExecutorStats] = None

    @abstractmethod
    def map(self, fn: Callable[..., R], tasks: Iterable[T],
            broadcast: Tuple = ()) -> List[R]:
        """Apply ``fn`` to every task; results come back in task order.

        With ``broadcast`` items the task function is called as
        ``fn(*broadcast, task)`` — parallel backends transport the
        broadcast once per dispatch instead of once per task.
        """

    def close(self) -> None:
        """Release pooled workers and shared segments (no-op by default)."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(jobs={self.jobs})"


def _run_inline(fn, task_list, broadcast, stats: ExecutorStats) -> List:
    """Shared in-process path (serial backend, 1-job/1-task fallback)."""
    results = []
    times = []
    for task in task_list:
        t0 = time.perf_counter()
        results.append(fn(*broadcast, task) if broadcast else fn(task))
        times.append(time.perf_counter() - t0)
    stats.dispatches += 1
    stats.tasks += len(results)
    stats.record_task_times(times)
    return results


class SerialExecutor(Executor):
    """The reference backend: run every task in-process, in order."""

    jobs = 1

    def map(self, fn: Callable[..., R], tasks: Iterable[T],
            broadcast: Tuple = ()) -> List[R]:
        dispatch = ExecutorStats()
        results = _run_inline(fn, tasks, broadcast, dispatch)
        self.stats.merge(dispatch)
        self.last = dispatch
        return results


def _execute_chunk(payload: bytes):
    """Worker entry point: run one chunk, timing each task.

    The payload is pre-pickled by the dispatcher (so payload size is
    metered exactly once and never double-serialized); broadcast refs
    resolve through the worker-side memo — a warm worker attaches each
    shared topology once, then every later chunk finds it cached.
    """
    fn, refs, tasks = pickle.loads(payload)
    broadcast = tuple(resolve_ref(ref) for ref in refs)
    results = []
    times = []
    for task in tasks:
        t0 = time.perf_counter()
        results.append(fn(*broadcast, task) if broadcast else fn(task))
        times.append(time.perf_counter() - t0)
    return results, times


#: Executors with possibly-open pools/segments, closed at interpreter
#: exit as a safety net (weak refs: normal GC still runs ``__del__``).
_LIVE_EXECUTORS: "weakref.WeakSet[ParallelExecutor]" = weakref.WeakSet()


@atexit.register
def _close_live_executors() -> None:  # pragma: no cover - exit hook
    for ex in list(_LIVE_EXECUTORS):
        try:
            ex.close()
        except Exception:
            pass


class ParallelExecutor(Executor):
    """Warm process-pool backend with chunked dispatch and broadcast.

    Parameters
    ----------
    jobs:
        Worker-process count; defaults to ``os.cpu_count()``. With one
        job (or one task) the pool is skipped entirely and tasks run
        in-process — the 1-core fallback costs nothing beyond the serial
        path.
    chunksize:
        Tasks handed to a worker per dispatch. Default: enough chunks
        for ~4 rounds per worker (``ceil(n / (4 * jobs))``), which
        amortizes per-chunk payload pickling without starving the pool
        on skewed task durations.
    warm:
        Keep the pool alive between ``map`` calls (the default). A cold
        executor tears the pool down after every dispatch — the pre-warm
        behavior, kept for benchmarking and for callers that dispatch
        once in a long-lived process.
    shared_memory:
        Transport ``to_shared()``-capable broadcast items (topologies)
        via shared-memory segments. Off, or when segment creation fails,
        they fall back to once-per-chunk pickle payloads.

    ``fn`` and every task must be picklable (module-level functions and
    plain data); the runner's replication task satisfies this. The pool
    and any shared segments live until :meth:`close` (also invoked by
    ``__del__``, ``with``-exit and an atexit safety net); a closed
    executor transparently re-arms on its next dispatch, as does one
    whose pool died with :class:`WorkerCrashError`.
    """

    def __init__(self, jobs: Optional[int] = None,
                 chunksize: Optional[int] = None,
                 warm: bool = True, shared_memory: bool = True):
        super().__init__()
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.jobs = int(jobs) if jobs is not None else (os.cpu_count() or 1)
        self.chunksize = chunksize
        self.warm = bool(warm)
        self.shared_memory = bool(shared_memory)
        self._pool = None
        self._handles = {}  # broadcast token -> SharedTopologyHandle
        self._refs = {}     # broadcast token -> picklable ref
        _LIVE_EXECUTORS.add(self)

    # -- chunking ------------------------------------------------------

    def _chunksize_for(self, n_tasks: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        return max(1, math.ceil(n_tasks / (4 * self.jobs)))

    def _chunk_policy(self) -> str:
        if self.chunksize is not None:
            return str(self.chunksize)
        return f"auto:ceil(n/{4 * self.jobs})"

    def __repr__(self) -> str:
        mode = "warm" if self.warm else "cold"
        transport = "shm" if self.shared_memory else "pickle"
        return (
            f"{type(self).__name__}(jobs={self.jobs}, "
            f"chunksize={self._chunk_policy()}, {mode}, "
            f"broadcast={transport})"
        )

    # -- pool lifecycle ------------------------------------------------

    def _ensure_pool(self, dispatch: ExecutorStats):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor
            from multiprocessing import resource_tracker

            t0 = time.perf_counter()
            # Start the resource tracker *before* the workers fork: they
            # inherit its fd and report segment attachments to the one
            # shared tracker. A worker forked tracker-less would lazily
            # spawn its own on the first attach and warn about "leaked"
            # segments (that the owner meanwhile unlinked) at shutdown.
            resource_tracker.ensure_running()
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            dispatch.pool_spinups += 1
            dispatch.spinup_s += time.perf_counter() - t0
        return self._pool

    def _discard_pool(self, wait: bool = True) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def close(self) -> None:
        """Shut the pool down and unlink every shared segment.

        Idempotent; a later ``map`` re-arms from scratch.
        """
        self._discard_pool()
        handles, self._handles = self._handles, {}
        for handle in handles.values():
            handle.close()
        self._refs.clear()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- broadcast transport -------------------------------------------

    def _ref_for(self, item, dispatch: ExecutorStats):
        """A picklable ref for one broadcast item, cached by fingerprint."""
        if not (hasattr(item, "to_shared") and hasattr(item, "fingerprint")):
            return InlineRef(item)
        token = item.fingerprint()
        ref = self._refs.get(token)
        if ref is None:
            if self.shared_memory:
                try:
                    handle = item.to_shared()
                except Exception:
                    handle = None  # no /dev/shm etc. -> pickle fallback
                if handle is not None:
                    self._handles[token] = handle
                    dispatch.shared_bytes += handle.nbytes
                    ref = handle.ref
            if ref is None:
                ref = PickledRef(
                    token, pickle.dumps(item, pickle.HIGHEST_PROTOCOL)
                )
            self._refs[token] = ref
        return ref

    # -- dispatch ------------------------------------------------------

    def map(self, fn: Callable[..., R], tasks: Iterable[T],
            broadcast: Tuple = ()) -> List[R]:
        task_list = tasks if isinstance(tasks, list) else list(tasks)
        dispatch = ExecutorStats()
        if self.jobs <= 1 or len(task_list) <= 1:
            # In-process fallback: no pool, no pickling — and the task
            # iterable was materialized exactly once above.
            results = _run_inline(fn, task_list, broadcast, dispatch)
            self.stats.merge(dispatch)
            self.last = dispatch
            return results

        from concurrent.futures.process import BrokenProcessPool

        refs = tuple(self._ref_for(item, dispatch) for item in broadcast)
        chunksize = self._chunksize_for(len(task_list))
        payloads = [
            pickle.dumps((fn, refs, task_list[i:i + chunksize]),
                         pickle.HIGHEST_PROTOCOL)
            for i in range(0, len(task_list), chunksize)
        ]
        dispatch.dispatches = 1
        dispatch.tasks = len(task_list)
        dispatch.chunks = len(payloads)
        dispatch.pickled_bytes = sum(len(p) for p in payloads)

        pool = self._ensure_pool(dispatch)
        results: List[R] = []
        try:
            futures = [pool.submit(_execute_chunk, p) for p in payloads]
            for future in futures:
                chunk_results, chunk_times = future.result()
                results.extend(chunk_results)
                dispatch.record_task_times(chunk_times)
        except BrokenProcessPool as exc:
            self._discard_pool()  # re-armed lazily on the next dispatch
            raise WorkerCrashError(
                f"a worker process died while executing {len(task_list)} "
                f"task(s) on {self.jobs} worker(s); the usual causes are "
                f"out-of-memory kills and native crashes"
            ) from exc
        finally:
            if not self.warm:
                self._discard_pool()
            self.stats.merge(dispatch)
            self.last = dispatch
        return results


def resolve_executor(
    backend: Optional[str] = None, jobs: Optional[int] = None
) -> Executor:
    """Build an executor from CLI-ish ``backend``/``jobs`` settings.

    ``backend=None`` picks ``"parallel"`` when ``jobs`` asks for more
    than one worker and ``"serial"`` otherwise, so ``--jobs 4`` alone is
    enough to go parallel.
    """
    if backend is None:
        backend = "parallel" if (jobs is not None and jobs > 1) else "serial"
    if backend == "serial":
        return SerialExecutor()
    if backend == "parallel":
        return ParallelExecutor(jobs=jobs)
    raise ValueError(
        f"unknown execution backend {backend!r}; choose 'serial' or 'parallel'"
    )
