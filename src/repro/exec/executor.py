"""Pluggable execution backends for embarrassingly parallel simulation.

Every Sec. V artifact decomposes into independent ``(spec, replication)``
tasks — the runner derives each replication's schedule/channel RNG
streams from ``(seed, rep)`` alone, so tasks never share random state.
An :class:`Executor` maps a picklable function over such tasks; the two
implementations are

* :class:`SerialExecutor` — a plain in-process loop (the reference
  backend; zero overhead, always available), and
* :class:`ParallelExecutor` — a ``concurrent.futures``
  ``ProcessPoolExecutor`` with a configurable worker count and chunked
  dispatch. Worker crashes (segfault, OOM-kill, interpreter death) are
  surfaced as :class:`WorkerCrashError` instead of the opaque
  ``BrokenProcessPool``.

Determinism contract: for the same task list and a deterministic task
function, every backend returns bit-identical results in task order.
Parallelism only changes *when* a task runs, never its inputs.
"""

from __future__ import annotations

import math
import os
from abc import ABC, abstractmethod
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "WorkerCrashError",
    "resolve_executor",
]

T = TypeVar("T")
R = TypeVar("R")


class WorkerCrashError(RuntimeError):
    """A parallel worker died without returning (crash, OOM-kill, ...).

    Raised in place of ``concurrent.futures``' ``BrokenProcessPool`` so
    callers see how many tasks were in flight and which backend failed.
    """


class Executor(ABC):
    """Maps a function over independent tasks, preserving task order."""

    #: Nominal worker count (1 for the serial backend).
    jobs: int = 1

    @abstractmethod
    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every task; results come back in task order."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(jobs={self.jobs})"


class SerialExecutor(Executor):
    """The reference backend: run every task in-process, in order."""

    jobs = 1

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> List[R]:
        return [fn(task) for task in tasks]


class ParallelExecutor(Executor):
    """Process-pool backend with chunked dispatch.

    Parameters
    ----------
    jobs:
        Worker-process count; defaults to ``os.cpu_count()``. With one
        job (or one task) the pool is skipped entirely and tasks run
        in-process — the 1-core fallback costs nothing beyond the serial
        path.
    chunksize:
        Tasks handed to a worker per dispatch. Default: enough chunks
        for ~4 rounds per worker, which amortizes pickling of the shared
        topology without starving the pool on skewed task durations.

    ``fn`` and every task must be picklable (module-level functions and
    plain data); the runner's replication task satisfies this.
    """

    def __init__(self, jobs: Optional[int] = None, chunksize: Optional[int] = None):
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.jobs = int(jobs) if jobs is not None else (os.cpu_count() or 1)
        self.chunksize = chunksize

    def _chunksize_for(self, n_tasks: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        return max(1, math.ceil(n_tasks / (4 * self.jobs)))

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> List[R]:
        task_list: Sequence[T] = list(tasks)
        if self.jobs <= 1 or len(task_list) <= 1:
            return [fn(task) for task in task_list]

        from concurrent.futures import ProcessPoolExecutor as _Pool
        from concurrent.futures.process import BrokenProcessPool

        workers = min(self.jobs, len(task_list))
        try:
            with _Pool(max_workers=workers) as pool:
                return list(
                    pool.map(fn, task_list,
                             chunksize=self._chunksize_for(len(task_list)))
                )
        except BrokenProcessPool as exc:
            raise WorkerCrashError(
                f"a worker process died while executing {len(task_list)} "
                f"task(s) on {workers} worker(s); the usual causes are "
                f"out-of-memory kills and native crashes"
            ) from exc


def resolve_executor(
    backend: Optional[str] = None, jobs: Optional[int] = None
) -> Executor:
    """Build an executor from CLI-ish ``backend``/``jobs`` settings.

    ``backend=None`` picks ``"parallel"`` when ``jobs`` asks for more
    than one worker and ``"serial"`` otherwise, so ``--jobs 4`` alone is
    enough to go parallel.
    """
    if backend is None:
        backend = "parallel" if (jobs is not None and jobs > 1) else "serial"
    if backend == "serial":
        return SerialExecutor()
    if backend == "parallel":
        return ParallelExecutor(jobs=jobs)
    raise ValueError(
        f"unknown execution backend {backend!r}; choose 'serial' or 'parallel'"
    )
