"""Zero-copy broadcast transport for dispatch-shared state.

Monte Carlo grids fan hundreds of `(spec, replication)` tasks over one
fixed :class:`~repro.net.topology.Topology`, and until this module the
substrate rode along *inside every task tuple*: each dispatch chunk
re-pickled megabytes of PRR/position/RSSI matrices that every worker
already had. The broadcast transport ships such shared state once:

* :func:`share_topology` exports a topology's arrays into
  ``multiprocessing.shared_memory`` segments and returns a
  :class:`SharedTopologyHandle` whose picklable :class:`SharedTopologyRef`
  is a few hundred bytes of segment names and dtypes;
* workers resolve a ref with :func:`resolve_ref`, attaching **read-only
  zero-copy numpy views** over the segments
  (:meth:`~repro.net.topology.Topology.from_shared`) and memoizing the
  result by content fingerprint, so a warm worker pays the attach cost
  once per topology, not once per chunk;
* :class:`PickledRef` is the fallback when shared memory is unavailable
  (no ``/dev/shm``, exotic platforms): the payload is ordinary pickle
  bytes, still deduplicated worker-side by the same fingerprint token;
* :class:`InlineRef` wraps small broadcast items (e.g. the spec table)
  that are cheap enough to ride in each chunk payload.

Ownership contract: the *dispatching* process owns the segments — the
handle (via :meth:`SharedTopologyHandle.close`, or the executor's
``close()``) unlinks them. Workers only ever attach. Pool workers share
the dispatcher's ``multiprocessing.resource_tracker`` (its fd is
inherited by both fork- and spawn-started children), and the tracker
deduplicates registrations per segment name, so worker attachments
neither spuriously unlink a live segment at worker exit nor leave
leaked-resource warnings behind — the owner's single ``unlink()``
settles the books.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "SharedArraySpec",
    "SharedTopologyRef",
    "SharedTopologyHandle",
    "PickledRef",
    "InlineRef",
    "share_topology",
    "attach_array",
    "resolve_ref",
]

#: Worker-side cap on memoized broadcast objects (a sweep session uses a
#: handful of topologies at most; this only bounds pathological churn).
_CACHE_LIMIT = 8


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable descriptor of one array living in a shared segment."""

    name: str
    dtype: str
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        import numpy as np

        n = int(np.dtype(self.dtype).itemsize)
        for dim in self.shape:
            n *= int(dim)
        return n


def _export_array(arr, segments: List) -> SharedArraySpec:
    """Copy ``arr`` into a fresh shared segment (appended to ``segments``)."""
    import numpy as np
    from multiprocessing import shared_memory

    arr = np.ascontiguousarray(arr)
    shm = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
    segments.append(shm)
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    view[...] = arr
    return SharedArraySpec(shm.name, arr.dtype.str, tuple(arr.shape))


def attach_array(spec: SharedArraySpec):
    """Attach a read-only zero-copy view; returns ``(view, segment)``.

    The caller must keep the returned segment object alive as long as
    the view is used — dropping it unmaps the buffer.
    """
    import numpy as np
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=spec.name)
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    view.flags.writeable = False
    return view, shm


@dataclass(frozen=True)
class SharedTopologyRef:
    """Picklable address of a topology exported to shared memory."""

    token: str  # the topology's content fingerprint
    neighbor_threshold: float
    prr: SharedArraySpec
    positions: Optional[SharedArraySpec]
    rssi: Optional[SharedArraySpec]

    def resolve(self):
        from ..net.topology import Topology

        return Topology.from_shared(self)


class SharedTopologyHandle:
    """Owner side of one exported topology: the segments plus their ref."""

    def __init__(self, ref: SharedTopologyRef, segments: List):
        self.ref = ref
        self._segments = segments

    @property
    def nbytes(self) -> int:
        """Bytes transported zero-copy instead of being pickled."""
        return sum(shm.size for shm in self._segments)

    def close(self) -> None:
        """Unmap and unlink every segment (idempotent)."""
        segments, self._segments = self._segments, []
        for shm in segments:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass


def share_topology(topo) -> SharedTopologyHandle:
    """Export ``topo``'s substrate arrays into shared memory.

    Only the primary arrays travel — adjacency, audibility and neighbor
    lists are cheap to re-derive and would double the footprint.
    Raises (after releasing any partial segments) when shared memory is
    unavailable; callers fall back to :class:`PickledRef`.
    """
    segments: List = []
    try:
        prr = _export_array(topo.prr, segments)
        positions = (
            _export_array(topo.positions, segments)
            if topo.positions is not None else None
        )
        rssi = (
            _export_array(topo.rssi, segments)
            if topo.rssi is not None else None
        )
        ref = SharedTopologyRef(
            token=topo.fingerprint(),
            neighbor_threshold=topo.neighbor_threshold,
            prr=prr,
            positions=positions,
            rssi=rssi,
        )
    except BaseException:
        for shm in segments:
            try:
                shm.close()
                shm.unlink()
            except Exception:
                pass
        raise
    return SharedTopologyHandle(ref, segments)


@dataclass(frozen=True)
class PickledRef:
    """Pickle-transported broadcast item, still memoized by token."""

    token: str
    payload: bytes

    def resolve(self):
        return pickle.loads(self.payload)


@dataclass(frozen=True)
class InlineRef:
    """A broadcast item small enough to ride in every chunk payload."""

    value: Any

    def resolve(self):
        return self.value


#: Worker-side memo: broadcast token -> resolved object. Populated lazily
#: in each worker process; with a warm pool this makes topology transport
#: a once-per-worker cost instead of once-per-chunk.
_RESOLVED: Dict[str, Any] = {}


def resolve_ref(ref) -> Any:
    """Materialize a broadcast ref, memoizing token-carrying ones."""
    token = getattr(ref, "token", None)
    if token is None:
        return ref.resolve()
    try:
        return _RESOLVED[token]
    except KeyError:
        pass
    value = ref.resolve()
    while len(_RESOLVED) >= _CACHE_LIMIT:
        _RESOLVED.pop(next(iter(_RESOLVED)))
    _RESOLVED[token] = value
    return value
