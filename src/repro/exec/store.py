"""Content-addressed result store for experiment summaries.

A :class:`ResultStore` memoizes :class:`~repro.sim.runner.RunSummary`
objects under a key derived from *content*, never from call order:

    ``key = sha256(scenario fingerprint + topology fingerprint + engine version)``

* the **scenario fingerprint** hashes the canonical *serialized* form of
  the spec (:meth:`repro.scenario.Scenario.fingerprint`; legacy
  ``ExperimentSpec`` objects are normalized through
  :func:`repro.scenario.as_scenario` first), so keys depend only on the
  scenario data — a spec built by an experiment module and the same
  scenario loaded from a JSON file share cache entries, and refactors of
  the Python that *built* the spec cannot invalidate them. Dataclasses
  outside the scenario layer fall back to a structural
  :func:`spec_fingerprint` (recursing through dataclasses, dicts and
  NumPy arrays);
* the **topology fingerprint** hashes the PRR matrix bytes, positions,
  RSSI and neighbor threshold (:meth:`repro.net.topology.Topology.fingerprint`);
* the **engine version** (:data:`repro.sim.engine.ENGINE_VERSION`) is
  bumped whenever simulation semantics change, invalidating every prior
  entry at once.

The store is layered: an in-process dict always fronts it (this replaces
the old ``lru_cache`` memoization in ``experiments/_trace_sweep.py``),
and an optional on-disk directory persists entries across CLI
invocations. Disk entries are self-verifying — a JSON header records the
key and a payload digest, and any mismatch (truncation, corruption,
tampering, an entry recorded under a different key) is treated as a miss
and recomputed rather than served. Disk access is batched: a lazily
built one-scan directory index answers existence probes (a fig10/fig11
grid costs one ``scandir``, not hundreds of per-key file opens),
:meth:`ResultStore.get_many`/:meth:`ResultStore.put_many` move whole
grids at once, and each key's payload digest is verified once per
process with the verdict memoized.

Mergeable shard stores
----------------------
Content addressing makes a store directory *mergeable*: the same
``(scenario, topology, engine)`` always lands at the same key, so the
union of two shard runs' cache directories is exactly the cache of the
combined run. The offline half of that story lives here:

* :func:`verify_store` — classify every ``.rsum`` entry (ok / truncated
  / corrupt / misplaced / stale) without ever raising on damaged files,
  so killed-worker leftovers are *reported*, not crashed on;
* :func:`merge_store` — fingerprint-keyed union of source directories
  into a destination, re-verifying every entry digest on the way and
  refusing (:class:`MergeError`) on engine-version conflicts, on
  grid-fingerprint conflicts between store manifests, and on the
  should-be-impossible same-key/different-payload collision;
* :func:`gc_store` — delete damaged entries, orphaned temp files and
  (optionally) entries from older engine versions;
* grid **manifests** (``_manifest.json``) — ``repro run-scenario
  --cache-dir`` stamps the directory with the full-grid fingerprint,
  engine version and which shards ran into it, giving ``merge`` the
  provenance it needs to refuse mixing shards of different grids.

Writes are crash-safe everywhere (write-to-temp + ``os.replace``), and
:meth:`ResultStore.get` re-probes the disk on an index miss, so
concurrent writers sharing a directory can never corrupt each other —
the worst cross-process race is a redundant recompute.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import shutil
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set

__all__ = [
    "ResultStore",
    "StoreStats",
    "spec_fingerprint",
    "result_key",
    "EntryStatus",
    "VerifyReport",
    "MergeReport",
    "GcReport",
    "MergeError",
    "verify_store",
    "merge_store",
    "gc_store",
    "read_manifest",
    "update_manifest",
]

#: On-disk entry format; bump on layout changes.
_FORMAT = 1

#: Store-directory manifest (grid provenance); not a ``.rsum`` entry, so
#: the directory index and ``verify`` never mistake it for a result.
MANIFEST_NAME = "_manifest.json"


def _engine_version() -> str:
    # Imported lazily: repro.sim pulls in the runner at package-init
    # time, and the runner must stay importable without repro.exec.
    from ..sim.engine import ENGINE_VERSION

    return ENGINE_VERSION


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic JSON-serializable structure.

    Dataclasses flatten to ``[classname, sorted fields]``; NumPy arrays
    to ``(dtype, shape, sha256 of raw bytes)``. Unsupported types raise
    so silently unstable keys (e.g. an object's default ``repr`` with a
    memory address) can never corrupt the cache.
    """
    import numpy as np

    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return repr(obj)  # repr round-trips; avoids json float quirks
    if isinstance(obj, (np.bool_, np.integer, np.floating)):
        return _canonical(obj.item())
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        return ["ndarray", arr.dtype.str, list(arr.shape),
                hashlib.sha256(arr.tobytes()).hexdigest()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return [type(obj).__name__, sorted(fields.items())]
    if isinstance(obj, dict):
        return ["dict", sorted(
            (str(k), _canonical(v)) for k, v in obj.items()
        )]
    if isinstance(obj, (list, tuple)):
        return ["seq", [_canonical(v) for v in obj]]
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__!r} deterministically; "
        f"extend repro.exec.store._canonical if this type belongs in a spec"
    )


def spec_fingerprint(spec: Any) -> str:
    """Deterministic hex digest of an :class:`ExperimentSpec` (or any
    dataclass built from primitives, dicts and arrays)."""
    blob = json.dumps(_canonical(spec), separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _spec_digest(spec: Any) -> str:
    """Digest of the *workload* half of a result key.

    Specs that serialize through the scenario layer — a
    :class:`~repro.scenario.Scenario`, or anything
    :func:`~repro.scenario.as_scenario` can normalize (notably
    :class:`~repro.sim.runner.ExperimentSpec`) — hash their canonical
    *serialized* form, so cache hits survive refactors of the Python
    that built the spec, and a scenario loaded from a JSON file shares
    entries with the identical spec built in code. Anything else falls
    back to the structural :func:`spec_fingerprint`.
    """
    fingerprint = getattr(spec, "fingerprint", None)
    if callable(fingerprint):
        return fingerprint()
    from ..scenario import ScenarioError, as_scenario

    try:
        return as_scenario(spec).fingerprint()
    except (TypeError, ScenarioError):
        return spec_fingerprint(spec)


def result_key(topo: Any, spec: Any, engine_version: Optional[str] = None) -> str:
    """The content address of ``(spec, topology, engine)``."""
    if engine_version is None:
        engine_version = _engine_version()
    h = hashlib.sha256()
    h.update(_spec_digest(spec).encode())
    h.update(topo.fingerprint().encode())
    h.update(str(engine_version).encode())
    return h.hexdigest()


@dataclasses.dataclass
class StoreStats:
    """Hit/miss counters (both memory and disk hits count as hits)."""

    hits: int = 0
    misses: int = 0
    rejected: int = 0  # corrupted / stale disk entries discarded

    def __str__(self) -> str:
        s = f"{self.hits} hit(s), {self.misses} miss(es)"
        if self.rejected:
            s += f", {self.rejected} rejected"
        return s


class ResultStore:
    """Layered (memory + optional disk) store of ``RunSummary`` payloads.

    Parameters
    ----------
    cache_dir:
        Directory for persistent entries (created on first write).
        ``None`` keeps the store purely in-memory — still useful: it
        memoizes repeated specs within one process, e.g. fig10 and
        fig11 sharing the trace-sweep grid.
    """

    def __init__(self, cache_dir: Optional[os.PathLike] = None):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None and self.cache_dir.exists() \
                and not self.cache_dir.is_dir():
            raise NotADirectoryError(
                f"cache dir {self.cache_dir} exists and is not a directory"
            )
        self.stats = StoreStats()
        self._mem: Dict[str, Any] = {}
        # One-scan directory index: key -> entry exists on disk. Built
        # lazily on the first disk lookup so a fig10/fig11 grid costs a
        # single ``scandir`` instead of one open-per-key probe. The
        # index is advisory, not authoritative: ``get`` re-probes the
        # path on an index miss, so entries written by *other*
        # processes after the scan are still found (one extra stat per
        # true miss, instead of a wrong recompute).
        self._index: Optional[Set[str]] = None
        # Keys whose on-disk payload already passed the digest check in
        # this process; later loads (e.g. after ``clear()``) skip the
        # full-payload re-hash.
        self._verified: Set[str] = set()

    # -- counters exposed flat for convenience -------------------------

    @property
    def hits(self) -> int:
        return self.stats.hits

    @property
    def misses(self) -> int:
        return self.stats.misses

    def __len__(self) -> int:
        return len(self._mem)

    # -- keys ----------------------------------------------------------

    def key_for(self, topo: Any, spec: Any) -> str:
        """Content address of ``(spec, topo)`` under the current engine."""
        return result_key(topo, spec)

    def _path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.rsum"

    # -- get / put -----------------------------------------------------

    def _disk_index(self) -> Set[str]:
        """Keys present on disk, from one directory scan (cached)."""
        if self._index is None:
            index: Set[str] = set()
            if self.cache_dir is not None:
                try:
                    with os.scandir(self.cache_dir) as entries:
                        for entry in entries:
                            if entry.name.endswith(".rsum"):
                                index.add(entry.name[: -len(".rsum")])
                except OSError:
                    pass  # directory not created yet -> empty index
            self._index = index
        return self._index

    def get(self, key: str) -> Optional[Any]:
        """Return the stored summary or ``None`` (counting hit/miss).

        Disk entries failing integrity checks (bad header, digest
        mismatch, entry recorded under another key, unpicklable payload)
        are discarded and reported as misses, so corruption can only
        ever cost a recomputation.
        """
        if key in self._mem:
            self.stats.hits += 1
            return self._mem[key]
        if self.cache_dir is not None:
            if key not in self._disk_index():
                # Index miss != disk miss: another process may have
                # written this entry after our one-scan index was built
                # (shard runs sharing a cache dir do exactly that).
                # Re-probe the path — one stat — and adopt the entry.
                if self._path(key).exists():
                    self._index.add(key)  # type: ignore[union-attr]
            if key in self._index:  # type: ignore[operator]
                value = self._load_disk(key)
                if value is not None:
                    self._mem[key] = value
                    self.stats.hits += 1
                    return value
        self.stats.misses += 1
        return None

    def get_many(self, keys: Sequence[str]) -> Dict[str, Any]:
        """Batch lookup: every found key -> value, one disk scan total.

        Hit/miss counters advance per key, exactly as per-key ``get``
        calls would — only the disk probing is batched (the directory
        index is built once and shared with every later lookup).
        """
        found: Dict[str, Any] = {}
        for key in keys:
            if key in found:  # duplicate key in the request: one probe
                self.stats.hits += 1
                continue
            value = self.get(key)
            if value is not None:
                found[key] = value
        return found

    def put(self, key: str, value: Any) -> None:
        """Record ``value`` under ``key`` (memory, plus disk if configured)."""
        self._mem[key] = value
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._write_disk(key, value)

    def put_many(self, items: Dict[str, Any]) -> None:
        """Record a batch of summaries (one mkdir, then per-entry writes)."""
        self._mem.update(items)
        if self.cache_dir is None or not items:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        for key, value in items.items():
            self._write_disk(key, value)

    def _write_disk(self, key: str, value: Any) -> None:
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        header = json.dumps({
            "format": _FORMAT,
            "key": key,
            "engine": _engine_version(),
            "digest": hashlib.sha256(payload).hexdigest(),
        }).encode("utf-8")
        # Atomic publish: concurrent CLI invocations may race on the
        # same entry; rename makes the last writer win cleanly.
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(header + b"\n" + payload)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        # We computed this digest ourselves: the key is verified, and
        # the index (if already built) learns the new entry.
        self._verified.add(key)
        if self._index is not None:
            self._index.add(key)

    def _load_disk(self, key: str) -> Optional[Any]:
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            head, payload = raw.split(b"\n", 1)
            meta = json.loads(head.decode("utf-8"))
            if meta.get("format") != _FORMAT or meta.get("key") != key:
                raise ValueError("integrity check failed")
            # Hash the payload once per key per process; a key that
            # already passed keeps its verdict (e.g. across ``clear()``).
            if key not in self._verified:
                if meta.get("digest") != hashlib.sha256(payload).hexdigest():
                    raise ValueError("integrity check failed")
                self._verified.add(key)
            return pickle.loads(payload)
        except Exception:
            self.stats.rejected += 1
            self._verified.discard(key)
            return None

    def clear(self) -> None:
        """Drop the in-memory layer (disk entries are left untouched)."""
        self._mem.clear()

    def verify(self) -> "VerifyReport":
        """Classify every on-disk entry; see :func:`verify_store`."""
        if self.cache_dir is None:
            return VerifyReport(cache_dir=None, entries=[], tmp_files=[])
        return verify_store(self.cache_dir)


# ---------------------------------------------------------------------------
# Offline store maintenance: verify / merge / gc and grid manifests
# ---------------------------------------------------------------------------

class MergeError(RuntimeError):
    """Two stores cannot be merged (engine or grid provenance conflict)."""


@dataclasses.dataclass(frozen=True)
class EntryStatus:
    """One ``.rsum`` entry's integrity verdict.

    ``status`` is one of:

    * ``"ok"`` — header parses, key matches the filename, payload digest
      matches, engine version is current;
    * ``"stale"`` — intact, but recorded under a different engine
      version (inert: the engine version is part of the result key, so
      stale entries can never be served for current-engine lookups);
    * ``"truncated"`` — no header/payload separator or unparseable
      header (the shape a killed writer without atomic rename leaves);
    * ``"corrupt"`` — parseable header but wrong format or payload
      digest mismatch;
    * ``"misplaced"`` — intact entry recorded under a different key than
      its filename (a copied/renamed file).
    """

    name: str
    key: str
    status: str
    size: int
    engine: Optional[str] = None
    digest: Optional[str] = None
    detail: str = ""

    @property
    def intact(self) -> bool:
        return self.status in ("ok", "stale")


@dataclasses.dataclass
class VerifyReport:
    """Everything :func:`verify_store` found in one directory."""

    cache_dir: Optional[Path]
    entries: List[EntryStatus]
    tmp_files: List[str]

    def by_status(self, status: str) -> List[EntryStatus]:
        return [e for e in self.entries if e.status == status]

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for entry in self.entries:
            out[entry.status] = out.get(entry.status, 0) + 1
        return out

    @property
    def problems(self) -> List[EntryStatus]:
        """Damaged entries (stale ones are valid, just old)."""
        return [e for e in self.entries if not e.intact]

    @property
    def clean(self) -> bool:
        return not self.problems and not self.tmp_files

    def __str__(self) -> str:
        bits = [f"{len(self.entries)} entr(ies)"]
        for status, n in sorted(self.counts.items()):
            bits.append(f"{n} {status}")
        if self.tmp_files:
            bits.append(f"{len(self.tmp_files)} orphaned tmp file(s)")
        return ", ".join(bits)


def _inspect_entry(path: Path) -> EntryStatus:
    """Classify one entry file without ever raising on damage."""
    name = path.name
    key = name[: -len(".rsum")]
    try:
        raw = path.read_bytes()
    except OSError as exc:
        return EntryStatus(name=name, key=key, status="truncated", size=0,
                           detail=f"unreadable: {exc}")
    size = len(raw)
    if b"\n" not in raw:
        return EntryStatus(name=name, key=key, status="truncated", size=size,
                           detail="no header/payload separator")
    head, payload = raw.split(b"\n", 1)
    try:
        meta = json.loads(head.decode("utf-8"))
        if not isinstance(meta, dict):
            raise ValueError("header is not an object")
    except Exception:
        return EntryStatus(name=name, key=key, status="truncated", size=size,
                           detail="unparseable header (partial write?)")
    engine = meta.get("engine")
    digest = meta.get("digest")
    if meta.get("format") != _FORMAT:
        return EntryStatus(name=name, key=key, status="corrupt", size=size,
                           engine=engine, digest=digest,
                           detail=f"unknown entry format {meta.get('format')!r}")
    if digest != hashlib.sha256(payload).hexdigest():
        return EntryStatus(name=name, key=key, status="corrupt", size=size,
                           engine=engine, digest=digest,
                           detail="payload digest mismatch")
    if meta.get("key") != key:
        return EntryStatus(name=name, key=key, status="misplaced", size=size,
                           engine=engine, digest=digest,
                           detail=f"recorded under key {str(meta.get('key'))[:16]}…")
    if engine != _engine_version():
        return EntryStatus(name=name, key=key, status="stale", size=size,
                           engine=engine, digest=digest,
                           detail=f"engine {engine!r} != {_engine_version()!r}")
    return EntryStatus(name=name, key=key, status="ok", size=size,
                       engine=engine, digest=digest)


def _scan_store(cache_dir: os.PathLike):
    """``(rsum paths, tmp names)`` of one store directory (one scandir)."""
    rsums: List[Path] = []
    tmps: List[str] = []
    cache_dir = Path(cache_dir)
    try:
        with os.scandir(cache_dir) as entries:
            for entry in entries:
                if entry.name.endswith(".rsum"):
                    rsums.append(cache_dir / entry.name)
                elif entry.name.endswith(".tmp"):
                    tmps.append(entry.name)
    except OSError:
        pass  # absent directory -> empty store
    rsums.sort()
    tmps.sort()
    return rsums, tmps


def verify_store(cache_dir: os.PathLike) -> VerifyReport:
    """Classify every entry of a store directory (never raises on damage).

    Truncated entries left by killed workers, bit-flipped payloads and
    misfiled keys all come back as typed :class:`EntryStatus` records —
    the CLI's ``repro store verify`` renders them, and ``gc`` deletes
    them.
    """
    cache_dir = Path(cache_dir)
    rsums, tmps = _scan_store(cache_dir)
    return VerifyReport(
        cache_dir=cache_dir,
        entries=[_inspect_entry(path) for path in rsums],
        tmp_files=tmps,
    )


@dataclasses.dataclass
class GcReport:
    """What :func:`gc_store` deleted."""

    removed: List[str]
    bytes_freed: int

    def __str__(self) -> str:
        return f"removed {len(self.removed)} file(s), {self.bytes_freed} bytes"


def gc_store(cache_dir: os.PathLike, stale: bool = False) -> GcReport:
    """Delete damaged entries and orphaned temp files (``stale=True``
    additionally drops intact entries from older engine versions)."""
    cache_dir = Path(cache_dir)
    report = verify_store(cache_dir)
    removed: List[str] = []
    freed = 0
    doomed = list(report.problems)
    if stale:
        doomed.extend(report.by_status("stale"))
    for entry in doomed:
        try:
            os.unlink(cache_dir / entry.name)
            removed.append(entry.name)
            freed += entry.size
        except OSError:
            pass
    for name in report.tmp_files:
        path = cache_dir / name
        try:
            size = path.stat().st_size
            os.unlink(path)
            removed.append(name)
            freed += size
        except OSError:
            pass
    return GcReport(removed=sorted(removed), bytes_freed=freed)


# -- grid manifests ---------------------------------------------------------

def _atomic_write(path: Path, data: bytes) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def read_manifest(cache_dir: os.PathLike) -> Optional[Dict[str, Any]]:
    """The directory's grid manifest, or ``None`` (absent/unreadable).

    Shape: ``{"format": 1, "engine": <version>, "grids": {<grid
    fingerprint>: {"name": ..., "shards": ["0/2", ...]}}}``. A shard
    label of ``"full"`` records an unsharded run.
    """
    path = Path(cache_dir) / MANIFEST_NAME
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or data.get("format") != _FORMAT:
        return None
    return data


def update_manifest(
    cache_dir: os.PathLike,
    grid_fingerprint: str,
    name: Optional[str] = None,
    shard_label: str = "full",
    engine: Optional[str] = None,
) -> Dict[str, Any]:
    """Record (crash-safely) that a grid/shard ran into this directory.

    An existing manifest from a *different* engine version is replaced
    rather than merged — its entries are inert under the current engine
    (the version is part of every result key), and carrying their
    provenance forward would make ``merge`` refuse stores whose live
    contents are perfectly compatible.
    """
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    if engine is None:
        engine = _engine_version()
    manifest = read_manifest(cache_dir)
    if manifest is None or manifest.get("engine") != engine:
        manifest = {"format": _FORMAT, "engine": engine, "grids": {}}
    entry = manifest["grids"].setdefault(grid_fingerprint, {"shards": []})
    if name:
        entry["name"] = name
    if shard_label not in entry["shards"]:
        entry["shards"] = sorted(entry["shards"] + [shard_label])
    _atomic_write(cache_dir / MANIFEST_NAME,
                  (json.dumps(manifest, indent=2, sort_keys=True) + "\n")
                  .encode("utf-8"))
    return manifest


def _merge_manifests(dest: Dict[str, Any], src: Dict[str, Any]) -> None:
    for fp, entry in src.get("grids", {}).items():
        mine = dest["grids"].setdefault(fp, {"shards": []})
        if entry.get("name") and not mine.get("name"):
            mine["name"] = entry["name"]
        mine["shards"] = sorted(set(mine["shards"]) | set(entry.get("shards", [])))


# -- merge ------------------------------------------------------------------

@dataclasses.dataclass
class MergeReport:
    """What :func:`merge_store` moved (and skipped)."""

    dest: Path
    sources: List[Path]
    copied: int = 0
    skipped: int = 0   # identical entry already present at dest
    rejected: int = 0  # damaged source entries left behind
    engine: Optional[str] = None

    def __str__(self) -> str:
        s = (f"{self.copied} copied, {self.skipped} already present "
             f"from {len(self.sources)} source(s)")
        if self.rejected:
            s += f", {self.rejected} damaged entr(ies) left behind"
        return s


def merge_store(
    dest_dir: os.PathLike,
    source_dirs: Sequence[os.PathLike],
    allow_mixed: bool = False,
) -> MergeReport:
    """Union source store directories into ``dest_dir``.

    Content addressing makes this a plain fingerprint-keyed union:
    every source entry is re-verified (full digest check) and copied
    crash-safely; entries already present at the destination with the
    same payload digest are skipped. The merge **refuses** — raising
    :class:`MergeError` before copying anything — when

    * intact entries (across all sources and the destination manifest)
      disagree on the engine version: shards of one sweep must come
      from one engine build;
    * source and destination manifests both exist and name disjoint
      grid sets (shards of *different* grids; pass ``allow_mixed=True``
      to pool unrelated caches deliberately);
    * the same key resolves to different payload digests — a collision
      that content addressing makes impossible short of corruption or a
      non-deterministic engine, so it is surfaced, never papered over.

    Damaged source entries (truncated/corrupt/misplaced) are *skipped*
    and counted in :attr:`MergeReport.rejected`; run ``repro store gc``
    on the source to delete them.
    """
    dest_dir = Path(dest_dir)
    sources = [Path(s) for s in source_dirs]
    if not sources:
        raise ValueError("need at least one source store to merge")
    for src in sources:
        if src.resolve() == dest_dir.resolve():
            raise ValueError(f"source {src} is the destination")

    dest_manifest = read_manifest(dest_dir)
    expected_engine: Optional[str] = (
        dest_manifest.get("engine") if dest_manifest else None
    )

    # Plan first, copy second: every refusal happens before the first
    # byte lands at the destination, so a failed merge changes nothing.
    plans = []  # (src_path, entry)
    rejected = 0
    manifests: List[Dict[str, Any]] = []
    for src in sources:
        report = verify_store(src)
        for entry in report.entries:
            if not entry.intact:
                rejected += 1
                continue
            if expected_engine is None:
                expected_engine = entry.engine
            elif entry.engine != expected_engine:
                raise MergeError(
                    f"engine-version conflict: {src / entry.name} was "
                    f"recorded by engine {entry.engine!r}, but the merge "
                    f"expects {expected_engine!r} — shards of one sweep "
                    f"must come from one engine build (use `repro store "
                    f"gc --stale` to drop old-engine entries first)"
                )
            plans.append((src / entry.name, entry))
        manifest = read_manifest(src)
        if manifest is not None:
            if expected_engine is not None \
                    and manifest.get("engine") != expected_engine:
                raise MergeError(
                    f"engine-version conflict: manifest of {src} says "
                    f"{manifest.get('engine')!r}, merge expects "
                    f"{expected_engine!r}"
                )
            if dest_manifest is not None and not allow_mixed:
                src_grids = set(manifest.get("grids", {}))
                dest_grids = set(dest_manifest.get("grids", {}))
                if src_grids and dest_grids and not (src_grids & dest_grids):
                    raise MergeError(
                        f"grid-fingerprint conflict: {src} holds shards of "
                        f"grid(s) {sorted(g[:16] for g in src_grids)} but "
                        f"{dest_dir} holds {sorted(g[:16] for g in dest_grids)}"
                        f" — these are different sweeps (pass --allow-mixed "
                        f"to pool unrelated caches deliberately)"
                    )
            manifests.append(manifest)

    dest_dir.mkdir(parents=True, exist_ok=True)
    dest_index = {p.name for p in _scan_store(dest_dir)[0]}
    copied = skipped = 0
    for src_path, entry in plans:
        if entry.name in dest_index:
            existing = _inspect_entry(dest_dir / entry.name)
            if existing.intact and existing.digest == entry.digest:
                skipped += 1
                continue
            if existing.intact:
                raise MergeError(
                    f"key collision with different payloads at "
                    f"{entry.name}: the same content address must mean "
                    f"the same result — one side is corrupt or was "
                    f"produced by a non-deterministic build"
                )
            # Damaged destination entry: overwrite with the good copy.
        fd, tmp = tempfile.mkstemp(dir=dest_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                with open(src_path, "rb") as src_fh:
                    shutil.copyfileobj(src_fh, fh)
            os.replace(tmp, dest_dir / entry.name)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        dest_index.add(entry.name)
        copied += 1

    if manifests:
        merged = dest_manifest
        if merged is None:
            merged = {"format": _FORMAT, "engine": expected_engine,
                      "grids": {}}
        for manifest in manifests:
            _merge_manifests(merged, manifest)
        _atomic_write(dest_dir / MANIFEST_NAME,
                      (json.dumps(merged, indent=2, sort_keys=True) + "\n")
                      .encode("utf-8"))

    return MergeReport(dest=dest_dir, sources=sources, copied=copied,
                       skipped=skipped, rejected=rejected,
                       engine=expected_engine)
