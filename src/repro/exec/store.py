"""Content-addressed result store for experiment summaries.

A :class:`ResultStore` memoizes :class:`~repro.sim.runner.RunSummary`
objects under a key derived from *content*, never from call order:

    ``key = sha256(scenario fingerprint + topology fingerprint + engine version)``

* the **scenario fingerprint** hashes the canonical *serialized* form of
  the spec (:meth:`repro.scenario.Scenario.fingerprint`; legacy
  ``ExperimentSpec`` objects are normalized through
  :func:`repro.scenario.as_scenario` first), so keys depend only on the
  scenario data — a spec built by an experiment module and the same
  scenario loaded from a JSON file share cache entries, and refactors of
  the Python that *built* the spec cannot invalidate them. Dataclasses
  outside the scenario layer fall back to a structural
  :func:`spec_fingerprint` (recursing through dataclasses, dicts and
  NumPy arrays);
* the **topology fingerprint** hashes the PRR matrix bytes, positions,
  RSSI and neighbor threshold (:meth:`repro.net.topology.Topology.fingerprint`);
* the **engine version** (:data:`repro.sim.engine.ENGINE_VERSION`) is
  bumped whenever simulation semantics change, invalidating every prior
  entry at once.

The store is layered: an in-process dict always fronts it (this replaces
the old ``lru_cache`` memoization in ``experiments/_trace_sweep.py``),
and an optional on-disk directory persists entries across CLI
invocations. Disk entries are self-verifying — a JSON header records the
key and a payload digest, and any mismatch (truncation, corruption,
tampering, an entry recorded under a different key) is treated as a miss
and recomputed rather than served. Disk access is batched: a lazily
built one-scan directory index answers existence probes (a fig10/fig11
grid costs one ``scandir``, not hundreds of per-key file opens),
:meth:`ResultStore.get_many`/:meth:`ResultStore.put_many` move whole
grids at once, and each key's payload digest is verified once per
process with the verdict memoized.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Set

__all__ = [
    "ResultStore",
    "StoreStats",
    "spec_fingerprint",
    "result_key",
]

#: On-disk entry format; bump on layout changes.
_FORMAT = 1


def _engine_version() -> str:
    # Imported lazily: repro.sim pulls in the runner at package-init
    # time, and the runner must stay importable without repro.exec.
    from ..sim.engine import ENGINE_VERSION

    return ENGINE_VERSION


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic JSON-serializable structure.

    Dataclasses flatten to ``[classname, sorted fields]``; NumPy arrays
    to ``(dtype, shape, sha256 of raw bytes)``. Unsupported types raise
    so silently unstable keys (e.g. an object's default ``repr`` with a
    memory address) can never corrupt the cache.
    """
    import numpy as np

    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return repr(obj)  # repr round-trips; avoids json float quirks
    if isinstance(obj, (np.bool_, np.integer, np.floating)):
        return _canonical(obj.item())
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        return ["ndarray", arr.dtype.str, list(arr.shape),
                hashlib.sha256(arr.tobytes()).hexdigest()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return [type(obj).__name__, sorted(fields.items())]
    if isinstance(obj, dict):
        return ["dict", sorted(
            (str(k), _canonical(v)) for k, v in obj.items()
        )]
    if isinstance(obj, (list, tuple)):
        return ["seq", [_canonical(v) for v in obj]]
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__!r} deterministically; "
        f"extend repro.exec.store._canonical if this type belongs in a spec"
    )


def spec_fingerprint(spec: Any) -> str:
    """Deterministic hex digest of an :class:`ExperimentSpec` (or any
    dataclass built from primitives, dicts and arrays)."""
    blob = json.dumps(_canonical(spec), separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _spec_digest(spec: Any) -> str:
    """Digest of the *workload* half of a result key.

    Specs that serialize through the scenario layer — a
    :class:`~repro.scenario.Scenario`, or anything
    :func:`~repro.scenario.as_scenario` can normalize (notably
    :class:`~repro.sim.runner.ExperimentSpec`) — hash their canonical
    *serialized* form, so cache hits survive refactors of the Python
    that built the spec, and a scenario loaded from a JSON file shares
    entries with the identical spec built in code. Anything else falls
    back to the structural :func:`spec_fingerprint`.
    """
    fingerprint = getattr(spec, "fingerprint", None)
    if callable(fingerprint):
        return fingerprint()
    from ..scenario import ScenarioError, as_scenario

    try:
        return as_scenario(spec).fingerprint()
    except (TypeError, ScenarioError):
        return spec_fingerprint(spec)


def result_key(topo: Any, spec: Any, engine_version: Optional[str] = None) -> str:
    """The content address of ``(spec, topology, engine)``."""
    if engine_version is None:
        engine_version = _engine_version()
    h = hashlib.sha256()
    h.update(_spec_digest(spec).encode())
    h.update(topo.fingerprint().encode())
    h.update(str(engine_version).encode())
    return h.hexdigest()


@dataclasses.dataclass
class StoreStats:
    """Hit/miss counters (both memory and disk hits count as hits)."""

    hits: int = 0
    misses: int = 0
    rejected: int = 0  # corrupted / stale disk entries discarded

    def __str__(self) -> str:
        s = f"{self.hits} hit(s), {self.misses} miss(es)"
        if self.rejected:
            s += f", {self.rejected} rejected"
        return s


class ResultStore:
    """Layered (memory + optional disk) store of ``RunSummary`` payloads.

    Parameters
    ----------
    cache_dir:
        Directory for persistent entries (created on first write).
        ``None`` keeps the store purely in-memory — still useful: it
        memoizes repeated specs within one process, e.g. fig10 and
        fig11 sharing the trace-sweep grid.
    """

    def __init__(self, cache_dir: Optional[os.PathLike] = None):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None and self.cache_dir.exists() \
                and not self.cache_dir.is_dir():
            raise NotADirectoryError(
                f"cache dir {self.cache_dir} exists and is not a directory"
            )
        self.stats = StoreStats()
        self._mem: Dict[str, Any] = {}
        # One-scan directory index: key -> entry exists on disk. Built
        # lazily on the first disk lookup so a fig10/fig11 grid costs a
        # single ``scandir`` instead of one open-per-key probe. Entries
        # written by *other* processes after the scan are not seen until
        # a new store instance — a miss there only costs a recompute.
        self._index: Optional[Set[str]] = None
        # Keys whose on-disk payload already passed the digest check in
        # this process; later loads (e.g. after ``clear()``) skip the
        # full-payload re-hash.
        self._verified: Set[str] = set()

    # -- counters exposed flat for convenience -------------------------

    @property
    def hits(self) -> int:
        return self.stats.hits

    @property
    def misses(self) -> int:
        return self.stats.misses

    def __len__(self) -> int:
        return len(self._mem)

    # -- keys ----------------------------------------------------------

    def key_for(self, topo: Any, spec: Any) -> str:
        """Content address of ``(spec, topo)`` under the current engine."""
        return result_key(topo, spec)

    def _path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.rsum"

    # -- get / put -----------------------------------------------------

    def _disk_index(self) -> Set[str]:
        """Keys present on disk, from one directory scan (cached)."""
        if self._index is None:
            index: Set[str] = set()
            if self.cache_dir is not None:
                try:
                    with os.scandir(self.cache_dir) as entries:
                        for entry in entries:
                            if entry.name.endswith(".rsum"):
                                index.add(entry.name[: -len(".rsum")])
                except OSError:
                    pass  # directory not created yet -> empty index
            self._index = index
        return self._index

    def get(self, key: str) -> Optional[Any]:
        """Return the stored summary or ``None`` (counting hit/miss).

        Disk entries failing integrity checks (bad header, digest
        mismatch, entry recorded under another key, unpicklable payload)
        are discarded and reported as misses, so corruption can only
        ever cost a recomputation.
        """
        if key in self._mem:
            self.stats.hits += 1
            return self._mem[key]
        if self.cache_dir is not None and key in self._disk_index():
            value = self._load_disk(key)
            if value is not None:
                self._mem[key] = value
                self.stats.hits += 1
                return value
        self.stats.misses += 1
        return None

    def get_many(self, keys: Sequence[str]) -> Dict[str, Any]:
        """Batch lookup: every found key -> value, one disk scan total.

        Hit/miss counters advance per key, exactly as per-key ``get``
        calls would — only the disk probing is batched (the directory
        index is built once and shared with every later lookup).
        """
        found: Dict[str, Any] = {}
        for key in keys:
            if key in found:  # duplicate key in the request: one probe
                self.stats.hits += 1
                continue
            value = self.get(key)
            if value is not None:
                found[key] = value
        return found

    def put(self, key: str, value: Any) -> None:
        """Record ``value`` under ``key`` (memory, plus disk if configured)."""
        self._mem[key] = value
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._write_disk(key, value)

    def put_many(self, items: Dict[str, Any]) -> None:
        """Record a batch of summaries (one mkdir, then per-entry writes)."""
        self._mem.update(items)
        if self.cache_dir is None or not items:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        for key, value in items.items():
            self._write_disk(key, value)

    def _write_disk(self, key: str, value: Any) -> None:
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        header = json.dumps({
            "format": _FORMAT,
            "key": key,
            "engine": _engine_version(),
            "digest": hashlib.sha256(payload).hexdigest(),
        }).encode("utf-8")
        # Atomic publish: concurrent CLI invocations may race on the
        # same entry; rename makes the last writer win cleanly.
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(header + b"\n" + payload)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        # We computed this digest ourselves: the key is verified, and
        # the index (if already built) learns the new entry.
        self._verified.add(key)
        if self._index is not None:
            self._index.add(key)

    def _load_disk(self, key: str) -> Optional[Any]:
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            head, payload = raw.split(b"\n", 1)
            meta = json.loads(head.decode("utf-8"))
            if meta.get("format") != _FORMAT or meta.get("key") != key:
                raise ValueError("integrity check failed")
            # Hash the payload once per key per process; a key that
            # already passed keeps its verdict (e.g. across ``clear()``).
            if key not in self._verified:
                if meta.get("digest") != hashlib.sha256(payload).hexdigest():
                    raise ValueError("integrity check failed")
                self._verified.add(key)
            return pickle.loads(payload)
        except Exception:
            self.stats.rejected += 1
            self._verified.discard(key)
            return None

    def clear(self) -> None:
        """Drop the in-memory layer (disk entries are left untouched)."""
        self._mem.clear()
