"""Process-wide execution context: which executor and store to use.

The experiment harness (``repro.experiments``) and the CLI route every
simulation through one :class:`ExecutionContext` so that ``--jobs`` and
``--cache-dir`` apply uniformly to replications, sweep grids and the
fig10/fig11 protocol-by-duty grid. The default context is a
:class:`~repro.exec.executor.SerialExecutor` plus an **in-memory**
:class:`~repro.exec.store.ResultStore` — exactly the semantics the old
per-function ``lru_cache`` provided, but shared across every entry point
and upgradeable to parallel/persistent without touching call sites.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass
from typing import Iterator, Optional

from .executor import Executor, SerialExecutor, resolve_executor
from .store import ResultStore

__all__ = [
    "ExecutionContext",
    "execution_context",
    "configure_execution",
    "reset_execution",
    "use_execution",
]


@dataclass
class ExecutionContext:
    """An executor/store pair every harness entry point runs through.

    ``reps_per_task`` is the session's replication-chunking policy
    (``--reps-per-task``): how many replications ride in one dispatched
    task. ``None`` lets the runner auto-chunk batchable scenarios; it is
    pure execution policy — results are bit-identical at any width — so
    it lives here rather than on the scenarios themselves.
    """

    executor: Executor
    store: ResultStore
    reps_per_task: Optional[int] = None

    def close(self) -> None:
        """Release executor resources (warm worker pool, shared-memory
        segments). The store needs no teardown; a closed context's
        executor transparently re-arms if used again."""
        self.executor.close()


_DEFAULT: ExecutionContext = ExecutionContext(
    executor=SerialExecutor(), store=ResultStore()
)


def execution_context() -> ExecutionContext:
    """The currently installed process-wide context."""
    return _DEFAULT


def configure_execution(
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[os.PathLike] = None,
    reps_per_task: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> ExecutionContext:
    """Install (and return) a new process-wide context.

    ``backend``/``jobs`` follow :func:`~repro.exec.executor.resolve_executor`
    (``jobs > 1`` alone selects the parallel backend); ``cache_dir``
    upgrades the store from in-memory to persistent; ``reps_per_task``
    sets the replication-chunking width (``None`` = auto). A
    pre-constructed ``store`` (e.g. one shard's directory opened by a
    test harness) may be passed instead of ``cache_dir`` — never both.
    """
    global _DEFAULT
    if store is not None and cache_dir is not None:
        raise ValueError("pass either store or cache_dir, not both")
    _DEFAULT = ExecutionContext(
        executor=resolve_executor(backend, jobs),
        store=store if store is not None else ResultStore(cache_dir),
        reps_per_task=reps_per_task,
    )
    return _DEFAULT


def reset_execution() -> ExecutionContext:
    """Restore the default serial executor and a fresh in-memory store.

    The replaced context is closed — its warm pool and shared segments
    are released — since a reset explicitly discards it.
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = ExecutionContext(executor=SerialExecutor(), store=ResultStore())
    previous.close()
    return _DEFAULT


@contextlib.contextmanager
def use_execution(
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[os.PathLike] = None,
    reps_per_task: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> Iterator[ExecutionContext]:
    """Temporarily install a context, restoring the previous one on exit.

    With every argument ``None`` the current context is reused unchanged
    (so wrapping a call site is always safe). The temporary context is
    closed on exit — worker pools and shared-memory segments never
    outlive the ``with`` block.
    """
    global _DEFAULT
    previous = _DEFAULT
    if (backend is None and jobs is None and cache_dir is None
            and reps_per_task is None and store is None):
        yield previous
        return
    ctx = None
    try:
        ctx = configure_execution(backend=backend, jobs=jobs,
                                  cache_dir=cache_dir,
                                  reps_per_task=reps_per_task,
                                  store=store)
        yield ctx
    finally:
        _DEFAULT = previous
        if ctx is not None:
            ctx.close()
