"""Fig. 5 — Theorem 1's flooding delay limit.

Two panels:

* **Panel A**: ``T = 5`` fixed, network sizes ``N`` in {256, 1024, 4096},
  FDL versus the number of flooded packets ``M = 1..20``.
* **Panel B**: ``N = 1024`` fixed, duty ratios {10%, 20%, 100%}
  (``T`` = 10, 5, 1), FDL versus ``M``.

Shape expectations (checked in EXPERIMENTS.md): every curve has a knee at
``M = m = ceil(log2(1+N))`` where the slope halves (per-packet marginal
delay drops from ``T`` to ``T/2``), and the curves scale linearly in ``T``.
"""

from __future__ import annotations

import numpy as np

from ..analysis.series import ExperimentResult, Series
from ..core.fdl import fdl_theorem1_series, knee_point

__all__ = ["run"]

PANEL_A_SIZES = (256, 1024, 4096)
PANEL_A_PERIOD = 5
PANEL_B_SENSORS = 1024
PANEL_B_DUTIES = (0.10, 0.20, 1.00)


def run(scale: str = "full", max_packets: int = 20) -> ExperimentResult:
    """Evaluate both panels (closed forms; instant at every scale)."""
    if max_packets < 2:
        raise ValueError("need at least two packet counts for a curve")
    ms = np.arange(1, max_packets + 1)

    series = [
        Series(label=f"panelA: N={n}, T={PANEL_A_PERIOD}", x=ms,
               y=fdl_theorem1_series(n, ms, PANEL_A_PERIOD))
        for n in PANEL_A_SIZES
    ] + [
        Series(label=f"panelB: N={PANEL_B_SENSORS}, duty={duty:.0%}", x=ms,
               y=fdl_theorem1_series(PANEL_B_SENSORS, ms,
                                     max(int(round(1.0 / duty)), 1)))
        for duty in PANEL_B_DUTIES
    ]

    return ExperimentResult(
        experiment_id="fig5",
        title="Theorem 1: multi-packet flooding delay limit",
        series=series,
        metadata={
            "knees_panelA": {n: knee_point(n) for n in PANEL_A_SIZES},
            "knee_panelB": knee_point(PANEL_B_SENSORS),
            "max_packets": max_packets,
        },
    )
