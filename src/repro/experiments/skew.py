"""Clock-skew sensitivity of low-duty-cycle flooding.

The paper assumes *local synchronization*: every sender knows exactly
when each neighbor wakes (Sec. III-B, citing low-cost sync protocols).
This experiment quantifies what that assumption is worth: per-node clock
skew is injected between the advertised schedules (what senders plan
against) and the true radio-on times, and DBAO floods the trace at 5%
duty for increasing skew magnitudes.

A skewed transmission can hit a dormant radio (a *sleep miss*), costing
a full period before the retry; with skew beyond the slot width the
network degrades toward blind transmission. The result motivates the
paper's citation of sub-slot synchronization schemes.
"""

from __future__ import annotations

import numpy as np

from ..analysis.series import ExperimentResult, Series
from ..net.packet import FloodWorkload
from ..net.schedule import ScheduleTable
from ..net.sync import JitteredSchedules
from ..protocols import make_protocol
from ..sim.engine import SimConfig, run_flood
from ..sim.rng import RngStreams
from ._common import DEFAULT_SEED, get_trace, resolve_scale

__all__ = ["run", "JitteredSchedules"]

DUTY_RATIO = 0.05

#: Per-wake jitter probability levels: with probability ``p`` a node's
#: actual wake this period lands one slot off its advertised slot
#: (uniformly early or late) — the residual error of an imperfect sync
#: protocol. ``p = 0`` is the paper's model.
SKEW_LEVELS = (0.0, 0.1, 0.3, 0.6)


def run(scale: str = "full", seed: int = DEFAULT_SEED) -> ExperimentResult:
    ts = resolve_scale(scale)
    topo = get_trace(scale, seed)
    streams = RngStreams(seed)
    period = round(1 / DUTY_RATIO)
    levels = SKEW_LEVELS if scale != "smoke" else (0.0, 0.3)

    delays, misses, completions = [], [], []
    for mag in levels:
        level_delays, level_misses, level_done = [], [], []
        for rep in range(ts.n_replications):
            advertised = ScheduleTable.random(
                topo.n_nodes, period, streams.get(f"sched/{rep}")
            )
            truth = (
                advertised
                if mag == 0
                else JitteredSchedules(advertised, mag, seed + 31 * rep)
            )
            result = run_flood(
                topo,
                advertised,
                FloodWorkload(ts.n_packets),
                make_protocol("dbao"),
                streams.get(f"chan/{mag}/{rep}"),
                SimConfig(),
                true_schedules=truth,
            )
            level_delays.append(result.metrics.average_delay())
            level_misses.append(result.metrics.sleep_misses)
            level_done.append(float(result.completed))
        delays.append(float(np.nanmean(level_delays)))
        misses.append(float(np.mean(level_misses)))
        completions.append(float(np.mean(level_done)))

    x = np.asarray(levels)
    return ExperimentResult(
        experiment_id="skew",
        title="Clock-skew sensitivity (value of local synchronization)",
        series=[
            Series(label="avg delay", x=x, y=np.asarray(delays)),
            Series(label="sleep misses", x=x, y=np.asarray(misses)),
            Series(label="completion rate", x=x, y=np.asarray(completions)),
        ],
        metadata={"duty_ratio": DUTY_RATIO, "n_packets": ts.n_packets},
    )
