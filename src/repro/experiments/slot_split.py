"""Slot splitting: many short wake windows vs one long one.

The paper normalizes every schedule to one active slot per period
(Sec. III-A) and notes the general model only in passing. This
experiment asks the question the normalization hides: **at a fixed duty
ratio (fixed radio-on energy), does spreading the same wake budget over
more, shorter windows reduce flooding delay?**

Configurations compared, all at duty ``1/20``:

* ``a=1, T=20``  — the paper's normalized schedule;
* ``a=2, T=40``  — two wake slots per 40-slot period;
* ``a=4, T=80``  — four per 80;

Measured answer: **no** — and that is the finding. At a fixed duty
ratio the wake *density* (one active slot per 20 slots of time) is the
same in every configuration, so the mean sleep latency cannot improve;
what changes is the *regularity*. The normalized ``a = 1`` schedule
wakes like clockwork, while randomly-placed multi-slot schedules produce
irregular gaps whose long stretches dominate waiting times (the renewal
inspection paradox), costing a few percent of delay. The experiment
thereby supports the paper's normalization: analyzing the
one-slot-per-period schedule loses no generality worth having, unless a
deployment engineers *evenly spaced* sub-slots, which is equivalent to a
shorter period anyway.
"""

from __future__ import annotations

import numpy as np

from ..analysis.series import ExperimentResult, Series
from ..net.multislot import MultiSlotScheduleTable
from ..net.packet import FloodWorkload
from ..protocols import make_protocol
from ..sim.engine import SimConfig, run_flood
from ..sim.rng import RngStreams
from ._common import DEFAULT_SEED, get_trace, resolve_scale

__all__ = ["run"]

#: (slots per period, period) pairs — all at duty ratio 1/20.
CONFIGS = ((1, 20), (2, 40), (4, 80))


def run(scale: str = "full", seed: int = DEFAULT_SEED) -> ExperimentResult:
    ts = resolve_scale(scale)
    topo = get_trace(scale, seed)
    streams = RngStreams(seed)
    configs = CONFIGS if scale != "smoke" else CONFIGS[:2]

    delays, failures = [], []
    for a, period in configs:
        level_delays, level_failures = [], []
        for rep in range(ts.n_replications):
            schedules = MultiSlotScheduleTable.random(
                topo.n_nodes, period, a, streams.get(f"sched/{a}/{rep}")
            )
            result = run_flood(
                topo,
                schedules,
                FloodWorkload(ts.n_packets),
                make_protocol("dbao"),
                streams.get(f"chan/{a}/{rep}"),
                SimConfig(),
            )
            level_delays.append(result.metrics.average_delay())
            level_failures.append(result.metrics.tx_failures)
        delays.append(float(np.nanmean(level_delays)))
        failures.append(float(np.mean(level_failures)))

    x = np.asarray([a for a, _ in configs])
    return ExperimentResult(
        experiment_id="slot-split",
        title="Wake-budget splitting at fixed duty ratio (1/20)",
        series=[
            Series(label="avg delay", x=x, y=np.asarray(delays)),
            Series(label="failures", x=x, y=np.asarray(failures)),
        ],
        metadata={
            "configs": [f"a={a}, T={T}" for a, T in configs],
            "duty_ratio": 0.05,
            "n_packets": ts.n_packets,
        },
    )
