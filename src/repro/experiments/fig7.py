"""Fig. 7 — impact of link loss on the flooding-delay prediction.

For each link quality (50/60/70/80%, i.e. expected transmission counts
``k`` = 2 / 1.67 / 1.42 / 1.25) the paper predicts the flooding delay
from the largest eigenvalue of the delayed recurrence Eq. (8), across
duty cycles from 2% to 20%.

Shape expectations: delay falls as the duty cycle grows; worse links lie
strictly above better ones; and the spread between ``k = 2`` and
``k = 1.25`` widens dramatically at low duty cycles — loss *magnifies*
the duty-cycle penalty.
"""

from __future__ import annotations

import numpy as np

from ..analysis.series import ExperimentResult, Series
from ..core.linkloss import delay_vs_duty_cycle, growth_rate

__all__ = ["run"]

#: The paper's four legend entries (link quality -> k class).
K_CLASSES = (1.25, 1.42, 1.67, 2.0)
LINK_QUALITY = {1.25: 0.8, 1.42: 0.7, 1.67: 0.6, 2.0: 0.5}
DUTY_CYCLES = (0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.10, 0.20)

#: Network size of the validation trace (the paper does not state the N
#: behind Fig. 7; we use the 298-sensor GreenOrbs size for consistency).
N_SENSORS = 298


def run(scale: str = "full", n_sensors: int = N_SENSORS) -> ExperimentResult:
    duties = np.asarray(DUTY_CYCLES)
    grid = delay_vs_duty_cycle(n_sensors, duties, K_CLASSES)
    series = [
        Series(label=f"k={k:g} (link quality {LINK_QUALITY[k]:.0%})",
               x=duties, y=grid[i])
        for i, k in enumerate(K_CLASSES)
    ]
    growth = {
        f"lambda(k={k:g}, T=20)": round(growth_rate(k, 20), 6) for k in K_CLASSES
    }
    return ExperimentResult(
        experiment_id="fig7",
        title="Link-loss delay prediction (recurrence eigenvalue)",
        series=series,
        metadata={"n_sensors": n_sensors, **growth},
    )
