"""Table I — per-packet waitings ``W_p`` in the network.

The paper tabulates the waiting pattern for the two regimes: when fewer
packets than the blocking window are flooded (``M < m``) every packet
waits ``m + p``; beyond the window (``M >= m``) late packets saturate at
``m + (m - 1)``. This experiment materializes both tables for a chosen
``N`` and verifies them against the executable Algorithm 1 run.
"""

from __future__ import annotations

import numpy as np

from ..analysis.series import ExperimentResult, Table
from ..core.fdl import single_packet_waitings, waiting_table
from ..core.matrix_flood import MatrixFloodSimulator

__all__ = ["run"]


def run(scale: str = "full", n_sensors: int = 1024) -> ExperimentResult:
    m = single_packet_waitings(n_sensors)
    m_small = max(m - 3, 1)  # an M < m case
    m_large = m + 5  # an M >= m case

    tables = []
    for label, n_packets in (("M < m", m_small), ("M >= m", m_large)):
        rows = waiting_table(n_sensors, n_packets)
        tables.append(
            Table(
                title=f"Table I ({label}): N={n_sensors}, m={m}, M={n_packets}",
                columns={
                    "p": np.asarray([p for p, _ in rows]),
                    "W_p": np.asarray([w for _, w in rows]),
                },
            )
        )

    # Executable cross-check on a small power-of-two network: Algorithm 1's
    # measured per-packet compact waitings are exactly m for every packet
    # (the K_p + W_p split moves the ramp into the injection offsets).
    check_n = 16 if scale != "smoke" else 4
    sim = MatrixFloodSimulator(check_n)
    res = sim.run(single_packet_waitings(check_n) + 4)
    tables.append(
        Table(
            title=f"Algorithm 1 measured waitings (N={check_n})",
            columns={
                "p": np.arange(res.n_packets),
                "compact_waitings": res.per_packet_waitings(),
            },
        )
    )

    return ExperimentResult(
        experiment_id="table1",
        title="Table I: waitings of packets in the network",
        tables=tables,
        metadata={
            "n_sensors": n_sensors,
            "m": m,
            "saturation": m + (m - 1),
            "algorithm1_achieves_limit": res.achieves_lemma3,
        },
    )
