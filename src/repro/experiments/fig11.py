"""Fig. 11 — transmission failures versus duty cycle.

Same sweep as Fig. 10, but counting failed transmissions (loss +
collisions). The paper's observation: the failure count stays nearly
constant as the duty ratio changes, implying per-node energy scales
linearly with the duty ratio — which, combined with Fig. 10's exponential
delay growth, means an extremely low duty cycle is *not* always
beneficial.
"""

from __future__ import annotations

import numpy as np

from ..analysis.series import ExperimentResult, Series
from ..analysis.validate import relative_spread
from ._common import DEFAULT_SEED, get_trace, resolve_scale
from ._trace_sweep import PROTOCOLS, trace_duty_sweep

__all__ = ["run"]


def run(scale: str = "full", seed: int = DEFAULT_SEED) -> ExperimentResult:
    ts = resolve_scale(scale)
    grid = trace_duty_sweep(scale, seed)
    duties = np.asarray(ts.duty_ratios)

    series = []
    spreads = {}
    for proto in PROTOCOLS:
        failures = np.asarray(
            [grid[proto][d].mean_failures() for d in ts.duty_ratios]
        )
        series.append(Series(label=f"{proto}: failures", x=duties, y=failures))
        spreads[proto] = relative_spread(failures)

    return ExperimentResult(
        experiment_id="fig11",
        title="Transmission failures vs duty cycle",
        series=series,
        metadata={"n_packets": ts.n_packets, "relative_spread": spreads},
    )
