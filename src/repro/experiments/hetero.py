"""Heterogeneous link quality vs the homogeneous k-class analysis.

Sec. IV-B derives the delay prediction for a *homogeneous* network where
every link has the same k-class, then extends to the heterogeneous case
"by the simulation". This experiment is that extension, expressed as a
scenario grid with a **topology axis**: the GreenOrbs trace
(heterogeneous PRR spread) and its *homogenized* twin (same adjacency,
every link at the trace's mean PRR — the ``"homogenize"`` topology
transform) are flooded with the same seeds, and both are compared
against the recurrence prediction evaluated at the network-mean k-class.

Expected shape — and it is *not* the naive Jensen argument: although the
heterogeneous ensemble has the worse average retransmission count
(``E[1/q] > 1/E[q]``), a link-aware protocol like DBAO floods the
heterogeneous trace *faster* than its mean-matched twin, because it
cherry-picks the near-perfect links (the trace's PRR median is ~0.99)
and the weak tail is discounted by the 99% coverage rule. Homogenizing
removes the good-link subgraph protocols actually ride on. Both variants
stay above the analytic lower bound. The Jensen penalty applies to
*fixed-path* forwarding — visible in the DCA baseline, not in DBAO.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..analysis.series import ExperimentResult, Series, Table
from ..analysis.validate import analytic_lower_bound
from ..core.linkloss import effective_k, recurrence_hitting_time
from ..net.topology import homogenized as homogenize  # noqa: F401  (public re-export)
from ..scenario import Scenario, ScenarioGrid
from ._common import DEFAULT_SEED, get_trace, resolve_scale, run_grid, trace_spec

__all__ = ["run", "grid", "homogenize"]

DUTY_RATIOS = (0.05, 0.10, 0.20)


def grid(scale: str = "full", seed: int = DEFAULT_SEED) -> ScenarioGrid:
    """DBAO over duty ratios x {heterogeneous trace, homogenized twin}."""
    ts = resolve_scale(scale)
    duties = DUTY_RATIOS if scale != "smoke" else (0.05, 0.2)
    hetero_spec = trace_spec(scale, seed)
    homog_spec = dataclasses.replace(hetero_spec, transform="homogenize")
    return ScenarioGrid(
        base=Scenario(
            protocol="dbao",
            duty_ratio=duties[0],
            n_packets=ts.n_packets,
            seed=seed,
            n_replications=ts.n_replications,
            topology=hetero_spec,
        ),
        axes={"duty_ratio": duties, "topology": (hetero_spec, homog_spec)},
        name="hetero",
    )


def run(scale: str = "full", seed: int = DEFAULT_SEED) -> ExperimentResult:
    ts = resolve_scale(scale)
    hetero_topo = get_trace(scale, seed)
    g = grid(scale, seed)
    duties = tuple(dict(g.axes)["duty_ratio"])

    series_data = {"heterogeneous": [], "homogenized": [], "prediction": []}
    for ((duty, topo_spec), summary) in zip(g.combos(), run_grid(g)):
        label = ("homogenized" if topo_spec.transform == "homogenize"
                 else "heterogeneous")
        series_data[label].append(summary.mean_delay())
    for duty in duties:
        series_data["prediction"].append(analytic_lower_bound(hetero_topo, duty))

    x = np.asarray(duties)
    mean_k = effective_k(hetero_topo.prr[hetero_topo.adjacency])
    homog_k = 1.0 / hetero_topo.mean_prr()
    return ExperimentResult(
        experiment_id="hetero",
        title="Heterogeneous vs homogenized link quality (Sec. IV-B extension)",
        series=[
            Series(label="heterogeneous trace", x=x,
                   y=np.asarray(series_data["heterogeneous"])),
            Series(label="homogenized twin", x=x,
                   y=np.asarray(series_data["homogenized"])),
            Series(label="analytic lower bound", x=x,
                   y=np.asarray(series_data["prediction"])),
        ],
        tables=[
            Table(
                title="Effective k-classes",
                columns={
                    "model": np.asarray(
                        ["heterogeneous E[1/q]", "homogenized 1/E[q]"]
                    ),
                    "k": np.asarray([mean_k, homog_k]),
                },
            )
        ],
        metadata={"protocol": "dbao", "n_packets": ts.n_packets},
    )
