"""At which duty ratio does the MAC become the flooding-delay bottleneck?

The paper's Sec. IV delay limits assume the idealized slot radio — PRR
links plus a one-winner CSMA oracle — so waking rarely (low duty ratio)
is the only delay source the analysis sees. A real 802.15.4 CSMA-CA MAC
adds contention-window, ack-wait and retry latency *per rendezvous*.
This experiment floods the same geometric (log-distance path-loss)
deployment under both link models across a duty sweep and asks the
paper-extending question: where does the delay stop being a property of
the wake schedule and start being a property of the MAC?

The decomposition uses the per-duty **MAC delay share**
``(delay_csma - delay_ideal) / delay_csma``: near 0 the wake schedule
dominates (the paper's regime — sleeping is the bottleneck, the MAC
rides along free), near 1 the MAC dominates. The *crossover duty* is
the smallest swept duty ratio whose share exceeds 0.5; at high duty
ratios rendezvous are plentiful and the MAC's serialization is all
that's left.
"""

from __future__ import annotations

import numpy as np

from ..analysis.series import ExperimentResult, Series, Table
from ..scenario import Scenario, ScenarioGrid, TopologySpec
from ._common import DEFAULT_SEED, resolve_scale, run_grid

__all__ = ["run", "grid"]

#: Both halves of the layered link stack under test.
MACS = ("ideal", "csma_802154")


def _deployment(scale: str, seed: int) -> TopologySpec:
    """Geometric path-loss deployment, density-matched across scales.

    The density mirrors the 30-node / 180 m test substrate (known
    connected under the default CC2420-class radio constants); the area
    scales with sqrt(n) so mean degree stays put.
    """
    n = {"full": 120, "bench": 60, "smoke": 30}[resolve_scale(scale).name]
    area = round(180.0 * (n / 30.0) ** 0.5, 1)
    return TopologySpec(
        kind="geometric", seed=seed,
        params={"n_nodes": n, "area_m": area, "placement": "uniform"},
    )


def grid(scale: str = "full", seed: int = DEFAULT_SEED) -> ScenarioGrid:
    """DBAO over duty ratios x {ideal, csma_802154} link models."""
    ts = resolve_scale(scale)
    return ScenarioGrid(
        base=Scenario(
            protocol="dbao",
            duty_ratio=ts.duty_ratios[0],
            n_packets=ts.n_packets,
            seed=seed,
            n_replications=ts.n_replications,
            topology=_deployment(scale, seed),
        ),
        axes={"duty_ratio": ts.duty_ratios, "mac": MACS},
        name="mac-duty",
    )


def run(scale: str = "full", seed: int = DEFAULT_SEED) -> ExperimentResult:
    ts = resolve_scale(scale)
    g = grid(scale, seed)
    duties = tuple(dict(g.axes)["duty_ratio"])

    delays = {mac: [] for mac in MACS}
    for ((duty, mac), summary) in zip(g.combos(), run_grid(g)):
        delays[mac].append(summary.mean_delay())
    ideal = np.asarray(delays["ideal"], dtype=np.float64)
    csma = np.asarray(delays["csma_802154"], dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        mac_share = np.where(csma > 0, (csma - ideal) / csma, 0.0)

    # Crossover: the smallest duty ratio where the MAC accounts for the
    # majority of the flooding delay. None when the wake schedule
    # dominates the whole sweep.
    crossover = next(
        (float(d) for d, s in zip(duties, mac_share) if s > 0.5), None
    )

    x = np.asarray(duties)
    return ExperimentResult(
        experiment_id="mac-duty",
        title="Duty ratio vs MAC: where contention becomes the bottleneck",
        series=[
            Series(label="ideal link (paper's oracle)", x=x, y=ideal),
            Series(label="802.15.4 CSMA-CA", x=x, y=csma),
            Series(label="MAC delay share", x=x, y=mac_share),
        ],
        tables=[
            Table(
                title="MAC share of flooding delay per duty ratio",
                columns={
                    "duty_ratio": x,
                    "delay_ideal": ideal,
                    "delay_csma": csma,
                    "mac_share": mac_share,
                },
            )
        ],
        metadata={
            "protocol": "dbao",
            "n_packets": ts.n_packets,
            "crossover_duty": crossover,
            "mac_share_by_duty": {
                str(d): float(s) for d, s in zip(duties, mac_share)
            },
        },
    )
