"""Fig. 10 — average flooding delay versus duty cycle.

The paper sweeps the duty cycle from 2% to 20% on the GreenOrbs trace and
plots the average per-packet flooding delay of OPT, DBAO and OF, together
with the analytic lower bound from the Sec. IV-B recurrence. Shape
expectations: every protocol's delay explodes as the duty cycle shrinks;
OPT <= DBAO <= OF throughout; the prediction stays below all three.
"""

from __future__ import annotations

import numpy as np

from ..analysis.series import ExperimentResult, Series
from ..analysis.validate import analytic_lower_bound
from ._common import DEFAULT_SEED, get_trace, resolve_scale
from ._trace_sweep import PROTOCOLS, trace_duty_sweep

__all__ = ["run"]


def run(scale: str = "full", seed: int = DEFAULT_SEED) -> ExperimentResult:
    ts = resolve_scale(scale)
    topo = get_trace(scale, seed)
    grid = trace_duty_sweep(scale, seed)
    duties = np.asarray(ts.duty_ratios)

    series = [
        Series(label=f"{proto}: avg delay", x=duties,
               y=np.asarray([grid[proto][d].mean_delay() for d in ts.duty_ratios]))
        for proto in PROTOCOLS
    ]
    bound = np.asarray(
        [analytic_lower_bound(topo, d) for d in ts.duty_ratios], dtype=np.float64
    )
    series.append(Series(label="predicted lower bound", x=duties, y=bound))

    completion = {
        proto: {float(d): grid[proto][d].completion_rate() for d in ts.duty_ratios}
        for proto in PROTOCOLS
    }
    return ExperimentResult(
        experiment_id="fig10",
        title="Average flooding delay vs duty cycle",
        series=series,
        metadata={"n_packets": ts.n_packets, "n_sensors": topo.n_sensors,
                  "completion": completion},
    )
