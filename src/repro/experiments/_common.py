"""Shared experiment infrastructure: scales, cached traces, execution.

Every experiment accepts a ``scale``:

* ``"full"`` — the paper's parameters (298-node trace, M = 100, ten duty
  ratios). Minutes of wall clock; used to produce EXPERIMENTS.md.
* ``"bench"`` — reduced sizes tuned so each pytest-benchmark target runs
  in seconds while preserving every qualitative shape.
* ``"smoke"`` — minimal sizes for the unit/integration test suite.

Experiments run their specs through :func:`run_spec` (or hand the
process-wide executor/store pair to the sweep helpers), so the CLI's
``--jobs``/``--cache-dir`` flags — which install a
:class:`repro.exec.ExecutionContext` — apply to every figure uniformly.
Result memoization lives in the context's content-addressed
:class:`repro.exec.ResultStore`, not in per-function ``lru_cache``s:
within a process the store's memory layer deduplicates shared grids
(fig10/fig11), and with a cache directory configured results survive
across CLI invocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exec import execution_context
from ..net.topology import Topology
from ..scenario import ScenarioGrid, TopologySpec, build_topology
from ..sim.runner import (ExperimentSpec, RunSummary, run_experiments,
                          run_scenarios)

__all__ = ["TraceScale", "SCALES", "get_trace", "trace_spec",
           "resolve_scale", "run_spec", "run_specs", "run_grid"]

#: Root seed of every experiment (the paper's publication year).
DEFAULT_SEED = 2011


@dataclass(frozen=True)
class TraceScale:
    """Per-scale simulation sizes."""

    name: str
    n_sensors: int
    n_packets: int
    duty_ratios: Tuple[float, ...]
    n_replications: int

    def __post_init__(self):
        if self.n_sensors < 2 or self.n_packets < 1 or self.n_replications < 1:
            raise ValueError(f"degenerate scale {self}")


SCALES: Dict[str, TraceScale] = {
    "full": TraceScale(
        name="full",
        n_sensors=298,
        n_packets=100,
        duty_ratios=(0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.14, 0.16, 0.18, 0.20),
        n_replications=1,
    ),
    # Three replications: at 2% duty a single draw can hand any protocol
    # an unlucky straggler cluster; the paper's M = 100 amortizes this,
    # the bench's M = 20 needs averaging instead.
    "bench": TraceScale(
        name="bench",
        n_sensors=298,
        n_packets=20,
        duty_ratios=(0.02, 0.05, 0.10, 0.20),
        n_replications=3,
    ),
    "smoke": TraceScale(
        name="smoke",
        n_sensors=120,
        n_packets=4,
        duty_ratios=(0.05, 0.20),
        n_replications=1,
    ),
}


def resolve_scale(scale: str) -> TraceScale:
    try:
        return SCALES[scale]
    except KeyError:
        raise KeyError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}") from None


def run_spec(topo: Topology, spec: ExperimentSpec) -> RunSummary:
    """Run one spec through the process-wide execution context.

    Every experiment module funnels its simulations through here (or
    :func:`run_specs`) so the session's executor (``--jobs``) and result
    store (``--cache-dir``) apply without threading parameters through
    each figure's signature.
    """
    return run_specs(topo, [spec])[0]


def run_specs(topo: Topology, specs: Sequence[ExperimentSpec]) -> List[RunSummary]:
    """Run many specs in one dispatch through the execution context."""
    ctx = execution_context()
    return run_experiments(topo, specs, executor=ctx.executor,
                           store=ctx.store, reps_per_task=ctx.reps_per_task)


def run_grid(grid: ScenarioGrid,
             topo: Optional[Topology] = None) -> List[RunSummary]:
    """Run a declarative scenario grid through the execution context.

    Summaries come back in the grid's expansion order (pair them with
    ``grid.combos()``); scenarios name their own topologies, with
    ``topo`` as the fallback substrate for any that don't.
    """
    ctx = execution_context()
    return run_scenarios(grid.scenarios(), executor=ctx.executor,
                         store=ctx.store, topo=topo,
                         reps_per_task=ctx.reps_per_task)


def trace_spec(scale: str = "full", seed: int = DEFAULT_SEED) -> TopologySpec:
    """Declarative description of the trace topology for a scale.

    ``full``/``bench`` describe the 298-node synthetic GreenOrbs trace;
    smoke shrinks the sensor count (the builder shrinks the plot area
    with it, preserving density) so the whole test suite stays fast.
    """
    ts = resolve_scale(scale)
    params = {} if ts.n_sensors == 298 else {"n_sensors": ts.n_sensors}
    return TopologySpec(kind="greenorbs", seed=seed, params=params)


def get_trace(scale: str = "full", seed: int = DEFAULT_SEED) -> Topology:
    """The trace topology for a scale, from the scenario layer's
    bounded build cache (:func:`repro.scenario.build_topology`: FIFO,
    maxsize 8 — every scale x seed pair a session realistically touches
    — replacing the old module-local ``lru_cache``). Repeated calls
    return the same object."""
    return build_topology(trace_spec(scale, seed))
