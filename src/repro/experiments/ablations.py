"""Design-choice ablations called out in DESIGN.md.

* ``collisions`` — run DBAO with the collision model disabled: how much
  of the DBAO-to-OPT gap is pure contention (the paper attributes the gap
  to hidden terminals; with collisions off, DBAO should close most of it).
* ``overhearing`` — DBAO with the overhearing suppression off: quantifies
  the energy/contention cost of losing the "O" in DBAO.
* ``opp-threshold`` — OF's opportunistic quantile swept: small quantiles
  approach pure tree flooding (slow, cheap), large ones approach
  unsuppressed opportunism (fast, contentious).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from ..analysis.series import ExperimentResult, Series
from ..scenario import Scenario, ScenarioGrid
from ..sim.engine import SimConfig
from ._common import DEFAULT_SEED, get_trace, resolve_scale, run_grid, trace_spec

__all__ = [
    "run_collisions",
    "run_overhearing",
    "run_opp_threshold",
    "run_data_overhearing",
    "run_bursty_links",
]

DUTY_RATIO = 0.05


def _dbao_grid(scale: str, seed: int, name: str,
               axes: Dict[str, Tuple[Any, ...]]) -> ScenarioGrid:
    """A DBAO-at-5%-duty grid over one declarative axis."""
    ts = resolve_scale(scale)
    return ScenarioGrid(
        base=Scenario(protocol="dbao", duty_ratio=DUTY_RATIO,
                      n_packets=ts.n_packets, seed=seed,
                      topology=trace_spec(scale, seed)),
        axes=axes,
        name=name,
    )


def collisions_grid(scale: str = "full", seed: int = DEFAULT_SEED) -> ScenarioGrid:
    return _dbao_grid(scale, seed, "abl-collisions", {
        "sim": ({}, {"radio": {"collisions": False}}),
    })


def run_collisions(scale: str = "full", seed: int = DEFAULT_SEED) -> ExperimentResult:
    labels = ["collisions on", "collisions off"]
    summaries = run_grid(collisions_grid(scale, seed))
    rows = {label: (s.mean_delay(), s.mean_failures())
            for label, s in zip(labels, summaries)}
    x = np.asarray([0, 1])
    return ExperimentResult(
        experiment_id="abl-collisions",
        title="Ablation: DBAO with/without the collision model",
        series=[
            Series(label="avg delay", x=x,
                   y=np.asarray([rows[l][0] for l in labels])),
            Series(label="failures", x=x,
                   y=np.asarray([rows[l][1] for l in labels])),
        ],
        metadata={"x_labels": labels, "rows": rows},
    )


def overhearing_grid(scale: str = "full", seed: int = DEFAULT_SEED) -> ScenarioGrid:
    return _dbao_grid(scale, seed, "abl-overhearing", {
        "protocol_kwargs": ({"overhearing": True}, {"overhearing": False}),
    })


def run_overhearing(scale: str = "full", seed: int = DEFAULT_SEED) -> ExperimentResult:
    labels = ["overhearing on", "overhearing off"]
    summaries = run_grid(overhearing_grid(scale, seed))
    rows = {label: (s.mean_delay(), s.mean_failures(), s.mean_tx_attempts())
            for label, s in zip(labels, summaries)}
    x = np.asarray([0, 1])
    return ExperimentResult(
        experiment_id="abl-overhearing",
        title="Ablation: DBAO with/without overhearing suppression",
        series=[
            Series(label="avg delay", x=x,
                   y=np.asarray([rows[l][0] for l in labels])),
            Series(label="tx attempts", x=x,
                   y=np.asarray([rows[l][2] for l in labels])),
        ],
        metadata={"x_labels": labels, "rows": rows},
    )


def data_overhearing_grid(
    scale: str = "full", seed: int = DEFAULT_SEED
) -> ScenarioGrid:
    return _dbao_grid(scale, seed, "abl-data-overhearing", {
        "sim": ({}, {"radio": {"overhearing": True}}),
    })


def run_data_overhearing(
    scale: str = "full", seed: int = DEFAULT_SEED
) -> ExperimentResult:
    """Future-work direction 2's headroom: let data frames be overheard.

    The paper's unicast model forbids bystander reception; the cross-layer
    design exploits it. This ablation runs DBAO on both channels and
    quantifies how much delay the broadcast nature of the medium buys once
    a protocol is co-designed for it.
    """
    labels = ["unicast (paper model)", "data overhearing on"]
    summaries = run_grid(data_overhearing_grid(scale, seed))
    rows = {label: (s.mean_delay(), s.mean_tx_attempts())
            for label, s in zip(labels, summaries)}
    x = np.asarray([0, 1])
    return ExperimentResult(
        experiment_id="abl-data-overhearing",
        title="Ablation: unicast channel vs data overhearing (DBAO)",
        series=[
            Series(label="avg delay", x=x,
                   y=np.asarray([rows[l][0] for l in labels])),
            Series(label="tx attempts", x=x,
                   y=np.asarray([rows[l][1] for l in labels])),
        ],
        metadata={"x_labels": labels, "rows": rows},
    )


def run_bursty_links(
    scale: str = "full", seed: int = DEFAULT_SEED
) -> ExperimentResult:
    """Bursty (Gilbert-Elliott) links vs the paper's static-loss model.

    Both channels have the *same long-run mean PRR* (the static leg is
    scaled down by the dynamics' stationary loss), so any delay gap is
    purely the effect of loss *correlation*: a bad period spanning a wake
    slot costs a whole duty-cycle period per retry, which independent
    draws amortize but bursts do not.
    """
    import numpy as np

    from ..net.dynamics import GilbertElliott
    from ..net.packet import FloodWorkload
    from ..net.schedule import ScheduleTable
    from ..net.topology import Topology
    from ..sim.engine import run_flood
    from ..sim.rng import RngStreams

    ts = resolve_scale(scale)
    topo = get_trace(scale, seed)
    streams = RngStreams(seed)
    period = round(1 / DUTY_RATIO)

    def one(label, dyn_factory, use_topo):
        delays = []
        for rep in range(ts.n_replications):
            schedules = ScheduleTable.random(
                use_topo.n_nodes, period, streams.get(f"sched/{label}/{rep}")
            )
            result = run_flood(
                use_topo,
                schedules,
                FloodWorkload(ts.n_packets),
                __import__("repro.protocols", fromlist=["make_protocol"])
                .make_protocol("dbao"),
                streams.get(f"chan/{label}/{rep}"),
                SimConfig(),
                dynamics=dyn_factory(rep) if dyn_factory else None,
            )
            delays.append(result.metrics.average_delay())
        return float(np.nanmean(delays))

    dyn_proto = GilbertElliott(topo)  # for the long-run scale only
    scale_factor = dyn_proto.long_run_prr_scale()
    static_topo = Topology(
        np.clip(topo.prr * scale_factor, 0.0, 1.0),
        positions=topo.positions,
        neighbor_threshold=topo.neighbor_threshold * scale_factor,
        rssi=topo.rssi,
    )

    rows = {
        "static, mean-matched": one("static", None, static_topo),
        "bursty (Gilbert-Elliott)": one(
            "bursty",
            lambda rep: GilbertElliott(
                topo, rng=streams.get(f"dyn/{rep}")
            ),
            topo,
        ),
    }
    x = np.asarray([0, 1])
    labels = list(rows)
    return ExperimentResult(
        experiment_id="abl-bursty",
        title="Ablation: static mean-matched loss vs bursty links",
        series=[
            Series(label="avg delay", x=x,
                   y=np.asarray([rows[l] for l in labels])),
        ],
        metadata={
            "x_labels": labels,
            "long_run_prr_scale": round(scale_factor, 4),
            "rows": rows,
        },
    )


def opp_threshold_grid(
    scale: str = "full", seed: int = DEFAULT_SEED
) -> ScenarioGrid:
    ts = resolve_scale(scale)
    quantiles = (0.2, 0.5, 0.8, 0.95) if scale != "smoke" else (0.2, 0.8)
    return ScenarioGrid(
        base=Scenario(protocol="of", duty_ratio=DUTY_RATIO,
                      n_packets=ts.n_packets, seed=seed,
                      topology=trace_spec(scale, seed)),
        axes={"protocol_kwargs": tuple({"opp_quantile": q} for q in quantiles)},
        name="abl-opp-threshold",
    )


def run_opp_threshold(scale: str = "full", seed: int = DEFAULT_SEED) -> ExperimentResult:
    ts = resolve_scale(scale)
    g = opp_threshold_grid(scale, seed)
    summaries = run_grid(g)
    x = np.asarray([kw["opp_quantile"] for (kw,) in g.combos()])
    return ExperimentResult(
        experiment_id="abl-opp-threshold",
        title="Ablation: OF opportunistic-forwarding quantile",
        series=[
            Series(label="avg delay", x=x,
                   y=np.asarray([s.mean_delay() for s in summaries])),
            Series(label="tx attempts", x=x,
                   y=np.asarray([s.mean_tx_attempts() for s in summaries])),
        ],
        metadata={"duty_ratio": DUTY_RATIO, "n_packets": ts.n_packets},
    )
