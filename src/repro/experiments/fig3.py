"""Fig. 3 — the worked example of Algorithm 1.

The paper illustrates the matrix-based flooding on a network of one
source and N = 4 sensors flooding M = 2 packets, showing the possession
matrices ``X^{(c)}`` at each compact slot and that every packet meets the
Eq. (6) waiting limit. This experiment replays the algorithm with history
recording and emits those matrices plus the per-packet waitings.
"""

from __future__ import annotations

import numpy as np

from ..analysis.series import ExperimentResult, Series, Table
from ..core.matrix_flood import MatrixFloodSimulator

__all__ = ["run"]


def run(scale: str = "full", n_sensors: int = 4, n_packets: int = 2) -> ExperimentResult:
    """Replay Algorithm 1 on the paper's example (any ``N = 2^n`` works).

    ``scale`` is accepted for registry uniformity; the example is tiny at
    every scale.
    """
    sim = MatrixFloodSimulator(n_sensors)
    result = sim.run(n_packets, record_history=True)

    tables = []
    assert result.possession_history is not None
    for c, snapshot in enumerate(result.possession_history):
        # One column per packet, matching the paper's layout.
        cols = {"node": np.arange(1 + n_sensors),
                **{f"packet{p}": snapshot[p].astype(np.int64)
                   for p in range(n_packets)}}
        tables.append(Table(title=f"X at compact slot c={c}", columns=cols))

    tables.append(Table(
        title="Per-packet compact waitings (Lemma 3: each equals m)",
        columns={"packet": np.arange(n_packets),
                 "waitings": result.per_packet_waitings(),
                 "limit_m": np.full(n_packets, result.m)},
    ))

    return ExperimentResult(
        experiment_id="fig3",
        title="Algorithm 1 worked example (matrix evolution)",
        series=[
            Series(
                label="coverage of packet 0 over compact slots",
                x=np.arange(len(result.possession_history)),
                y=np.asarray(
                    [snap[0].sum() for snap in result.possession_history]
                ),
            )
        ],
        tables=tables,
        metadata={
            "n_sensors": n_sensors,
            "n_packets": n_packets,
            "compact_slots": result.compact_slots,
            "lemma3_limit": n_packets + result.m - 1,
            "achieves_lemma3": result.achieves_lemma3,
        },
    )
