"""Experiment harness: one module per paper table/figure plus ablations.

Each experiment's ``run(scale=...)`` returns an
:class:`~repro.analysis.series.ExperimentResult`; the registry in
:mod:`repro.experiments.registry` maps experiment ids to those callables.
"""

from .registry import EXPERIMENTS, experiment_ids, run_experiment_by_id

__all__ = ["EXPERIMENTS", "experiment_ids", "run_experiment_by_id"]
