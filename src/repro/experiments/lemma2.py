"""Lemma 2 — empirical validation of the FWL closed form.

Monte-Carlo Galton-Watson ensembles measure the hitting time of
population ``1 + N`` and compare it with
``ceil(log2(1+N) / log2(mu))`` across the success-probability range.
Also samples the Lemma 1 limit ``W`` and checks its mean/variance.
"""

from __future__ import annotations

import numpy as np

from ..analysis.series import ExperimentResult, Series, Table
from ..core.branching import (
    doubling_law,
    limit_variance,
    simulate_normalized_limit,
)
from ..core.fwl import empirical_fwl, fwl_lossy

__all__ = ["run"]

SUCCESS_PROBS = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def run(
    scale: str = "full",
    n_sensors: int = 1024,
    seed: int = 2011,
) -> ExperimentResult:
    n_ensembles = {"full": 4000, "bench": 1000, "smoke": 200}.get(scale, 1000)
    rng = np.random.default_rng(seed)

    probs = np.asarray(SUCCESS_PROBS)
    theory = np.asarray([fwl_lossy(n_sensors, q) for q in probs])
    measured = np.empty(probs.size)
    for i, q in enumerate(probs):
        times = empirical_fwl(n_sensors, float(q), n_ensembles, rng)
        measured[i] = times.mean()

    # Lemma 1 limit statistics at q = 0.6.
    law = doubling_law(0.6)
    w = simulate_normalized_limit(law, n_generations=30, n_ensembles=n_ensembles, rng=rng)
    lemma1 = Table(
        title="Lemma 1 limit W (q=0.6)",
        columns={
            "statistic": np.asarray(["mean", "variance"]),
            "theory": np.asarray([1.0, limit_variance(law)]),
            "measured": np.asarray([w.mean(), w.var(ddof=1)]),
        },
    )

    return ExperimentResult(
        experiment_id="lemma2",
        title="Lemma 2: FWL closed form vs Galton-Watson simulation",
        series=[
            Series(label="E[FWL] theory (ceil form)", x=probs, y=theory),
            Series(label="E[FWL] measured", x=probs, y=measured),
        ],
        tables=[lemma1],
        metadata={"n_sensors": n_sensors, "n_ensembles": n_ensembles},
    )
