"""Fig. 9 — per-packet flooding delay versus packet index.

The paper floods M = 100 packets on the 298-node GreenOrbs trace at 5%
duty cycle with OPT, DBAO and OF, plotting every packet's delay and,
separately, its pure transmission delay. The blocking (queueing) effect
is the gap between the two: it grows with the packet index until the
pipeline saturates, while the transmission component stays roughly flat
and nearly identical across protocols.
"""

from __future__ import annotations

import numpy as np

from ..analysis.series import ExperimentResult, Series
from ..scenario import Scenario, ScenarioGrid
from ._common import DEFAULT_SEED, get_trace, resolve_scale, run_grid, trace_spec
from ._trace_sweep import PROTOCOLS

__all__ = ["run", "grid"]

DUTY_RATIO = 0.05


def grid(scale: str = "full", seed: int = DEFAULT_SEED) -> ScenarioGrid:
    """One scenario per protocol at 5% duty, transmission delay on."""
    ts = resolve_scale(scale)
    base = Scenario(protocol=PROTOCOLS[0], duty_ratio=DUTY_RATIO,
                    n_packets=ts.n_packets, seed=seed,
                    n_replications=ts.n_replications,
                    measure_transmission_delay=True,
                    topology=trace_spec(scale, seed))
    return ScenarioGrid(base=base, axes={"protocol": PROTOCOLS}, name="fig9")


def run(scale: str = "full", seed: int = DEFAULT_SEED) -> ExperimentResult:
    ts = resolve_scale(scale)
    g = grid(scale, seed)
    packet_idx = np.arange(ts.n_packets)

    series, makespans = [], {}
    for ((proto,), summary) in zip(g.combos(), run_grid(g)):
        series.append(Series(label=f"{proto}: total delay", x=packet_idx,
                             y=summary.per_packet_delay()))
        td = summary.per_packet_transmission_delay()
        assert td is not None
        series.append(
            Series(label=f"{proto}: transmission delay", x=packet_idx, y=td)
        )
        makespans[proto] = float(
            np.mean([r.metrics.delays.makespan() for r in summary.results])
        )

    return ExperimentResult(
        experiment_id="fig9",
        title="Per-packet delay vs packet index (blocking effect)",
        series=series,
        metadata={"duty_ratio": DUTY_RATIO, "n_packets": ts.n_packets,
                  "n_sensors": get_trace(scale, seed).n_sensors,
                  "makespans": makespans},
    )
