"""Networking-gain trade-off (the paper's future-work direction 1).

Sweeps the duty ratio, evaluating the analytic lifetime model against the
link-loss delay predictor, and reports the gain-maximizing duty cycle —
the "instruction to configure the duty cycle length" the paper says is
missing. The curve's interior maximum is the quantitative form of the
conclusion that an extremely low duty cycle is not always beneficial.
"""

from __future__ import annotations

import numpy as np

from ..analysis.series import ExperimentResult, Series
from ..core.tradeoff import gain_curve, optimal_duty_cycle
from ._common import DEFAULT_SEED, get_trace

__all__ = ["run"]

DUTY_GRID = (
    0.01, 0.02, 0.03, 0.04, 0.05, 0.0667, 0.08, 0.10, 0.125, 0.1667, 0.20,
    0.25, 0.3333, 0.50,
)


def run(scale: str = "full", seed: int = DEFAULT_SEED) -> ExperimentResult:
    topo = get_trace(scale, seed)
    k = topo.mean_k_class()
    points = gain_curve(DUTY_GRID, topo.n_sensors, k)
    duties = np.asarray([pt.duty_ratio for pt in points])
    best = optimal_duty_cycle(topo.n_sensors, k)

    return ExperimentResult(
        experiment_id="gain",
        title="Networking gain vs duty cycle (future-work instrument)",
        series=[
            Series(label="lifetime (slots)", x=duties,
                   y=np.asarray([pt.lifetime for pt in points])),
            Series(label="predicted delay (slots)", x=duties,
                   y=np.asarray([pt.delay for pt in points])),
            Series(label="networking gain", x=duties,
                   y=np.asarray([pt.gain for pt in points])),
        ],
        metadata={
            "effective_k": round(k, 3),
            "optimal_duty": best.duty_ratio,
            "optimal_period": best.period,
            "optimal_gain": round(best.gain, 4),
        },
    )
