"""Experiment registry: one callable per paper artifact.

``run_experiment_by_id("fig10", scale="bench")`` is how benchmarks,
tests, and the EXPERIMENTS.md generator all invoke experiments.

Simulation-grid experiments additionally register their declarative
:class:`~repro.scenario.ScenarioGrid` builders in
:data:`SCENARIO_GRIDS` — ``scenario_grid("fig9", scale="smoke")`` is
the same grid the experiment runs, as serializable data (the
``examples/*.json`` scenario files are these grids, saved). Analytic
artifacts (fig3-7, table1, lemma2, gain) and experiments whose sampling
is not scenario-shaped (skew, slot-split, abl-bursty) have no grid
entry.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..analysis.series import ExperimentResult
from ..exec import use_execution
from ..scenario import ScenarioGrid
from . import ablations, fig3, fig5, fig6, fig7, fig9, fig10, fig11
from . import hetero, lemma2, mac_duty, skew, slot_split, table1, tradeoff_gain
from ._trace_sweep import trace_sweep_grid

__all__ = ["EXPERIMENTS", "SCENARIO_GRIDS", "run_experiment_by_id",
           "experiment_ids", "scenario_grid", "scenario_grid_ids"]

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig3": fig3.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "table1": table1.run,
    "lemma2": lemma2.run,
    "gain": tradeoff_gain.run,
    "abl-collisions": ablations.run_collisions,
    "abl-overhearing": ablations.run_overhearing,
    "abl-opp-threshold": ablations.run_opp_threshold,
    "abl-data-overhearing": ablations.run_data_overhearing,
    "abl-bursty": ablations.run_bursty_links,
    "skew": skew.run,
    "hetero": hetero.run,
    "mac-duty": mac_duty.run,
    "slot-split": slot_split.run,
}

#: Declarative grid builders, ``(scale, seed) -> ScenarioGrid``. fig10
#: and fig11 share one grid (they render different metrics of the same
#: simulations — and therefore the same store entries).
SCENARIO_GRIDS: Dict[str, Callable[..., ScenarioGrid]] = {
    "fig9": fig9.grid,
    "fig10": trace_sweep_grid,
    "fig11": trace_sweep_grid,
    "hetero": hetero.grid,
    "mac-duty": mac_duty.grid,
    "abl-collisions": ablations.collisions_grid,
    "abl-overhearing": ablations.overhearing_grid,
    "abl-opp-threshold": ablations.opp_threshold_grid,
    "abl-data-overhearing": ablations.data_overhearing_grid,
}


def scenario_grid(
    experiment_id: str,
    scale: str = "full",
    shard: Optional[Tuple[int, int]] = None,
    **kwargs,
) -> ScenarioGrid:
    """The declarative scenario grid behind a registered experiment.

    ``shard=(i, k)`` returns shard ``i`` of ``k`` (0-based) of the
    grid — the registry-level entry into sharded execution, equivalent
    to ``scenario_grid(id).shard(i, k)``: run each shard into its own
    cache directory and ``repro store merge`` them back.
    """
    try:
        builder = SCENARIO_GRIDS[experiment_id]
    except KeyError:
        raise KeyError(
            f"no scenario grid for {experiment_id!r}; "
            f"available: {sorted(SCENARIO_GRIDS)}"
        ) from None
    grid = builder(scale=scale, **kwargs)
    if shard is not None:
        index, count = shard
        grid = grid.shard(index, count)
    return grid


def scenario_grid_ids() -> List[str]:
    return sorted(SCENARIO_GRIDS)


def run_experiment_by_id(
    experiment_id: str,
    scale: str = "full",
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    **kwargs,
) -> ExperimentResult:
    """Run one registered experiment.

    ``backend``/``jobs``/``cache_dir`` configure the execution context
    for the duration of the run (see :mod:`repro.exec`): ``jobs > 1``
    fans replications and sweep grids over a process pool, and
    ``cache_dir`` persists result summaries so a repeated invocation
    skips simulation entirely. All ``None`` (the default) leaves the
    caller's context untouched.
    """
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    with use_execution(backend=backend, jobs=jobs, cache_dir=cache_dir):
        return fn(scale=scale, **kwargs)


def experiment_ids() -> List[str]:
    return sorted(EXPERIMENTS)
