"""Experiment registry: one callable per paper artifact.

``run_experiment_by_id("fig10", scale="bench")`` is how benchmarks,
tests, and the EXPERIMENTS.md generator all invoke experiments.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..analysis.series import ExperimentResult
from . import ablations, fig3, fig5, fig6, fig7, fig9, fig10, fig11
from . import hetero, lemma2, skew, slot_split, table1, tradeoff_gain

__all__ = ["EXPERIMENTS", "run_experiment_by_id", "experiment_ids"]

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig3": fig3.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "table1": table1.run,
    "lemma2": lemma2.run,
    "gain": tradeoff_gain.run,
    "abl-collisions": ablations.run_collisions,
    "abl-overhearing": ablations.run_overhearing,
    "abl-opp-threshold": ablations.run_opp_threshold,
    "abl-data-overhearing": ablations.run_data_overhearing,
    "abl-bursty": ablations.run_bursty_links,
    "skew": skew.run,
    "hetero": hetero.run,
    "slot-split": slot_split.run,
}


def run_experiment_by_id(
    experiment_id: str, scale: str = "full", **kwargs
) -> ExperimentResult:
    """Run one registered experiment."""
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(scale=scale, **kwargs)


def experiment_ids() -> List[str]:
    return sorted(EXPERIMENTS)
