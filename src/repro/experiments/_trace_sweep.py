"""Shared trace-driven duty-cycle sweep backing Figs. 10 and 11.

Both figures come from the same simulation grid (protocols x duty
ratios on the GreenOrbs trace), so the sweep runs once per (scale, seed)
and is memoized in-process; fig10 reads the delay columns, fig11 the
failure columns.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

from ..sim.runner import RunSummary, run_protocol_sweep
from ._common import DEFAULT_SEED, get_trace, resolve_scale

__all__ = ["trace_duty_sweep", "PROTOCOLS"]

#: The paper's three evaluation protocols, best-expected first.
PROTOCOLS = ("opt", "dbao", "of")


@lru_cache(maxsize=4)
def trace_duty_sweep(
    scale: str = "full", seed: int = DEFAULT_SEED
) -> Dict[str, Dict[float, RunSummary]]:
    """Protocols x duty ratios grid on the trace topology (memoized)."""
    ts = resolve_scale(scale)
    topo = get_trace(scale, seed)
    return run_protocol_sweep(
        topo,
        protocols=PROTOCOLS,
        duty_ratios=ts.duty_ratios,
        n_packets=ts.n_packets,
        seed=seed,
        n_replications=ts.n_replications,
    )
