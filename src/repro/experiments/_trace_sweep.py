"""Shared trace-driven duty-cycle sweep backing Figs. 10 and 11.

Both figures come from the same simulation grid (protocols x duty
ratios on the GreenOrbs trace). The grid runs through the process-wide
:class:`repro.exec.ExecutionContext`: the executor fans every
``(protocol, duty, replication)`` task out in one dispatch — the trace
topology broadcasts to the warm worker pool once, via shared memory,
instead of riding inside every task tuple — and the content-addressed
result store answers the whole grid through one batched
``get_many``/``put_many`` round trip (one directory scan, not one probe
per cell). fig10 computes the grid, fig11 is answered entirely from the
store (and, with a cache directory configured, so is the next CLI
invocation). This replaces the old process-local ``lru_cache``
memoization, which evaporated between processes and ignored ``--jobs``.
"""

from __future__ import annotations

from typing import Dict

from ..exec import execution_context
from ..sim.runner import RunSummary, run_protocol_sweep
from ._common import DEFAULT_SEED, get_trace, resolve_scale

__all__ = ["trace_duty_sweep", "PROTOCOLS"]

#: The paper's three evaluation protocols, best-expected first.
PROTOCOLS = ("opt", "dbao", "of")


def trace_duty_sweep(
    scale: str = "full", seed: int = DEFAULT_SEED
) -> Dict[str, Dict[float, RunSummary]]:
    """Protocols x duty ratios grid on the trace topology (store-cached)."""
    ts = resolve_scale(scale)
    topo = get_trace(scale, seed)
    ctx = execution_context()
    return run_protocol_sweep(
        topo,
        protocols=PROTOCOLS,
        duty_ratios=ts.duty_ratios,
        n_packets=ts.n_packets,
        seed=seed,
        n_replications=ts.n_replications,
        executor=ctx.executor,
        store=ctx.store,
    )
