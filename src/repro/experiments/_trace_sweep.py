"""Shared trace-driven duty-cycle sweep backing Figs. 10 and 11.

Both figures come from the same declarative :class:`ScenarioGrid`
(protocols x duty ratios on the GreenOrbs trace). The grid runs through
the process-wide :class:`repro.exec.ExecutionContext`: the executor fans
every ``(protocol, duty, replication)`` task out in one dispatch — the
trace topology broadcasts to the warm worker pool once, via shared
memory — and the content-addressed result store answers the whole grid
through one batched ``get_many``/``put_many`` round trip. fig10
computes the grid, fig11 is answered entirely from the store (and, with
a cache directory configured, so is the next CLI invocation). Because
store keys hash the *serialized* scenarios, ``repro run-scenario`` on
an equivalent scenario file hits the same entries.
"""

from __future__ import annotations

from typing import Dict

from ..scenario import Scenario, ScenarioGrid
from ..sim.runner import RunSummary
from ._common import DEFAULT_SEED, resolve_scale, run_grid, trace_spec

__all__ = ["trace_duty_sweep", "trace_sweep_grid", "PROTOCOLS"]

#: The paper's three evaluation protocols, best-expected first.
PROTOCOLS = ("opt", "dbao", "of")


def trace_sweep_grid(scale: str = "full", seed: int = DEFAULT_SEED) -> ScenarioGrid:
    """The Figs. 10/11 grid: protocols x duty ratios on the trace."""
    ts = resolve_scale(scale)
    return ScenarioGrid(
        base=Scenario(
            protocol=PROTOCOLS[0],
            duty_ratio=ts.duty_ratios[0],
            n_packets=ts.n_packets,
            seed=seed,
            n_replications=ts.n_replications,
            topology=trace_spec(scale, seed),
        ),
        axes={"protocol": PROTOCOLS, "duty_ratio": ts.duty_ratios},
        name="trace-duty-sweep",
    )


def trace_duty_sweep(
    scale: str = "full", seed: int = DEFAULT_SEED
) -> Dict[str, Dict[float, RunSummary]]:
    """Protocols x duty ratios grid on the trace topology (store-cached)."""
    grid = trace_sweep_grid(scale, seed)
    summaries = run_grid(grid)
    out: Dict[str, Dict[float, RunSummary]] = {p: {} for p in PROTOCOLS}
    for (proto, duty), summary in zip(grid.combos(), summaries):
        out[proto][duty] = summary
    return out
