"""Fig. 6 — Theorem 2's lower/upper FDL bounds for arbitrary ``N``.

The paper plots the bounds for ``N`` in {256, 1024} against
``M = 2..20`` (with ``T = 5``, the same normalization as Fig. 5's panel
A). Shape expectations: each pair of bounds brackets the Theorem 1 value,
both kinked at ``M = m``, with the band width growing linearly before the
knee and staying ``T*m``-wide after it.
"""

from __future__ import annotations

import numpy as np

from ..analysis.series import ExperimentResult, Series
from ..core.fdl import fdl_theorem2_series, knee_point

__all__ = ["run"]

SIZES = (256, 1024)
PERIOD = 5


def run(scale: str = "full", max_packets: int = 20) -> ExperimentResult:
    if max_packets < 2:
        raise ValueError("need at least two packet counts for a curve")
    ms = np.arange(2, max_packets + 1)
    series = [Series(label=f"N={n}, {which} bound", x=ms, y=y)
              for n in SIZES
              for which, y in zip(("lower", "upper"),
                                  fdl_theorem2_series(n, ms, PERIOD))]
    return ExperimentResult(
        experiment_id="fig6",
        title="Theorem 2: FDL bounds for arbitrary N",
        series=series,
        metadata={"period": PERIOD, "knees": {n: knee_point(n) for n in SIZES}},
    )
