"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show all registered experiments.
``run EXPERIMENT [--scale SCALE] [--jobs N] [--cache-dir PATH] [--no-sparklines]``
    Run one experiment and render it as text. ``--jobs N`` fans the
    replications/sweep grid over ``N`` warm worker processes
    (bit-identical to serial) and reports an ``[exec]`` dispatch-stats
    line — tasks, chunks, pickled vs shared-memory bytes, pool spin-up,
    per-task wall-time spread — on stderr; ``--cache-dir`` persists
    result summaries so a repeated invocation is answered from the
    cache.
``trace [--seed N] [--out PATH]``
    Synthesize the GreenOrbs-like trace, print its statistics, optionally
    save it as ``.npz``.
``recommend [--seed N]``
    Print the gain-maximizing duty-cycle configuration for the trace.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Understanding the Flooding in Low-Duty-Cycle "
            "Wireless Sensor Networks' (ICPP 2011)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    def add_exec_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", type=int, default=None, metavar="N",
            help="worker processes for simulation tasks (default: serial; "
                 "results are bit-identical across backends; prints an "
                 "[exec] dispatch-stats line on stderr)",
        )
        p.add_argument(
            "--cache-dir", default=None, metavar="PATH",
            help="persist result summaries here; repeated invocations "
                 "with the same spec/topology/engine skip simulation",
        )

    run = sub.add_parser("run", help="run one experiment and render it")
    run.add_argument("experiment", help="experiment id (e.g. fig10)")
    run.add_argument("--scale", default="bench",
                     choices=("smoke", "bench", "full"))
    run.add_argument("--no-sparklines", action="store_true")
    add_exec_flags(run)

    trace = sub.add_parser("trace", help="synthesize the GreenOrbs trace")
    trace.add_argument("--seed", type=int, default=2011)
    trace.add_argument("--out", default=None, help="save as .npz")

    rec = sub.add_parser("recommend",
                         help="gain-maximizing duty cycle for the trace")
    rec.add_argument("--seed", type=int, default=2011)

    aud = sub.add_parser(
        "audit",
        help="run experiments and check every paper shape claim",
    )
    aud.add_argument("--scale", default="bench",
                     choices=("smoke", "bench", "full"))
    aud.add_argument("experiments", nargs="*",
                     help="experiment ids to audit (default: all with checks)")
    add_exec_flags(aud)

    return parser


def _report_cache(args: argparse.Namespace) -> None:
    """One log line proving whether the store answered from cache."""
    if getattr(args, "cache_dir", None) is None:
        return
    from .exec import execution_context

    store = execution_context().store
    print(f"[cache] {store.stats} -> {args.cache_dir}", file=sys.stderr)


def _report_exec(args: argparse.Namespace) -> None:
    """Dispatch observability: what the execution layer actually moved."""
    if getattr(args, "jobs", None) is None:
        return
    from .exec import execution_context

    executor = execution_context().executor
    if executor.stats.dispatches:
        print(f"[exec] {executor!r}: {executor.stats}", file=sys.stderr)


def _cmd_list() -> int:
    from .experiments import experiment_ids

    for eid in experiment_ids():
        print(eid)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .analysis import render_result
    from .exec import use_execution
    from .experiments import run_experiment_by_id

    try:
        with use_execution(jobs=args.jobs, cache_dir=args.cache_dir):
            try:
                result = run_experiment_by_id(args.experiment, scale=args.scale)
            except KeyError as exc:
                print(exc, file=sys.stderr)
                return 2
            _report_cache(args)
            _report_exec(args)
    except NotADirectoryError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(render_result(result, with_sparklines=not args.no_sparklines))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .net.trace import save_trace, synthesize_greenorbs, trace_statistics

    topo = synthesize_greenorbs(seed=args.seed)
    for key, val in trace_statistics(topo).items():
        print(f"{key:<16} {val:.3f}" if isinstance(val, float) else
              f"{key:<16} {val}")
    if args.out:
        save_trace(topo, args.out)
        print(f"saved -> {args.out}")
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    from .net.trace import synthesize_greenorbs
    from .protocols.crosslayer import recommended_configuration

    topo = synthesize_greenorbs(seed=args.seed)
    best = recommended_configuration(topo)
    print(f"effective k-class : {topo.mean_k_class():.3f}")
    print(f"optimal duty cycle: {best.duty_ratio:.2%} (period T={best.period})")
    print(f"predicted delay   : {best.delay:.0f} slots/packet")
    print(f"lifetime          : {best.lifetime:.3e} slots")
    print(f"networking gain   : {best.gain:.4f}")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from .analysis.shapes import CHECKS, audit
    from .exec import use_execution
    from .experiments import run_experiment_by_id

    ids = args.experiments or sorted(CHECKS)
    unknown = [eid for eid in ids if eid not in CHECKS]
    if unknown:
        print(f"no shape checks for: {unknown}", file=sys.stderr)
        return 2
    results = {}
    try:
        with use_execution(jobs=args.jobs, cache_dir=args.cache_dir):
            for eid in ids:
                print(f"running {eid} at scale {args.scale} ...", flush=True)
                results[eid] = run_experiment_by_id(eid, scale=args.scale)
            _report_cache(args)
            _report_exec(args)
    except NotADirectoryError as exc:
        print(exc, file=sys.stderr)
        return 2
    checks = audit(results)
    failed = 0
    for check in checks:
        status = "PASS" if check.passed else "FAIL"
        failed += not check.passed
        detail = f"  ({check.detail})" if check.detail else ""
        print(f"[{status}] {check.experiment_id}: {check.claim}{detail}")
    print(f"\n{len(checks) - failed}/{len(checks)} shape claims hold")
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "recommend":
        return _cmd_recommend(args)
    if args.command == "audit":
        return _cmd_audit(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
