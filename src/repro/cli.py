"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show all registered experiments.
``run EXPERIMENT [--scale SCALE] [--jobs N] [--cache-dir PATH] [--no-sparklines]``
    Run one experiment and render it as text. ``--jobs N`` fans the
    replications/sweep grid over ``N`` warm worker processes
    (bit-identical to serial) and reports an ``[exec]`` dispatch-stats
    line — tasks, chunks, pickled vs shared-memory bytes, pool spin-up,
    per-task wall-time spread, replication-batch widths — on stderr;
    ``--cache-dir`` persists result summaries so a repeated invocation
    is answered from the cache; ``--reps-per-task R`` chunks R
    replications into one task (auto by default: batch-capable
    protocols run whole chunks as one ``(R, ...)`` engine call).
``run-scenario FILE.json [--shard I/K] [--jobs N] [--cache-dir PATH] [--summary PATH]``
    Run a declarative scenario file — a serialized
    :class:`repro.scenario.ScenarioGrid` (or a bare scenario object) —
    through the same executor/store stack as ``run``. New workloads ship
    as data files instead of Python. ``--summary PATH`` writes a
    deterministic JSON digest of every cell (axes, scenario fingerprint,
    delay/failure metrics) for expectation diffing in CI. ``--shard
    I/K`` (0-based) executes one deterministic shard of the grid —
    shard ``I`` of ``K`` — so k invocations with separate
    ``--cache-dir``\\ s, on any mix of hosts, cover the grid exactly
    once; ``repro store merge`` unions the caches back together.
``report GRID.json --cache-dir PATH [--summary PATH]``
    Render a grid purely from stored results — no simulation, no
    executor. The reporting half of a sharded run: after merging shard
    caches, ``report`` produces the digest the unsharded run would
    have. Exits 2 naming the missing cells if any shard hasn't run.
``store merge --into DEST SRC [SRC ...]`` / ``store verify DIR`` / ``store gc DIR``
    Maintain result-store directories: ``merge`` unions shard caches
    (re-verifying digests; refusing engine-version or grid-fingerprint
    conflicts), ``verify`` classifies every entry (ok / stale /
    truncated / corrupt / misplaced), ``gc`` deletes damaged entries
    and orphaned temp files (``--stale`` also drops old-engine ones).
``scenario validate FILE.json`` / ``scenario show FILE.json`` / ``scenario shard FILE.json K``
    Validate a scenario file (helpful errors name the closest valid
    field), print its normalized form — defaults materialized, cell
    count and fingerprints included — or split it into K self-contained
    shard files stamped with the full-grid fingerprint.
``profile FILE.json [--json PATH] [--no-allocs] [--reps R]``
    Per-phase wall-time and allocation profile of a scenario file's
    batched slot pipeline: runs every rep-batchable cell through
    :class:`repro.sim.observers.PhaseProfiler`, prints the phase table
    (inject/propose/validate/resolve/apply/observe/fastforward), the
    per-slot net allocation-block and traced-peak-byte rates, and the
    scratch-arena borrow/grow counters. ``--json PATH`` writes the raw
    report for CI artifacts; ``--no-allocs`` skips the tracemalloc
    pass.
``trace [--seed N] [--out PATH]``
    Synthesize the GreenOrbs-like trace, print its statistics, optionally
    save it as ``.npz``.
``recommend [--seed N]``
    Print the gain-maximizing duty-cycle configuration for the trace.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Understanding the Flooding in Low-Duty-Cycle "
            "Wireless Sensor Networks' (ICPP 2011)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    def add_exec_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", type=int, default=None, metavar="N",
            help="worker processes for simulation tasks (default: serial; "
                 "results are bit-identical across backends; prints an "
                 "[exec] dispatch-stats line on stderr)",
        )
        p.add_argument(
            "--cache-dir", default=None, metavar="PATH",
            help="persist result summaries here; repeated invocations "
                 "with the same spec/topology/engine skip simulation",
        )
        p.add_argument(
            "--reps-per-task", type=int, default=None, metavar="R",
            help="replications per dispatched task (default: auto — "
                 "replication-batchable scenarios run chunks of up to 32 "
                 "reps as one (R, ...) batched engine call; 1 restores "
                 "per-replication dispatch; results are bit-identical at "
                 "any width)",
        )

    run = sub.add_parser("run", help="run one experiment and render it")
    run.add_argument("experiment", help="experiment id (e.g. fig10)")
    run.add_argument("--scale", default="bench",
                     choices=("smoke", "bench", "full"))
    run.add_argument("--no-sparklines", action="store_true")
    add_exec_flags(run)

    runs = sub.add_parser(
        "run-scenario",
        help="run a declarative scenario file (JSON grid of scenarios)",
    )
    runs.add_argument("file", help="scenario file (see repro.scenario)")
    runs.add_argument("--summary", default=None, metavar="PATH",
                      help="write a deterministic JSON digest of every "
                           "cell (for expectation diffing)")
    runs.add_argument("--shard", default=None, metavar="I/K",
                      help="execute one deterministic shard of the grid "
                           "(0-based: shard I of K); run all K shards "
                           "into separate --cache-dirs, then `repro "
                           "store merge` them")
    add_exec_flags(runs)

    rep = sub.add_parser(
        "report",
        help="render a grid purely from stored results (no simulation)",
    )
    rep.add_argument("file", help="scenario file (see repro.scenario)")
    rep.add_argument("--cache-dir", required=True, metavar="PATH",
                     help="result store holding the grid's entries "
                          "(e.g. the destination of `repro store merge`)")
    rep.add_argument("--summary", default=None, metavar="PATH",
                     help="write the deterministic JSON digest (same "
                          "format as run-scenario --summary)")

    scen = sub.add_parser("scenario", help="inspect scenario files")
    scen_sub = scen.add_subparsers(dest="scenario_command", required=True)
    scen_sub.add_parser("validate", help="check a scenario file") \
        .add_argument("file")
    scen_sub.add_parser("show", help="print the normalized grid") \
        .add_argument("file")
    shard = scen_sub.add_parser(
        "shard", help="split a grid file into K self-contained shard files"
    )
    shard.add_argument("file")
    shard.add_argument("count", type=int, metavar="K")
    shard.add_argument("--out-dir", default=None, metavar="DIR",
                       help="where to write the shard files (default: "
                            "next to the input)")

    store = sub.add_parser("store", help="maintain result-store directories")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    merge = store_sub.add_parser(
        "merge", help="union shard stores into one directory"
    )
    merge.add_argument("sources", nargs="+", metavar="SRC",
                       help="source store directories")
    merge.add_argument("--into", required=True, metavar="DEST",
                       help="destination store directory (created if absent)")
    merge.add_argument("--allow-mixed", action="store_true",
                       help="permit merging stores whose manifests name "
                            "disjoint grids (pooling unrelated caches)")
    verify = store_sub.add_parser(
        "verify", help="classify every entry (ok/stale/truncated/...)"
    )
    verify.add_argument("dir", metavar="DIR")
    gc = store_sub.add_parser(
        "gc", help="delete damaged entries and orphaned temp files"
    )
    gc.add_argument("dir", metavar="DIR")
    gc.add_argument("--stale", action="store_true",
                    help="also drop intact entries from older engine "
                         "versions")

    prof = sub.add_parser(
        "profile",
        help="per-phase wall-time and allocation profile of a "
             "scenario's batched slot pipeline",
    )
    prof.add_argument("file", help="scenario file (batchable cells are "
                                   "profiled; others are skipped)")
    prof.add_argument("--json", default=None, metavar="PATH",
                      help="write the profile report as JSON")
    prof.add_argument("--no-allocs", action="store_true",
                      help="skip the tracemalloc allocation pass")
    prof.add_argument("--reps", type=int, default=None, metavar="R",
                      help="override n_replications for the profiled run")

    trace = sub.add_parser("trace", help="synthesize the GreenOrbs trace")
    trace.add_argument("--seed", type=int, default=2011)
    trace.add_argument("--out", default=None, help="save as .npz")

    rec = sub.add_parser("recommend",
                         help="gain-maximizing duty cycle for the trace")
    rec.add_argument("--seed", type=int, default=2011)

    aud = sub.add_parser(
        "audit",
        help="run experiments and check every paper shape claim",
    )
    aud.add_argument("--scale", default="bench",
                     choices=("smoke", "bench", "full"))
    aud.add_argument("experiments", nargs="*",
                     help="experiment ids to audit (default: all with checks)")
    add_exec_flags(aud)

    return parser


def _report_cache(args: argparse.Namespace) -> None:
    """One log line proving whether the store answered from cache."""
    if getattr(args, "cache_dir", None) is None:
        return
    from .exec import execution_context

    store = execution_context().store
    print(f"[cache] {store.stats} -> {args.cache_dir}", file=sys.stderr)


def _report_exec(args: argparse.Namespace) -> None:
    """Dispatch observability: what the execution layer actually moved."""
    if (getattr(args, "jobs", None) is None
            and getattr(args, "reps_per_task", None) is None):
        return
    from .exec import execution_context

    executor = execution_context().executor
    if executor.stats.dispatches:
        print(f"[exec] {executor!r}: {executor.stats}", file=sys.stderr)


def _cmd_list() -> int:
    from .experiments import experiment_ids

    for eid in experiment_ids():
        print(eid)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .analysis import render_result
    from .exec import use_execution
    from .experiments import run_experiment_by_id

    try:
        with use_execution(jobs=args.jobs, cache_dir=args.cache_dir,
                           reps_per_task=args.reps_per_task):
            try:
                result = run_experiment_by_id(args.experiment, scale=args.scale)
            except KeyError as exc:
                print(exc, file=sys.stderr)
                return 2
            _report_cache(args)
            _report_exec(args)
    except NotADirectoryError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(render_result(result, with_sparklines=not args.no_sparklines))
    return 0


def _parse_shard(text: str):
    """``"I/K"`` → ``(index, count)``, 0-based, with a helpful error."""
    try:
        index_s, count_s = text.split("/", 1)
        index, count = int(index_s), int(count_s)
    except ValueError:
        raise ValueError(
            f"--shard expects I/K (e.g. 0/2 for the first of two shards), "
            f"got {text!r}"
        ) from None
    return index, count


def _print_digest(grid, digest) -> None:
    name = grid.name or "scenario"
    shard = f" [shard {grid.sharding[0]}/{grid.sharding[1]}]" \
        if grid.sharding else ""
    print(f"{name}{shard}: {digest['n_cells']} cell(s)")
    for cell in digest["cells"]:
        axes = ", ".join(f"{k}={v}" for k, v in cell["axes"].items()) or "-"
        print(f"  [{axes}] delay={cell['mean_delay']} "
              f"completion={cell['completion_rate']} "
              f"failures={cell['mean_failures']}")


def _write_summary(digest, path: str) -> None:
    import json

    with open(path, "w", encoding="utf-8") as fh:
        json.dump(digest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"summary -> {path}")


def _stamp_manifest(grid, cache_dir) -> None:
    """Record grid provenance in the cache dir (merge's conflict guard)."""
    from .exec import update_manifest

    label = f"{grid.sharding[0]}/{grid.sharding[1]}" if grid.sharding \
        else "full"
    update_manifest(cache_dir, grid.grid_fingerprint(),
                    name=grid.name, shard_label=label)


def _cmd_run_scenario(args: argparse.Namespace) -> int:
    from .analysis.report import grid_digest
    from .exec import execution_context, use_execution
    from .scenario import ScenarioError, load_scenario_file
    from .sim.runner import run_scenarios

    try:
        grid = load_scenario_file(args.file)
        if args.shard is not None:
            index, count = _parse_shard(args.shard)
            grid = grid.shard(index, count)
    except (OSError, ValueError, ScenarioError) as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        with use_execution(jobs=args.jobs, cache_dir=args.cache_dir,
                           reps_per_task=args.reps_per_task):
            ctx = execution_context()
            summaries = run_scenarios(grid.scenarios(),
                                      executor=ctx.executor, store=ctx.store,
                                      reps_per_task=ctx.reps_per_task)
            _report_cache(args)
            _report_exec(args)
    except (NotADirectoryError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.cache_dir is not None:
        _stamp_manifest(grid, args.cache_dir)
    digest = grid_digest(grid, summaries)
    _print_digest(grid, digest)
    if args.summary:
        _write_summary(digest, args.summary)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import grid_digest
    from .exec import ResultStore
    from .scenario import ScenarioError, load_scenario_file
    from .sim.runner import MissingResults, load_scenario_summaries

    try:
        grid = load_scenario_file(args.file)
    except (OSError, ScenarioError) as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        store = ResultStore(args.cache_dir)
        summaries = load_scenario_summaries(grid.scenarios(), store)
    except (NotADirectoryError, ValueError, MissingResults) as exc:
        print(exc, file=sys.stderr)
        return 2
    digest = grid_digest(grid, summaries)
    _print_digest(grid, digest)
    if args.summary:
        _write_summary(digest, args.summary)
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from .scenario import ScenarioError, load_scenario_file

    try:
        grid = load_scenario_file(args.file)
    except (OSError, ScenarioError) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 2
    if args.scenario_command == "shard":
        return _cmd_scenario_shard(args, grid)
    if args.scenario_command == "show":
        print(grid.to_json(indent=2))
    name = grid.name or "scenario"
    print(f"OK: {name} — {len(grid)} cell(s), "
          f"{len(grid.axes)} axis/axes, grid fingerprint "
          f"{grid.fingerprint()[:16]}")
    for scenario in grid.scenarios():
        print(f"  {scenario.protocol} duty={scenario.duty_ratio:g} "
              f"M={scenario.n_packets} -> {scenario.fingerprint()[:16]}")
    return 0


def _cmd_scenario_shard(args: argparse.Namespace, grid) -> int:
    from pathlib import Path

    from .scenario import ScenarioError

    src = Path(args.file)
    out_dir = Path(args.out_dir) if args.out_dir else src.parent
    out_dir.mkdir(parents=True, exist_ok=True)
    try:
        shards = grid.shards(args.count)
    except (ValueError, ScenarioError) as exc:
        print(exc, file=sys.stderr)
        return 2
    stem = src.name[:-len(".json")] if src.name.endswith(".json") \
        else src.name
    for shard in shards:
        index, count = shard.sharding
        path = out_dir / f"{stem}.shard{index}of{count}.json"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(shard.to_json(indent=2))
            fh.write("\n")
        print(f"{path}: {len(shard)} cell(s)")
    print(f"grid fingerprint {grid.grid_fingerprint()[:16]} "
          f"stamped into {args.count} shard file(s)")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from .exec import MergeError, gc_store, merge_store, verify_store

    if args.store_command == "merge":
        try:
            report = merge_store(args.into, args.sources,
                                 allow_mixed=args.allow_mixed)
        except (MergeError, ValueError, OSError) as exc:
            print(exc, file=sys.stderr)
            return 2
        print(f"{args.into}: {report}")
        return 0
    if args.store_command == "verify":
        report = verify_store(args.dir)
        print(f"{args.dir}: {report}")
        for entry in report.problems:
            print(f"  {entry.status:<10} {entry.name}  {entry.detail}")
        for name in report.tmp_files:
            print(f"  tmp        {name}  orphaned temp file")
        return 0 if not report.problems else 1
    if args.store_command == "gc":
        report = gc_store(args.dir, stale=args.stale)
        print(f"{args.dir}: {report}")
        for name in report.removed:
            print(f"  removed {name}")
        return 0
    raise AssertionError(
        f"unhandled store command {args.store_command!r}"
    )  # pragma: no cover


def _cmd_profile(args: argparse.Namespace) -> int:
    import json
    import tracemalloc

    from .scenario import ScenarioError, as_scenario, build_topology, \
        load_scenario_file
    from .sim.arena import global_arena
    from .sim.observers import PhaseProfiler
    from .sim.runner import run_replication_chunk, scenario_rep_batchable

    try:
        grid = load_scenario_file(args.file)
        scenarios = [as_scenario(s) for s in grid.scenarios()]
    except (OSError, ValueError, ScenarioError) as exc:
        print(exc, file=sys.stderr)
        return 2
    cells = []
    for s in scenarios:
        if not scenario_rep_batchable(s):
            continue
        if s.topology is None:
            print(f"scenario {s.fingerprint()[:16]} names no topology",
                  file=sys.stderr)
            return 2
        n = args.reps if args.reps is not None else s.n_replications
        # The profiler hooks live in the batched engine; a width-1 chunk
        # would degrade to the serial path and record nothing.
        cells.append((build_topology(s.topology), s, max(2, int(n))))
    skipped = len(scenarios) - len(cells)
    if not cells:
        print("no replication-batchable scenario in the file — the "
              "profiler instruments the batched slot pipeline",
              file=sys.stderr)
        return 2
    if skipped:
        print(f"(skipping {skipped} non-batchable cell(s))")

    def run_all(profiler=None):
        for topo, s, n in cells:
            run_replication_chunk(topo, s, 0, n, profiler=profiler)

    arena = global_arena()
    run_all()  # warm pass: arena buffers grown, caches primed
    profiler = PhaseProfiler()
    run_all(profiler)
    report = profiler.report(arena=arena)
    if not args.no_allocs:
        tracemalloc.start()
        alloc_prof = PhaseProfiler()
        run_all(alloc_prof)
        tracemalloc.stop()
        alloc = alloc_prof.report()
        report["net_alloc_blocks_per_slot"] = alloc.get(
            "net_alloc_blocks_per_slot", 0.0)
        report["peak_alloc_bytes_per_slot"] = alloc.get(
            "peak_alloc_bytes_per_slot", 0.0)

    print(f"{len(cells)} cell(s), {report['loop_slots']} loop slots, "
          f"{report['slots']} replication-slots")
    print(f"{'phase':<12} {'seconds':>9} {'share':>7} {'calls':>8}")
    for name, row in report["phases"].items():
        print(f"{name:<12} {row['seconds']:>9.4f} "
              f"{100 * row['share']:>6.1f}% {row['calls']:>8}")
    print(f"{'total':<12} {report['total_seconds']:>9.4f}")
    if "net_alloc_blocks_per_slot" in report:
        line = (f"steady-state allocations/slot: "
                f"{report['net_alloc_blocks_per_slot']} net blocks")
        if "peak_alloc_bytes_per_slot" in report and not args.no_allocs:
            line += f", {report['peak_alloc_bytes_per_slot']} peak bytes"
        print(line)
    if "arena" in report:
        a = report["arena"]
        print(f"arena: {a['borrows']} borrows, {a['grows']} grows, "
              f"{a['buffers']} buffers, {a['nbytes']} bytes held")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .net.trace import save_trace, synthesize_greenorbs, trace_statistics

    topo = synthesize_greenorbs(seed=args.seed)
    for key, val in trace_statistics(topo).items():
        print(f"{key:<16} {val:.3f}" if isinstance(val, float) else
              f"{key:<16} {val}")
    if args.out:
        save_trace(topo, args.out)
        print(f"saved -> {args.out}")
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    from .net.trace import synthesize_greenorbs
    from .protocols.crosslayer import recommended_configuration

    topo = synthesize_greenorbs(seed=args.seed)
    best = recommended_configuration(topo)
    print(f"effective k-class : {topo.mean_k_class():.3f}")
    print(f"optimal duty cycle: {best.duty_ratio:.2%} (period T={best.period})")
    print(f"predicted delay   : {best.delay:.0f} slots/packet")
    print(f"lifetime          : {best.lifetime:.3e} slots")
    print(f"networking gain   : {best.gain:.4f}")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from .analysis.shapes import CHECKS, audit
    from .exec import use_execution
    from .experiments import run_experiment_by_id

    ids = args.experiments or sorted(CHECKS)
    unknown = [eid for eid in ids if eid not in CHECKS]
    if unknown:
        print(f"no shape checks for: {unknown}", file=sys.stderr)
        return 2
    results = {}
    try:
        with use_execution(jobs=args.jobs, cache_dir=args.cache_dir,
                           reps_per_task=args.reps_per_task):
            for eid in ids:
                print(f"running {eid} at scale {args.scale} ...", flush=True)
                results[eid] = run_experiment_by_id(eid, scale=args.scale)
            _report_cache(args)
            _report_exec(args)
    except NotADirectoryError as exc:
        print(exc, file=sys.stderr)
        return 2
    checks = audit(results)
    failed = 0
    for check in checks:
        status = "PASS" if check.passed else "FAIL"
        failed += not check.passed
        detail = f"  ({check.detail})" if check.detail else ""
        print(f"[{status}] {check.experiment_id}: {check.claim}{detail}")
    print(f"\n{len(checks) - failed}/{len(checks)} shape claims hold")
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "run-scenario":
        return _cmd_run_scenario(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "recommend":
        return _cmd_recommend(args)
    if args.command == "audit":
        return _cmd_audit(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
