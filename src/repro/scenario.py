"""Declarative scenario layer: one serializable spec from CLI to store.

The paper's study is a grid of scenarios — protocol x duty ratio x
packet count x link model, all over the same 298-node trace — and every
extension workload (schedule jitter, bursty links, multi-slot wake
budgets, homogenized twins) is a point in the same space. This module
makes that space a *data type*:

* :class:`Scenario` — a frozen, JSON-round-trippable description of one
  simulation configuration: topology source, schedule shape, protocol
  and its constructor kwargs, link-dynamics model, workload size,
  engine-config overrides, replication count and the root seed.
* :class:`TopologySpec` — a declarative topology source (generator kind,
  seed, parameters, optional transform) with a bounded build cache.
* :class:`ScenarioGrid` — a base scenario plus named sweep axes,
  expanding to the cartesian list of scenarios; the unit the experiment
  registry, the CLI (``repro run-scenario``) and the analysis helpers
  all exchange. :meth:`ScenarioGrid.shard` deterministically partitions
  a grid's cells into disjoint sub-grids that serialize to
  self-contained shard files (stamped with the parent grid's
  fingerprint), so one sweep can execute as independent processes or
  hosts and merge back through the result store.

Content addressing
------------------
``Scenario.fingerprint()`` hashes the *serialized* scenario (canonical
sorted-key JSON of :meth:`Scenario.to_dict`), never Python object
structure — so result-store keys survive refactors of the code that
built the spec, and a scenario loaded from a JSON file hits the same
cache entries as the identical scenario built by an experiment module.
The ``topology`` field is deliberately **excluded** from the
fingerprint: the result-store key already includes the fingerprint of
the *realized* :class:`~repro.net.topology.Topology`, so two scenario
files describing the same substrate differently (explicit parameters vs
a generator default) still share cache entries.

Seed derivation
---------------
A scenario's replication ``rep`` derives every random stream from
``(seed, rep)`` through name-keyed :class:`~repro.sim.rng.RngStreams`:
``schedule/{rep}`` draws the wake schedule, ``channel/{rep}`` the loss
randomness, ``dynamics/{rep}`` the link-dynamics transitions and
``jitter/{rep}`` the clock-skew draws. Streams are order-independent,
so replications are pure functions of the scenario — serial, parallel
and cached execution are bit-identical.
"""

from __future__ import annotations

import dataclasses
import difflib
import hashlib
import itertools
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from .net.schedule import duty_ratio_to_period
from .net.topology import Topology, homogenized

__all__ = [
    "SCHEMA_VERSION",
    "Scenario",
    "ScenarioGrid",
    "TopologySpec",
    "ScenarioError",
    "as_scenario",
    "build_topology",
    "default_sim_config",
    "load_scenario_file",
    "topology_cache_info",
]

#: Scenario-file schema; bump on incompatible layout changes.
SCHEMA_VERSION = 1

#: Link-dynamics models a scenario can name.
LINK_MODELS = ("static", "gilbert_elliott")

#: Keyword arguments :class:`~repro.net.dynamics.GilbertElliott` accepts
#: declaratively (the rng is derived from the scenario seed).
_LINK_KWARGS = ("p_good_to_bad", "p_bad_to_good", "bad_factor",
                "start_stationary")

#: MAC-layer link models a scenario can name (see :mod:`repro.net.mac`).
MAC_KINDS = ("ideal", "csma_802154")

#: Per-kind allowed ``mac_kwargs`` keys.
_MAC_KWARGS: Dict[str, Tuple[str, ...]] = {
    "ideal": (),
    "csma_802154": ("mac_min_be", "mac_max_be", "max_csma_backoffs",
                    "max_frame_retries", "ack_wait_rounds"),
}


class ScenarioError(ValueError):
    """A scenario (or scenario file) failed validation."""


def _json_default(obj: Any) -> Any:
    """Let numpy scalars (sweep axes often carry them) serialize as
    their Python equivalents; anything else is a spec bug."""
    import numpy as np

    if isinstance(obj, (np.bool_, np.integer, np.floating)):
        return obj.item()
    raise TypeError(
        f"cannot serialize {type(obj).__name__!r} in a scenario; "
        f"scenario fields must be JSON-representable data"
    )


def _canonical_json(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"),
                      default=_json_default)


def _reject_unknown(given, allowed, what: str) -> None:
    """Raise a helpful error naming the closest valid key."""
    for key in given:
        if key in allowed:
            continue
        hint = difflib.get_close_matches(str(key), [str(a) for a in allowed],
                                         n=1, cutoff=0.6)
        suggestion = f"; did you mean {hint[0]!r}?" if hint else ""
        raise ScenarioError(
            f"unknown {what} {key!r}{suggestion} (valid: {sorted(allowed)})"
        )


# ---------------------------------------------------------------------------
# Topology sources
# ---------------------------------------------------------------------------

#: Per-kind allowed ``params`` keys (seed and rng are handled uniformly).
_TOPOLOGY_PARAMS: Dict[str, Tuple[str, ...]] = {
    "greenorbs": ("n_sensors", "area_m", "n_clusters", "cluster_sigma_m",
                  "background_fraction", "neighbor_threshold",
                  "coverage_target", "max_attempts"),
    "line": ("n_sensors", "prr"),
    "star": ("n_sensors", "prr"),
    "binary_tree": ("depth", "prr"),
    "grid": ("rows", "cols", "spacing_m", "perfect_links"),
    "random_geometric": ("n_nodes", "area_m", "neighbor_threshold"),
    "geometric": ("n_nodes", "area_m", "placement", "neighbor_threshold",
                  "tx_power_dbm", "path_loss_exponent",
                  "reference_distance_m", "reference_loss_db",
                  "shadowing_sigma_db", "noise_floor_dbm", "frame_bytes"),
}

_TRANSFORMS = ("homogenize",)


@dataclass(frozen=True)
class TopologySpec:
    """Declarative topology source: generator kind, seed, parameters.

    ``transform`` optionally post-processes the generated substrate —
    currently ``"homogenize"`` (same adjacency, every link at the
    network-mean PRR; the Sec. IV-B heterogeneity twin).
    """

    kind: str = "greenorbs"
    seed: int = 2011
    params: Dict[str, Any] = field(default_factory=dict)
    transform: Optional[str] = None

    def __post_init__(self):
        _reject_unknown((self.kind,), _TOPOLOGY_PARAMS, "topology kind")
        _reject_unknown(self.params, _TOPOLOGY_PARAMS[self.kind],
                        f"{self.kind!r} topology parameter")
        if self.transform is not None:
            _reject_unknown((self.transform,), _TRANSFORMS,
                            "topology transform")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "seed": self.seed,
                "params": dict(self.params), "transform": self.transform}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologySpec":
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"topology must be an object, got {type(data).__name__}"
            )
        _reject_unknown(data, ("kind", "seed", "params", "transform"),
                        "topology field")
        return cls(
            kind=data.get("kind", "greenorbs"),
            seed=int(data.get("seed", 2011)),
            params=dict(data.get("params", {})),
            transform=data.get("transform"),
        )

    def fingerprint(self) -> str:
        """Content hash of the *description* (not the realized topology)."""
        blob = _canonical_json(self.to_dict())
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def build(self) -> Topology:
        """Realize the topology (uncached; see :func:`build_topology`)."""
        import numpy as np

        p = dict(self.params)
        if self.kind == "greenorbs":
            from .net.trace import GreenOrbsConfig, synthesize_greenorbs

            n = p.pop("n_sensors", 298)
            if n != 298:
                # Shrink the plot so density (hence degree) stays
                # paper-like — the same derivation the experiment scales
                # use, so a scenario file reproduces ``get_trace`` bit
                # for bit.
                p.setdefault("area_m", 700.0 * (n / 298.0) ** 0.5)
                p.setdefault("n_clusters", max(3, int(10 * n / 298)))
                p.setdefault("cluster_sigma_m", 60.0)
            config = GreenOrbsConfig(n_sensors=n, **p) if (n != 298 or p) \
                else None
            topo = synthesize_greenorbs(seed=self.seed, config=config)
        elif self.kind == "line":
            from .net.generators import line_topology

            topo = line_topology(p.pop("n_sensors", 5), **p)
        elif self.kind == "star":
            from .net.generators import star_topology

            topo = star_topology(p.pop("n_sensors", 5), **p)
        elif self.kind == "binary_tree":
            from .net.generators import binary_tree_topology

            topo = binary_tree_topology(p.pop("depth", 3), **p)
        elif self.kind == "grid":
            from .net.generators import grid_topology

            topo = grid_topology(p.pop("rows", 4), p.pop("cols", 4),
                                 rng=np.random.default_rng(self.seed), **p)
        elif self.kind == "geometric":
            from .net.generators import geometric_topology
            from .net.links import RadioParameters

            radio_keys = {f.name for f in dataclasses.fields(RadioParameters)}
            radio_p = {k: p.pop(k) for k in list(p) if k in radio_keys}
            topo = geometric_topology(
                p.pop("n_nodes", 30), p.pop("area_m", 100.0),
                radio=RadioParameters(**radio_p) if radio_p else None,
                rng=np.random.default_rng(self.seed), **p,
            )
        else:  # random_geometric (kinds validated in __post_init__)
            from .net.generators import random_geometric_topology

            topo = random_geometric_topology(
                p.pop("n_nodes", 30), p.pop("area_m", 100.0),
                rng=np.random.default_rng(self.seed), **p,
            )
        if self.transform == "homogenize":
            topo = homogenized(topo)
        return topo


#: Bounded FIFO memo for realized topologies, keyed by spec fingerprint.
#: Eight entries cover every scale x seed pair a session realistically
#: touches (the old ``lru_cache(maxsize=8)`` on ``get_trace``) while
#: bounding memory — a 298-node trace is a few MB of PRR/RSSI matrices.
_TOPOLOGY_CACHE_MAXSIZE = 8
_topology_cache: Dict[str, Topology] = {}


def build_topology(spec: TopologySpec) -> Topology:
    """Build (or fetch from the bounded cache) the topology of ``spec``.

    Repeated calls with an equal spec return the *same* object, so
    shared-memory broadcast and fingerprint memoization keep working
    across experiment invocations.
    """
    key = spec.fingerprint()
    topo = _topology_cache.get(key)
    if topo is None:
        topo = spec.build()
        if len(_topology_cache) >= _TOPOLOGY_CACHE_MAXSIZE:
            _topology_cache.pop(next(iter(_topology_cache)))
        _topology_cache[key] = topo
    return topo


def topology_cache_info() -> Tuple[int, int]:
    """``(entries, maxsize)`` of the topology build cache."""
    return len(_topology_cache), _TOPOLOGY_CACHE_MAXSIZE


# ---------------------------------------------------------------------------
# Engine-config overrides
# ---------------------------------------------------------------------------

def default_sim_config(protocol: str, coverage_target: float = 0.99):
    """The engine configuration a protocol runs under by default.

    OPT plays on its collision-free oracle channel; the cross-layer
    sketch deliberately turns data overhearing on (the paper's
    future-work direction 2); everyone else gets the paper's defaults.
    """
    from .sim.engine import SimConfig

    return SimConfig(coverage_target=coverage_target,
                     radio=_default_radio(protocol))


def _default_radio(protocol: str):
    from .net.radio import RadioModel

    if protocol == "opt":
        from .protocols.opt import opt_radio_model

        return opt_radio_model()
    if protocol == "crosslayer":
        return RadioModel(overhearing=True)
    return RadioModel()


def _sim_override_keys() -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """(allowed SimConfig override keys, allowed radio override keys)."""
    from .net.radio import RadioModel
    from .sim.engine import SimConfig

    sim_keys = tuple(
        f.name for f in dataclasses.fields(SimConfig)
        if f.name not in ("coverage_target", "radio")
    ) + ("radio",)
    radio_keys = tuple(f.name for f in dataclasses.fields(RadioModel))
    return sim_keys, radio_keys


# ---------------------------------------------------------------------------
# Scenario
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Scenario:
    """One serializable simulation configuration.

    Field groups, in paper terms:

    * **workload** — ``protocol`` (+ ``protocol_kwargs``), ``n_packets``
      (the paper's ``M``), ``generation_interval``;
    * **schedule** — ``duty_ratio`` (normalized period
      ``T = round(wake_slots / duty_ratio)``), ``wake_slots`` (>1 uses
      the multi-slot schedule model), ``schedule_jitter`` (per-period
      probability a node's true wake lands one slot off its advertised
      slot — residual synchronization error);
    * **channel** — ``link_model`` (``static`` or ``gilbert_elliott``)
      with ``link_kwargs``, plus ``sim`` overrides (``fast_forward``,
      ``max_slots``, ``track_events`` and a nested ``radio`` object of
      :class:`~repro.net.radio.RadioModel` switches);
    * **MAC** — ``mac`` (``ideal``, the paper's one-winner CSMA oracle,
      or ``csma_802154``, ContikiOS-style CSMA-CA) with ``mac_kwargs``
      (see :mod:`repro.net.mac`); the default ``ideal`` with no kwargs
      is fingerprint-invariant with pre-MAC scenarios;
    * **bookkeeping** — ``seed``, ``n_replications``,
      ``coverage_target``, ``measure_transmission_delay``;
    * **substrate** — an optional :class:`TopologySpec` naming where the
      network comes from (excluded from the fingerprint; see module
      docs).
    """

    protocol: str
    duty_ratio: float
    n_packets: int
    seed: int = 0
    n_replications: int = 1
    coverage_target: float = 0.99
    generation_interval: int = 0
    protocol_kwargs: Dict[str, Any] = field(default_factory=dict)
    wake_slots: int = 1
    schedule_jitter: float = 0.0
    link_model: str = "static"
    link_kwargs: Dict[str, Any] = field(default_factory=dict)
    mac: str = "ideal"
    mac_kwargs: Dict[str, Any] = field(default_factory=dict)
    sim: Dict[str, Any] = field(default_factory=dict)
    measure_transmission_delay: bool = False
    topology: Optional[TopologySpec] = None

    def __post_init__(self):
        if not self.protocol or not isinstance(self.protocol, str):
            raise ScenarioError(f"protocol must be a name, got {self.protocol!r}")
        if not (0.0 < self.duty_ratio <= 1.0):
            raise ScenarioError(
                f"duty ratio must be in (0, 1], got {self.duty_ratio}"
            )
        if self.n_packets < 1:
            raise ScenarioError("need at least one packet")
        if self.n_replications < 1:
            raise ScenarioError("need at least one replication")
        if not (0.0 < self.coverage_target <= 1.0):
            raise ScenarioError(
                f"coverage target must be in (0, 1], got {self.coverage_target}"
            )
        if self.generation_interval < 0:
            raise ScenarioError("generation interval must be >= 0")
        if self.wake_slots < 1:
            raise ScenarioError("need at least one wake slot per period")
        if not (0.0 <= self.schedule_jitter <= 1.0):
            raise ScenarioError(
                f"schedule jitter must be in [0, 1], got {self.schedule_jitter}"
            )
        if self.link_model not in LINK_MODELS:
            _reject_unknown((self.link_model,), LINK_MODELS, "link model")
        _reject_unknown(self.link_kwargs, _LINK_KWARGS,
                        "link-model parameter")
        if self.mac not in MAC_KINDS:
            _reject_unknown((self.mac,), MAC_KINDS, "mac kind")
        _reject_unknown(self.mac_kwargs, _MAC_KWARGS[self.mac],
                        f"{self.mac!r} mac parameter")
        try:
            self.make_link_model()  # validate parameter values eagerly
        except ValueError as exc:
            if isinstance(exc, ScenarioError):
                raise
            raise ScenarioError(
                f"invalid {self.mac!r} mac parameters: {exc}"
            ) from None
        sim_keys, radio_keys = _sim_override_keys()
        _reject_unknown(self.sim, sim_keys, "sim override")
        radio = self.sim.get("radio", {})
        if not isinstance(radio, Mapping):
            raise ScenarioError(
                "sim override 'radio' must be an object of RadioModel fields"
            )
        _reject_unknown(radio, radio_keys, "radio override")
        if self.topology is not None and not isinstance(self.topology,
                                                        TopologySpec):
            raise ScenarioError(
                "topology must be a TopologySpec (or an object in JSON)"
            )

    # -- derived quantities -------------------------------------------

    @property
    def period(self) -> int:
        """Schedule period ``T``: ``wake_slots`` active slots per ``T``."""
        if self.wake_slots == 1:
            return duty_ratio_to_period(self.duty_ratio)
        return max(int(round(self.wake_slots / self.duty_ratio)),
                   self.wake_slots)

    def sim_config(self):
        """The effective :class:`~repro.sim.engine.SimConfig`.

        Starts from the protocol's default configuration (OPT's oracle
        channel etc.) and applies the declarative ``sim`` overrides.
        """
        from .sim.engine import SimConfig

        radio = _default_radio(self.protocol)
        overrides = dict(self.sim)
        radio_overrides = overrides.pop("radio", None)
        if radio_overrides:
            radio = dataclasses.replace(radio, **radio_overrides)
        return SimConfig(coverage_target=self.coverage_target, radio=radio,
                         **overrides)

    def make_dynamics(self, topo: Topology, rng):
        """Instantiate the link-dynamics model (``None`` for static)."""
        if self.link_model == "static":
            return None
        from .net.dynamics import GilbertElliott

        return GilbertElliott(topo, rng=rng, **self.link_kwargs)

    def make_link_model(self):
        """Instantiate the :class:`~repro.net.mac.LinkModel` of ``mac``."""
        from .net.mac import make_link_model

        return make_link_model(self.mac, **self.mac_kwargs)

    # -- serialization ------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Complete JSON-serializable dict (defaults materialized)."""
        data = {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name != "topology"
        }
        data["protocol_kwargs"] = dict(self.protocol_kwargs)
        data["link_kwargs"] = dict(self.link_kwargs)
        data["mac_kwargs"] = dict(self.mac_kwargs)
        data["sim"] = {k: (dict(v) if isinstance(v, Mapping) else v)
                       for k, v in self.sim.items()}
        data["topology"] = (None if self.topology is None
                            else self.topology.to_dict())
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Strict inverse of :meth:`to_dict`.

        Missing fields take their defaults; unknown or misspelled fields
        raise :class:`ScenarioError` with the closest valid name.
        """
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"scenario must be an object, got {type(data).__name__}"
            )
        names = {f.name for f in dataclasses.fields(cls)}
        _reject_unknown(data, names, "scenario field")
        if "protocol" not in data or "duty_ratio" not in data \
                or "n_packets" not in data:
            missing = [k for k in ("protocol", "duty_ratio", "n_packets")
                       if k not in data]
            raise ScenarioError(f"scenario is missing required fields {missing}")
        kwargs = dict(data)
        topo = kwargs.pop("topology", None)
        if topo is not None and not isinstance(topo, TopologySpec):
            topo = TopologySpec.from_dict(topo)
        return cls(topology=topo, **kwargs)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True,
                          default=_json_default)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    # -- content addressing -------------------------------------------

    def fingerprint(self) -> str:
        """Canonical content hash of the serialized scenario.

        Hashes sorted-key JSON of :meth:`to_dict` minus ``topology``
        (module docs explain why), so the digest is invariant to field
        order, construction path, and refactors of the code that built
        the scenario — only the *data* matters.
        """
        data = self.to_dict()
        data.pop("topology")
        if self.mac == "ideal" and not self.mac_kwargs:
            # The default MAC is the pre-layering engine bit for bit, so
            # default scenarios keep their historical fingerprints (and
            # store keys) from before the ``mac`` field existed.
            data.pop("mac")
            data.pop("mac_kwargs")
        blob = _canonical_json(data)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def as_scenario(spec: Any) -> Scenario:
    """Normalize ``spec`` to a :class:`Scenario`.

    Accepts a :class:`Scenario` (returned as-is), a mapping (strict
    :meth:`Scenario.from_dict`), or a legacy
    :class:`~repro.sim.runner.ExperimentSpec`-shaped object, whose
    optional ``sim_config`` is *diffed against the protocol's default
    configuration* into declarative ``sim`` overrides — so two specs
    with behaviorally identical configurations normalize to the same
    scenario (and the same fingerprint) no matter how they were built.
    """
    if isinstance(spec, Scenario):
        return spec
    if isinstance(spec, Mapping):
        return Scenario.from_dict(spec)
    try:
        protocol = spec.protocol
        duty_ratio = spec.duty_ratio
        n_packets = spec.n_packets
    except AttributeError:
        raise TypeError(
            f"cannot interpret {type(spec).__name__!r} as a Scenario"
        ) from None
    effective = getattr(spec, "sim_config", None)
    if effective is None:
        coverage = getattr(spec, "coverage_target", 0.99)
        sim: Dict[str, Any] = {}
    else:
        coverage = effective.coverage_target
        base = default_sim_config(protocol, coverage)
        sim = {}
        for f in dataclasses.fields(type(effective)):
            if f.name in ("coverage_target", "radio"):
                continue
            if getattr(effective, f.name) != getattr(base, f.name):
                sim[f.name] = getattr(effective, f.name)
        radio_diff = {
            f.name: getattr(effective.radio, f.name)
            for f in dataclasses.fields(type(effective.radio))
            if getattr(effective.radio, f.name) != getattr(base.radio, f.name)
        }
        if radio_diff:
            sim["radio"] = radio_diff
    return Scenario(
        protocol=protocol,
        duty_ratio=duty_ratio,
        n_packets=n_packets,
        seed=getattr(spec, "seed", 0),
        n_replications=getattr(spec, "n_replications", 1),
        coverage_target=coverage,
        generation_interval=getattr(spec, "generation_interval", 0),
        protocol_kwargs=dict(getattr(spec, "protocol_kwargs", {})),
        mac=getattr(spec, "mac", "ideal"),
        mac_kwargs=dict(getattr(spec, "mac_kwargs", {})),
        sim=sim,
        measure_transmission_delay=getattr(
            spec, "measure_transmission_delay", False),
    )


# ---------------------------------------------------------------------------
# Scenario grids
# ---------------------------------------------------------------------------

def _freeze_axis_value(field_name: str, value: Any) -> Any:
    if field_name == "topology" and isinstance(value, Mapping) \
            and not isinstance(value, TopologySpec):
        return TopologySpec.from_dict(value)
    return value


@dataclass(frozen=True)
class ScenarioGrid:
    """A base :class:`Scenario` plus ordered sweep axes.

    ``axes`` maps scenario field names to value sequences; the grid
    expands to the cartesian product in axis order (last axis fastest),
    exactly like nested for-loops over the axes.

    Sharding
    --------
    :meth:`shard` partitions the expanded cells into ``count``
    deterministic, near-equal, disjoint subsets — the unit of multi-host
    execution. The partition orders cells by ``(fingerprint, expansion
    index)`` and deals sorted positions round-robin, so it depends only
    on the cells' *content*, never on Python hashing or axis authoring
    style; shard ``i`` then presents its cells in original expansion
    order. A sharded grid serializes to a **self-contained** grid JSON
    (full base + axes plus a ``shard`` stanza stamped with the parent
    grid's fingerprint), so a shard file can be shipped to another host
    and re-expanded there; the stamp makes editing a shard file's axes
    — or mixing shards of different grids — a load-time error instead
    of a silently wrong merge.
    """

    base: Scenario
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    name: Optional[str] = None
    sharding: Optional[Tuple[int, int]] = None

    def __init__(self, base: Scenario, axes: Any = (),
                 name: Optional[str] = None,
                 sharding: Optional[Tuple[int, int]] = None):
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "name", name)
        if isinstance(axes, Mapping):
            axes = tuple(axes.items())
        frozen: List[Tuple[str, Tuple[Any, ...]]] = []
        fields = {f.name for f in dataclasses.fields(Scenario)}
        for field_name, values in axes:
            _reject_unknown((field_name,), fields, "sweep axis")
            values = tuple(_freeze_axis_value(field_name, v) for v in values)
            if not values:
                raise ScenarioError(f"axis {field_name!r} has no values")
            frozen.append((field_name, values))
        object.__setattr__(self, "axes", tuple(frozen))
        if sharding is not None:
            index, count = sharding
            if count < 1:
                raise ScenarioError(
                    f"shard count must be >= 1, got {count}"
                )
            if not (0 <= index < count):
                raise ScenarioError(
                    f"shard index must be in [0, {count}), got {index} "
                    f"(shard indices are 0-based)"
                )
            sharding = (int(index), int(count))
        object.__setattr__(self, "sharding", sharding)
        for scenario in self._full_scenarios():  # validate every cell eagerly
            assert isinstance(scenario, Scenario)

    # -- expansion -----------------------------------------------------

    def _full_combos(self) -> List[Tuple[Any, ...]]:
        """Every cell's axis-value tuple, ignoring any sharding."""
        if not self.axes:
            return [()]
        return list(itertools.product(*(v for _, v in self.axes)))

    def _full_scenarios(self) -> List[Scenario]:
        names = [n for n, _ in self.axes]
        return [
            dataclasses.replace(self.base,
                                **dict(zip(names, combo)))
            for combo in self._full_combos()
        ]

    def cell_indices(self) -> Tuple[int, ...]:
        """Indices (in full-grid expansion order) of this grid's cells.

        The whole determinism contract of sharding lives here: cells are
        ordered by ``(cell fingerprint, expansion index)`` — a pure
        function of the grid's content — and sorted position ``p`` goes
        to shard ``p % count`` (round-robin, so shard sizes differ by at
        most one). The selected indices are returned ascending, so a
        shard's cells keep their original expansion order.
        """
        full = self._full_scenarios()
        if self.sharding is None:
            return tuple(range(len(full)))
        index, count = self.sharding
        fps = [s.fingerprint() for s in full]
        order = sorted(range(len(full)), key=lambda j: (fps[j], j))
        return tuple(sorted(order[p] for p in range(len(full))
                            if p % count == index))

    def __len__(self) -> int:
        n = 1
        for _, values in self.axes:
            n *= len(values)
        if self.sharding is None:
            return n
        return len(self.cell_indices())

    def combos(self) -> List[Tuple[Any, ...]]:
        """Axis-value tuples in expansion order (``()`` for no axes).

        On a sharded grid, only this shard's cells (original order).
        """
        full = self._full_combos()
        if self.sharding is None:
            return full
        return [full[i] for i in self.cell_indices()]

    def scenarios(self) -> List[Scenario]:
        """The expanded cartesian list of scenarios (this shard's cells)."""
        full = self._full_scenarios()
        if self.sharding is None:
            return full
        return [full[i] for i in self.cell_indices()]

    def items(self) -> Iterator[Tuple[Tuple[Any, ...], Scenario]]:
        return zip(self.combos(), self.scenarios())

    # -- sharding ------------------------------------------------------

    def shard(self, index: int, count: int) -> "ScenarioGrid":
        """Shard ``index`` (0-based) of ``count`` disjoint sub-grids.

        The union of ``grid.shard(0, k) .. grid.shard(k-1, k)`` is
        exactly the full grid; see :meth:`cell_indices` for the
        determinism contract. A shard with more shards than cells is
        legal and simply empty. Re-sharding a shard is refused — shards
        are stamped against the *parent* grid, and a shard-of-shard
        would silently change which grid the stamp refers to.
        """
        if self.sharding is not None:
            raise ScenarioError(
                f"grid is already shard {self.sharding[0]}/{self.sharding[1]}; "
                f"shard the full grid instead"
            )
        return ScenarioGrid(base=self.base, axes=self.axes, name=self.name,
                            sharding=(index, count))

    def shards(self, count: int) -> List["ScenarioGrid"]:
        """All ``count`` shards, in index order."""
        return [self.shard(i, count) for i in range(count)]

    # -- serialization ------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        axes: Dict[str, List[Any]] = {}
        for field_name, values in self.axes:
            axes[field_name] = [
                v.to_dict() if isinstance(v, TopologySpec) else v
                for v in values
            ]
        data: Dict[str, Any] = {"schema": SCHEMA_VERSION}
        if self.name:
            data["name"] = self.name
        data["scenario"] = self.base.to_dict()
        if axes:
            data["axes"] = axes
        if self.sharding is not None:
            # Self-contained shard file: the full grid definition plus
            # which slice this is, stamped with the *parent* grid's
            # fingerprint so shards of different grids can never be
            # silently mixed (the stamp is re-checked on load).
            data["shard"] = {
                "index": self.sharding[0],
                "count": self.sharding[1],
                "grid": self.grid_fingerprint(),
            }
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioGrid":
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"scenario file must hold an object, got {type(data).__name__}"
            )
        _reject_unknown(data, ("schema", "name", "notes", "scenario", "axes",
                               "shard"),
                        "scenario-file field")
        schema = data.get("schema", SCHEMA_VERSION)
        if schema != SCHEMA_VERSION:
            raise ScenarioError(
                f"unsupported scenario schema {schema!r} "
                f"(this build reads schema {SCHEMA_VERSION})"
            )
        if "scenario" not in data:
            raise ScenarioError("scenario file is missing the 'scenario' object")
        base = Scenario.from_dict(data["scenario"])
        sharding = None
        stamp = None
        if data.get("shard") is not None:
            shard = data["shard"]
            if not isinstance(shard, Mapping):
                raise ScenarioError("'shard' must be an object")
            _reject_unknown(shard, ("index", "count", "grid"), "shard field")
            if "index" not in shard or "count" not in shard:
                raise ScenarioError("'shard' needs 'index' and 'count'")
            sharding = (int(shard["index"]), int(shard["count"]))
            stamp = shard.get("grid")
        grid = cls(base=base, axes=data.get("axes", ()),
                   name=data.get("name"), sharding=sharding)
        if stamp is not None and stamp != grid.grid_fingerprint():
            raise ScenarioError(
                f"shard is stamped for grid {str(stamp)[:16]}… but this "
                f"file expands to grid {grid.grid_fingerprint()[:16]}… — "
                f"the base/axes were edited after sharding, or the stamp "
                f"belongs to a different grid; re-shard the full grid"
            )
        return grid

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False,
                          default=_json_default)

    def fingerprint(self) -> str:
        """Content hash over this grid's expanded cells (order-sensitive).

        On a shard, hashes only the shard's cells — shards of one grid
        get distinct fingerprints. :meth:`grid_fingerprint` identifies
        the parent grid shards share.
        """
        h = hashlib.sha256()
        for scenario in self.scenarios():
            h.update(scenario.fingerprint().encode())
        return h.hexdigest()

    def grid_fingerprint(self) -> str:
        """Content hash over *every* cell of the full grid.

        Invariant under sharding: every shard of a grid reports its
        parent's fingerprint (an unsharded grid reports its own, equal
        to :meth:`fingerprint`). This is the identity the shard stamp,
        the store manifests and ``repro store merge`` key on.
        """
        h = hashlib.sha256()
        for scenario in self._full_scenarios():
            h.update(scenario.fingerprint().encode())
        return h.hexdigest()


def load_scenario_file(path: os.PathLike) -> ScenarioGrid:
    """Load a scenario file: a grid object or a bare scenario.

    The file holds either ``{"schema": 1, "scenario": {...}, "axes":
    {...}}`` or a bare scenario object (no axes). Validation errors
    carry the offending key and the closest valid spelling.
    """
    with open(path, "r", encoding="utf-8") as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"{path}: not valid JSON ({exc})") from None
    if isinstance(data, Mapping) and "scenario" in data:
        return ScenarioGrid.from_dict(data)
    return ScenarioGrid(base=Scenario.from_dict(data))
