"""Benchmark for the slot pipeline itself — engine throughput.

One honest DBAO flood at the fig9 trace scale (298-sensor GreenOrbs
trace, 5% duty, M = 20): the contention-and-belief-heavy workload whose
proposal path dominates engine runtime. The reported wall-clock is the
whole run; the test also prints slots/sec so pipeline regressions show
up as a number, not just a slower suite.
"""

import time

import numpy as np

from repro.experiments._common import get_trace
from repro.net.packet import FloodWorkload
from repro.net.schedule import ScheduleTable
from repro.protocols.base import make_protocol
from repro.sim.engine import SimConfig, run_flood


def _dbao_flood():
    topo = get_trace("full")
    schedules = ScheduleTable.random(
        topo.n_nodes, 20, np.random.default_rng(0)
    )
    workload = FloodWorkload(n_packets=20, generation_interval=1)
    t0 = time.perf_counter()
    result = run_flood(
        topo, schedules, workload, make_protocol("dbao"),
        np.random.default_rng(42), SimConfig(max_slots=50_000),
    )
    elapsed = time.perf_counter() - t0
    return result, elapsed


def test_bench_engine_dbao_slot_throughput(once):
    result, elapsed = once(_dbao_flood)
    assert result.completed
    slots = result.metrics.elapsed_slots
    rate = slots / elapsed
    print(f"\nDBAO fig9-scale: {slots} slots in {elapsed:.3f}s "
          f"({rate:.0f} slots/sec)")
    # Generous floor — catches order-of-magnitude pipeline regressions
    # without flaking on slow CI machines. The batched pipeline clears
    # ~2000 slots/sec on a dev container.
    assert rate > 300
