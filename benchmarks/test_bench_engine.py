"""Benchmarks for the slot pipeline itself — engine throughput.

Three scenarios, journaled into ``BENCH_engine.json``:

* **fig9-dbao** — one honest DBAO flood at the fig9 trace scale
  (298-sensor GreenOrbs trace, 5% duty, M = 20): the contention-and-
  belief-heavy workload whose proposal path dominates engine runtime.
  Traffic occupies most slots, so this guards the *dense* regime — the
  skip must pay for its frontier queries here, not just win elsewhere.
  Measured with the quiescence fast-forward on and off.
* **fig9-mac** — the layered link stack's cost: the same fig9-scale
  DBAO flood resolved through an explicit
  :class:`~repro.net.mac.IdealCsmaLink` (the default path routes
  through it too; this entry pins the layering overhead by name). The
  bench asserts the layered rate stays within 5% of the fig9-dbao
  baseline journaled in the same session, and journals an 802.15.4
  CSMA-CA replications/sec entry alongside for visibility (no floor —
  the real MAC does honest per-micro-round work).
* **lemma2-single-packet** — one packet flooding the same trace at a
  very low duty cycle (period 8000), the regime of the paper's Lemma 2
  where delay is almost entirely sleep latency. Nearly every slot is
  provably quiescent, so the compact-time skip should dominate: the
  bench asserts fast-forward is at least 3x faster than slot-by-slot.
* **fig10-reps** — the replication axis: a batch-native subset of the
  fig10 grid (opt + dbao at two duty ratios, smoke trace) run
  replication-by-replication versus as one ``(R, …)`` batched engine
  invocation per cell. Results are asserted bit-identical; the
  journaled number is replications/sec, and the batched path must beat
  the serial baseline by the width-scaled floor (>= 10x at the
  committed R = 64). ``REPRO_BENCH_REPS`` overrides R (CI smoke uses a
  small width).
* **fig10-of-reps** — the same contract for the fallback-protocol
  batch: OF's gate math and per-replication RNG draws are the heaviest
  of the newly batch-native proposal paths, so it gets its own
  journaled floor (>= 5x at the committed R = 64).
* **fig10-column** — cross-cell stacking: a whole OF duty column
  (three duty ratios) as ONE :func:`run_replication_stack` engine
  invocation versus one batched invocation per cell. Bit-identity is
  asserted; the journaled number is stacked replications/sec with the
  per-cell ratio alongside (stacking trades a little per-slot width
  for task-count collapse, so the guard only excludes pathological
  slowdowns).
"""

import os
import pickle
import time

import numpy as np

from repro.experiments._common import get_trace
from repro.net.packet import FloodWorkload
from repro.net.schedule import ScheduleTable
from repro.protocols.base import make_protocol
from repro.protocols.opt import opt_radio_model
from repro.sim.engine import SimConfig, run_flood
from repro.sim.runner import (ExperimentSpec, run_replication,
                              run_replication_chunk, run_replication_stack)

def _dbao_flood(fast_forward=True, link=None):
    topo = get_trace("full")
    schedules = ScheduleTable.random(
        topo.n_nodes, 20, np.random.default_rng(0)
    )
    workload = FloodWorkload(n_packets=20, generation_interval=1)
    t0 = time.perf_counter()
    result = run_flood(
        topo, schedules, workload, make_protocol("dbao"),
        np.random.default_rng(42),
        SimConfig(max_slots=50_000, fast_forward=fast_forward),
        link=link,
    )
    elapsed = time.perf_counter() - t0
    return result, elapsed


def _lemma2_flood(fast_forward=True):
    topo = get_trace("full")
    schedules = ScheduleTable.random(
        topo.n_nodes, 8000, np.random.default_rng(1)
    )
    t0 = time.perf_counter()
    result = run_flood(
        topo, schedules, FloodWorkload(n_packets=1), make_protocol("opt"),
        np.random.default_rng(7),
        SimConfig(max_slots=500_000, coverage_target=1.0,
                  fast_forward=fast_forward, radio=opt_radio_model()),
    )
    elapsed = time.perf_counter() - t0
    return result, elapsed


def test_bench_engine_dbao_slot_throughput(best_of, bench_journal, bench_record):
    result, elapsed = best_of(_dbao_flood, rounds=4)
    assert result.completed
    slots = result.metrics.elapsed_slots
    rate = slots / elapsed
    bench_journal["fig9-dbao/ff-on"] = bench_record(
        "fig9-dbao", elapsed, slots, fast_forward=True, rounds=4)
    print(f"\nDBAO fig9-scale (ff on): {slots} slots in {elapsed:.3f}s "
          f"({rate:.0f} slots/sec)")
    # Generous floor — catches order-of-magnitude pipeline regressions
    # without flaking on slow CI machines. The batched pipeline clears
    # ~3000 slots/sec on a dev container.
    assert rate > 300


def test_bench_engine_dbao_slot_by_slot(best_of, bench_journal, bench_record):
    result, elapsed = best_of(lambda: _dbao_flood(fast_forward=False),
                              rounds=4)
    assert result.completed
    slots = result.metrics.elapsed_slots
    rate = slots / elapsed
    bench_journal["fig9-dbao/ff-off"] = bench_record(
        "fig9-dbao", elapsed, slots, fast_forward=False, rounds=4)
    print(f"\nDBAO fig9-scale (ff off): {slots} slots in {elapsed:.3f}s "
          f"({rate:.0f} slots/sec)")
    assert rate > 300
    # Fast-forward must never cost throughput: its next_action_slot
    # frontier scans are cached on the engine's state version, so the
    # ff-on run (journaled just above by the throughput bench in the
    # same session, back to back on the same host) has to keep pace
    # with slot-by-slot execution. 0.95 absorbs measurement noise.
    ff_on = bench_journal.get("fig9-dbao/ff-on")
    if ff_on is not None:
        assert ff_on["slots_per_sec"] >= 0.95 * rate, (
            f"fast-forward run is slower than slot-by-slot: "
            f"{ff_on['slots_per_sec']} vs {rate:.1f} slots/sec")


def test_bench_mac_ideal_link_overhead(best_of, bench_journal, bench_record):
    """The layered resolution path must be free when the MAC is ideal.

    Runs the fig9-scale DBAO flood through an explicitly constructed
    :class:`IdealCsmaLink` against the engine-default path, with the
    rounds *interleaved* so host drift hits both variants equally, and
    gates the layered rate at >= 95% of the default's. (Sequential
    best-of pairs flake: a whole bench's rounds land in one thermal /
    scheduling regime.) Also journals a CSMA-CA throughput entry on the
    batched smoke grid so the real MAC's cost is visible in the series.
    """
    from repro.net.mac import IdealCsmaLink

    t_default, t_layered = [], []
    result = None
    for _ in range(4):
        base_result, t = _dbao_flood()
        t_default.append(t)
        result, t = _dbao_flood(link=IdealCsmaLink())
        t_layered.append(t)
        assert base_result.metrics.elapsed_slots == \
            result.metrics.elapsed_slots
    assert result.completed
    slots = result.metrics.elapsed_slots
    elapsed = min(t_layered)
    rate = slots / elapsed
    base_rate = slots / min(t_default)
    record = bench_record("fig9-mac", elapsed, slots,
                          fast_forward=True, rounds=4)
    record["link"] = "ideal"
    record["default_path_slots_per_sec"] = round(base_rate, 1)
    bench_journal["fig9-mac/ideal"] = record
    print(f"\nDBAO fig9-scale (layered ideal link): {slots} slots in "
          f"{elapsed:.3f}s ({rate:.0f} slots/sec vs default "
          f"{base_rate:.0f})")
    assert rate > 300
    assert rate >= 0.95 * base_rate, (
        f"explicit ideal link costs more than 5% vs the default path: "
        f"{rate:.1f} vs {base_rate:.1f} slots/sec")

    # CSMA-CA visibility entry: the batched smoke grid under the real
    # MAC. Honest micro-round contention is expected to cost real time;
    # journaled, not gated.
    from repro.scenario import Scenario

    topo = get_trace("smoke")
    csma_specs = [
        Scenario(protocol="dbao", duty_ratio=duty, n_packets=4,
                 seed=2011, n_replications=REPS, mac="csma_802154")
        for duty in (0.1, 0.2)
    ]
    batched, batched_s = best_of(
        lambda: _rep_grid_batched(topo, csma_specs), rounds=3)
    total_reps = len(csma_specs) * REPS
    cs_slots = sum(r.metrics.elapsed_slots for cell in batched for r in cell)
    cs_record = bench_record("fig9-mac", batched_s, cs_slots,
                             fast_forward=True, rounds=3)
    cs_record.update({
        "link": "csma_802154",
        "n_replications": REPS,
        "grid_cells": len(csma_specs),
        "reps_per_sec": round(total_reps / batched_s, 1),
    })
    bench_journal["fig9-mac/csma"] = cs_record
    print(f"fig9-mac CSMA-CA (R={REPS}): "
          f"{total_reps / batched_s:.1f} reps/sec batched")


def test_bench_lemma2_fast_forward_speedup(best_of, bench_journal, bench_record):
    on, t_on = best_of(_lemma2_flood, rounds=3)
    off, t_off = best_of(lambda: _lemma2_flood(fast_forward=False),
                         rounds=3)
    assert on.completed and off.completed
    # Bit-identical trajectories are pinned by the tier-1 suite; the
    # cheap invariants here just guard against benching different runs.
    assert on.metrics.elapsed_slots == off.metrics.elapsed_slots
    assert on.metrics.tx_attempts == off.metrics.tx_attempts
    slots = on.metrics.elapsed_slots
    bench_journal["lemma2-single-packet/ff-on"] = bench_record(
        "lemma2-single-packet", t_on, slots, fast_forward=True, rounds=3)
    bench_journal["lemma2-single-packet/ff-off"] = bench_record(
        "lemma2-single-packet", t_off, slots, fast_forward=False, rounds=3)
    ratio = t_off / t_on
    print(f"\nlemma2 single packet: ff on {t_on * 1e3:.0f}ms, "
          f"ff off {t_off * 1e3:.0f}ms ({ratio:.1f}x)")
    # The compact-time claim: where sleep latency dominates simulated
    # time, it must also dominate simulation time. Measured ~6x on a
    # dev container; 3x is the acceptance floor.
    assert ratio >= 3.0


REPS = int(os.environ.get("REPRO_BENCH_REPS", "0")) or 64

#: The original batch-native pair of the fig10 grid — kept as-is so the
#: journal series stays comparable across engine versions.
_REP_SPECS = [
    ExperimentSpec(protocol=proto, duty_ratio=duty, n_packets=4,
                   seed=2011, n_replications=REPS)
    for proto in ("opt", "dbao")
    for duty in (0.1, 0.2)
]

#: The fallback-protocol column: OF is the heaviest of the newly
#: batch-native proposal paths (float gate math + per-replication
#: permutation draws), so it gets its own journaled floor.
_OF_SPECS = [
    ExperimentSpec(protocol="of", duty_ratio=duty, n_packets=4,
                   seed=2011, n_replications=REPS)
    for duty in (0.1, 0.2)
]


def _rep_grid_serial(topo, specs=_REP_SPECS):
    t0 = time.perf_counter()
    results = [
        [run_replication(topo, spec, rep) for rep in range(REPS)]
        for spec in specs
    ]
    return results, time.perf_counter() - t0


def _rep_grid_batched(topo, specs=_REP_SPECS):
    t0 = time.perf_counter()
    results = [run_replication_chunk(topo, spec, 0, REPS)
               for spec in specs]
    return results, time.perf_counter() - t0


def test_bench_replications_per_sec(best_of, bench_journal, bench_record):
    topo = get_trace("smoke")
    # The batched grid finishes in a couple of seconds, so any transient
    # host stall lands squarely in one round; more rounds give the min
    # estimator the same noise immunity the long serial runs get for
    # free. Total added cost is a few seconds.
    batched, batched_s = best_of(lambda: _rep_grid_batched(topo), rounds=7)
    serial, serial_s = best_of(lambda: _rep_grid_serial(topo), rounds=2)

    # The replication axis is a pure throughput device: every
    # replication extracted from a batch must equal its serial twin
    # bit for bit (the golden suite pins trajectories; this guards the
    # benched configurations specifically).
    for cell_serial, cell_batched in zip(serial, batched):
        assert ([pickle.dumps(r) for r in cell_serial]
                == [pickle.dumps(r) for r in cell_batched])

    total_reps = len(_REP_SPECS) * REPS
    slots = sum(r.metrics.elapsed_slots for cell in batched for r in cell)
    serial_rate = total_reps / serial_s
    batched_rate = total_reps / batched_s
    speedup = serial_s / batched_s
    record = bench_record("fig10-reps", batched_s, slots,
                          fast_forward=True, rounds=7)
    record.update({
        "n_replications": REPS,
        "grid_cells": len(_REP_SPECS),
        "reps_per_sec": round(batched_rate, 1),
        "serial_wallclock_s": round(serial_s, 4),
        "serial_reps_per_sec": round(serial_rate, 1),
        "speedup_vs_serial": round(speedup, 2),
    })
    bench_journal["fig10-reps/batched"] = record
    print(f"\nfig10 reps (R={REPS}): serial {serial_rate:.1f} reps/sec, "
          f"batched {batched_rate:.1f} reps/sec ({speedup:.1f}x)")
    # Per-slot python dispatch amortizes over the batch width, so the
    # contract scales with R: >= 10x at the committed R = 64, relaxed
    # proportionally when CI smoke runs a narrow batch.
    assert speedup >= min(10.0, REPS / 4.0)


def test_bench_of_replications_per_sec(best_of, bench_journal, bench_record):
    topo = get_trace("smoke")
    batched, batched_s = best_of(
        lambda: _rep_grid_batched(topo, _OF_SPECS), rounds=7)
    serial, serial_s = best_of(
        lambda: _rep_grid_serial(topo, _OF_SPECS), rounds=2)

    for cell_serial, cell_batched in zip(serial, batched):
        assert ([pickle.dumps(r) for r in cell_serial]
                == [pickle.dumps(r) for r in cell_batched])

    total_reps = len(_OF_SPECS) * REPS
    slots = sum(r.metrics.elapsed_slots for cell in batched for r in cell)
    serial_rate = total_reps / serial_s
    batched_rate = total_reps / batched_s
    speedup = serial_s / batched_s
    record = bench_record("fig10-of-reps", batched_s, slots,
                          fast_forward=True, rounds=7)
    record.update({
        "n_replications": REPS,
        "grid_cells": len(_OF_SPECS),
        "reps_per_sec": round(batched_rate, 1),
        "serial_wallclock_s": round(serial_s, 4),
        "serial_reps_per_sec": round(serial_rate, 1),
        "speedup_vs_serial": round(speedup, 2),
    })
    bench_journal["fig10-of-reps/batched"] = record
    print(f"\nfig10 OF reps (R={REPS}): serial {serial_rate:.1f} reps/sec, "
          f"batched {batched_rate:.1f} reps/sec ({speedup:.1f}x)")
    # OF keeps small per-replication python sections (RNG permutation
    # draws) that the other floods don't, so its floor is lower than the
    # opt/dbao grid's: >= 5x at the committed R = 64.
    assert speedup >= min(5.0, REPS / 4.0)


#: A whole fig10 duty column for the cross-cell stacking bench.
_COLUMN_SPECS = [
    ExperimentSpec(protocol="of", duty_ratio=duty, n_packets=4,
                   seed=2011, n_replications=REPS)
    for duty in (0.05, 0.1, 0.2)
]


def _column_stacked(topo):
    t0 = time.perf_counter()
    results = run_replication_stack(
        topo, [(spec, 0, REPS) for spec in _COLUMN_SPECS]
    )
    return results, time.perf_counter() - t0


def _column_per_cell(topo):
    t0 = time.perf_counter()
    results = [run_replication_chunk(topo, spec, 0, REPS)
               for spec in _COLUMN_SPECS]
    return results, time.perf_counter() - t0


def test_bench_column_stacking(best_of, bench_journal, bench_record):
    topo = get_trace("smoke")
    stacked, stacked_s = best_of(lambda: _column_stacked(topo), rounds=5)
    per_cell, cell_s = best_of(lambda: _column_per_cell(topo), rounds=5)

    # Stacking is execution policy: each cell extracted from the stack
    # must equal its standalone batched chunk bit for bit.
    for cell_a, cell_b in zip(per_cell, stacked):
        assert ([pickle.dumps(r) for r in cell_a]
                == [pickle.dumps(r) for r in cell_b])

    total_reps = len(_COLUMN_SPECS) * REPS
    slots = sum(r.metrics.elapsed_slots for cell in stacked for r in cell)
    stacked_rate = total_reps / stacked_s
    ratio = cell_s / stacked_s
    record = bench_record("fig10-column", stacked_s, slots,
                          fast_forward=True, rounds=5)
    record.update({
        "n_replications": REPS,
        "grid_cells": len(_COLUMN_SPECS),
        "reps_per_sec": round(stacked_rate, 1),
        "per_cell_wallclock_s": round(cell_s, 4),
        "ratio_vs_per_cell": round(ratio, 2),
        "note": "whole duty column as one engine invocation",
    })
    bench_journal["fig10-column/stacked"] = record
    print(f"\nfig10 column (3 duties, R={REPS}): stacked "
          f"{stacked_rate:.1f} reps/sec, per-cell ratio {ratio:.2f}x")
    # The win is task-count collapse (3 engine invocations -> 1) and
    # shared per-slot dispatch; the wider stack also mixes periods, so
    # the guard only excludes pathological slowdowns.
    assert ratio >= 0.5


def test_bench_phase_profile(once, bench_journal):
    """Journal the per-phase wall/allocation split of the fig10 grid.

    Runs the same grid as ``test_bench_replications_per_sec`` once with
    a :class:`PhaseProfiler` attached (after a warm pass, so arena
    buffers are at steady-state size) and records the report under
    ``fig10-reps/profile``. Two structural assertions ride along:

    * the scratch arena must not grow a single buffer during the
      profiled pass — the "allocation-free steady state" contract;
    * per-slot net live-block growth stays bounded by the deferred
      counter accumulators (a handful of retained index arrays per
      executed slot), not unbounded temporaries.
    """
    from repro.sim.arena import global_arena
    from repro.sim.observers import PhaseProfiler

    topo = get_trace("smoke")
    arena = global_arena()
    for spec in _REP_SPECS:  # warm pass: grow buffers, prime caches
        run_replication_chunk(topo, spec, 0, REPS)
    grows_before = arena.counters()[1]
    profiler = PhaseProfiler()

    def profiled_pass():
        for spec in _REP_SPECS:
            run_replication_chunk(topo, spec, 0, REPS, profiler=profiler)

    once(profiled_pass)
    report = profiler.report(arena=arena)
    report["scenario"] = "fig10-reps"
    report["n_replications"] = REPS
    report["arena_grows_steady_state"] = arena.counters()[1] - grows_before
    bench_journal["fig10-reps/profile"] = report
    top = next(iter(report["phases"]))
    print(f"\nfig10 phase profile: {report['loop_slots']} loop slots, "
          f"top phase {top} ({report['phases'][top]['share']:.0%}), "
          f"{report.get('net_alloc_blocks_per_slot', 0)} net blocks/slot")
    assert report["arena_grows_steady_state"] == 0
    assert report.get("net_alloc_blocks_per_slot", 0.0) < 50
