"""Benchmarks for the slot pipeline itself — engine throughput.

Two scenarios, each measured with the quiescence fast-forward on and
off (the committed numbers live in ``BENCH_engine.json``):

* **fig9-dbao** — one honest DBAO flood at the fig9 trace scale
  (298-sensor GreenOrbs trace, 5% duty, M = 20): the contention-and-
  belief-heavy workload whose proposal path dominates engine runtime.
  Traffic occupies most slots, so this guards the *dense* regime — the
  skip must pay for its frontier queries here, not just win elsewhere.
* **lemma2-single-packet** — one packet flooding the same trace at a
  very low duty cycle (period 8000), the regime of the paper's Lemma 2
  where delay is almost entirely sleep latency. Nearly every slot is
  provably quiescent, so the compact-time skip should dominate: the
  bench asserts fast-forward is at least 3x faster than slot-by-slot.
"""

import time

import numpy as np

from repro.experiments._common import get_trace
from repro.net.packet import FloodWorkload
from repro.net.schedule import ScheduleTable
from repro.protocols.base import make_protocol
from repro.protocols.opt import opt_radio_model
from repro.sim.engine import SimConfig, run_flood

def _dbao_flood(fast_forward=True):
    topo = get_trace("full")
    schedules = ScheduleTable.random(
        topo.n_nodes, 20, np.random.default_rng(0)
    )
    workload = FloodWorkload(n_packets=20, generation_interval=1)
    t0 = time.perf_counter()
    result = run_flood(
        topo, schedules, workload, make_protocol("dbao"),
        np.random.default_rng(42),
        SimConfig(max_slots=50_000, fast_forward=fast_forward),
    )
    elapsed = time.perf_counter() - t0
    return result, elapsed


def _lemma2_flood(fast_forward=True):
    topo = get_trace("full")
    schedules = ScheduleTable.random(
        topo.n_nodes, 8000, np.random.default_rng(1)
    )
    t0 = time.perf_counter()
    result = run_flood(
        topo, schedules, FloodWorkload(n_packets=1), make_protocol("opt"),
        np.random.default_rng(7),
        SimConfig(max_slots=500_000, coverage_target=1.0,
                  fast_forward=fast_forward, radio=opt_radio_model()),
    )
    elapsed = time.perf_counter() - t0
    return result, elapsed


def test_bench_engine_dbao_slot_throughput(best_of, bench_journal, bench_record):
    result, elapsed = best_of(_dbao_flood, rounds=4)
    assert result.completed
    slots = result.metrics.elapsed_slots
    rate = slots / elapsed
    bench_journal["fig9-dbao/ff-on"] = bench_record(
        "fig9-dbao", elapsed, slots, fast_forward=True, rounds=4)
    print(f"\nDBAO fig9-scale (ff on): {slots} slots in {elapsed:.3f}s "
          f"({rate:.0f} slots/sec)")
    # Generous floor — catches order-of-magnitude pipeline regressions
    # without flaking on slow CI machines. The batched pipeline clears
    # ~3000 slots/sec on a dev container.
    assert rate > 300


def test_bench_engine_dbao_slot_by_slot(best_of, bench_journal, bench_record):
    result, elapsed = best_of(lambda: _dbao_flood(fast_forward=False),
                              rounds=4)
    assert result.completed
    slots = result.metrics.elapsed_slots
    rate = slots / elapsed
    bench_journal["fig9-dbao/ff-off"] = bench_record(
        "fig9-dbao", elapsed, slots, fast_forward=False, rounds=4)
    print(f"\nDBAO fig9-scale (ff off): {slots} slots in {elapsed:.3f}s "
          f"({rate:.0f} slots/sec)")
    assert rate > 300


def test_bench_lemma2_fast_forward_speedup(best_of, bench_journal, bench_record):
    on, t_on = best_of(_lemma2_flood, rounds=3)
    off, t_off = best_of(lambda: _lemma2_flood(fast_forward=False),
                         rounds=3)
    assert on.completed and off.completed
    # Bit-identical trajectories are pinned by the tier-1 suite; the
    # cheap invariants here just guard against benching different runs.
    assert on.metrics.elapsed_slots == off.metrics.elapsed_slots
    assert on.metrics.tx_attempts == off.metrics.tx_attempts
    slots = on.metrics.elapsed_slots
    bench_journal["lemma2-single-packet/ff-on"] = bench_record(
        "lemma2-single-packet", t_on, slots, fast_forward=True, rounds=3)
    bench_journal["lemma2-single-packet/ff-off"] = bench_record(
        "lemma2-single-packet", t_off, slots, fast_forward=False, rounds=3)
    ratio = t_off / t_on
    print(f"\nlemma2 single packet: ff on {t_on * 1e3:.0f}ms, "
          f"ff off {t_off * 1e3:.0f}ms ({ratio:.1f}x)")
    # The compact-time claim: where sleep latency dominates simulated
    # time, it must also dominate simulation time. Measured ~6x on a
    # dev container; 3x is the acceptance floor.
    assert ratio >= 3.0
