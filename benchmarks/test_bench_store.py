"""Benchmarks: shard-store merge throughput and streaming aggregation.

Two scenarios, journaled into ``BENCH_store.json`` (see
``store_journal`` in ``conftest.py``):

* ``merge_throughput`` — ``merge_store`` over two shard directories of
  small entries (the sharded-sweep shape: hundreds of cells, a few KB
  each). Every entry is digest-re-verified on the way, so the number is
  honest about the integrity checking the merge contract requires.
* ``aggregation_memory`` — peak traced memory of summarizing a
  fig10-sized per-packet delay tensor (cells x replications rows) the
  materialized way (stack everything, ``np.nanmean``/quantile over the
  matrix — what ``RunSummary`` does per cell) vs the streaming way
  (``StreamingMoments`` + ``VectorNanMean`` + ``QuantileSketch``
  consuming one replication row at a time — what ``RunAccumulator``
  does). The tentpole's acceptance: streaming peak <= 25% of the
  materialized peak. Peaks are ``tracemalloc`` numbers, so they count
  exactly the allocations of each path, not interpreter baseline.
"""

import gc
import hashlib
import time
import tracemalloc

import numpy as np

from repro.analysis.stats import mean_ci
from repro.analysis.streaming import (
    QuantileSketch,
    StreamingMoments,
    VectorNanMean,
)
from repro.exec import ResultStore, merge_store

#: Sharded-sweep shape for the merge bench: entries per shard directory
#: and the payload size (a small RunSummary pickles to a few KB).
MERGE_ENTRIES_PER_SHARD = 200
MERGE_PAYLOAD_BYTES = 4096

#: Fig10-sized aggregation: 3 protocols x 6 duty ratios, 200
#: replications each, 100 packets per replication.
GRID_ROWS = 18 * 200
N_PACKETS = 100

#: The tentpole's memory contract.
PEAK_RATIO_CEILING = 0.25


def _fill_shard(cache_dir, n, salt):
    store = ResultStore(cache_dir)
    payload = {"blob": b"x" * MERGE_PAYLOAD_BYTES}
    store.put_many({
        hashlib.sha256(f"{salt}/{i}".encode()).hexdigest(): payload
        for i in range(n)
    })


def test_bench_store_merge_throughput(tmp_path, once, benchmark,
                                      store_journal):
    for shard in range(2):
        _fill_shard(tmp_path / f"s{shard}", MERGE_ENTRIES_PER_SHARD,
                    salt=shard)

    t0 = time.perf_counter()
    report = once(merge_store, tmp_path / "merged",
                  [tmp_path / "s0", tmp_path / "s1"])
    elapsed = time.perf_counter() - t0

    total = 2 * MERGE_ENTRIES_PER_SHARD
    assert (report.copied, report.rejected) == (total, 0)
    rate = total / elapsed
    benchmark.extra_info.update(entries_per_sec=round(rate, 1))
    store_journal["merge_throughput"] = {
        "scenario": "merge_throughput",
        "entries": total,
        "payload_bytes": MERGE_PAYLOAD_BYTES,
        "wallclock_s": round(elapsed, 4),
        "entries_per_sec": round(rate, 1),
    }
    # Digest-verified copies of KB-scale entries; anything slower than
    # this is pathological I/O, not a tuning question.
    assert rate >= 100.0


def _delay_rows():
    """Deterministic fig10-shaped per-replication delay rows.

    Gamma-distributed per-packet delays with ~3% lost packets (NaN) —
    the shape ``RunSummary.per_packet_delay`` sees after masking
    incomplete packets.
    """
    rng = np.random.default_rng(2011)
    for _ in range(GRID_ROWS):
        row = rng.gamma(4.0, 50.0, size=N_PACKETS)
        row[rng.random(N_PACKETS) < 0.03] = np.nan
        yield row


def _materialized():
    """What the materialized path allocates: the full stacked tensor."""
    matrix = np.vstack(list(_delay_rows()))
    per_rep_means = np.nanmean(matrix, axis=1)
    curve = np.nanmean(matrix, axis=0)
    ci = mean_ci(per_rep_means)
    p90 = float(np.nanquantile(matrix, 0.9))
    return ci.mean, float(curve[0]), p90


def _streaming():
    """The accumulator path: one row resident at a time."""
    moments = StreamingMoments()
    curve = VectorNanMean()
    sketch = QuantileSketch()
    for row in _delay_rows():
        moments.add(float(np.nanmean(row)))
        curve.add(row)
        sketch.add_many(row)
    ci = moments.ci()
    return ci.mean, float(curve.result()[0]), sketch.quantile(0.9)


def _peak_of(fn):
    gc.collect()
    tracemalloc.start()
    result = fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, peak


def test_bench_store_aggregation_memory(once, benchmark, store_journal):
    materialized, mat_peak = _peak_of(_materialized)
    streaming, stream_peak = once(_peak_of, _streaming)

    ratio = stream_peak / mat_peak
    benchmark.extra_info.update(peak_ratio=round(ratio, 3))
    store_journal["aggregation_memory"] = {
        "scenario": "aggregation_memory",
        "rows": GRID_ROWS,
        "packets": N_PACKETS,
        "materialized_peak_bytes": int(mat_peak),
        "streaming_peak_bytes": int(stream_peak),
        "peak_ratio": round(ratio, 3),
    }

    # Same numbers: the streaming path is a re-aggregation, not an
    # approximation (mean/curve exact; p90 within the sketch's
    # documented rank error, checked loosely here, tightly in tests/).
    assert abs(streaming[0] - materialized[0]) < 1e-9 * abs(materialized[0])
    assert abs(streaming[1] - materialized[1]) < 1e-9 * abs(materialized[1])
    assert abs(streaming[2] - materialized[2]) < 0.05 * abs(materialized[2])
    # The tentpole's contract: streaming holds <= 25% of the
    # materialized peak on a fig10-sized grid.
    assert ratio <= PEAK_RATIO_CEILING, (stream_peak, mat_peak)
