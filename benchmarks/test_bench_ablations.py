"""Benchmarks for the design-choice ablations in DESIGN.md."""

import numpy as np

from repro.experiments import run_experiment_by_id


def test_bench_ablation_collisions(once):
    """DBAO with the collision model disabled: the pure-contention cost."""
    result = once(run_experiment_by_id, "abl-collisions", scale="bench")
    failures = result.get_series("failures").y
    # Without collisions, failures reduce to channel loss only.
    assert failures[1] <= failures[0]


def test_bench_ablation_overhearing(once):
    """DBAO without overhearing: suppression's transmission savings."""
    result = once(run_experiment_by_id, "abl-overhearing", scale="bench")
    tx = result.get_series("tx attempts").y
    assert tx[0] < tx[1]  # overhearing on spends fewer transmissions


def test_bench_ablation_data_overhearing(once):
    """Unicast channel vs data overhearing (future-work headroom)."""
    result = once(run_experiment_by_id, "abl-data-overhearing", scale="bench")
    delays = result.get_series("avg delay").y
    # Overhearing never hurts delivery speed.
    assert delays[1] <= delays[0] * 1.1


def test_bench_ablation_opp_threshold(once):
    """OF's opportunistic quantile: delay/energy trade."""
    result = once(run_experiment_by_id, "abl-opp-threshold", scale="bench")
    delays = result.get_series("avg delay").y
    attempts = result.get_series("tx attempts").y
    assert np.all(np.isfinite(delays))
    # Looser gating never *reduces* transmissions.
    assert attempts[-1] >= attempts[0] * 0.9
