"""Benchmark for Fig. 11 — transmission failures vs duty cycle.

Reads the duty sweep shared with Fig. 10 (cached in-process when the
fig10 bench ran first; otherwise this bench pays for the sweep itself).
"""

import numpy as np

from repro.experiments import run_experiment_by_id


def test_bench_fig11_failures_vs_duty(once):
    result = once(run_experiment_by_id, "fig11", scale="bench")
    for proto in ("opt", "dbao", "of"):
        failures = result.get_series(f"{proto}: failures").y
        assert np.all(failures >= 0)
        # The paper's observation: failures stay the same order of
        # magnitude across duty ratios (no systematic blow-up).
        assert failures.max() <= 8 * max(failures.min(), 1.0)
