"""Benchmark for Fig. 9 — per-packet delay on the GreenOrbs trace.

One honest run at bench scale (298 sensors, M = 20, 5% duty, three
protocols, with the transmission-delay decomposition probes).
"""

import numpy as np

from repro.experiments import run_experiment_by_id


def test_bench_fig9_blocking_effect(once):
    result = once(run_experiment_by_id, "fig9", scale="bench")
    # Blocking: for the practical protocols the tail of the total-delay
    # curve sits above its head; OPT's designated pipeline injects at its
    # drain rate, so its curve is flat-to-rising but never decreasing on
    # average. The transmission component stays below the blocked totals.
    for proto in ("dbao", "of"):
        total = result.get_series(f"{proto}: total delay").y
        trans = result.get_series(f"{proto}: transmission delay").y
        third = len(total) // 3
        assert np.nanmean(total[-third:]) > np.nanmean(total[:third])
        assert np.nanmean(trans) < np.nanmean(total[-third:])
    opt_total = result.get_series("opt: total delay").y
    third = len(opt_total) // 3
    assert np.nanmean(opt_total[-third:]) >= 0.8 * np.nanmean(opt_total[:third])
