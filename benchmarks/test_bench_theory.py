"""Benchmarks for the closed-form theory experiments (Figs. 3, 5, 6, Table I).

These regenerate the paper's analytical figures; they are fast, so the
benchmark also validates the headline shape of each artifact.
"""

import numpy as np
import pytest

from repro.core.fdl import knee_point
from repro.experiments import run_experiment_by_id


def test_bench_fig3_algorithm1(benchmark):
    """Fig. 3: Algorithm 1 worked example (matrix evolution)."""
    result = benchmark(run_experiment_by_id, "fig3", scale="bench")
    assert result.metadata["achieves_lemma3"]


def test_bench_fig3_large_instance(benchmark):
    """Algorithm 1 at N=1024, M=32 — the executor's scaling bench."""
    from repro.core.matrix_flood import MatrixFloodSimulator

    result = benchmark(MatrixFloodSimulator(1024).run, 32)
    assert result.achieves_lemma3


def test_bench_fig5_theorem1(benchmark):
    """Fig. 5: Theorem 1 FDL curves (both panels)."""
    result = benchmark(run_experiment_by_id, "fig5", scale="bench")
    # Knee present on panel A's N=1024 curve.
    s = result.get_series("panelA: N=1024, T=5")
    slopes = np.diff(s.y)
    m = knee_point(1024)
    assert slopes[m - 3] == pytest.approx(2 * slopes[m + 2])


def test_bench_fig6_theorem2(benchmark):
    """Fig. 6: Theorem 2 bound curves."""
    result = benchmark(run_experiment_by_id, "fig6", scale="bench")
    for n in (256, 1024):
        lo = result.get_series(f"N={n}, lower bound")
        hi = result.get_series(f"N={n}, upper bound")
        assert np.all(lo.y <= hi.y)


def test_bench_table1(benchmark):
    """Table I: waiting patterns, cross-checked against Algorithm 1."""
    result = benchmark(run_experiment_by_id, "table1", scale="bench")
    assert result.metadata["algorithm1_achieves_limit"]
    tail = result.tables[1].column("W_p")
    assert tail[-1] == result.metadata["saturation"]
