"""Benchmark for the Lemma 2 Monte-Carlo validation."""

import numpy as np

from repro.experiments import run_experiment_by_id


def test_bench_lemma2_branching_ensembles(once):
    result = once(run_experiment_by_id, "lemma2", scale="bench")
    theory = result.get_series("E[FWL] theory (ceil form)")
    measured = result.get_series("E[FWL] measured")
    assert np.all(np.abs(theory.y - measured.y) <= 1.5)
    # Lemma 1 moments.
    table = result.tables[0]
    t, m = table.column("theory"), table.column("measured")
    assert abs(t[0] - m[0]) < 0.1  # E[W] = 1
