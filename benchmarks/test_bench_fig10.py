"""Benchmark for Fig. 10 — delay vs duty cycle on the GreenOrbs trace.

This bench pays for the full protocol x duty-ratio simulation sweep
(which Fig. 11's bench then reads from the in-process result store,
mirroring how the paper derives both figures from one experiment).
"""

import numpy as np

from repro.exec import reset_execution
from repro.experiments import run_experiment_by_id


def test_bench_fig10_delay_vs_duty(once):
    reset_execution()  # empty result store -> honest cold run
    result = once(run_experiment_by_id, "fig10", scale="bench")
    bound = result.get_series("predicted lower bound")
    opt = result.get_series("opt: avg delay")
    dbao = result.get_series("dbao: avg delay")
    of = result.get_series("of: avg delay")
    # Deterioration at low duty cycles, for every protocol.
    for series in (opt, dbao, of):
        assert series.y[0] > series.y[-1]
    # Fig. 10 ordering: OPT below the practical protocols; the analytic
    # prediction below OPT (small slack for 99%-coverage early finish).
    assert np.all(opt.y <= dbao.y * 1.15)
    assert np.all(opt.y <= of.y * 1.15)
    assert np.all(bound.y <= opt.y * 1.1)
