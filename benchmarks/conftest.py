"""Benchmark-suite configuration.

Trace-driven experiments are expensive (seconds to minutes); every bench
uses ``benchmark.pedantic`` with explicit rounds so the wall-clock equals
honest runs. Closed-form theory benches use normal calibration.

Engine benches additionally journal their numbers: anything put into the
``bench_journal`` mapping is merged into ``BENCH_engine.json`` at the
repo root when the session ends, keyed by scenario id. The file is the
committed performance record — CI's bench smoke diffs fresh numbers
against it — so entries carry everything needed to recompute the
comparison: scenario id, wall-clock, slot count, slots/sec, and the
fast-forward setting that produced them.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import json
import time
from pathlib import Path

import pytest

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
EXEC_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_exec.json"
STORE_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"


@pytest.fixture
def once(benchmark):
    """Run the target exactly once under the benchmark clock."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner


@pytest.fixture
def best_of(benchmark):
    """Run the target N times, return the run with the best wall-clock.

    The target must return ``(result, elapsed_seconds)`` — it times
    itself with a perf counter so imports and fixture setup never leak
    into the number. Best-of suppresses scheduler noise the way the
    committed baselines were measured.
    """

    used = []

    def runner(fn, rounds=3):
        runs = []
        if not used:
            # The benchmark fixture accepts a single pedantic call per
            # test; comparison benches time their remaining variants
            # with the same self-reported perf counter.
            used.append(True)
            benchmark.pedantic(
                lambda: runs.append(fn()), rounds=rounds, iterations=1
            )
        else:
            for _ in range(rounds):
                runs.append(fn())
        return min(runs, key=lambda pair: pair[1])

    return runner


@pytest.fixture(scope="session")
def bench_journal():
    """Session-wide scenario-id -> record mapping, flushed to disk.

    Records merge into the existing ``BENCH_engine.json`` (running a
    subset of benches must not erase the others' committed numbers).
    """
    records = {}
    yield records
    if not records:
        return
    from repro.sim.engine import ENGINE_VERSION

    data = {}
    if BENCH_PATH.exists():
        data = json.loads(BENCH_PATH.read_text())
    data["engine_version"] = ENGINE_VERSION
    data["measured_at"] = time.strftime("%Y-%m-%d", time.gmtime())
    data.setdefault("results", {}).update(records)
    BENCH_PATH.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n"
    )


@pytest.fixture(scope="session")
def exec_journal():
    """Like ``bench_journal``, but for the execution-layer benches.

    Records merge into ``BENCH_exec.json`` at the repo root — the
    committed record of dispatch performance (warm pool vs the legacy
    cold-pool/per-tuple-topology baseline) that CI's exec bench smoke
    diffs fresh numbers against.
    """
    records = {}
    yield records
    if not records:
        return
    from repro.sim.engine import ENGINE_VERSION

    data = {}
    if EXEC_BENCH_PATH.exists():
        data = json.loads(EXEC_BENCH_PATH.read_text())
    data["engine_version"] = ENGINE_VERSION
    data["measured_at"] = time.strftime("%Y-%m-%d", time.gmtime())
    data.setdefault("results", {}).update(records)
    EXEC_BENCH_PATH.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n"
    )


@pytest.fixture(scope="session")
def store_journal():
    """Like ``bench_journal``, but for the store/aggregation benches.

    Records merge into ``BENCH_store.json`` at the repo root — the
    committed record of shard-merge throughput and streaming-vs-
    materialized aggregation memory.
    """
    records = {}
    yield records
    if not records:
        return
    from repro.sim.engine import ENGINE_VERSION

    data = {}
    if STORE_BENCH_PATH.exists():
        data = json.loads(STORE_BENCH_PATH.read_text())
    data["engine_version"] = ENGINE_VERSION
    data["measured_at"] = time.strftime("%Y-%m-%d", time.gmtime())
    data.setdefault("results", {}).update(records)
    STORE_BENCH_PATH.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n"
    )


@pytest.fixture(scope="session")
def bench_record():
    """The journal entry schema, in one place."""

    def make(scenario, elapsed, slots, *, fast_forward, rounds):
        return {
            "scenario": scenario,
            "wallclock_s": round(elapsed, 4),
            "slots": int(slots),
            "slots_per_sec": round(slots / elapsed, 1),
            "fast_forward": bool(fast_forward),
            "best_of": int(rounds),
        }

    return make
