"""Benchmark-suite configuration.

Trace-driven experiments are expensive (seconds to minutes); every bench
uses ``benchmark.pedantic(rounds=1, iterations=1)`` so the wall-clock
equals one honest run. Closed-form theory benches use normal calibration.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the target exactly once under the benchmark clock."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
