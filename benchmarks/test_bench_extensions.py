"""Benchmarks for the extension experiments (beyond the paper's figures)."""

import numpy as np

from repro.experiments import run_experiment_by_id


def test_bench_skew_sensitivity(once):
    """Clock-skew sweep: the value of the local-sync assumption."""
    result = once(run_experiment_by_id, "skew", scale="bench")
    delays = result.get_series("avg delay").y
    misses = result.get_series("sleep misses").y
    assert delays[-1] > delays[0]
    assert misses[0] == 0 and np.all(np.diff(misses) >= 0)


def test_bench_hetero_links(once):
    """Heterogeneous vs homogenized link ensembles."""
    result = once(run_experiment_by_id, "hetero", scale="bench")
    bound = result.get_series("analytic lower bound").y
    for label in ("heterogeneous trace", "homogenized twin"):
        series = result.get_series(label)
        assert np.all(series.y >= bound * 0.75)
        assert series.y[0] > series.y[-1]  # lower duty is slower


def test_bench_bursty_links(once):
    """Gilbert-Elliott bursts vs mean-matched static loss."""
    result = once(run_experiment_by_id, "abl-bursty", scale="bench")
    delays = result.get_series("avg delay").y
    assert delays[1] >= delays[0] * 0.9


def test_bench_slot_split(once):
    """Multi-slot wake budgets at fixed duty (normalization audit)."""
    result = once(run_experiment_by_id, "slot-split", scale="bench")
    delays = result.get_series("avg delay").y
    # Splitting never helps meaningfully: the normalized single-slot
    # schedule stays within 25% of every split variant.
    assert np.all(delays >= delays[0] * 0.75)
