"""Benchmark: serial vs parallel execution of a multi-replication spec.

Measures the wall-clock of the same four-replication DBAO spec through
the :class:`~repro.exec.SerialExecutor` and a
:class:`~repro.exec.ParallelExecutor`, records the speedup in the
benchmark's ``extra_info``, and asserts two contracts:

* determinism — both backends produce identical per-replication delays;
* the parallel backend is never slower than serial beyond a generous
  pool-overhead tolerance (on a 1-core box ``jobs`` resolves to 1 and
  the pool is skipped entirely, so the fallback is ~free).
"""

import os
import time

import numpy as np

from repro.exec import ParallelExecutor, SerialExecutor
from repro.experiments._common import get_trace
from repro.sim.runner import ExperimentSpec, run_experiment

#: Enough replications to give a pool something to balance, small enough
#: to keep the bench in seconds.
SPEC = ExperimentSpec(
    protocol="dbao", duty_ratio=0.05, n_packets=4, seed=2011,
    n_replications=4,
)

#: Parallel may cost pool spawn + topology pickling; it must never cost
#: more than this factor over serial (plus a constant for tiny runs).
OVERHEAD_TOLERANCE = 4.0


def test_bench_exec_serial_vs_parallel(once, benchmark):
    topo = get_trace("smoke")

    t0 = time.perf_counter()
    serial = run_experiment(topo, SPEC, executor=SerialExecutor())
    serial_s = time.perf_counter() - t0

    jobs = min(4, os.cpu_count() or 1)
    t1 = time.perf_counter()
    parallel = once(
        run_experiment, topo, SPEC, executor=ParallelExecutor(jobs=jobs)
    )
    parallel_s = time.perf_counter() - t1

    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 3)
    benchmark.extra_info["speedup"] = round(serial_s / max(parallel_s, 1e-9), 2)

    assert np.array_equal(
        serial.per_replication_delays(), parallel.per_replication_delays()
    )
    assert parallel_s <= serial_s * OVERHEAD_TOLERANCE + 1.0
