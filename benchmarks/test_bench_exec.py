"""Benchmarks: warm-pool + shared-memory dispatch vs the PR3 baseline.

Two scenarios, journaled into ``BENCH_exec.json`` (see ``exec_journal``
in ``conftest.py``), both against the **legacy baseline** — PR3's
dispatch reproduced verbatim: a fresh ``ProcessPoolExecutor`` per
``map`` call, every task a self-contained ``(topo, spec, rep)`` tuple
(the topology re-pickled into every chunk), ``chunksize =
ceil(n / (4 * jobs))``.

* ``fig10_grid`` — end-to-end wall clock of a reduced fig10-style grid
  (smoke trace, protocols x duty ratios x replications) through the
  serial backend, the legacy baseline and the warm shared-memory
  executor, asserting bit-identical per-replication results and the
  >= 10x shrink in bytes pickled to workers. This grid is
  **compute-bound**: the per-slot simulation loop is the wall, not
  dispatch, so an end-to-end "speedup vs legacy" number here would
  mostly measure host core count (it read an uninformative 1.07x on a
  1-core box). The journal therefore reports compute saturation
  explicitly — ``serial_tasks_per_sec``, ``tasks_per_sec_per_job`` and
  ``parallel_efficiency`` (throughput per job over the serial rate:
  ~1.0 means perfect scaling, ~1/jobs means timeshared cores) — and
  the end-to-end assertion is parity-with-tolerance, not a speedup
  floor. Dispatch savings are asserted where they are measurable, in
  ``dispatch_overhead``.
* ``dispatch_overhead`` — the cost the tentpole actually removed,
  isolated: repeated dispatches of trivial tasks against the full bench
  trace. The legacy baseline pays pool spawn + megabytes of topology
  transport per dispatch; the warm executor pays a cached shared-memory
  ref. This is where the >= 1.5x contract is asserted (measured margins
  are >> 10x).

``REPRO_BENCH_JOBS`` overrides the worker count (CI smoke uses 2).
"""

import math
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor

from repro.exec import ParallelExecutor, SerialExecutor
from repro.experiments._common import get_trace
from repro.sim.runner import ExperimentSpec, run_experiments, run_replication


def _legacy_task(task):
    """PR3's worker function verbatim: one self-contained tuple per task."""
    topo, spec, rep = task
    return run_replication(topo, spec, rep)

JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0")) or 4

#: Reduced fig10-style grid: every protocol, two duty ratios, paired
#: replications — 12 tasks, seconds of simulation at smoke scale.
GRID = [
    ExperimentSpec(protocol=proto, duty_ratio=duty, n_packets=2,
                   seed=2011, n_replications=2)
    for proto in ("opt", "dbao", "of")
    for duty in (0.1, 0.2)
]

#: End-to-end wall clock on a timeshared 1-core runner is noisy; warm
#: must stay within this envelope of the legacy baseline there (on
#: multi-core hosts it simply wins).
PARITY_TOLERANCE = 1.35
PARITY_SLACK_S = 0.5


def _legacy_chunksize(n_tasks: int, jobs: int) -> int:
    return max(1, math.ceil(n_tasks / (4 * jobs)))


def _legacy_map(topo, specs, jobs):
    """PR3's dispatch verbatim; returns (flat results, bytes pickled)."""
    tasks = [(topo, spec, rep) for spec in specs
             for rep in range(spec.n_replications)]
    chunksize = _legacy_chunksize(len(tasks), jobs)
    pickled = sum(
        len(pickle.dumps(tasks[i:i + chunksize], pickle.HIGHEST_PROTOCOL))
        for i in range(0, len(tasks), chunksize)
    )
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        results = list(pool.map(_legacy_task, tasks, chunksize=chunksize))
    return results, pickled


def _legacy_probe(task):
    topo, i = task
    return topo.n_nodes + i


def _probe(topo, i):
    return topo.n_nodes + i


def _best_of(fn, rounds=3):
    """Self-timed best-of-N: (result, best elapsed seconds)."""
    best_s, best = None, None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if best_s is None or elapsed < best_s:
            best_s, best = elapsed, result
    return best, best_s


def _flat(summaries):
    return [r for summary in summaries for r in summary.results]


def test_bench_exec_fig10_grid(once, benchmark, exec_journal):
    topo = get_trace("smoke")
    n_tasks = sum(spec.n_replications for spec in GRID)

    serial, serial_s = _best_of(
        lambda: run_experiments(topo, GRID, executor=SerialExecutor())
    )
    (legacy_flat, legacy_bytes), legacy_s = _best_of(
        lambda: _legacy_map(topo, GRID, JOBS)
    )

    executor = ParallelExecutor(jobs=JOBS)
    try:
        # Arm the pool the way a sweep session does (spin-up is paid
        # once per session, journaled separately via the stats line).
        executor.map(_probe, list(range(2)), broadcast=(topo,))
        t0 = time.perf_counter()
        warm = once(run_experiments, topo, GRID, executor=executor)
        warm_s = time.perf_counter() - t0
        warm_bytes = executor.last.pickled_bytes
        spinup_s = executor.stats.spinup_s
    finally:
        executor.close()

    shrink = legacy_bytes / max(warm_bytes, 1)
    # Compute-saturation framing: this grid is simulation-bound, so the
    # honest throughput story is tasks/sec per job against the serial
    # rate, not an end-to-end "speedup vs legacy" that mostly measures
    # how many cores the host happens to have.
    serial_rate = n_tasks / serial_s
    warm_rate = n_tasks / warm_s
    rate_per_job = warm_rate / JOBS
    efficiency = rate_per_job / serial_rate
    benchmark.extra_info.update(
        jobs=JOBS, parallel_efficiency=round(efficiency, 2))
    exec_journal["fig10_grid"] = {
        "scenario": "fig10_grid",
        "jobs": JOBS,
        "tasks": n_tasks,
        "serial_s": round(serial_s, 4),
        "legacy_s": round(legacy_s, 4),
        "warm_s": round(warm_s, 4),
        "tasks_per_sec": round(warm_rate, 2),
        "serial_tasks_per_sec": round(serial_rate, 2),
        "tasks_per_sec_per_job": round(rate_per_job, 2),
        "parallel_efficiency": round(efficiency, 2),
        "legacy_pickled_bytes": int(legacy_bytes),
        "warm_pickled_bytes": int(warm_bytes),
        "pickle_shrink": round(shrink, 1),
        "pool_spinup_s": round(spinup_s, 4),
    }

    # The determinism contract, across all three backends, bit for bit.
    serial_blobs = [pickle.dumps(r) for r in _flat(serial)]
    assert serial_blobs == [pickle.dumps(r) for r in legacy_flat]
    assert serial_blobs == [pickle.dumps(r) for r in _flat(warm)]
    # The broadcast acceptance: >= 10x fewer bytes pickled to workers.
    assert shrink >= 10.0
    # End-to-end: never meaningfully slower than the legacy dispatch.
    assert warm_s <= legacy_s * PARITY_TOLERANCE + PARITY_SLACK_S


def test_bench_exec_dispatch_overhead(once, benchmark, exec_journal):
    topo = get_trace("bench")  # the full 1.7 MiB trace substrate
    n, rounds = 64, 3
    expected = [topo.n_nodes + i for i in range(n)]

    def legacy_session():
        for _ in range(rounds):
            tasks = [(topo, i) for i in range(n)]
            chunksize = _legacy_chunksize(n, JOBS)
            with ProcessPoolExecutor(max_workers=JOBS) as pool:
                out = list(pool.map(_legacy_probe, tasks,
                                    chunksize=chunksize))
            assert out == expected

    _, legacy_s = _best_of(legacy_session)

    executor = ParallelExecutor(jobs=JOBS)
    try:
        executor.map(_probe, list(range(2)), broadcast=(topo,))  # arm

        def warm_session():
            for _ in range(rounds):
                assert executor.map(_probe, list(range(n)),
                                    broadcast=(topo,)) == expected

        t0 = time.perf_counter()
        once(warm_session)
        # once() re-runs nothing; self-time for the journal regardless.
        warm_s = time.perf_counter() - t0
    finally:
        executor.close()

    total = n * rounds
    speedup = legacy_s / max(warm_s, 1e-9)
    benchmark.extra_info.update(jobs=JOBS, speedup_vs_legacy=round(speedup, 2))
    exec_journal["dispatch_overhead"] = {
        "scenario": "dispatch_overhead",
        "jobs": JOBS,
        "tasks": total,
        "dispatches": rounds,
        "legacy_s": round(legacy_s, 4),
        "warm_s": round(warm_s, 4),
        "legacy_tasks_per_sec": round(total / legacy_s, 1),
        "tasks_per_sec": round(total / warm_s, 1),
        "speedup_vs_legacy": round(speedup, 2),
    }

    # The tentpole's contract, with two orders of magnitude of margin:
    # dropping per-dispatch pool spawn + topology transport must be
    # worth at least 1.5x on dispatch-bound work.
    assert speedup >= 1.5
