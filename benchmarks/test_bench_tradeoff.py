"""Benchmark for the networking-gain trade-off instrument (future work)."""

import numpy as np

from repro.experiments import run_experiment_by_id


def test_bench_gain_curve(once):
    result = once(run_experiment_by_id, "gain", scale="bench")
    gains = result.get_series("networking gain").y
    best = int(np.argmax(gains))
    # Interior maximum: extremely low duty cycles are NOT optimal.
    assert 0 < best < gains.size - 1
    assert 0.01 < result.metadata["optimal_duty"] <= 0.5
