"""Micro-benchmarks for the simulator substrate's hot paths.

Not paper artifacts — these track the performance of the pieces every
trace experiment leans on (per the HPC guide: measure before optimizing,
and keep measuring so regressions surface).
"""

import numpy as np
import pytest

from repro.net.generators import random_geometric_topology
from repro.net.packet import FloodWorkload
from repro.net.radio import RadioModel, Transmission, resolve_slot
from repro.net.schedule import ScheduleTable
from repro.net.trace import GreenOrbsConfig, synthesize_greenorbs
from repro.protocols.dbao import Dbao
from repro.protocols.opt import OptOracle, opt_radio_model
from repro.sim.engine import SimConfig, run_flood


@pytest.fixture(scope="module")
def trace300():
    return synthesize_greenorbs(seed=2011)


def test_bench_trace_synthesis(benchmark):
    """Cold synthetic GreenOrbs generation (298 sensors + link physics)."""
    topo = benchmark(synthesize_greenorbs, 7,
                     GreenOrbsConfig(max_attempts=10))
    assert topo.n_sensors == 298


def test_bench_schedule_wake_queries(benchmark, trace300):
    """One simulated day of wake-list queries at 5% duty."""
    rng = np.random.default_rng(0)
    table = ScheduleTable.random(trace300.n_nodes, 20, rng)

    def query_day():
        total = 0
        for t in range(5000):
            total += table.awake_at(t).size
        return total

    total = benchmark(query_day)
    assert total == 5000 * trace300.n_nodes // 20


def test_bench_radio_resolution(benchmark, trace300):
    """Channel resolution with 15 concurrent transmissions."""
    rng = np.random.default_rng(1)
    senders = trace300.out_neighbors(0)[:15]
    txs = [
        Transmission(int(s), int(trace300.out_neighbors(int(s))[0]), 0)
        for s in senders
        if trace300.out_neighbors(int(s)).size
    ]
    # Deduplicate senders (fixture guarantees none, but keep it robust).
    seen, unique = set(), []
    for tx in txs:
        if tx.sender not in seen:
            seen.add(tx.sender)
            unique.append(tx)
    awake = np.arange(trace300.n_nodes)

    def resolve():
        return resolve_slot(unique, trace300, awake, rng, RadioModel())

    outcome = benchmark(resolve)
    assert len(outcome.receptions) + len(outcome.failures) > 0


def test_bench_engine_opt_flood(once, trace300):
    """End-to-end OPT flood, M=5 at 5% duty on the 298-sensor trace."""
    rng = np.random.default_rng(3)
    schedules = ScheduleTable.random(trace300.n_nodes, 20, rng)
    result = once(
        run_flood, trace300, schedules, FloodWorkload(5), OptOracle(),
        np.random.default_rng(4), SimConfig(radio=opt_radio_model()),
    )
    assert result.completed


def test_bench_engine_dbao_flood(once, trace300):
    """End-to-end DBAO flood, M=5 at 5% duty on the 298-sensor trace."""
    rng = np.random.default_rng(3)
    schedules = ScheduleTable.random(trace300.n_nodes, 20, rng)
    result = once(
        run_flood, trace300, schedules, FloodWorkload(5), Dbao(),
        np.random.default_rng(4), SimConfig(),
    )
    assert result.completed
