"""Benchmark for Fig. 7 — the link-loss delay predictor.

Regenerates the four k-class curves over the duty-cycle sweep (eigenvalue
root-finding plus exact recurrence iteration).
"""

import numpy as np

from repro.experiments import run_experiment_by_id


def test_bench_fig7_linkloss_prediction(benchmark):
    result = benchmark(run_experiment_by_id, "fig7", scale="bench")
    k2 = result.get_series("k=2 (link quality 50%)")
    k125 = result.get_series("k=1.25 (link quality 80%)")
    assert np.all(k2.y > k125.y)
    assert k2.is_monotone_decreasing()
    spread = k2.y - k125.y
    assert spread[0] > spread[-1]  # loss magnifies the duty penalty


def test_bench_growth_rate_rootfinding(benchmark):
    """Micro-bench: the Eq. (8) eigenvalue solve across a parameter grid."""
    from repro.core.linkloss import growth_rate

    def solve_grid():
        return [
            growth_rate(k, T)
            for k in (1.0, 1.25, 1.42, 1.67, 2.0)
            for T in (5, 10, 20, 50)
        ]

    roots = benchmark(solve_grid)
    assert all(1.0 < r <= 2.0 for r in roots)
