"""Tests for DBAO (deterministic back-off + overhearing)."""

import numpy as np
import pytest

from repro.net.generators import line_topology, star_topology
from repro.net.packet import FloodWorkload
from repro.net.schedule import ScheduleTable
from repro.protocols.dbao import Dbao, forwarder_clique
from repro.sim.engine import SimConfig, run_flood
from repro.sim.runner import ExperimentSpec, run_experiment


def flood(topo, n_packets=2, period=5, seed=0, **proto_kwargs):
    rng = np.random.default_rng(seed)
    schedules = ScheduleTable.random(topo.n_nodes, period, rng)
    return run_flood(
        topo, schedules, FloodWorkload(n_packets), Dbao(**proto_kwargs),
        np.random.default_rng(seed + 1), SimConfig(coverage_target=1.0),
    )


class TestForwarderClique:
    def test_clique_is_mutually_audible(self, small_rgg):
        for r in range(0, small_rgg.n_nodes, 7):
            clique = forwarder_clique(small_rgg, r)
            for i, a in enumerate(clique):
                for b in clique[i + 1:]:
                    assert small_rgg.has_link(a, b) or small_rgg.has_link(b, a)

    def test_clique_subset_of_in_neighbors(self, small_rgg):
        for r in range(small_rgg.n_nodes):
            clique = forwarder_clique(small_rgg, r)
            nbs = set(small_rgg.in_neighbors(r).tolist())
            assert set(clique) <= nbs

    def test_anchor_always_included(self, small_rgg):
        r = 5
        nbs = small_rgg.in_neighbors(r)
        if nbs.size:
            anchor = int(nbs[-1])
            clique = forwarder_clique(small_rgg, r, anchor=anchor)
            assert anchor in clique

    def test_anchor_must_be_neighbor(self, line5):
        with pytest.raises(ValueError):
            forwarder_clique(line5, 1, anchor=3)

    def test_negative_anchor_ignored(self, line5):
        # In-neighbors of node 1 are {0, 2}, but 0 and 2 cannot hear each
        # other on the chain — the greedy clique keeps only the best one.
        clique = forwarder_clique(line5, 1, anchor=-1)
        assert clique == [0]


class TestDbaoBehavior:
    def test_completes(self, line5):
        assert flood(line5).completed

    def test_completes_on_lossy_network(self, small_rgg):
        result = flood(small_rgg, seed=4)
        assert result.completed

    def test_deterministic_backoff_prevents_sibling_collisions(self, star8):
        # All contenders for the hub's sensors can hear each other through
        # the hub? No — star sensors are NOT mutually audible. But for a
        # single receiver the clique restriction keeps contention audible,
        # so collisions should be rare on the star.
        result = flood(star8, n_packets=3, seed=2)
        assert result.completed

    def test_belief_soundness_no_false_skip(self, small_rgg):
        # The final possession matrix must be complete for reachable
        # nodes: sound beliefs never let DBAO skip a needed packet
        # forever.
        result = flood(small_rgg, n_packets=3, seed=7)
        reach = small_rgg.reachable_from_source()
        assert result.has[:, reach].all()

    def test_overhearing_reduces_transmissions(self, small_rgg):
        spec_on = ExperimentSpec(protocol="dbao", duty_ratio=0.1, n_packets=4,
                                 seed=11)
        spec_off = ExperimentSpec(protocol="dbao", duty_ratio=0.1, n_packets=4,
                                  seed=11,
                                  protocol_kwargs={"overhearing": False})
        on = run_experiment(small_rgg, spec_on)
        off = run_experiment(small_rgg, spec_off)
        assert on.mean_tx_attempts() < off.mean_tx_attempts()

    def test_never_transmits_to_source(self, line5):
        rng = np.random.default_rng(1)
        schedules = ScheduleTable.random(5, 4, rng)
        result = run_flood(
            line5, schedules, FloodWorkload(2), Dbao(),
            np.random.default_rng(2),
            SimConfig(coverage_target=1.0, track_events=True),
        )
        for e in result.events:
            if e.kind.value == "tx":
                assert e.receiver != 0

    def test_init_kwargs_recorded(self):
        assert Dbao(overhearing=False).init_kwargs == {"overhearing": False}
