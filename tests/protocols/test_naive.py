"""Tests for the naive p-persistent flooding baseline."""

import numpy as np
import pytest

from repro.net.packet import FloodWorkload
from repro.net.schedule import ScheduleTable
from repro.protocols.naive import NaiveFlooding
from repro.sim.engine import SimConfig, run_flood
from repro.sim.runner import ExperimentSpec, run_experiment


class TestNaive:
    def test_completes_small_network(self, line5):
        rng = np.random.default_rng(0)
        schedules = ScheduleTable.random(5, 4, rng)
        result = run_flood(
            line5, schedules, FloodWorkload(2), NaiveFlooding(),
            np.random.default_rng(1), SimConfig(coverage_target=1.0),
        )
        assert result.completed

    def test_persistence_validation(self):
        with pytest.raises(ValueError):
            NaiveFlooding(persistence=0.0)
        with pytest.raises(ValueError):
            NaiveFlooding(persistence=1.1)

    def test_worse_than_dbao_on_dense_network(self, small_rgg):
        naive = run_experiment(small_rgg, ExperimentSpec(
            protocol="naive", duty_ratio=0.1, n_packets=3, seed=8))
        dbao = run_experiment(small_rgg, ExperimentSpec(
            protocol="dbao", duty_ratio=0.1, n_packets=3, seed=8))
        assert naive.mean_failures() > dbao.mean_failures()

    def test_init_kwargs_recorded(self):
        assert NaiveFlooding(persistence=0.2).init_kwargs == {"persistence": 0.2}
