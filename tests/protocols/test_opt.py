"""Tests for the OPT oracle protocol."""

import numpy as np
import pytest

from repro.net.generators import line_topology, star_topology
from repro.net.packet import FloodWorkload
from repro.net.schedule import ScheduleTable
from repro.net.topology import Topology
from repro.protocols.opt import OptOracle, opt_radio_model
from repro.sim.engine import SimConfig, run_flood


def flood(topo, n_packets=1, period=5, seed=0, lossless=True):
    rng = np.random.default_rng(seed)
    schedules = ScheduleTable.random(topo.n_nodes, period, rng)
    config = SimConfig(
        coverage_target=1.0, radio=opt_radio_model(lossless=lossless)
    )
    return run_flood(
        topo, schedules, FloodWorkload(n_packets), OptOracle(),
        np.random.default_rng(seed + 1), config,
    )


class TestOptRadioModel:
    def test_collision_free(self):
        model = opt_radio_model()
        assert not model.collisions
        assert not model.overhearing

    def test_lossless_flag(self):
        assert opt_radio_model(lossless=True).lossless


class TestDesignatedServers:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            OptOracle(server_policy="best")

    def test_designated_server_is_strict_upstream(self, small_rgg):
        from repro.net.packet import FloodWorkload
        from repro.net.schedule import ScheduleTable
        from repro.protocols.tree import build_etx_tree

        proto = OptOracle()
        rng = np.random.default_rng(0)
        schedules = ScheduleTable.random(small_rgg.n_nodes, 10, rng)
        proto.prepare(small_rgg, schedules, FloodWorkload(1), rng)
        tree = build_etx_tree(small_rgg, 10)
        designated = proto._designated
        for r in range(1, small_rgg.n_nodes):
            s = int(designated[r])
            if s < 0:
                assert not np.isfinite(tree.etx_cost[r])
                continue
            # Strictly closer to the source: the server graph is acyclic.
            assert tree.etx_cost[s] < tree.etx_cost[r]
            # Best PRR among strict-upstream in-neighbors.
            upstream = [
                u for u in small_rgg.in_neighbors(r).tolist()
                if tree.etx_cost[u] < tree.etx_cost[r]
            ]
            best = max(upstream, key=lambda u: small_rgg.link_prr(u, r))
            assert small_rgg.link_prr(s, r) == pytest.approx(
                small_rgg.link_prr(best, r)
            )

    def test_designated_completes(self, small_rgg):
        rng = np.random.default_rng(2)
        schedules = ScheduleTable.random(small_rgg.n_nodes, 10, rng)
        result = run_flood(
            small_rgg, schedules, FloodWorkload(3), OptOracle(), rng,
            SimConfig(radio=opt_radio_model()),
        )
        assert result.completed

    def test_any_policy_completes(self, small_rgg):
        rng = np.random.default_rng(2)
        schedules = ScheduleTable.random(small_rgg.n_nodes, 10, rng)
        result = run_flood(
            small_rgg, schedules, FloodWorkload(3),
            OptOracle(server_policy="any"), rng,
            SimConfig(radio=opt_radio_model()),
        )
        assert result.completed

    def test_init_kwargs_recorded(self):
        assert OptOracle().init_kwargs == {"server_policy": "designated"}
        assert OptOracle(server_policy="any").init_kwargs == {
            "server_policy": "any"
        }


class TestOptBehavior:
    def test_completes_chain(self, line5):
        result = flood(line5)
        assert result.completed

    def test_no_collisions_ever(self, small_rgg):
        rng = np.random.default_rng(2)
        schedules = ScheduleTable.random(small_rgg.n_nodes, 10, rng)
        result = run_flood(
            small_rgg, schedules, FloodWorkload(3), OptOracle(), rng,
            SimConfig(radio=opt_radio_model()),
        )
        assert result.metrics.collisions == 0
        assert result.completed

    def test_radio_overhearing_configurable(self):
        assert not opt_radio_model().overhearing  # unicast by default
        assert opt_radio_model(overhearing=True).overhearing

    def test_picks_best_link(self):
        # Receiver 3 reachable from 1 (PRR 0.9) and 2 (PRR 0.4): the
        # oracle must always deliver via node 1 when both hold the packet.
        mat = np.zeros((4, 4))
        mat[0, 1] = mat[0, 2] = 1.0
        mat[1, 3] = 0.9
        mat[2, 3] = 0.4
        mat[1, 0] = mat[2, 0] = 1.0
        mat[3, 1] = 0.9
        mat[3, 2] = 0.4
        topo = Topology(mat)
        rng = np.random.default_rng(0)
        schedules = ScheduleTable(period=4, offsets=[0, 1, 2, 3])
        result = run_flood(
            topo, schedules, FloodWorkload(1), OptOracle(), rng,
            SimConfig(coverage_target=1.0,
                      radio=opt_radio_model(lossless=True, overhearing=False),
                      track_events=True),
        )
        deliveries = [e for e in result.events
                      if e.kind.value == "deliver" and e.receiver == 3]
        assert len(deliveries) == 1
        assert deliveries[0].sender == 1

    def test_one_tx_per_sender_per_slot(self, star8):
        # The hub serves one waking sensor per slot even if several wake.
        rng = np.random.default_rng(3)
        schedules = ScheduleTable(period=2, offsets=[1] + [0] * 8)
        result = run_flood(
            star8, schedules, FloodWorkload(1), OptOracle(), rng,
            SimConfig(coverage_target=1.0,
                      radio=opt_radio_model(lossless=True, overhearing=False),
                      track_events=True),
        )
        from collections import Counter

        per_slot = Counter(
            e.t for e in result.events if e.kind.value == "tx" and e.sender == 0
        )
        assert max(per_slot.values()) == 1
        # Star with simultaneous wake-ups: 8 sensors need 8 separate slots.
        assert result.metrics.delays.makespan() >= 8

    def test_delay_optimal_on_chain(self, line5):
        # Lossless chain: the oracle achieves per-hop sleep latency only.
        result = flood(line5, period=5, seed=1)
        # Makespan bounded by hops * period (each hop waits < one period).
        assert result.metrics.delays.makespan() <= 4 * 5

    def test_multi_packet_fcfs(self, line5):
        result = flood(line5, n_packets=4)
        assert result.completed
        # Packets complete in order on a chain under FCFS.
        completed = result.metrics.delays.completed
        assert np.all(np.diff(completed) >= 0)
