"""Tests for the cross-layer future-work sketch."""

import numpy as np
import pytest

from repro.core.tradeoff import GainWeights
from repro.net.packet import FloodWorkload
from repro.net.schedule import ScheduleTable
from repro.protocols.crosslayer import CrossLayerFlooding, recommended_configuration
from repro.sim.engine import SimConfig, run_flood
from repro.sim.runner import ExperimentSpec, run_experiment


class TestCrossLayerFlooding:
    def test_completes(self, small_rgg):
        rng = np.random.default_rng(0)
        schedules = ScheduleTable.random(small_rgg.n_nodes, 10, rng)
        result = run_flood(
            small_rgg, schedules, FloodWorkload(3), CrossLayerFlooding(),
            np.random.default_rng(1), SimConfig(),
        )
        assert result.completed

    def test_comparable_to_dbao(self, small_rgg):
        # The sketch combines DBAO's machinery with free opportunism; it
        # should land in DBAO's delay neighborhood (within 2x).
        cl = run_experiment(small_rgg, ExperimentSpec(
            protocol="crosslayer", duty_ratio=0.1, n_packets=4, seed=6))
        db = run_experiment(small_rgg, ExperimentSpec(
            protocol="dbao", duty_ratio=0.1, n_packets=4, seed=6))
        assert cl.mean_delay() <= 2.0 * db.mean_delay()


class TestRecommendedConfiguration:
    def test_returns_interior_duty(self, small_rgg):
        best = recommended_configuration(small_rgg)
        assert 0.01 <= best.duty_ratio <= 0.5
        assert best.period == round(1 / best.duty_ratio)

    def test_weights_respected(self, small_rgg):
        lifetime_heavy = recommended_configuration(
            small_rgg, weights=GainWeights(lifetime_weight=3.0)
        )
        delay_heavy = recommended_configuration(
            small_rgg, weights=GainWeights(delay_weight=3.0)
        )
        assert lifetime_heavy.duty_ratio <= delay_heavy.duty_ratio
