"""Tests for the neighbor-coverage belief store."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.generators import line_topology
from repro.protocols._belief import NeighborBelief


@pytest.fixture
def belief(line5):
    return NeighborBelief(line5, n_packets=3)


class TestNeighborBelief:
    def test_initially_believes_nothing(self, belief):
        assert not belief.believes_has(0, 1, 0)
        assert belief.believed_needs(0, 1).all()

    def test_confirm(self, belief):
        belief.confirm(0, 1, 2)
        assert belief.believes_has(0, 1, 2)
        needs = belief.believed_needs(0, 1)
        assert needs.tolist() == [True, True, False]

    def test_non_neighbor_queries_rejected(self, belief):
        with pytest.raises(KeyError):
            belief.believes_has(0, 3, 0)
        with pytest.raises(KeyError):
            belief.believed_needs(0, 4)

    def test_confirm_about_non_neighbor_dropped(self, belief):
        belief.confirm(0, 4, 0)  # silently useless, must not raise
        assert belief.believed_coverage_count(0, 0) == 0

    def test_confirm_for_witnesses(self, belief):
        belief.confirm_for_witnesses([0, 2], 1, 1)
        assert belief.believes_has(0, 1, 1)
        assert belief.believes_has(2, 1, 1)

    def test_coverage_count(self, belief):
        belief.confirm(1, 0, 0)
        belief.confirm(1, 2, 0)
        assert belief.believed_coverage_count(1, 0) == 2
        assert belief.believed_coverage_count(1, 1) == 0

    def test_validation(self, line5):
        with pytest.raises(ValueError):
            NeighborBelief(line5, n_packets=0)

    def test_sync_possession_absorbs_summary(self, belief):
        belief.sync_possession(0, 1, [0, 2])
        assert belief.believes_has(0, 1, 0)
        assert not belief.believes_has(0, 1, 1)
        assert belief.believes_has(0, 1, 2)

    def test_sync_possession_non_neighbor_dropped(self, belief):
        belief.sync_possession(0, 4, [0])  # not an out-neighbor: no-op

    def test_sync_for_witnesses(self, belief, line5):
        belief.sync_for_witnesses([0, 2], 1, [1])
        assert belief.believes_has(0, 1, 1)
        assert belief.believes_has(2, 1, 1)

    def test_sync_is_monotone(self, belief):
        # A later, shorter summary never revokes earlier knowledge (the
        # engine only ever grows possession, so summaries only grow too;
        # the store must not clear bits).
        belief.sync_possession(0, 1, [0, 1])
        belief.sync_possession(0, 1, [1])
        assert belief.believes_has(0, 1, 0)

    @given(st.lists(st.tuples(st.integers(0, 2), st.booleans()), max_size=20))
    @settings(max_examples=30)
    def test_soundness_one_sided(self, updates):
        # Beliefs only move from "needs" to "has" — never backwards.
        belief = NeighborBelief(line_topology(4), n_packets=3)
        confirmed = set()
        for pkt, _ in updates:
            belief.confirm(1, 2, pkt)
            confirmed.add(pkt)
            for p in range(3):
                assert belief.believes_has(1, 2, p) == (p in confirmed)
